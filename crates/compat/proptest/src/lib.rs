//! Offline stand-in for the subset of the crates.io `proptest` API this
//! workspace's property tests use: the `proptest!` macro with `arg in range`
//! strategies, `ProptestConfig { cases, .. }`, and `prop_assert!`/
//! `prop_assert_eq!`.
//!
//! The build environment has no registry access, so this crate provides a
//! deterministic exhaustive-sampling runner: each property runs `cases`
//! times with inputs drawn uniformly from the given ranges by a generator
//! seeded from the test's name. There is no shrinking — a failing case
//! panics with the ordinary assertion message, which for this workspace's
//! small input spaces is diagnosable directly.

pub use rand as prop_rand;

/// Runner configuration (only `cases` is interpreted).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
    /// Accepted for API compatibility; unused (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic input sampling from range strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A strategy the stub runner can draw values from.
    pub trait Sample {
        /// The produced value type.
        type Output;
        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Output;
    }

    macro_rules! impl_sample_range {
        ($($t:ty),*) => {$(
            impl Sample for core::ops::Range<$t> {
                type Output = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Sample for core::ops::RangeInclusive<$t> {
                type Output = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

    /// Free-function form used by the generated test bodies.
    pub fn sample<S: Sample>(strat: &S, rng: &mut StdRng) -> S::Output {
        strat.sample(rng)
    }
}

/// Test-runner support used by the generated code.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Seeds a deterministic generator from the test's name.
    pub fn rng_for_test(name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Property assertion; stub maps to `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion; stub maps to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Declares property tests: every `arg in strategy` parameter is sampled
/// `cases` times and the body re-run per case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::rng_for_test(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),+ ) $body
            )*
        }
    };
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respected(a in 1usize..10, b in 0.0f64..1.0, s in 0u64..100) {
            prop_assert!((1..10).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert!(s < 100);
            prop_assert_eq!(a, a);
        }
    }

    #[test]
    fn deterministic_across_invocations() {
        let mut r1 = crate::test_runner::rng_for_test("x");
        let mut r2 = crate::test_runner::rng_for_test("x");
        let v1 = crate::strategy::sample(&(0u64..1000), &mut r1);
        let v2 = crate::strategy::sample(&(0u64..1000), &mut r2);
        assert_eq!(v1, v2);
    }
}
