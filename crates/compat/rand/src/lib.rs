//! Offline stand-in for the subset of the crates.io `rand` 0.8 API this
//! workspace uses (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`,
//! `Rng::gen_bool`, `seq::SliceRandom::shuffle`).
//!
//! The build environment has no registry access, so this workspace crate
//! shadows `rand` via a path dependency. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic, fast, and statistically sound
//! for the workloads' synthetic-operand generation. Streams differ from the
//! real `rand::StdRng` (ChaCha12), which is fine: nothing in the workspace
//! depends on a specific stream, only on determinism per seed.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that samples a value of `T` from a range.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-4..4);
            assert!((-4..4).contains(&v));
            let f = rng.gen_range(-2.0f64..=3.0);
            assert!((-2.0..=3.0).contains(&f));
            let u = rng.gen_range(0usize..10);
            assert!(u < 10);
        }
    }

    #[test]
    fn gen_bool_extremes_and_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "32-element shuffle left identity (astronomically unlikely)"
        );
    }
}
