//! Offline stand-in for the subset of the crates.io `criterion` API this
//! workspace's benches use (`Criterion`, `benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`, `criterion_group!`/`criterion_main!`).
//!
//! The build environment has no registry access, so this crate keeps
//! `cargo bench` working: each benchmark closure is timed over a small,
//! fixed number of iterations and mean wall-clock per iteration is printed.
//! It is a smoke-timer, not a statistics engine — swap back to the real
//! criterion when the registry is reachable.

use std::time::Instant;

/// Opaque hint preventing the optimiser from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _c: self,
            samples: 10,
        }
    }
}

/// A named group of benchmark functions.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Times one benchmark closure.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iterations: self.samples as u64,
            elapsed_ns: 0,
        };
        f(&mut b);
        let per_iter = b.elapsed_ns as f64 / b.iterations.max(1) as f64;
        println!("  {id:<32} {:>12.1} us/iter", per_iter / 1e3);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs `f` for the configured number of iterations, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        let mut calls = 0u32;
        g.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        g.finish();
        assert_eq!(calls, 3);
    }
}
