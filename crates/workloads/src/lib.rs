//! Workload IR, ML model layer zoo, and sparsity scenarios (Fig 14, §5
//! "Workloads").
//!
//! The evaluation spans two workload classes: *tensor kernels* (GEMM, the
//! SpMM family, SDDMM and window attention — [`TensorOp`]) and *arbitrary
//! affine loop nests* (the PolyBench suite of `canon-loopir` —
//! [`LoopKernel`]). [`Workload`] is the unified representation every
//! generic layer (the sweep engine's `Backend` trait, scenario grids, the
//! result store, the figure harness) dispatches on, so both classes flow
//! through one pipeline and unsupported combinations (loop nests on a
//! systolic array) surface uniformly as the figures' `X` cells.
//!
//! The paper evaluates real model components: ResNet-50 convolutions (as
//! im2col GEMM/SpMM), Llama-8B and Mistral-7B MLP and attention blocks,
//! sparsified with training-free activation sparsity (SpMM), attention
//! sparsification (unstructured SDDMM), and sliding-window attention
//! (structured SDDMM). Since the proprietary activation traces are not
//! available, the workspace substitutes synthetic operands with controlled
//! sparsity at the models' layer shapes (see DESIGN.md), and this crate is
//! the catalogue of those shapes.
//!
//! Real LLM dimensions (4096×14336 GEMMs at 4K context) are far larger than
//! a cycle-accurate simulation needs to characterise an 8×8 fabric, so every
//! workload takes a `scale` divisor: dimensions are divided by `scale` and
//! rounded to mapping-friendly multiples of 32. Relative shapes — aspect
//! ratios, sparsity, window fractions — are preserved, which is what the
//! normalized EDP comparison consumes.

use canon_sparse::gen::SparsityBand;

/// A PolyBench loop-nest workload, identified by suite name and problem
/// size — a lightweight descriptor that resolves to the full loop IR on
/// demand, so scenario grids and result records stay cheap to clone and
/// hash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopKernel {
    /// PolyBench kernel name (`"gemm"`, `"2mm"`, `"jacobi-2d"`, …).
    pub name: &'static str,
    /// Problem size `n` (every loop trip derives from it; minimum 4).
    pub n: usize,
}

impl LoopKernel {
    /// Resolves the descriptor to the full loop IR, or `None` when the name
    /// is not in the evaluated suite.
    pub fn resolve(&self) -> Option<canon_loopir::Kernel> {
        canon_loopir::polybench::kernel(self.name, self.n.max(4))
    }

    /// Useful (guard-weighted) arithmetic ops of the kernel.
    ///
    /// # Panics
    ///
    /// Panics when the name is not in the evaluated suite.
    pub fn useful_ops(&self) -> u64 {
        self.resolve()
            .unwrap_or_else(|| panic!("unknown PolyBench kernel {:?}", self.name))
            .useful_ops()
    }
}

/// One workload of the evaluation — the unified IR over both execution
/// classes the paper compares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// A tensor kernel (operands materialized from a seed at run time).
    Tensor(TensorOp),
    /// An affine loop nest from the PolyBench suite.
    Loop(LoopKernel),
}

impl Workload {
    /// Useful scalar MACs/ops of the workload — the architecture-invariant
    /// work every utilization and perf/W figure normalizes against.
    pub fn useful_macs(&self) -> u64 {
        match self {
            Workload::Tensor(op) => op.useful_macs(),
            Workload::Loop(lk) => lk.useful_ops(),
        }
    }

    /// Canonical single-line descriptor — part of sweep cache keys and
    /// stored records, so it must be stable across runs.
    pub fn descriptor(&self) -> String {
        match *self {
            Workload::Tensor(TensorOp::Gemm { m, k, n }) => format!("gemm(m={m},k={k},n={n})"),
            Workload::Tensor(TensorOp::Spmm { m, k, n, sparsity }) => {
                format!("spmm(m={m},k={k},n={n},sp={sparsity})")
            }
            Workload::Tensor(TensorOp::SpmmNm {
                m,
                k,
                n,
                n_of,
                m_of,
            }) => format!("spmm_nm(m={m},k={k},n={n},{n_of}:{m_of})"),
            Workload::Tensor(TensorOp::SddmmUnstructured {
                seq,
                head_dim,
                sparsity,
            }) => format!("sddmm(seq={seq},h={head_dim},sp={sparsity})"),
            Workload::Tensor(TensorOp::SddmmWindow {
                seq,
                window,
                head_dim,
            }) => format!("window(seq={seq},w={window},h={head_dim})"),
            Workload::Loop(lk) => format!("loop({},n={})", lk.name, lk.n),
        }
    }
}

impl From<TensorOp> for Workload {
    fn from(op: TensorOp) -> Workload {
        Workload::Tensor(op)
    }
}

impl From<LoopKernel> for Workload {
    fn from(lk: LoopKernel) -> Workload {
        Workload::Loop(lk)
    }
}

/// One tensor operation of a model component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TensorOp {
    /// Dense GEMM `C[m×n] = A[m×k] × B[k×n]`.
    Gemm {
        /// Output rows.
        m: usize,
        /// Contraction length.
        k: usize,
        /// Output columns.
        n: usize,
    },
    /// SpMM with unstructured input sparsity (sparsified activations).
    Spmm {
        /// Output rows.
        m: usize,
        /// Contraction length.
        k: usize,
        /// Output columns.
        n: usize,
        /// Input sparsity in `[0, 1]`.
        sparsity: f64,
    },
    /// SpMM with N:M structured input sparsity (exactly `n_of` non-zeros in
    /// every aligned group of `m_of` entries of a row).
    SpmmNm {
        /// Output rows.
        m: usize,
        /// Contraction length (must be a multiple of `m_of`).
        k: usize,
        /// Output columns.
        n: usize,
        /// Non-zeros kept per group.
        n_of: usize,
        /// Group size.
        m_of: usize,
    },
    /// Unstructured SDDMM (sparse attention scores).
    SddmmUnstructured {
        /// Sequence length.
        seq: usize,
        /// Head dimension.
        head_dim: usize,
        /// Output (mask) sparsity.
        sparsity: f64,
    },
    /// Sliding-window SDDMM (Longformer / Mistral attention).
    SddmmWindow {
        /// Sequence length.
        seq: usize,
        /// Total window width.
        window: usize,
        /// Head dimension.
        head_dim: usize,
    },
}

impl TensorOp {
    /// Useful scalar MACs of the operation.
    pub fn useful_macs(&self) -> u64 {
        match *self {
            TensorOp::Gemm { m, k, n } => (m * k * n) as u64,
            TensorOp::Spmm { m, k, n, sparsity } => {
                ((m * k * n) as f64 * (1.0 - sparsity)).round() as u64
            }
            TensorOp::SpmmNm {
                m,
                k,
                n,
                n_of,
                m_of,
            } => {
                // Exactly n_of of every m_of entries are non-zero.
                (m * (k / m_of.max(1)) * n_of * n) as u64
            }
            TensorOp::SddmmUnstructured {
                seq,
                head_dim,
                sparsity,
            } => ((seq * seq * head_dim) as f64 * (1.0 - sparsity)).round() as u64,
            TensorOp::SddmmWindow {
                seq,
                window,
                head_dim,
            } => {
                let band = canon_sparse::gen::window_mask(seq, window).nnz();
                (band * head_dim) as u64
            }
        }
    }
}

/// A named model component with its constituent tensor ops.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelWorkload {
    /// Display name as in Fig 14 ("Llama8B-MLP (70% sparse)" etc.).
    pub name: &'static str,
    /// Average sparsity label shown in the figure.
    pub sparsity_note: &'static str,
    /// The tensor operations of the component.
    pub ops: Vec<TensorOp>,
}

impl ModelWorkload {
    /// Total useful MACs across the component.
    pub fn useful_macs(&self) -> u64 {
        self.ops.iter().map(TensorOp::useful_macs).sum()
    }
}

/// Rounds a scaled dimension to a mapping-friendly multiple of 32
/// (the default fabric's `rows`/`cols·lanes` granularities), minimum 32.
pub fn round_dim(raw: usize, scale: usize) -> usize {
    let scaled = raw / scale.max(1);
    scaled.div_ceil(32).max(1) * 32
}

/// The seven Fig 14 workloads at the given down-scale factor.
pub fn fig14_workloads(scale: usize) -> Vec<ModelWorkload> {
    let d = |raw: usize| round_dim(raw, scale);
    // ResNet-50 stage-3 conv as im2col: M = 28·28, K = 128·3·3, N = 128.
    let resnet_conv = |sparsity: f64| TensorOp::Spmm {
        m: d(784),
        k: d(1152),
        n: d(128),
        sparsity,
    };
    // Llama-8B / Mistral-7B MLP: hidden 4096 ↔ intermediate 14336 at 512 ctx.
    let mlp = |sparsity: Option<f64>| {
        let (m, k, n) = (d(512), d(4096), d(14336));
        match sparsity {
            None => vec![TensorOp::Gemm { m, k, n }, TensorOp::Gemm { m, k: n, n: k }],
            Some(s) => vec![
                TensorOp::Spmm {
                    m,
                    k,
                    n,
                    sparsity: s,
                },
                TensorOp::Spmm {
                    m,
                    k: n,
                    n: k,
                    sparsity: s,
                },
            ],
        }
    };
    let llama_attn = vec![
        TensorOp::SddmmUnstructured {
            seq: d(2048),
            head_dim: 128.min(d(128)),
            sparsity: 0.7,
        },
        // Scores × V as SpMM with the same sparsity.
        TensorOp::Spmm {
            m: d(2048),
            k: d(2048),
            n: 128.min(d(128)),
            sparsity: 0.7,
        },
    ];
    let mistral_attn = vec![
        TensorOp::SddmmWindow {
            seq: d(16384),
            window: d(16384) / 4,
            head_dim: 128.min(d(128)),
        },
        TensorOp::Spmm {
            m: d(16384),
            k: d(16384),
            n: 128.min(d(128)),
            sparsity: 0.75,
        },
    ];
    vec![
        ModelWorkload {
            name: "Resnet50-Conv",
            sparsity_note: "50% sparse",
            ops: vec![resnet_conv(0.5)],
        },
        ModelWorkload {
            name: "Llama8B-MLP",
            sparsity_note: "Dense",
            ops: mlp(None),
        },
        ModelWorkload {
            name: "Llama8B-MLP",
            sparsity_note: "70% sparse",
            ops: mlp(Some(0.7)),
        },
        ModelWorkload {
            name: "Llama8B-Attn",
            sparsity_note: "70% sparse",
            ops: llama_attn,
        },
        ModelWorkload {
            name: "Mistral7B-MLP",
            sparsity_note: "Dense",
            ops: mlp(None),
        },
        ModelWorkload {
            name: "Mistral7B-MLP",
            sparsity_note: "70% sparse",
            ops: mlp(Some(0.7)),
        },
        ModelWorkload {
            name: "Mistral7B-Attn",
            sparsity_note: "70% sparse (window)",
            ops: mistral_attn,
        },
    ]
}

/// Representative CNN/MLP layer shapes per sparsity band for the Fig 11
/// power-breakdown experiment (ResNet-50 conv and attention projections).
pub fn fig11_workloads(scale: usize) -> Vec<(&'static str, SparsityBand, TensorOp)> {
    let d = |raw: usize| round_dim(raw, scale);
    let mut out = Vec::new();
    for band in SparsityBand::all() {
        out.push((
            "Resnet50",
            band,
            TensorOp::Spmm {
                m: d(784),
                k: d(1152),
                n: d(128),
                sparsity: band.representative(),
            },
        ));
        out.push((
            "Attention",
            band,
            TensorOp::SddmmUnstructured {
                seq: d(2048),
                head_dim: 128.min(d(128)),
                sparsity: band.representative(),
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_dim_multiples_of_32() {
        assert_eq!(round_dim(4096, 16), 256);
        assert_eq!(round_dim(100, 16), 32); // clamped up
        assert_eq!(round_dim(14336, 16), 896);
        assert_eq!(round_dim(33, 1), 64);
    }

    #[test]
    fn fig14_has_seven_workloads() {
        let w = fig14_workloads(16);
        assert_eq!(w.len(), 7);
        assert!(w.iter().all(|m| m.useful_macs() > 0));
        // The dense and sparse MLP variants share shapes but differ in work.
        assert!(w[1].useful_macs() > w[2].useful_macs());
    }

    #[test]
    fn fig14_contains_window_attention() {
        let w = fig14_workloads(16);
        let mistral = &w[6];
        assert!(mistral
            .ops
            .iter()
            .any(|o| matches!(o, TensorOp::SddmmWindow { .. })));
    }

    #[test]
    fn fig11_covers_all_bands() {
        let w = fig11_workloads(16);
        assert_eq!(w.len(), 6);
        for band in SparsityBand::all() {
            assert_eq!(w.iter().filter(|(_, b, _)| *b == band).count(), 2);
        }
    }

    #[test]
    fn workload_descriptors_cover_both_classes() {
        let t = Workload::from(TensorOp::Gemm { m: 8, k: 8, n: 8 });
        assert_eq!(t.descriptor(), "gemm(m=8,k=8,n=8)");
        assert_eq!(t.useful_macs(), 512);
        let l = Workload::from(LoopKernel { name: "2mm", n: 8 });
        assert_eq!(l.descriptor(), "loop(2mm,n=8)");
        assert!(l.useful_macs() > 0);
        assert!(LoopKernel {
            name: "cholesky",
            n: 8
        }
        .resolve()
        .is_none());
    }

    #[test]
    fn useful_macs_formulae() {
        assert_eq!(TensorOp::Gemm { m: 2, k: 3, n: 4 }.useful_macs(), 24);
        let sp = TensorOp::Spmm {
            m: 10,
            k: 10,
            n: 10,
            sparsity: 0.9,
        };
        assert_eq!(sp.useful_macs(), 100);
        let nm = TensorOp::SpmmNm {
            m: 4,
            k: 8,
            n: 2,
            n_of: 2,
            m_of: 4,
        };
        assert_eq!(nm.useful_macs(), 32);
        let win = TensorOp::SddmmWindow {
            seq: 16,
            window: 4,
            head_dim: 8,
        };
        assert!(win.useful_macs() > 0);
    }
}
