//! JSONL result store with content-hash run caching.
//!
//! Every sweep cell is persisted as one JSON object per line, keyed by an
//! FNV-1a content hash of (scenario, Canon configuration fingerprint,
//! code-version salt). Re-running a sweep against an existing store skips
//! every cell whose key is already present — change a shape, a band, the
//! configuration, or bump [`CODE_SALT`], and exactly the affected cells
//! recompute.
//!
//! Serialization is hand-rolled (the build environment has no registry
//! access, and the schema is a flat record): [`StoredRecord::to_line`]
//! writes a canonical line, [`StoredRecord::parse`] reads it back. Cached
//! records re-emit their original line verbatim, so a warm re-run produces
//! a byte-identical file.
//!
//! Records carry their [`CODE_SALT`] and schema version explicitly, so
//! [`ResultStore::compact`] can garbage-collect cells stranded by a salt
//! bump or a schema migration (they would otherwise sit in the file forever
//! — their content keys can never be probed again).

use crate::scenario::Scenario;
use canon_core::stats::{StallBreakdown, StallCause};
use canon_core::CanonConfig;
use std::collections::HashMap;
use std::io::{self, Seek as _, Write as _};
use std::path::{Path, PathBuf};

/// Bump when a simulator or energy-model change invalidates stored results.
/// `v2`: the unified `Workload` record schema with geometry-parameterized
/// (iso-MAC) baselines. `v3`: SDDMM auto-pads K to the next `cols·lanes`
/// multiple — cells that previously cached mapping-error records now
/// simulate (results of previously-succeeding cells are unchanged, but the
/// error records must not be served from stale stores).
pub const CODE_SALT: &str = "canon-sweep-v3";

/// Stored-record schema version (`2` added the explicit `salt` field and
/// the loop-workload descriptors).
pub const STORE_SCHEMA: u32 = 2;

/// 64-bit FNV-1a.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable fingerprint of the Canon configuration fields that affect results.
/// The watchdog budget is included because a raised budget can turn a
/// deadlock-aborted cell into a completed one — such cells must miss. The
/// harness budgets and injected fault join the fingerprint only when set,
/// for the same reason (a raised ceiling can turn a timeout record into a
/// completed one, and a faulted cell must never share a key with its
/// healthy counterpart); unset they contribute nothing, so every
/// pre-existing store keeps hitting byte-for-byte.
pub fn cfg_fingerprint(cfg: &CanonConfig) -> String {
    let mut fp = format!(
        "dmem={};spad={};pipe={};fifo={};msg={}x{};bw={};wd={}+{}",
        cfg.dmem_words,
        cfg.spad_entries,
        cfg.pipe_depth,
        cfg.link_fifo_depth,
        cfg.orch_msg_latency,
        cfg.orch_msg_capacity,
        cfg.offchip_bytes_per_cycle,
        cfg.watchdog_factor,
        cfg.watchdog_slack,
    );
    if let Some(m) = cfg.max_cycles {
        fp.push_str(&format!(";maxcyc={m}"));
    }
    if let Some(ns) = cfg.wall_budget_ns {
        fp.push_str(&format!(";wall={ns}ns"));
    }
    if let Some(f) = &cfg.fault {
        fp.push_str(&format!(";fault={}", f.descriptor()));
    }
    fp
}

/// The cache key of one cell: scenario canonical form + configuration
/// fingerprint + code salt, FNV-1a hashed, as 16 hex digits.
pub fn cell_key(scenario: &Scenario, fingerprint: &str) -> String {
    let material = format!("{CODE_SALT};{fingerprint};{}", scenario.canonical());
    format!("{:016x}", fnv1a64(material.as_bytes()))
}

/// A quarantined cell failure — the structured record the sweep engine
/// stores when a cell dies instead of producing metrics. The kind, not the
/// free-form reason, drives retry policy and reporting:
///
/// | kind | source | retried? |
/// |---|---|---|
/// | `panic` | backend panicked (caught by `catch_unwind`) | no |
/// | `deadlock` | the fabric watchdog fired (nothing can progress) | no |
/// | `timeout` | a wall-clock/cycle budget expired (runaway cell) | no |
/// | `transient` | a retryable fault exhausted its retry budget | yes |
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellFailure {
    /// The backend panicked; `message` is the downcast panic payload.
    Panic {
        /// Panic payload (or a placeholder for non-string payloads).
        message: String,
    },
    /// The deadlock watchdog fired ([`canon_core::SimError::Deadlock`]).
    Deadlock {
        /// What the fabric was waiting on.
        detail: String,
    },
    /// A harness budget expired ([`canon_core::SimError::Timeout`]).
    Timeout {
        /// Which budget, from the simulator error.
        detail: String,
    },
    /// A transient (retryable) failure survived every retry attempt.
    Transient {
        /// Description of the final failed attempt.
        detail: String,
    },
}

impl CellFailure {
    /// Short machine-readable kind — also the record's `status` value.
    pub fn kind(&self) -> &'static str {
        match self {
            CellFailure::Panic { .. } => "panic",
            CellFailure::Deadlock { .. } => "deadlock",
            CellFailure::Timeout { .. } => "timeout",
            CellFailure::Transient { .. } => "transient",
        }
    }

    /// Human-readable detail (panic payload, watchdog wait list, …).
    pub fn reason(&self) -> &str {
        match self {
            CellFailure::Panic { message } => message,
            CellFailure::Deadlock { detail }
            | CellFailure::Timeout { detail }
            | CellFailure::Transient { detail } => detail,
        }
    }

    /// Whether the failure class is worth retrying. Panics, deadlocks, and
    /// budget timeouts are deterministic — retrying re-simulates the same
    /// outcome — so only transient failures qualify.
    pub fn is_transient(&self) -> bool {
        matches!(self, CellFailure::Transient { .. })
    }
}

/// Execution status of a stored cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordStatus {
    /// The backend produced metrics.
    Ok,
    /// The architecture cannot run the workload (the figures' `X`).
    Unsupported,
    /// The simulator rejected the cell (mapping violation, protocol error).
    Error(String),
    /// The cell was quarantined by the fault-tolerance layer; the record
    /// caches the failure so warm re-runs do not re-simulate it. `cycles`
    /// carries the abort cycle (partial progress) for deadlock/timeout.
    Failed(CellFailure),
}

impl RecordStatus {
    fn as_str(&self) -> &str {
        match self {
            RecordStatus::Ok => "ok",
            RecordStatus::Unsupported => "unsupported",
            RecordStatus::Error(_) => "error",
            RecordStatus::Failed(f) => f.kind(),
        }
    }
}

/// One persisted sweep cell.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRecord {
    /// Content-hash cache key (16 hex digits).
    pub key: String,
    /// The [`CODE_SALT`] the record was computed under — lets
    /// [`ResultStore::compact`] identify stale generations.
    pub salt: String,
    /// Workload family name.
    pub workload: String,
    /// Architecture label.
    pub arch: String,
    /// Sparsity band label, if the workload is band-sensitive.
    pub band: Option<String>,
    /// Canon fabric rows.
    pub rows: usize,
    /// Canon fabric columns.
    pub cols: usize,
    /// Scale divisor.
    pub scale: usize,
    /// Operand seed.
    pub seed: u64,
    /// Concrete op descriptor.
    pub op: String,
    /// Execution status.
    pub status: RecordStatus,
    /// Total cycles (0 unless `status == Ok`).
    pub cycles: u64,
    /// Total energy in pJ (0 unless `status == Ok`).
    pub energy_pj: f64,
    /// Useful scalar MACs.
    pub useful_macs: u64,
    /// Effective compute utilization.
    pub utilization: f64,
    /// Per-cause stall attribution, when the backend tracks it (Canon
    /// tensor cells). Serialized as flat `stall_<cause>` fields; records
    /// written before the field existed parse as `None`, so adding it
    /// needed no salt bump.
    pub stalls: Option<StallBreakdown>,
}

/// Appends `s` to `out` with JSON string escaping (the inverse of what
/// [`parse_flat_object`] unescapes). Public alongside the parser so other
/// line-JSON surfaces in the workspace (the serve protocol) share one
/// dialect instead of hand-rolling a second.
pub fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

impl StoredRecord {
    /// Serializes to one canonical JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut s = String::with_capacity(256);
        let field_str = |s: &mut String, name: &str, v: &str| {
            s.push('"');
            s.push_str(name);
            s.push_str("\":\"");
            escape_json(v, s);
            s.push('"');
        };
        s.push('{');
        field_str(&mut s, "key", &self.key);
        s.push_str(&format!(",\"schema\":{STORE_SCHEMA},"));
        field_str(&mut s, "salt", &self.salt);
        s.push(',');
        field_str(&mut s, "workload", &self.workload);
        s.push(',');
        field_str(&mut s, "arch", &self.arch);
        s.push(',');
        match &self.band {
            Some(b) => field_str(&mut s, "band", b),
            None => s.push_str("\"band\":null"),
        }
        s.push_str(&format!(
            ",\"rows\":{},\"cols\":{},\"scale\":{},\"seed\":{},",
            self.rows, self.cols, self.scale, self.seed
        ));
        field_str(&mut s, "op", &self.op);
        s.push(',');
        field_str(&mut s, "status", self.status.as_str());
        match &self.status {
            RecordStatus::Error(reason) => {
                s.push(',');
                field_str(&mut s, "reason", reason);
            }
            RecordStatus::Failed(failure) => {
                s.push(',');
                field_str(&mut s, "reason", failure.reason());
            }
            _ => {}
        }
        s.push_str(&format!(
            ",\"cycles\":{},\"energy_pj\":{},\"useful_macs\":{},\"utilization\":{}",
            self.cycles, self.energy_pj, self.useful_macs, self.utilization
        ));
        if let Some(b) = &self.stalls {
            for cause in StallCause::ALL {
                s.push_str(&format!(",\"stall_{}\":{}", cause.name(), b.get(cause)));
            }
        }
        s.push('}');
        s
    }

    /// Label of the workload cell this record belongs to — the same format
    /// grids use ([`crate::scenario::cell_label_for`]), so reports group
    /// records into exactly the grid's cells.
    pub fn cell_label(&self) -> String {
        crate::scenario::cell_label_for(
            &self.workload,
            self.band.as_deref(),
            self.scale,
            (self.rows, self.cols),
        )
    }

    /// Parses one JSONL line; `None` if malformed or wrong schema.
    pub fn parse(line: &str) -> Option<StoredRecord> {
        let fields = parse_flat_object(line)?;
        let get_str = |k: &str| -> Option<String> {
            match fields.get(k)? {
                JsonVal::Str(s) => Some(s.clone()),
                _ => None,
            }
        };
        let get_u64 = |k: &str| -> Option<u64> {
            match fields.get(k)? {
                JsonVal::Num(raw) => raw.parse().ok(),
                _ => None,
            }
        };
        let get_f64 = |k: &str| -> Option<f64> {
            match fields.get(k)? {
                JsonVal::Num(raw) => raw.parse().ok(),
                _ => None,
            }
        };
        if get_u64("schema")? != STORE_SCHEMA as u64 {
            return None;
        }
        let status = match get_str("status")?.as_str() {
            "ok" => RecordStatus::Ok,
            "unsupported" => RecordStatus::Unsupported,
            "error" => RecordStatus::Error(get_str("reason").unwrap_or_default()),
            "panic" => RecordStatus::Failed(CellFailure::Panic {
                message: get_str("reason").unwrap_or_default(),
            }),
            "deadlock" => RecordStatus::Failed(CellFailure::Deadlock {
                detail: get_str("reason").unwrap_or_default(),
            }),
            "timeout" => RecordStatus::Failed(CellFailure::Timeout {
                detail: get_str("reason").unwrap_or_default(),
            }),
            "transient" => RecordStatus::Failed(CellFailure::Transient {
                detail: get_str("reason").unwrap_or_default(),
            }),
            _ => return None,
        };
        Some(StoredRecord {
            key: get_str("key")?,
            salt: get_str("salt")?,
            workload: get_str("workload")?,
            arch: get_str("arch")?,
            band: match fields.get("band")? {
                JsonVal::Str(s) => Some(s.clone()),
                JsonVal::Null => None,
                _ => return None,
            },
            rows: get_u64("rows")? as usize,
            cols: get_u64("cols")? as usize,
            scale: get_u64("scale")? as usize,
            seed: get_u64("seed")?,
            op: get_str("op")?,
            status,
            cycles: get_u64("cycles")?,
            energy_pj: get_f64("energy_pj")?,
            useful_macs: get_u64("useful_macs")?,
            utilization: get_f64("utilization")?,
            stalls: {
                // Present only on records whose backend tracked attribution;
                // one present field implies all five were written together.
                if fields.contains_key("stall_credit") {
                    let mut b = StallBreakdown::default();
                    for cause in StallCause::ALL {
                        b.add(cause, get_u64(&format!("stall_{}", cause.name()))?);
                    }
                    Some(b)
                } else {
                    None
                }
            },
        })
    }
}

/// One value of a flat JSON object (see [`parse_flat_object`]).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonVal {
    /// A string value, unescaped.
    Str(String),
    /// A number, kept as its raw text (callers pick the width to parse at).
    Num(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonVal {
    /// The string value, or `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonVal::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value parsed as `u64`, or `None`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonVal::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The numeric value parsed as `usize`, or `None`.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonVal::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The numeric value parsed as `f64`, or `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonVal::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The boolean value, or `None` for non-booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonVal::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses a flat (non-nested) JSON object into its fields. This is the
/// store's record dialect — also the wire dialect of the `canon-serve`
/// line-JSON protocol, which reuses this parser instead of growing a
/// second one.
pub fn parse_flat_object(line: &str) -> Option<HashMap<String, JsonVal>> {
    let mut chars = line.trim().chars().peekable();
    if chars.next()? != '{' {
        return None;
    }
    let mut fields = HashMap::new();
    loop {
        match chars.peek()? {
            '}' => {
                chars.next();
                break;
            }
            ',' | ' ' => {
                chars.next();
            }
            '"' => {
                let name = parse_string(&mut chars)?;
                if chars.next()? != ':' {
                    return None;
                }
                let val = match chars.peek()? {
                    '"' => JsonVal::Str(parse_string(&mut chars)?),
                    't' => {
                        for expect in "true".chars() {
                            if chars.next()? != expect {
                                return None;
                            }
                        }
                        JsonVal::Bool(true)
                    }
                    'f' => {
                        for expect in "false".chars() {
                            if chars.next()? != expect {
                                return None;
                            }
                        }
                        JsonVal::Bool(false)
                    }
                    'n' => {
                        for expect in "null".chars() {
                            if chars.next()? != expect {
                                return None;
                            }
                        }
                        JsonVal::Null
                    }
                    _ => {
                        let mut raw = String::new();
                        while matches!(
                            chars.peek(),
                            Some(c) if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')
                        ) {
                            raw.push(chars.next()?);
                        }
                        if raw.is_empty() {
                            return None;
                        }
                        JsonVal::Num(raw)
                    }
                };
                fields.insert(name, val);
            }
            _ => return None,
        }
    }
    Some(fields)
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

/// A JSONL result store: an on-disk cache of computed cells plus the sink
/// the engine writes complete sweeps to.
///
/// The file doubles as a crash-safe journal: the engine appends each
/// freshly computed record with an fsync'd write the moment it completes,
/// so a SIGKILL mid-sweep loses at most the in-flight cells. [`open`]
/// detects a torn tail (a final partial line from an interrupted write)
/// and resumes from the last intact record; full-file rewrites
/// ([`write_ordered`], [`compact`]) go through an atomic tmp+rename so no
/// crash window ever exposes a half-written store.
///
/// [`open`]: ResultStore::open
/// [`write_ordered`]: ResultStore::write_ordered
/// [`compact`]: ResultStore::compact
#[derive(Debug)]
pub struct ResultStore {
    path: Option<PathBuf>,
    by_key: HashMap<String, StoredRecord>,
    /// Lines of the backing file that failed to parse (truncation, or a
    /// schema older than [`STORE_SCHEMA`]) — still occupying file space
    /// until [`ResultStore::compact`] rewrites it.
    unreadable_lines: usize,
    /// Records successfully loaded at open (the journal's survivors).
    loaded: usize,
    /// Byte length of the intact prefix of the backing file: every line up
    /// to here is newline-terminated and either parsed or was counted
    /// unreadable. Appends land here after truncating any torn tail.
    good_len: u64,
    /// Bytes past `good_len` — a torn final line left by an interrupted
    /// write, dropped (via `set_len`) before the first append.
    torn_tail_bytes: u64,
    /// The final line parsed but lacked a trailing newline (a foreign
    /// writer); the first append must supply the separator.
    pending_newline: bool,
    /// Lazily opened append handle; every append is fsync'd through it.
    appender: Option<std::fs::File>,
}

impl ResultStore {
    /// Opens (and loads, if present) the store at `path`. Malformed or
    /// old-schema lines are skipped so a truncated or stale file degrades
    /// to extra cache misses, not a failed sweep; their count is reported
    /// by [`ResultStore::unreadable_lines`]. A torn final line (partial
    /// write from a crash) is detected separately and truncated away
    /// before the next append; [`ResultStore::recovery`] reports what was
    /// found.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than the file not existing.
    pub fn open(path: impl AsRef<Path>) -> io::Result<ResultStore> {
        let path = path.as_ref().to_path_buf();
        let mut by_key = HashMap::new();
        let mut unreadable_lines = 0;
        let mut good_len = 0u64;
        let mut torn_tail_bytes = 0u64;
        let mut pending_newline = false;
        match std::fs::read(&path) {
            Ok(bytes) => {
                let content = String::from_utf8_lossy(&bytes);
                for seg in content.split_inclusive('\n') {
                    let has_newline = seg.ends_with('\n');
                    let line = seg.trim_end_matches(['\n', '\r']);
                    let parsed = if line.trim().is_empty() {
                        None
                    } else {
                        StoredRecord::parse(line)
                    };
                    match parsed {
                        Some(rec) => {
                            by_key.insert(rec.key.clone(), rec);
                            good_len += seg.len() as u64;
                            // A parsed record without its newline: keep the
                            // bytes, but the next append owes a separator.
                            pending_newline = !has_newline;
                        }
                        None if line.trim().is_empty() || has_newline => {
                            if !line.trim().is_empty() {
                                unreadable_lines += 1;
                            }
                            if has_newline {
                                good_len += seg.len() as u64;
                            }
                            // (an all-whitespace unterminated tail is
                            // silently trimmed by the same set_len path)
                        }
                        None => {
                            // Torn tail: a final, unterminated, unparseable
                            // line — the classic interrupted-write residue.
                            torn_tail_bytes = seg.len() as u64;
                        }
                    }
                }
                // Whitespace tail without newline: drop it too.
                if bytes.len() as u64 > good_len + torn_tail_bytes {
                    torn_tail_bytes = bytes.len() as u64 - good_len;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let loaded = by_key.len();
        Ok(ResultStore {
            path: Some(path),
            by_key,
            unreadable_lines,
            loaded,
            good_len,
            torn_tail_bytes,
            pending_newline,
            appender: None,
        })
    }

    /// A store with no backing file (results are kept in memory only).
    pub fn in_memory() -> ResultStore {
        ResultStore {
            path: None,
            by_key: HashMap::new(),
            unreadable_lines: 0,
            loaded: 0,
            good_len: 0,
            torn_tail_bytes: 0,
            pending_newline: false,
            appender: None,
        }
    }

    /// Lines of the backing file that could not be parsed when the store
    /// was opened (see [`ResultStore::open`]).
    pub fn unreadable_lines(&self) -> usize {
        self.unreadable_lines
    }

    /// What [`ResultStore::open`] found in the backing file — how many
    /// records survived, how many lines were unreadable, and whether a
    /// torn tail from an interrupted write was recovered.
    pub fn recovery(&self) -> RecoveryStats {
        RecoveryStats {
            loaded: self.loaded,
            unreadable_lines: self.unreadable_lines,
            torn_tail_bytes: self.torn_tail_bytes,
        }
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Number of cached records.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Cached record for `key`, if present.
    pub fn lookup(&self, key: &str) -> Option<&StoredRecord> {
        self.by_key.get(key)
    }

    /// All cached records, in unspecified order.
    pub fn records(&self) -> impl Iterator<Item = &StoredRecord> {
        self.by_key.values()
    }

    /// Inserts (or replaces) a record in the in-memory cache.
    pub fn insert(&mut self, rec: StoredRecord) {
        self.by_key.insert(rec.key.clone(), rec);
    }

    fn ensure_parent_dir(path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(())
    }

    /// Journals one record: inserts it into the in-memory cache and
    /// appends its line to the backing file with an fsync, so the record
    /// survives a SIGKILL the moment this returns. The first append
    /// truncates any torn tail left by a previous crash (see
    /// [`ResultStore::open`]), keeping the file a sequence of intact
    /// lines at all times.
    ///
    /// # Errors
    ///
    /// Propagates file I/O errors; an in-memory store only caches.
    pub fn append(&mut self, rec: &StoredRecord) -> io::Result<()> {
        self.insert(rec.clone());
        let Some(path) = self.path.clone() else {
            return Ok(());
        };
        if self.appender.is_none() {
            Self::ensure_parent_dir(&path)?;
            let f = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(&path)?;
            // Crash recovery: drop the torn tail so the append lands right
            // after the last intact line.
            f.set_len(self.good_len)?;
            self.appender = Some(f);
        }
        let mut line = String::with_capacity(280);
        if self.pending_newline {
            line.push('\n');
            self.pending_newline = false;
        }
        line.push_str(&rec.to_line());
        line.push('\n');
        let f = self.appender.as_mut().expect("appender just ensured");
        f.seek(io::SeekFrom::Start(self.good_len))?;
        f.write_all(line.as_bytes())?;
        f.sync_data()?;
        self.good_len += line.len() as u64;
        Ok(())
    }

    /// Rewrites the backing file with `records` in the given order — the
    /// engine calls this with the full sweep in scenario order, making the
    /// file layout independent of completion order and thread count.
    ///
    /// The rewrite is atomic (write to a temp file in the same directory,
    /// fsync, rename over the store, fsync the directory): a crash at any
    /// point leaves either the previous journal or the complete new file,
    /// never a torn hybrid.
    ///
    /// # Errors
    ///
    /// Propagates file I/O errors; an in-memory store writes nothing.
    pub fn write_ordered(&mut self, records: &[StoredRecord]) -> io::Result<()> {
        let Some(path) = self.path.clone() else {
            return Ok(());
        };
        Self::ensure_parent_dir(&path)?;
        let mut file_name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        file_name.push(format!(".tmp.{}", std::process::id()));
        let tmp = path.with_file_name(file_name);
        let mut total = 0u64;
        {
            let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            for rec in records {
                let line = rec.to_line();
                f.write_all(line.as_bytes())?;
                f.write_all(b"\n")?;
                total += line.len() as u64 + 1;
            }
            f.flush()?;
            f.get_ref().sync_data()?;
        }
        std::fs::rename(&tmp, &path)?;
        // Make the rename itself durable; skipped silently where directory
        // fsync is unsupported.
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Ok(dir) = std::fs::File::open(parent) {
                    let _ = dir.sync_all();
                }
            }
        }
        // The old append handle points at the unlinked inode; reopen lazily.
        self.appender = None;
        self.good_len = total;
        self.torn_tail_bytes = 0;
        self.pending_newline = false;
        self.unreadable_lines = 0;
        Ok(())
    }

    /// Garbage-collects the store: drops every record whose [`CODE_SALT`]
    /// generation is stale (its content key can never be probed again) and
    /// rewrites the backing file deterministically (records sorted by key),
    /// which also sheds malformed and old-schema lines and any recovered
    /// torn tail. The `repro store gc` CLI target calls this.
    ///
    /// # Errors
    ///
    /// Propagates file I/O errors; an in-memory store compacts without
    /// writing.
    pub fn compact(&mut self) -> io::Result<CompactStats> {
        let before = self.by_key.len();
        let dropped_unreadable = self.unreadable_lines;
        let recovered_torn_bytes = self.torn_tail_bytes;
        self.by_key.retain(|_, rec| rec.salt == CODE_SALT);
        let mut records: Vec<StoredRecord> = self.by_key.values().cloned().collect();
        records.sort_by(|a, b| a.key.cmp(&b.key));
        self.write_ordered(&records)?;
        Ok(CompactStats {
            kept: records.len(),
            dropped_stale: before - records.len(),
            dropped_unreadable,
            recovered_torn_bytes,
        })
    }
}

/// What [`ResultStore::open`] recovered from the backing file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Records loaded intact.
    pub loaded: usize,
    /// Newline-terminated lines that failed to parse (malformed or
    /// old-schema) — kept on disk until the next rewrite.
    pub unreadable_lines: usize,
    /// Bytes of torn final line (interrupted write) scheduled for
    /// truncation; `0` when the file ended cleanly.
    pub torn_tail_bytes: u64,
}

impl RecoveryStats {
    /// True when the file carried crash or corruption residue worth
    /// surfacing to the user.
    pub fn has_damage(&self) -> bool {
        self.unreadable_lines > 0 || self.torn_tail_bytes > 0
    }
}

// Raw POSIX `flock(2)` binding: the workspace carries no libc crate (no
// registry access), and one foreign function needs no abstraction. Same
// pattern as the repro binary's `signal(2)` binding.
#[cfg(unix)]
extern "C" {
    fn flock(fd: std::os::raw::c_int, operation: std::os::raw::c_int) -> std::os::raw::c_int;
}

#[cfg(unix)]
const LOCK_EX: std::os::raw::c_int = 2;
#[cfg(unix)]
const LOCK_NB: std::os::raw::c_int = 4;

/// An advisory exclusive lock on a result store, held on a `.lock` sibling
/// of the store file for as long as the guard lives.
///
/// A store is an fsync'd append journal; two writers interleaving appends
/// (a resident `repro serve` daemon plus a concurrent `repro sweep` or
/// `repro store gc`) would corrupt the tail each believes it owns. Every
/// store-writing entry point therefore takes this lock first and **fails
/// fast** with a clear error when another process holds it, instead of
/// discovering the interleave at the next torn-tail recovery.
///
/// The lock is `flock(2)`-based: advisory, per open file description,
/// released automatically by the kernel when the holder exits (including
/// SIGKILL — a crashed daemon never wedges the store). On non-Unix
/// platforms acquisition always succeeds (no-op guard).
#[derive(Debug)]
pub struct StoreLock {
    /// Keeps the locked descriptor open; dropping releases the lock.
    _file: std::fs::File,
    path: PathBuf,
}

impl StoreLock {
    /// The `.lock` sibling path guarding `store_path`.
    pub fn lock_path(store_path: &Path) -> PathBuf {
        let mut os = store_path.as_os_str().to_os_string();
        os.push(".lock");
        PathBuf::from(os)
    }

    /// Acquires the exclusive store lock, without blocking.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::WouldBlock`] with a descriptive message when
    /// another process holds the lock; other I/O errors if the lock file
    /// cannot be created.
    pub fn acquire(store_path: &Path) -> io::Result<StoreLock> {
        let path = StoreLock::lock_path(store_path);
        let file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path)?;
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd as _;
            // SAFETY: fd is a valid open descriptor owned by `file`;
            // flock has no memory-safety obligations beyond that.
            let rc = unsafe { flock(file.as_raw_fd(), LOCK_EX | LOCK_NB) };
            if rc != 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::WouldBlock {
                    return Err(io::Error::new(
                        io::ErrorKind::WouldBlock,
                        format!(
                            "store '{}' is locked by another process (a resident \
                             `repro serve` daemon or a concurrent sweep); stop it \
                             or point --out at a different store",
                            store_path.display()
                        ),
                    ));
                }
                return Err(err);
            }
        }
        Ok(StoreLock { _file: file, path })
    }

    /// The lock file's own path (diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Outcome counters of one [`ResultStore::compact`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Records kept (current [`CODE_SALT`] and schema).
    pub kept: usize,
    /// Records dropped for a stale code salt.
    pub dropped_stale: usize,
    /// File lines dropped because they were malformed or of an old schema.
    pub dropped_unreadable: usize,
    /// Bytes of torn tail (crash residue) shed by the rewrite.
    pub recovered_torn_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioGrid;

    #[test]
    #[cfg(unix)]
    fn store_lock_excludes_second_holder_and_releases_on_drop() {
        let dir = std::env::temp_dir().join(format!("canon-sweep-lock-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = dir.join("results.jsonl");
        let first = StoreLock::acquire(&store).expect("first acquire");
        let second = StoreLock::acquire(&store);
        let err = second.expect_err("second holder must fail fast");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert!(
            err.to_string().contains("locked by another process"),
            "error must explain the conflict: {err}"
        );
        drop(first);
        StoreLock::acquire(&store).expect("lock released on drop");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn sample_record(status: RecordStatus) -> StoredRecord {
        StoredRecord {
            key: "00ff00ff00ff00ff".into(),
            salt: CODE_SALT.into(),
            workload: "SpMM".into(),
            arch: "ZeD".into(),
            band: Some("S2".into()),
            rows: 8,
            cols: 8,
            scale: 4,
            seed: 42,
            op: "spmm(m=64,k=64,n=32,sp=0.45)".into(),
            status,
            cycles: 1234,
            energy_pj: 5678.25,
            useful_macs: 1000,
            utilization: 0.4375,
            stalls: None,
        }
    }

    #[test]
    fn roundtrip_with_stall_breakdown() {
        let mut b = StallBreakdown::default();
        b.add(StallCause::Credit, 41);
        b.add(StallCause::OperandWait, 7);
        let rec = StoredRecord {
            stalls: Some(b),
            ..sample_record(RecordStatus::Ok)
        };
        let line = rec.to_line();
        assert!(line.contains("\"stall_credit\":41"));
        assert!(line.contains("\"stall_operand_wait\":7"));
        let back = StoredRecord::parse(&line).expect("parses");
        assert_eq!(back, rec);
        assert_eq!(back.to_line(), line);
    }

    #[test]
    fn records_without_stall_fields_still_parse() {
        // Lines written before the breakdown existed have no stall_* fields;
        // they must keep parsing (as `stalls: None`) with no salt bump.
        let rec = sample_record(RecordStatus::Ok);
        let line = rec.to_line();
        assert!(!line.contains("stall_"));
        let back = StoredRecord::parse(&line).expect("parses");
        assert_eq!(back.stalls, None);
        assert_eq!(back, rec);
    }

    #[test]
    fn roundtrip_ok_record() {
        let rec = sample_record(RecordStatus::Ok);
        let line = rec.to_line();
        let back = StoredRecord::parse(&line).expect("parses");
        assert_eq!(back, rec);
        // Canonical form is stable through a parse/serialize cycle.
        assert_eq!(back.to_line(), line);
    }

    #[test]
    fn roundtrip_error_and_unsupported() {
        for status in [
            RecordStatus::Unsupported,
            RecordStatus::Error("mapping error: K = 20 \"bad\"".into()),
        ] {
            let rec = sample_record(status);
            let back = StoredRecord::parse(&rec.to_line()).expect("parses");
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(StoredRecord::parse("").is_none());
        assert!(StoredRecord::parse("not json").is_none());
        assert!(StoredRecord::parse("{\"key\":\"x\"}").is_none());
        let truncated = &sample_record(RecordStatus::Ok).to_line()[..40];
        assert!(StoredRecord::parse(truncated).is_none());
    }

    #[test]
    fn keys_differ_across_cells_and_configs() {
        let grid = ScenarioGrid::standard(4);
        let fp = cfg_fingerprint(&CanonConfig::default());
        let mut keys: Vec<String> = grid.scenarios.iter().map(|s| cell_key(s, &fp)).collect();
        let n = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), n, "cell keys must be unique");
        let other_fp = cfg_fingerprint(&CanonConfig {
            spad_entries: 64,
            ..CanonConfig::default()
        });
        assert_ne!(
            cell_key(&grid.scenarios[0], &fp),
            cell_key(&grid.scenarios[0], &other_fp)
        );
    }

    #[test]
    fn compact_drops_stale_salt_and_unreadable_lines() {
        let dir = std::env::temp_dir().join(format!("canon-sweep-gc-{}", std::process::id()));
        let path = dir.join("t.jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        let fresh = sample_record(RecordStatus::Ok);
        let stale = StoredRecord {
            key: "1111111111111111".into(),
            salt: "canon-sweep-v1".into(),
            ..sample_record(RecordStatus::Ok)
        };
        let mut content = format!("{}\n{}\n", fresh.to_line(), stale.to_line());
        // An old-schema line and a truncated one.
        content.push_str(&fresh.to_line().replace("\"schema\":2", "\"schema\":1"));
        content.push('\n');
        content.push_str(&fresh.to_line()[..30]);
        content.push('\n');
        std::fs::write(&path, content).unwrap();

        let mut store = ResultStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.unreadable_lines(), 2);
        let stats = store.compact().unwrap();
        assert_eq!(
            stats,
            CompactStats {
                kept: 1,
                dropped_stale: 1,
                dropped_unreadable: 2,
                recovered_torn_bytes: 0,
            }
        );
        // The rewritten file holds exactly the fresh record.
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.unreadable_lines(), 0);
        assert_eq!(store.lookup(&fresh.key), Some(&fresh));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_rewrite_is_deterministic() {
        let dir = std::env::temp_dir().join(format!("canon-sweep-gc-det-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let recs: Vec<StoredRecord> = (0..8)
            .map(|i| StoredRecord {
                key: format!("{i:016x}"),
                ..sample_record(RecordStatus::Ok)
            })
            .collect();
        let mut bytes = Vec::new();
        for (run, order) in [
            (0, [3usize, 1, 7, 0, 2, 6, 4, 5]),
            (1, [5, 0, 4, 2, 7, 1, 6, 3]),
        ] {
            let path = dir.join(format!("{run}.jsonl"));
            let ordered: Vec<StoredRecord> = order.iter().map(|&i| recs[i].clone()).collect();
            let mut store = ResultStore::open(&path).unwrap();
            store.write_ordered(&ordered).unwrap();
            drop(store);
            let mut store = ResultStore::open(&path).unwrap();
            store.compact().unwrap();
            bytes.push(std::fs::read(&path).unwrap());
        }
        assert_eq!(
            bytes[0], bytes[1],
            "compaction must be insertion-order independent"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn roundtrip_failure_statuses() {
        for failure in [
            CellFailure::Panic {
                message: "injected fault: forced panic at cycle 3".into(),
            },
            CellFailure::Deadlock {
                detail: "row 0 (4 meta left)".into(),
            },
            CellFailure::Timeout {
                detail: "wall-clock budget 5000000 ns".into(),
            },
            CellFailure::Transient {
                detail: "injected transient fault".into(),
            },
        ] {
            let kind = failure.kind();
            let rec = StoredRecord {
                cycles: 917,
                ..sample_record(RecordStatus::Failed(failure))
            };
            let line = rec.to_line();
            assert!(line.contains(&format!("\"status\":\"{kind}\"")));
            let back = StoredRecord::parse(&line).expect("parses");
            assert_eq!(back, rec);
            assert_eq!(back.cycles, 917, "abort cycle is partial-stat payload");
            assert_eq!(back.to_line(), line);
        }
        assert!(!CellFailure::Panic {
            message: "x".into()
        }
        .is_transient());
        assert!(!CellFailure::Deadlock { detail: "x".into() }.is_transient());
        assert!(!CellFailure::Timeout { detail: "x".into() }.is_transient());
        assert!(CellFailure::Transient { detail: "x".into() }.is_transient());
    }

    #[test]
    fn append_journal_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("canon-sweep-journal-{}", std::process::id()));
        let path = dir.join("j.jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::remove_file(&path).ok();
        let recs: Vec<StoredRecord> = (0..3)
            .map(|i| StoredRecord {
                key: format!("{i:016x}"),
                ..sample_record(RecordStatus::Ok)
            })
            .collect();
        let mut store = ResultStore::open(&path).unwrap();
        for r in &recs {
            store.append(r).unwrap();
        }
        drop(store);
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(
            store.recovery(),
            RecoveryStats {
                loaded: 3,
                unreadable_lines: 0,
                torn_tail_bytes: 0,
            }
        );
        for r in &recs {
            assert_eq!(store.lookup(&r.key), Some(r));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_detected_truncated_and_healed() {
        let dir = std::env::temp_dir().join(format!("canon-sweep-torn-{}", std::process::id()));
        let path = dir.join("t.jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::remove_file(&path).ok();
        let a = StoredRecord {
            key: "aaaaaaaaaaaaaaaa".into(),
            ..sample_record(RecordStatus::Ok)
        };
        let b = StoredRecord {
            key: "bbbbbbbbbbbbbbbb".into(),
            ..sample_record(RecordStatus::Ok)
        };
        {
            let mut store = ResultStore::open(&path).unwrap();
            store.append(&a).unwrap();
            store.append(&b).unwrap();
        }
        // Simulate a crash mid-append: cut the file mid-way through b's line.
        let intact = std::fs::read(&path).unwrap();
        let cut = intact.len() - 25;
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut as u64).unwrap();
        drop(f);

        let mut store = ResultStore::open(&path).unwrap();
        let rec = store.recovery();
        assert_eq!(rec.loaded, 1, "only the intact record survives");
        assert_eq!(
            rec.unreadable_lines, 0,
            "a torn tail is not an interior bad line"
        );
        assert!(rec.torn_tail_bytes > 0);
        assert!(store.lookup(&a.key).is_some());
        assert!(store.lookup(&b.key).is_none());

        // Re-appending heals the journal in place: the torn bytes are
        // truncated before the new line lands.
        store.append(&b).unwrap();
        drop(store);
        let healed = std::fs::read(&path).unwrap();
        assert_eq!(healed, intact, "healed journal is byte-identical");

        // And compact round-trips byte-identically from either history.
        let mut s1 = ResultStore::open(&path).unwrap();
        let c = s1.compact().unwrap();
        assert_eq!(c.kept, 2);
        assert_eq!(c.recovered_torn_bytes, 0);
        let compacted = std::fs::read(&path).unwrap();
        let mut s2 = ResultStore::open(&path).unwrap();
        s2.compact().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), compacted);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_ordered_leaves_no_tmp_file() {
        let dir = std::env::temp_dir().join(format!("canon-sweep-atomic-{}", std::process::id()));
        let path = dir.join("a.jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        let mut store = ResultStore::open(&path).unwrap();
        store
            .write_ordered(&[sample_record(RecordStatus::Ok)])
            .unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names,
            vec!["a.jsonl".to_string()],
            "tmp must be renamed away"
        );
        // Appends after an atomic rewrite land after the rewritten content.
        let extra = StoredRecord {
            key: "cccccccccccccccc".into(),
            ..sample_record(RecordStatus::Ok)
        };
        store.append(&extra).unwrap();
        let reread = ResultStore::open(&path).unwrap();
        assert_eq!(reread.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_suffixes_only_when_set() {
        let base = cfg_fingerprint(&CanonConfig::default());
        assert!(!base.contains("maxcyc") && !base.contains("wall") && !base.contains("fault"));
        let budgeted = cfg_fingerprint(&CanonConfig {
            max_cycles: Some(100),
            wall_budget_ns: Some(5_000),
            fault: Some(canon_core::FaultAction::WithholdCredits),
            ..CanonConfig::default()
        });
        assert!(
            budgeted.starts_with(&base),
            "suffixes extend, never reshape"
        );
        assert!(budgeted.contains(";maxcyc=100"));
        assert!(budgeted.contains(";wall=5000ns"));
        assert!(budgeted.contains(";fault=withhold-credits"));
    }

    #[test]
    fn store_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join(format!("canon-sweep-store-{}", std::process::id()));
        let path = dir.join("t.jsonl");
        let rec = sample_record(RecordStatus::Ok);
        {
            let mut store = ResultStore::open(&path).unwrap();
            assert!(store.is_empty());
            store.write_ordered(std::slice::from_ref(&rec)).unwrap();
        }
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.lookup(&rec.key), Some(&rec));
        std::fs::remove_dir_all(&dir).ok();
    }
}
