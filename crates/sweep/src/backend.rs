//! The unified multi-backend execution trait.
//!
//! [`Backend`] is the single interface the sweep engine (and the harness
//! figures) dispatch through: `supports` answers capability questions from
//! shapes alone, `run` materializes operands from a seed and executes the
//! workload, returning uniform [`RunRecord`] metrics. Implementations cover
//! the Canon simulator ([`CanonBackend`]) and all four baseline models
//! ([`BaselineBackend`]); [`all_backends`] yields them in the figures' row
//! order ([`Arch::all`]).
//!
//! Operand materialization is centralized in [`kernel_input`], so every
//! backend of a cell sees *identical* inputs for a given seed — the parity
//! requirement behind the paper's normalized comparisons.

use canon_baselines::{Accelerator, Cgra, OpKind, SparseSystolic24, SystolicArray, ZedAccelerator};
use canon_core::kernels::{self, window::WindowAttention, KernelInput};
use canon_core::stats::RunReport;
use canon_core::{CanonConfig, SimError};
use canon_energy::{baseline_energy, canon_energy, Arch};
use canon_sparse::{gen, CsrMatrix, Dense};
use canon_workloads::TensorOp;

/// Uniform metrics of one (backend, workload) execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunRecord {
    /// Total cycles.
    pub cycles: u64,
    /// Total energy in pJ under the backend's energy model.
    pub energy_pj: f64,
    /// Useful scalar MACs of the workload (identical across backends).
    pub useful_macs: u64,
    /// Effective compute utilization in `[0, 1]`.
    pub utilization: f64,
}

/// Why a backend did not produce a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The architecture cannot execute this workload at all (the `X` cells
    /// of Figs 12/13).
    Unsupported,
    /// The simulator rejected the mapping or hit a protocol error.
    Sim(SimError),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Unsupported => write!(f, "workload unsupported"),
            BackendError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<SimError> for BackendError {
    fn from(e: SimError) -> Self {
        BackendError::Sim(e)
    }
}

/// The unified execution interface over Canon and the baseline simulators.
pub trait Backend: Sync {
    /// Display name used in tables and result records.
    fn name(&self) -> &'static str;

    /// The architecture this backend models.
    fn arch(&self) -> Arch;

    /// Whether the backend can execute the workload (from shapes alone; no
    /// operands are materialized).
    fn supports(&self, op: &TensorOp) -> bool;

    /// Materializes operands from `seed` and executes the workload.
    ///
    /// # Errors
    ///
    /// [`BackendError::Unsupported`] for workloads `supports` rejects,
    /// [`BackendError::Sim`] for mapping/protocol failures.
    fn run(&self, op: &TensorOp, seed: u64) -> Result<RunRecord, BackendError>;
}

/// The workload family of a [`TensorOp`], for [`Accelerator::supports`].
pub fn op_kind(op: &TensorOp) -> OpKind {
    match op {
        TensorOp::Gemm { .. } => OpKind::Gemm,
        TensorOp::Spmm { .. } => OpKind::Spmm,
        TensorOp::SpmmNm { .. } => OpKind::SpmmNm,
        TensorOp::SddmmUnstructured { .. } => OpKind::Sddmm,
        TensorOp::SddmmWindow { .. } => OpKind::WindowAttention,
    }
}

/// Materializes the operands of `op` from `seed`.
///
/// This is the single place operand streams are defined: sparse operands use
/// the evaluation's skewed generator (`skew = 1.5`, the load-imbalance
/// regime the paper's workloads exhibit), masks are i.i.d. at the band's
/// sparsity, and window operands are structural. Every backend pulls its
/// inputs out of the same [`KernelInput`], so a cell's operands are
/// identical across architectures.
pub fn kernel_input(op: &TensorOp, seed: u64) -> KernelInput {
    let mut rng = gen::seeded_rng(seed);
    match *op {
        TensorOp::Gemm { m, k, n } => KernelInput::Gemm {
            a: Dense::random(m, k, &mut rng),
            b: Dense::random(k, n, &mut rng),
        },
        TensorOp::Spmm { m, k, n, sparsity } => KernelInput::Spmm {
            a: gen::skewed_sparse(m, k, sparsity, 1.5, &mut rng),
            b: Dense::random(k, n, &mut rng),
            mapping: Default::default(),
        },
        TensorOp::SpmmNm {
            m,
            k,
            n,
            n_of,
            m_of,
        } => KernelInput::SpmmNm {
            a: gen::nm_sparse(m, k, n_of, m_of, &mut rng),
            b: Dense::random(k, n, &mut rng),
            n_of,
            m_of,
        },
        TensorOp::SddmmUnstructured {
            seq,
            head_dim,
            sparsity,
        } => {
            let q = Dense::random(seq, head_dim, &mut rng);
            let kv = Dense::random(seq, head_dim, &mut rng);
            KernelInput::Sddmm {
                mask: gen::random_mask(seq, seq, sparsity, &mut rng),
                q,
                kv,
                mapping: Default::default(),
            }
        }
        TensorOp::SddmmWindow {
            seq,
            window,
            head_dim,
        } => KernelInput::Window {
            wa: WindowAttention {
                seq,
                window,
                head_dim,
            },
            seed,
        },
    }
}

/// The sparse operand of an SpMM-family op, drawn from the same stream
/// prefix as [`kernel_input`] (A precedes B there), so the matrix is
/// byte-identical to Canon's without paying for the unused dense operand.
///
/// # Panics
///
/// Panics on non-SpMM ops.
fn sparse_operand(op: &TensorOp, seed: u64) -> CsrMatrix {
    let mut rng = gen::seeded_rng(seed);
    match *op {
        TensorOp::Spmm { m, k, sparsity, .. } => gen::skewed_sparse(m, k, sparsity, 1.5, &mut rng),
        TensorOp::SpmmNm {
            m, k, n_of, m_of, ..
        } => gen::nm_sparse(m, k, n_of, m_of, &mut rng),
        _ => unreachable!("sparse_operand is only defined for SpMM families"),
    }
}

/// The Canon simulator as a [`Backend`].
#[derive(Debug, Clone, Default)]
pub struct CanonBackend {
    /// Fabric configuration (geometry, scratchpad depth, …).
    pub cfg: CanonConfig,
}

impl CanonBackend {
    /// Runs the workload and returns the full cycle report — for consumers
    /// that need per-component activity (e.g. the Fig 11 power breakdown)
    /// rather than the summarized [`RunRecord`].
    ///
    /// # Errors
    ///
    /// Propagates mapping/protocol failures as [`BackendError::Sim`].
    pub fn run_report(&self, op: &TensorOp, seed: u64) -> Result<RunReport, BackendError> {
        let input = kernel_input(op, seed);
        Ok(kernels::run_kernel(&self.cfg, &input)?.report)
    }
}

impl Backend for CanonBackend {
    fn name(&self) -> &'static str {
        Arch::Canon.label()
    }

    fn arch(&self) -> Arch {
        Arch::Canon
    }

    fn supports(&self, _op: &TensorOp) -> bool {
        // Canon executes every tensor workload family; shape constraints
        // (e.g. K divisible by the row count) surface as Sim errors.
        true
    }

    fn run(&self, op: &TensorOp, seed: u64) -> Result<RunRecord, BackendError> {
        let report = self.run_report(op, seed)?;
        Ok(RunRecord {
            cycles: report.cycles,
            energy_pj: canon_energy(&report).total_pj(),
            useful_macs: op.useful_macs(),
            utilization: report.compute_utilization(),
        })
    }
}

/// A baseline cycle model as a [`Backend`].
#[derive(Debug, Clone)]
pub struct BaselineBackend<A: Accelerator> {
    arch: Arch,
    acc: A,
}

impl<A: Accelerator> BaselineBackend<A> {
    /// Wraps an accelerator model under its figure label.
    pub fn new(arch: Arch, acc: A) -> BaselineBackend<A> {
        BaselineBackend { arch, acc }
    }
}

impl<A: Accelerator> Backend for BaselineBackend<A> {
    fn name(&self) -> &'static str {
        self.arch.label()
    }

    fn arch(&self) -> Arch {
        self.arch
    }

    fn supports(&self, op: &TensorOp) -> bool {
        self.acc.supports(op_kind(op))
    }

    fn run(&self, op: &TensorOp, seed: u64) -> Result<RunRecord, BackendError> {
        if !self.supports(op) {
            return Err(BackendError::Unsupported);
        }
        // Shape-only families skip materialization entirely; SpMM families
        // draw just the sparse operand (the same stream prefix Canon sees —
        // baselines never read the dense B); SDDMM needs the full stream,
        // since the mask is drawn after Q/KV.
        let run = match *op {
            TensorOp::Gemm { m, k, n } => self.acc.gemm(m, k, n),
            TensorOp::SddmmWindow {
                seq,
                window,
                head_dim,
            } => self.acc.window_attention(seq, window, head_dim),
            TensorOp::Spmm { n, .. } => self.acc.spmm(&sparse_operand(op, seed), n),
            TensorOp::SpmmNm { n, n_of, m_of, .. } => {
                self.acc.spmm_nm(&sparse_operand(op, seed), n, n_of, m_of)
            }
            TensorOp::SddmmUnstructured { head_dim, .. } => match kernel_input(op, seed) {
                KernelInput::Sddmm { mask, .. } => self.acc.sddmm(&mask, head_dim),
                _ => unreachable!("kernel_input variant mismatch"),
            },
        }
        .ok_or(BackendError::Unsupported)?;
        Ok(RunRecord {
            cycles: run.cycles,
            energy_pj: baseline_energy(self.arch, &run).total_pj(),
            useful_macs: op.useful_macs(),
            utilization: run.utilization(),
        })
    }
}

/// All five backends in the figures' row order ([`Arch::all`]): systolic,
/// 2:4 systolic, ZeD, CGRA, Canon. `cfg` parameterizes the Canon fabric;
/// baselines are fixed 256-MAC models.
pub fn all_backends(cfg: &CanonConfig) -> Vec<Box<dyn Backend + Send>> {
    vec![
        Box::new(BaselineBackend::new(
            Arch::Systolic,
            SystolicArray::default(),
        )),
        Box::new(BaselineBackend::new(
            Arch::Systolic24,
            SparseSystolic24::default(),
        )),
        Box::new(BaselineBackend::new(Arch::Zed, ZedAccelerator::default())),
        Box::new(BaselineBackend::new(Arch::Cgra, Cgra::default())),
        Box::new(CanonBackend { cfg: cfg.clone() }),
    ]
}

/// The backend modelling `arch` at the given Canon fabric geometry.
pub fn backend_for(
    arch: Arch,
    geometry: (usize, usize),
    base_cfg: &CanonConfig,
) -> Box<dyn Backend + Send> {
    match arch {
        Arch::Systolic => Box::new(BaselineBackend::new(
            Arch::Systolic,
            SystolicArray::default(),
        )),
        Arch::Systolic24 => Box::new(BaselineBackend::new(
            Arch::Systolic24,
            SparseSystolic24::default(),
        )),
        Arch::Zed => Box::new(BaselineBackend::new(Arch::Zed, ZedAccelerator::default())),
        Arch::Cgra => Box::new(BaselineBackend::new(Arch::Cgra, Cgra::default())),
        Arch::Canon => Box::new(CanonBackend {
            cfg: CanonConfig {
                rows: geometry.0,
                cols: geometry.1,
                ..base_cfg.clone()
            },
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spmm_op() -> TensorOp {
        TensorOp::Spmm {
            m: 32,
            k: 32,
            n: 32,
            sparsity: 0.6,
        }
    }

    #[test]
    fn all_backends_in_figure_order() {
        let backends = all_backends(&CanonConfig::default());
        let archs: Vec<Arch> = backends.iter().map(|b| b.arch()).collect();
        assert_eq!(archs, Arch::all().to_vec());
    }

    #[test]
    fn every_backend_runs_the_standard_families() {
        let backends = all_backends(&CanonConfig::default());
        let ops = [
            TensorOp::Gemm {
                m: 32,
                k: 32,
                n: 32,
            },
            spmm_op(),
            TensorOp::SpmmNm {
                m: 32,
                k: 32,
                n: 32,
                n_of: 2,
                m_of: 4,
            },
            TensorOp::SddmmUnstructured {
                seq: 32,
                head_dim: 32,
                sparsity: 0.5,
            },
            TensorOp::SddmmWindow {
                seq: 32,
                window: 8,
                head_dim: 32,
            },
        ];
        for op in &ops {
            for b in &backends {
                assert!(b.supports(op), "{} should support {op:?}", b.name());
                let rec = b
                    .run(op, 9)
                    .unwrap_or_else(|e| panic!("{} on {op:?}: {e}", b.name()));
                assert!(rec.cycles > 0, "{} on {op:?}", b.name());
                assert!(rec.energy_pj > 0.0, "{} on {op:?}", b.name());
                assert!((0.0..=1.0).contains(&rec.utilization), "{}", b.name());
            }
        }
    }

    #[test]
    fn identical_seed_identical_record() {
        let canon = CanonBackend::default();
        let a = canon.run(&spmm_op(), 11).unwrap();
        let b = canon.run(&spmm_op(), 11).unwrap();
        assert_eq!(a, b);
        let c = canon.run(&spmm_op(), 12).unwrap();
        assert_ne!(a.cycles, c.cycles);
    }

    #[test]
    fn operands_shared_across_backends() {
        // The sparse operand a baseline sees (drawn without the dense B)
        // must equal Canon's from the full kernel_input stream.
        for op in [
            spmm_op(),
            TensorOp::SpmmNm {
                m: 32,
                k: 32,
                n: 32,
                n_of: 2,
                m_of: 4,
            },
        ] {
            let baseline_a = sparse_operand(&op, 3);
            match kernel_input(&op, 3) {
                KernelInput::Spmm { a, .. } | KernelInput::SpmmNm { a, .. } => {
                    assert_eq!(a, baseline_a, "{op:?}")
                }
                _ => panic!("wrong kernel input family"),
            }
        }
    }

    #[test]
    fn canon_mapping_violation_is_sim_error() {
        let canon = CanonBackend::default();
        // K = 20 is not a multiple of the 8-row fabric.
        let bad = TensorOp::Spmm {
            m: 8,
            k: 20,
            n: 8,
            sparsity: 0.5,
        };
        match canon.run(&bad, 1) {
            Err(BackendError::Sim(_)) => {}
            other => panic!("expected mapping error, got {other:?}"),
        }
    }
}
