//! The unified multi-backend execution trait.
//!
//! [`Backend`] is the single interface the sweep engine (and the harness
//! figures) dispatch through: `supports` answers capability questions from
//! the [`Workload`] alone, `run` executes it (materializing tensor operands
//! from a seed, or resolving a PolyBench loop nest through the mapping cost
//! models), returning uniform [`RunRecord`] metrics. Implementations cover
//! the Canon simulator ([`CanonBackend`]), the three tensor-only baselines
//! ([`BaselineBackend`]), and the CGRA ([`CgraBackend`], which additionally
//! runs arbitrary loop nests); [`all_backends`] yields them in the figures'
//! row order ([`Arch::all`]).
//!
//! Every backend is **geometry-parameterized**: [`backend_for`] provisions
//! baselines iso-MAC with the Canon fabric geometry of the cell
//! (`rows × cols × LANES` scalar MACs, the Table 1 parity requirement), so
//! a geometry sweep compares equal peak compute at every point.
//!
//! Operand materialization is centralized in [`kernel_input`], so every
//! backend of a cell sees *identical* inputs for a given seed — the parity
//! requirement behind the paper's normalized comparisons. The shared
//! [`OperandCache`] goes further: the engine and figure harness pass one
//! cache across a cell's backends, so those identical operands are
//! materialized **once** per `(op, seed)` instead of once per backend.

use canon_baselines::{Accelerator, Cgra, OpKind, SparseSystolic24, SystolicArray, ZedAccelerator};
use canon_core::kernels::{self, window::WindowAttention, KernelInput};
use canon_core::stats::{RunReport, StallBreakdown};
use canon_core::{CanonConfig, SimError, LANES};
use canon_energy::{baseline_energy, canon_energy, canon_loop_energy, Arch};
use canon_loopir::mapping::{map_canon, map_cgra};
use canon_sparse::{gen, Dense};
use canon_workloads::{LoopKernel, TensorOp, Workload};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Uniform metrics of one (backend, workload) execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunRecord {
    /// Total cycles.
    pub cycles: u64,
    /// Total energy in pJ under the backend's energy model.
    pub energy_pj: f64,
    /// Useful scalar MACs/ops of the workload (identical across backends).
    pub useful_macs: u64,
    /// Effective compute utilization in `[0, 1]`.
    pub utilization: f64,
    /// Per-cause stall attribution, when the backend's cycle model tracks
    /// it (the Canon fabric simulator); `None` for analytic baselines and
    /// loop-nest mappings.
    pub stalls: Option<StallBreakdown>,
}

/// Why a backend did not produce a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The architecture cannot execute this workload at all (the `X` cells
    /// of Figs 12/13).
    Unsupported,
    /// The simulator rejected the mapping or hit a protocol error.
    Sim(SimError),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Unsupported => write!(f, "workload unsupported"),
            BackendError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<SimError> for BackendError {
    fn from(e: SimError) -> Self {
        BackendError::Sim(e)
    }
}

/// A bounded, thread-safe cache of materialized tensor operands keyed by
/// `(op descriptor, seed)`.
///
/// The five backends of a sweep cell (and the same cell at every geometry
/// point) consume *identical* operand streams — without a cache each
/// backend re-runs the RNG and rebuilds the matrices. One shared
/// `OperandCache` per sweep/figure pass makes materialization happen once
/// per `(op, seed)`; the cached [`KernelInput`] is handed out behind an
/// [`Arc`], so hits are a clone of a pointer.
///
/// Caching only changes *when* operands are built, never their values
/// ([`kernel_input`] is deterministic in `(op, seed)`), so results — and
/// the byte-identical-store guarantee — are unaffected.
#[derive(Debug)]
pub struct OperandCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<(String, u64), Arc<KernelInput>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<(String, u64)>,
}

impl Default for OperandCache {
    fn default() -> Self {
        OperandCache::new()
    }
}

impl OperandCache {
    /// A cache with the default capacity (16 entries — comfortably above
    /// the grid expansion's reuse distance, which is the architecture axis).
    pub fn new() -> OperandCache {
        OperandCache::with_capacity(16)
    }

    /// A cache bounded to `capacity` materialized inputs.
    pub fn with_capacity(capacity: usize) -> OperandCache {
        OperandCache {
            inner: Mutex::new(CacheInner::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A zero-capacity cache: every probe materializes fresh operands (the
    /// behaviour of the plain [`Backend::run`] path).
    pub fn bypass() -> OperandCache {
        OperandCache::with_capacity(0)
    }

    /// The materialized input for `(op, seed)` — cached, or computed (and,
    /// capacity permitting, stored). Materialization happens outside the
    /// lock, so a slow build never blocks other workers' hits; concurrent
    /// misses of the same key may both materialize (identical values — the
    /// last insert wins).
    pub fn input(&self, op: &TensorOp, seed: u64) -> Arc<KernelInput> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Arc::new(kernel_input(op, seed));
        }
        // Poison recovery: a panicking cell (isolated by the sweep engine's
        // `catch_unwind`) may die between this cache's lock/unlock pairs.
        // The guarded state is only ever mutated through complete map/order
        // operations, so the cache stays coherent and healthy cells must not
        // cascade-fail on the poison flag.
        let key = (Workload::Tensor(*op).descriptor(), seed);
        if let Some(hit) = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .map
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let input = Arc::new(kernel_input(op, seed));
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !inner.map.contains_key(&key) {
            while inner.map.len() >= self.capacity {
                let oldest = inner.order.pop_front().expect("order tracks map");
                inner.map.remove(&oldest);
            }
            inner.order.push_back(key.clone());
            inner.map.insert(key, Arc::clone(&input));
        }
        input
    }

    /// Cache hits so far.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (materializations) so far.
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// The unified execution interface over Canon and the baseline simulators.
pub trait Backend: Sync {
    /// Display name used in tables and result records.
    fn name(&self) -> &'static str;

    /// The architecture this backend models.
    fn arch(&self) -> Arch;

    /// Peak scalar MACs per cycle this instance is provisioned with. Under
    /// iso-MAC construction ([`backend_for`]) every backend of a geometry
    /// `(r, c)` reports `r × c ×` [`LANES`].
    fn peak_macs_per_cycle(&self) -> u64;

    /// Whether the backend can execute the workload (from the descriptor
    /// alone; no operands are materialized).
    fn supports(&self, workload: &Workload) -> bool;

    /// Executes the workload, drawing tensor operands from `cache` (loop
    /// nests are deterministic and ignore the seed). The sweep engine and
    /// the figure harness share one cache across the backends of a cell.
    ///
    /// # Errors
    ///
    /// [`BackendError::Unsupported`] for workloads `supports` rejects,
    /// [`BackendError::Sim`] for mapping/protocol failures.
    fn run_cached(
        &self,
        workload: &Workload,
        seed: u64,
        cache: &OperandCache,
    ) -> Result<RunRecord, BackendError>;

    /// Executes the workload with fresh operands (no shared cache) — the
    /// convenience form for one-off runs.
    ///
    /// # Errors
    ///
    /// As [`Backend::run_cached`].
    fn run(&self, workload: &Workload, seed: u64) -> Result<RunRecord, BackendError> {
        self.run_cached(workload, seed, &OperandCache::bypass())
    }
}

/// The workload family of a [`TensorOp`], for [`Accelerator::supports`].
pub fn op_kind(op: &TensorOp) -> OpKind {
    match op {
        TensorOp::Gemm { .. } => OpKind::Gemm,
        TensorOp::Spmm { .. } => OpKind::Spmm,
        TensorOp::SpmmNm { .. } => OpKind::SpmmNm,
        TensorOp::SddmmUnstructured { .. } => OpKind::Sddmm,
        TensorOp::SddmmWindow { .. } => OpKind::WindowAttention,
    }
}

/// The capability family of any [`Workload`].
pub fn workload_kind(workload: &Workload) -> OpKind {
    match workload {
        Workload::Tensor(op) => op_kind(op),
        Workload::Loop(_) => OpKind::LoopNest,
    }
}

/// Resolves a loop descriptor or reports the unknown name as a mapping
/// error (rather than a panic: stores may carry descriptors from older
/// suites).
fn resolve_loop(lk: &LoopKernel) -> Result<canon_loopir::Kernel, BackendError> {
    lk.resolve().ok_or_else(|| {
        BackendError::Sim(SimError::Mapping {
            reason: format!("unknown PolyBench kernel {:?}", lk.name),
        })
    })
}

/// Materializes the operands of `op` from `seed`.
///
/// This is the single place operand streams are defined: sparse operands use
/// the evaluation's skewed generator (`skew = 1.5`, the load-imbalance
/// regime the paper's workloads exhibit), masks are i.i.d. at the band's
/// sparsity, and window operands are structural. Every backend pulls its
/// inputs out of the same [`KernelInput`], so a cell's operands are
/// identical across architectures.
pub fn kernel_input(op: &TensorOp, seed: u64) -> KernelInput {
    let mut rng = gen::seeded_rng(seed);
    match *op {
        TensorOp::Gemm { m, k, n } => KernelInput::Gemm {
            a: Dense::random(m, k, &mut rng),
            b: Dense::random(k, n, &mut rng),
        },
        TensorOp::Spmm { m, k, n, sparsity } => KernelInput::Spmm {
            a: gen::skewed_sparse(m, k, sparsity, 1.5, &mut rng),
            b: Dense::random(k, n, &mut rng),
            mapping: Default::default(),
        },
        TensorOp::SpmmNm {
            m,
            k,
            n,
            n_of,
            m_of,
        } => KernelInput::SpmmNm {
            a: gen::nm_sparse(m, k, n_of, m_of, &mut rng),
            b: Dense::random(k, n, &mut rng),
            n_of,
            m_of,
        },
        TensorOp::SddmmUnstructured {
            seq,
            head_dim,
            sparsity,
        } => {
            let q = Dense::random(seq, head_dim, &mut rng);
            let kv = Dense::random(seq, head_dim, &mut rng);
            KernelInput::Sddmm {
                mask: gen::random_mask(seq, seq, sparsity, &mut rng),
                q,
                kv,
                mapping: Default::default(),
            }
        }
        TensorOp::SddmmWindow {
            seq,
            window,
            head_dim,
        } => KernelInput::Window {
            wa: WindowAttention {
                seq,
                window,
                head_dim,
            },
            seed,
        },
    }
}

/// Runs one tensor op on a baseline accelerator model — the shared tensor
/// path of [`BaselineBackend`] and [`CgraBackend`].
fn run_tensor_on<A: Accelerator>(
    acc: &A,
    arch: Arch,
    op: &TensorOp,
    seed: u64,
    cache: &OperandCache,
) -> Result<RunRecord, BackendError> {
    if !acc.supports(op_kind(op)) {
        return Err(BackendError::Unsupported);
    }
    // Shape-only families never touch the operand cache; the data-dependent
    // families pull the shared [`KernelInput`] (the sparse operand / mask a
    // baseline consumes is the exact stream Canon sees).
    let run = match *op {
        TensorOp::Gemm { m, k, n } => acc.gemm(m, k, n),
        TensorOp::SddmmWindow {
            seq,
            window,
            head_dim,
        } => acc.window_attention(seq, window, head_dim),
        TensorOp::Spmm { n, .. } => match &*cache.input(op, seed) {
            KernelInput::Spmm { a, .. } => acc.spmm(a, n),
            _ => unreachable!("kernel_input variant mismatch"),
        },
        TensorOp::SpmmNm { n, n_of, m_of, .. } => match &*cache.input(op, seed) {
            KernelInput::SpmmNm { a, .. } => acc.spmm_nm(a, n, n_of, m_of),
            _ => unreachable!("kernel_input variant mismatch"),
        },
        TensorOp::SddmmUnstructured { head_dim, .. } => match &*cache.input(op, seed) {
            KernelInput::Sddmm { mask, .. } => acc.sddmm(mask, head_dim),
            _ => unreachable!("kernel_input variant mismatch"),
        },
    }
    .ok_or(BackendError::Unsupported)?;
    Ok(RunRecord {
        cycles: run.cycles,
        energy_pj: baseline_energy(arch, &run).total_pj(),
        useful_macs: op.useful_macs(),
        utilization: run.utilization(),
        stalls: None,
    })
}

/// The Canon simulator as a [`Backend`].
#[derive(Debug, Clone, Default)]
pub struct CanonBackend {
    /// Fabric configuration (geometry, scratchpad depth, …).
    pub cfg: CanonConfig,
}

impl CanonBackend {
    /// Runs a tensor workload and returns the full cycle report — for
    /// consumers that need per-component activity (e.g. the Fig 11 power
    /// breakdown) rather than the summarized [`RunRecord`].
    ///
    /// # Errors
    ///
    /// Propagates mapping/protocol failures as [`BackendError::Sim`].
    pub fn run_report(&self, op: &TensorOp, seed: u64) -> Result<RunReport, BackendError> {
        let input = kernel_input(op, seed);
        Ok(kernels::run_kernel(&self.cfg, &input)?.report)
    }
}

impl Backend for CanonBackend {
    fn name(&self) -> &'static str {
        Arch::Canon.label()
    }

    fn arch(&self) -> Arch {
        Arch::Canon
    }

    fn peak_macs_per_cycle(&self) -> u64 {
        self.cfg.mac_units() as u64
    }

    fn supports(&self, _workload: &Workload) -> bool {
        // Canon executes every tensor family and arbitrary affine loop
        // nests; shape constraints (e.g. K divisible by the row count)
        // surface as Sim errors.
        true
    }

    fn run_cached(
        &self,
        workload: &Workload,
        seed: u64,
        cache: &OperandCache,
    ) -> Result<RunRecord, BackendError> {
        match workload {
            Workload::Tensor(op) => {
                let input = cache.input(op, seed);
                let report = kernels::run_kernel(&self.cfg, &input)?.report;
                Ok(RunRecord {
                    cycles: report.cycles,
                    energy_pj: canon_energy(&report).total_pj(),
                    useful_macs: op.useful_macs(),
                    utilization: report.compute_utilization(),
                    stalls: Some(report.stats.stall_breakdown),
                })
            }
            Workload::Loop(lk) => {
                let kernel = resolve_loop(lk)?;
                let run = map_canon(&kernel, self.cfg.rows, self.cfg.cols, LANES);
                Ok(RunRecord {
                    cycles: run.cycles,
                    energy_pj: canon_loop_energy(run.cycles, run.lane_instrs, run.useful_ops)
                        .total_pj(),
                    useful_macs: run.useful_ops,
                    utilization: run.utilization,
                    stalls: None,
                })
            }
        }
    }
}

/// A tensor-only baseline cycle model as a [`Backend`]. Loop-nest workloads
/// are always [`BackendError::Unsupported`] here; the CGRA — the one
/// baseline that runs them — has its own [`CgraBackend`].
#[derive(Debug, Clone)]
pub struct BaselineBackend<A: Accelerator> {
    arch: Arch,
    acc: A,
}

impl<A: Accelerator> BaselineBackend<A> {
    /// Wraps an accelerator model under its figure label.
    pub fn new(arch: Arch, acc: A) -> BaselineBackend<A> {
        BaselineBackend { arch, acc }
    }
}

impl<A: Accelerator> Backend for BaselineBackend<A> {
    fn name(&self) -> &'static str {
        self.arch.label()
    }

    fn arch(&self) -> Arch {
        self.arch
    }

    fn peak_macs_per_cycle(&self) -> u64 {
        self.acc.peak_macs_per_cycle()
    }

    fn supports(&self, workload: &Workload) -> bool {
        self.acc.supports(workload_kind(workload))
    }

    fn run_cached(
        &self,
        workload: &Workload,
        seed: u64,
        cache: &OperandCache,
    ) -> Result<RunRecord, BackendError> {
        match workload {
            Workload::Tensor(op) => run_tensor_on(&self.acc, self.arch, op, seed, cache),
            Workload::Loop(_) => Err(BackendError::Unsupported),
        }
    }
}

/// The CGRA as a [`Backend`]: tensor kernels via systolic emulation
/// (the shared baseline path) plus arbitrary loop nests via the modulo
/// scheduler of `canon-loopir` — the figures' only baseline without `X`
/// in the PolyBench columns.
#[derive(Debug, Clone, Default)]
pub struct CgraBackend {
    acc: Cgra,
}

impl CgraBackend {
    /// Wraps a CGRA model instance.
    pub fn new(acc: Cgra) -> CgraBackend {
        CgraBackend { acc }
    }
}

impl Backend for CgraBackend {
    fn name(&self) -> &'static str {
        Arch::Cgra.label()
    }

    fn arch(&self) -> Arch {
        Arch::Cgra
    }

    fn peak_macs_per_cycle(&self) -> u64 {
        self.acc.peak_macs_per_cycle()
    }

    fn supports(&self, workload: &Workload) -> bool {
        self.acc.supports(workload_kind(workload))
    }

    fn run_cached(
        &self,
        workload: &Workload,
        seed: u64,
        cache: &OperandCache,
    ) -> Result<RunRecord, BackendError> {
        match workload {
            Workload::Tensor(op) => run_tensor_on(&self.acc, Arch::Cgra, op, seed, cache),
            Workload::Loop(lk) => {
                let kernel = resolve_loop(lk)?;
                let run = map_cgra(&kernel, &self.acc);
                Ok(RunRecord {
                    cycles: run.cycles,
                    energy_pj: baseline_energy(Arch::Cgra, &run).total_pj(),
                    useful_macs: run.useful_macs,
                    utilization: run.utilization(),
                    stalls: None,
                })
            }
        }
    }
}

/// All five backends in the figures' row order ([`Arch::all`]): systolic,
/// 2:4 systolic, ZeD, CGRA, Canon — every one provisioned iso-MAC at
/// `cfg`'s fabric geometry.
pub fn all_backends(cfg: &CanonConfig) -> Vec<Box<dyn Backend + Send>> {
    Arch::all()
        .iter()
        .map(|&arch| backend_for(arch, cfg.geometry(), cfg))
        .collect()
}

/// The backend modelling `arch` at the given Canon fabric geometry, with
/// baselines provisioned iso-MAC (`rows × cols ×` [`LANES`] scalar MACs).
pub fn backend_for(
    arch: Arch,
    geometry: (usize, usize),
    base_cfg: &CanonConfig,
) -> Box<dyn Backend + Send> {
    let (rows, cols) = geometry;
    match arch {
        Arch::Systolic => Box::new(BaselineBackend::new(
            Arch::Systolic,
            SystolicArray::iso_mac(rows, cols),
        )),
        Arch::Systolic24 => Box::new(BaselineBackend::new(
            Arch::Systolic24,
            SparseSystolic24::iso_mac(rows, cols),
        )),
        Arch::Zed => Box::new(BaselineBackend::new(
            Arch::Zed,
            ZedAccelerator::iso_mac(rows, cols),
        )),
        Arch::Cgra => Box::new(CgraBackend::new(Cgra::iso_mac(rows, cols))),
        Arch::Canon => Box::new(CanonBackend {
            cfg: base_cfg.with_geometry(rows, cols),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spmm_op() -> Workload {
        Workload::Tensor(TensorOp::Spmm {
            m: 32,
            k: 32,
            n: 32,
            sparsity: 0.6,
        })
    }

    fn loop_workload() -> Workload {
        Workload::Loop(LoopKernel { name: "gemm", n: 8 })
    }

    #[test]
    fn all_backends_in_figure_order() {
        let backends = all_backends(&CanonConfig::default());
        let archs: Vec<Arch> = backends.iter().map(|b| b.arch()).collect();
        assert_eq!(archs, Arch::all().to_vec());
    }

    #[test]
    fn every_backend_runs_the_standard_families() {
        let backends = all_backends(&CanonConfig::default());
        let ops = [
            Workload::Tensor(TensorOp::Gemm {
                m: 32,
                k: 32,
                n: 32,
            }),
            spmm_op(),
            Workload::Tensor(TensorOp::SpmmNm {
                m: 32,
                k: 32,
                n: 32,
                n_of: 2,
                m_of: 4,
            }),
            Workload::Tensor(TensorOp::SddmmUnstructured {
                seq: 32,
                head_dim: 32,
                sparsity: 0.5,
            }),
            Workload::Tensor(TensorOp::SddmmWindow {
                seq: 32,
                window: 8,
                head_dim: 32,
            }),
        ];
        for op in &ops {
            for b in &backends {
                assert!(b.supports(op), "{} should support {op:?}", b.name());
                let rec = b
                    .run(op, 9)
                    .unwrap_or_else(|e| panic!("{} on {op:?}: {e}", b.name()));
                assert!(rec.cycles > 0, "{} on {op:?}", b.name());
                assert!(rec.energy_pj > 0.0, "{} on {op:?}", b.name());
                assert!((0.0..=1.0).contains(&rec.utilization), "{}", b.name());
            }
        }
    }

    #[test]
    fn loop_workloads_run_on_canon_and_cgra_only() {
        let backends = all_backends(&CanonConfig::default());
        let w = loop_workload();
        for b in &backends {
            let reconfigurable = matches!(b.arch(), Arch::Canon | Arch::Cgra);
            assert_eq!(b.supports(&w), reconfigurable, "{}", b.name());
            match b.run(&w, 1) {
                Ok(rec) => {
                    assert!(reconfigurable, "{} must not run loops", b.name());
                    assert!(rec.cycles > 0 && rec.energy_pj > 0.0, "{}", b.name());
                }
                Err(BackendError::Unsupported) => {
                    assert!(!reconfigurable, "{} must run loops", b.name())
                }
                Err(e) => panic!("{}: {e}", b.name()),
            }
        }
    }

    #[test]
    fn unknown_loop_kernel_is_mapping_error_not_panic() {
        let w = Workload::Loop(LoopKernel {
            name: "cholesky",
            n: 8,
        });
        let canon = CanonBackend::default();
        assert!(matches!(canon.run(&w, 1), Err(BackendError::Sim(_))));
    }

    #[test]
    fn identical_seed_identical_record() {
        let canon = CanonBackend::default();
        let a = canon.run(&spmm_op(), 11).unwrap();
        let b = canon.run(&spmm_op(), 11).unwrap();
        assert_eq!(a, b);
        let c = canon.run(&spmm_op(), 12).unwrap();
        assert_ne!(a.cycles, c.cycles);
    }

    #[test]
    fn operands_shared_across_backends_via_cache() {
        // A cached input must be the same allocation across the backends of
        // a cell, and identical to a fresh materialization.
        let cache = OperandCache::new();
        let op = TensorOp::Spmm {
            m: 32,
            k: 32,
            n: 32,
            sparsity: 0.6,
        };
        let first = cache.input(&op, 3);
        let second = cache.input(&op, 3);
        assert!(Arc::ptr_eq(&first, &second), "hit must share the Arc");
        assert_eq!(cache.hit_count(), 1);
        assert_eq!(cache.miss_count(), 1);
        match (&*first, kernel_input(&op, 3)) {
            (KernelInput::Spmm { a: cached, .. }, KernelInput::Spmm { a: fresh, .. }) => {
                assert_eq!(*cached, fresh)
            }
            _ => panic!("wrong kernel input family"),
        }
        // A different seed is a distinct entry.
        let other = cache.input(&op, 4);
        assert!(!Arc::ptr_eq(&first, &other));
    }

    #[test]
    fn cached_and_uncached_runs_agree() {
        let cache = OperandCache::new();
        let w = spmm_op();
        for b in all_backends(&CanonConfig::default()) {
            let plain = b.run(&w, 11).unwrap();
            let cached = b.run_cached(&w, 11, &cache).unwrap();
            let cached_again = b.run_cached(&w, 11, &cache).unwrap();
            assert_eq!(plain, cached, "{}", b.name());
            assert_eq!(plain, cached_again, "{}", b.name());
        }
        // 10 cached probes (5 backends × 2 runs), 1 materialization.
        assert_eq!(cache.miss_count(), 1);
        assert_eq!(cache.hit_count(), 9);
    }

    #[test]
    fn cache_eviction_is_bounded() {
        let cache = OperandCache::with_capacity(2);
        let mk = |m| TensorOp::Gemm { m, k: 32, n: 32 };
        let a0 = cache.input(&mk(32), 1);
        let _ = cache.input(&mk(64), 1);
        let _ = cache.input(&mk(96), 1); // evicts mk(32)
        let a0_again = cache.input(&mk(32), 1);
        assert!(!Arc::ptr_eq(&a0, &a0_again), "evicted entry rebuilt");
        assert_eq!(cache.miss_count(), 4);
    }

    #[test]
    fn canon_mapping_violation_is_sim_error() {
        let canon = CanonBackend::default();
        // K = 20 is not a multiple of the 8-row fabric.
        let bad = Workload::Tensor(TensorOp::Spmm {
            m: 8,
            k: 20,
            n: 8,
            sparsity: 0.5,
        });
        match canon.run(&bad, 1) {
            Err(BackendError::Sim(_)) => {}
            other => panic!("expected mapping error, got {other:?}"),
        }
    }

    #[test]
    fn backends_are_iso_mac_at_every_geometry() {
        let cfg = CanonConfig::default();
        for geometry in [(4, 4), (8, 8), (16, 16), (8, 16)] {
            let want = (geometry.0 * geometry.1 * LANES) as u64;
            for arch in Arch::all() {
                let b = backend_for(arch, geometry, &cfg);
                assert_eq!(
                    b.peak_macs_per_cycle(),
                    want,
                    "{} at {geometry:?}",
                    b.name()
                );
            }
        }
    }

    #[test]
    fn loop_runs_scale_with_geometry() {
        // A bigger fabric (and its iso-MAC CGRA) should not be slower on a
        // parallel kernel.
        let w = Workload::Loop(LoopKernel {
            name: "gemm",
            n: 64,
        });
        let cfg = CanonConfig::default();
        for arch in [Arch::Canon, Arch::Cgra] {
            let small = backend_for(arch, (8, 8), &cfg).run(&w, 1).unwrap();
            let large = backend_for(arch, (16, 16), &cfg).run(&w, 1).unwrap();
            assert!(
                large.cycles <= small.cycles,
                "{arch:?}: {} vs {}",
                large.cycles,
                small.cycles
            );
        }
    }
}
