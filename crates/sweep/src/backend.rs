//! The unified multi-backend execution trait.
//!
//! [`Backend`] is the single interface the sweep engine (and the harness
//! figures) dispatch through: `supports` answers capability questions from
//! the [`Workload`] alone, `run` executes it (materializing tensor operands
//! from a seed, or resolving a PolyBench loop nest through the mapping cost
//! models), returning uniform [`RunRecord`] metrics. Implementations cover
//! the Canon simulator ([`CanonBackend`]), the three tensor-only baselines
//! ([`BaselineBackend`]), and the CGRA ([`CgraBackend`], which additionally
//! runs arbitrary loop nests); [`all_backends`] yields them in the figures'
//! row order ([`Arch::all`]).
//!
//! Every backend is **geometry-parameterized**: [`backend_for`] provisions
//! baselines iso-MAC with the Canon fabric geometry of the cell
//! (`rows × cols × LANES` scalar MACs, the Table 1 parity requirement), so
//! a geometry sweep compares equal peak compute at every point.
//!
//! Operand materialization is centralized in [`kernel_input`], so every
//! backend of a cell sees *identical* inputs for a given seed — the parity
//! requirement behind the paper's normalized comparisons.

use canon_baselines::{Accelerator, Cgra, OpKind, SparseSystolic24, SystolicArray, ZedAccelerator};
use canon_core::kernels::{self, window::WindowAttention, KernelInput};
use canon_core::stats::RunReport;
use canon_core::{CanonConfig, SimError, LANES};
use canon_energy::{baseline_energy, canon_energy, canon_loop_energy, Arch};
use canon_loopir::mapping::{map_canon, map_cgra};
use canon_sparse::{gen, CsrMatrix, Dense};
use canon_workloads::{LoopKernel, TensorOp, Workload};

/// Uniform metrics of one (backend, workload) execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunRecord {
    /// Total cycles.
    pub cycles: u64,
    /// Total energy in pJ under the backend's energy model.
    pub energy_pj: f64,
    /// Useful scalar MACs/ops of the workload (identical across backends).
    pub useful_macs: u64,
    /// Effective compute utilization in `[0, 1]`.
    pub utilization: f64,
}

/// Why a backend did not produce a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The architecture cannot execute this workload at all (the `X` cells
    /// of Figs 12/13).
    Unsupported,
    /// The simulator rejected the mapping or hit a protocol error.
    Sim(SimError),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Unsupported => write!(f, "workload unsupported"),
            BackendError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<SimError> for BackendError {
    fn from(e: SimError) -> Self {
        BackendError::Sim(e)
    }
}

/// The unified execution interface over Canon and the baseline simulators.
pub trait Backend: Sync {
    /// Display name used in tables and result records.
    fn name(&self) -> &'static str;

    /// The architecture this backend models.
    fn arch(&self) -> Arch;

    /// Peak scalar MACs per cycle this instance is provisioned with. Under
    /// iso-MAC construction ([`backend_for`]) every backend of a geometry
    /// `(r, c)` reports `r × c ×` [`LANES`].
    fn peak_macs_per_cycle(&self) -> u64;

    /// Whether the backend can execute the workload (from the descriptor
    /// alone; no operands are materialized).
    fn supports(&self, workload: &Workload) -> bool;

    /// Executes the workload (materializing tensor operands from `seed`;
    /// loop nests are deterministic and ignore it).
    ///
    /// # Errors
    ///
    /// [`BackendError::Unsupported`] for workloads `supports` rejects,
    /// [`BackendError::Sim`] for mapping/protocol failures.
    fn run(&self, workload: &Workload, seed: u64) -> Result<RunRecord, BackendError>;
}

/// The workload family of a [`TensorOp`], for [`Accelerator::supports`].
pub fn op_kind(op: &TensorOp) -> OpKind {
    match op {
        TensorOp::Gemm { .. } => OpKind::Gemm,
        TensorOp::Spmm { .. } => OpKind::Spmm,
        TensorOp::SpmmNm { .. } => OpKind::SpmmNm,
        TensorOp::SddmmUnstructured { .. } => OpKind::Sddmm,
        TensorOp::SddmmWindow { .. } => OpKind::WindowAttention,
    }
}

/// The capability family of any [`Workload`].
pub fn workload_kind(workload: &Workload) -> OpKind {
    match workload {
        Workload::Tensor(op) => op_kind(op),
        Workload::Loop(_) => OpKind::LoopNest,
    }
}

/// Resolves a loop descriptor or reports the unknown name as a mapping
/// error (rather than a panic: stores may carry descriptors from older
/// suites).
fn resolve_loop(lk: &LoopKernel) -> Result<canon_loopir::Kernel, BackendError> {
    lk.resolve().ok_or_else(|| {
        BackendError::Sim(SimError::Mapping {
            reason: format!("unknown PolyBench kernel {:?}", lk.name),
        })
    })
}

/// Materializes the operands of `op` from `seed`.
///
/// This is the single place operand streams are defined: sparse operands use
/// the evaluation's skewed generator (`skew = 1.5`, the load-imbalance
/// regime the paper's workloads exhibit), masks are i.i.d. at the band's
/// sparsity, and window operands are structural. Every backend pulls its
/// inputs out of the same [`KernelInput`], so a cell's operands are
/// identical across architectures.
pub fn kernel_input(op: &TensorOp, seed: u64) -> KernelInput {
    let mut rng = gen::seeded_rng(seed);
    match *op {
        TensorOp::Gemm { m, k, n } => KernelInput::Gemm {
            a: Dense::random(m, k, &mut rng),
            b: Dense::random(k, n, &mut rng),
        },
        TensorOp::Spmm { m, k, n, sparsity } => KernelInput::Spmm {
            a: gen::skewed_sparse(m, k, sparsity, 1.5, &mut rng),
            b: Dense::random(k, n, &mut rng),
            mapping: Default::default(),
        },
        TensorOp::SpmmNm {
            m,
            k,
            n,
            n_of,
            m_of,
        } => KernelInput::SpmmNm {
            a: gen::nm_sparse(m, k, n_of, m_of, &mut rng),
            b: Dense::random(k, n, &mut rng),
            n_of,
            m_of,
        },
        TensorOp::SddmmUnstructured {
            seq,
            head_dim,
            sparsity,
        } => {
            let q = Dense::random(seq, head_dim, &mut rng);
            let kv = Dense::random(seq, head_dim, &mut rng);
            KernelInput::Sddmm {
                mask: gen::random_mask(seq, seq, sparsity, &mut rng),
                q,
                kv,
                mapping: Default::default(),
            }
        }
        TensorOp::SddmmWindow {
            seq,
            window,
            head_dim,
        } => KernelInput::Window {
            wa: WindowAttention {
                seq,
                window,
                head_dim,
            },
            seed,
        },
    }
}

/// The sparse operand of an SpMM-family op, drawn from the same stream
/// prefix as [`kernel_input`] (A precedes B there), so the matrix is
/// byte-identical to Canon's without paying for the unused dense operand.
///
/// # Panics
///
/// Panics on non-SpMM ops.
fn sparse_operand(op: &TensorOp, seed: u64) -> CsrMatrix {
    let mut rng = gen::seeded_rng(seed);
    match *op {
        TensorOp::Spmm { m, k, sparsity, .. } => gen::skewed_sparse(m, k, sparsity, 1.5, &mut rng),
        TensorOp::SpmmNm {
            m, k, n_of, m_of, ..
        } => gen::nm_sparse(m, k, n_of, m_of, &mut rng),
        _ => unreachable!("sparse_operand is only defined for SpMM families"),
    }
}

/// Runs one tensor op on a baseline accelerator model — the shared tensor
/// path of [`BaselineBackend`] and [`CgraBackend`].
fn run_tensor_on<A: Accelerator>(
    acc: &A,
    arch: Arch,
    op: &TensorOp,
    seed: u64,
) -> Result<RunRecord, BackendError> {
    if !acc.supports(op_kind(op)) {
        return Err(BackendError::Unsupported);
    }
    // Shape-only families skip materialization entirely; SpMM families
    // draw just the sparse operand (the same stream prefix Canon sees —
    // baselines never read the dense B); SDDMM needs the full stream,
    // since the mask is drawn after Q/KV.
    let run = match *op {
        TensorOp::Gemm { m, k, n } => acc.gemm(m, k, n),
        TensorOp::SddmmWindow {
            seq,
            window,
            head_dim,
        } => acc.window_attention(seq, window, head_dim),
        TensorOp::Spmm { n, .. } => acc.spmm(&sparse_operand(op, seed), n),
        TensorOp::SpmmNm { n, n_of, m_of, .. } => {
            acc.spmm_nm(&sparse_operand(op, seed), n, n_of, m_of)
        }
        TensorOp::SddmmUnstructured { head_dim, .. } => match kernel_input(op, seed) {
            KernelInput::Sddmm { mask, .. } => acc.sddmm(&mask, head_dim),
            _ => unreachable!("kernel_input variant mismatch"),
        },
    }
    .ok_or(BackendError::Unsupported)?;
    Ok(RunRecord {
        cycles: run.cycles,
        energy_pj: baseline_energy(arch, &run).total_pj(),
        useful_macs: op.useful_macs(),
        utilization: run.utilization(),
    })
}

/// The Canon simulator as a [`Backend`].
#[derive(Debug, Clone, Default)]
pub struct CanonBackend {
    /// Fabric configuration (geometry, scratchpad depth, …).
    pub cfg: CanonConfig,
}

impl CanonBackend {
    /// Runs a tensor workload and returns the full cycle report — for
    /// consumers that need per-component activity (e.g. the Fig 11 power
    /// breakdown) rather than the summarized [`RunRecord`].
    ///
    /// # Errors
    ///
    /// Propagates mapping/protocol failures as [`BackendError::Sim`].
    pub fn run_report(&self, op: &TensorOp, seed: u64) -> Result<RunReport, BackendError> {
        let input = kernel_input(op, seed);
        Ok(kernels::run_kernel(&self.cfg, &input)?.report)
    }
}

impl Backend for CanonBackend {
    fn name(&self) -> &'static str {
        Arch::Canon.label()
    }

    fn arch(&self) -> Arch {
        Arch::Canon
    }

    fn peak_macs_per_cycle(&self) -> u64 {
        self.cfg.mac_units() as u64
    }

    fn supports(&self, _workload: &Workload) -> bool {
        // Canon executes every tensor family and arbitrary affine loop
        // nests; shape constraints (e.g. K divisible by the row count)
        // surface as Sim errors.
        true
    }

    fn run(&self, workload: &Workload, seed: u64) -> Result<RunRecord, BackendError> {
        match workload {
            Workload::Tensor(op) => {
                let report = self.run_report(op, seed)?;
                Ok(RunRecord {
                    cycles: report.cycles,
                    energy_pj: canon_energy(&report).total_pj(),
                    useful_macs: op.useful_macs(),
                    utilization: report.compute_utilization(),
                })
            }
            Workload::Loop(lk) => {
                let kernel = resolve_loop(lk)?;
                let run = map_canon(&kernel, self.cfg.rows, self.cfg.cols, LANES);
                Ok(RunRecord {
                    cycles: run.cycles,
                    energy_pj: canon_loop_energy(run.cycles, run.lane_instrs, run.useful_ops)
                        .total_pj(),
                    useful_macs: run.useful_ops,
                    utilization: run.utilization,
                })
            }
        }
    }
}

/// A tensor-only baseline cycle model as a [`Backend`]. Loop-nest workloads
/// are always [`BackendError::Unsupported`] here; the CGRA — the one
/// baseline that runs them — has its own [`CgraBackend`].
#[derive(Debug, Clone)]
pub struct BaselineBackend<A: Accelerator> {
    arch: Arch,
    acc: A,
}

impl<A: Accelerator> BaselineBackend<A> {
    /// Wraps an accelerator model under its figure label.
    pub fn new(arch: Arch, acc: A) -> BaselineBackend<A> {
        BaselineBackend { arch, acc }
    }
}

impl<A: Accelerator> Backend for BaselineBackend<A> {
    fn name(&self) -> &'static str {
        self.arch.label()
    }

    fn arch(&self) -> Arch {
        self.arch
    }

    fn peak_macs_per_cycle(&self) -> u64 {
        self.acc.peak_macs_per_cycle()
    }

    fn supports(&self, workload: &Workload) -> bool {
        self.acc.supports(workload_kind(workload))
    }

    fn run(&self, workload: &Workload, seed: u64) -> Result<RunRecord, BackendError> {
        match workload {
            Workload::Tensor(op) => run_tensor_on(&self.acc, self.arch, op, seed),
            Workload::Loop(_) => Err(BackendError::Unsupported),
        }
    }
}

/// The CGRA as a [`Backend`]: tensor kernels via systolic emulation
/// (the shared baseline path) plus arbitrary loop nests via the modulo
/// scheduler of `canon-loopir` — the figures' only baseline without `X`
/// in the PolyBench columns.
#[derive(Debug, Clone, Default)]
pub struct CgraBackend {
    acc: Cgra,
}

impl CgraBackend {
    /// Wraps a CGRA model instance.
    pub fn new(acc: Cgra) -> CgraBackend {
        CgraBackend { acc }
    }
}

impl Backend for CgraBackend {
    fn name(&self) -> &'static str {
        Arch::Cgra.label()
    }

    fn arch(&self) -> Arch {
        Arch::Cgra
    }

    fn peak_macs_per_cycle(&self) -> u64 {
        self.acc.peak_macs_per_cycle()
    }

    fn supports(&self, workload: &Workload) -> bool {
        self.acc.supports(workload_kind(workload))
    }

    fn run(&self, workload: &Workload, seed: u64) -> Result<RunRecord, BackendError> {
        match workload {
            Workload::Tensor(op) => run_tensor_on(&self.acc, Arch::Cgra, op, seed),
            Workload::Loop(lk) => {
                let kernel = resolve_loop(lk)?;
                let run = map_cgra(&kernel, &self.acc);
                Ok(RunRecord {
                    cycles: run.cycles,
                    energy_pj: baseline_energy(Arch::Cgra, &run).total_pj(),
                    useful_macs: run.useful_macs,
                    utilization: run.utilization(),
                })
            }
        }
    }
}

/// All five backends in the figures' row order ([`Arch::all`]): systolic,
/// 2:4 systolic, ZeD, CGRA, Canon — every one provisioned iso-MAC at
/// `cfg`'s fabric geometry.
pub fn all_backends(cfg: &CanonConfig) -> Vec<Box<dyn Backend + Send>> {
    Arch::all()
        .iter()
        .map(|&arch| backend_for(arch, cfg.geometry(), cfg))
        .collect()
}

/// The backend modelling `arch` at the given Canon fabric geometry, with
/// baselines provisioned iso-MAC (`rows × cols ×` [`LANES`] scalar MACs).
pub fn backend_for(
    arch: Arch,
    geometry: (usize, usize),
    base_cfg: &CanonConfig,
) -> Box<dyn Backend + Send> {
    let (rows, cols) = geometry;
    match arch {
        Arch::Systolic => Box::new(BaselineBackend::new(
            Arch::Systolic,
            SystolicArray::iso_mac(rows, cols),
        )),
        Arch::Systolic24 => Box::new(BaselineBackend::new(
            Arch::Systolic24,
            SparseSystolic24::iso_mac(rows, cols),
        )),
        Arch::Zed => Box::new(BaselineBackend::new(
            Arch::Zed,
            ZedAccelerator::iso_mac(rows, cols),
        )),
        Arch::Cgra => Box::new(CgraBackend::new(Cgra::iso_mac(rows, cols))),
        Arch::Canon => Box::new(CanonBackend {
            cfg: base_cfg.with_geometry(rows, cols),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spmm_op() -> Workload {
        Workload::Tensor(TensorOp::Spmm {
            m: 32,
            k: 32,
            n: 32,
            sparsity: 0.6,
        })
    }

    fn loop_workload() -> Workload {
        Workload::Loop(LoopKernel { name: "gemm", n: 8 })
    }

    #[test]
    fn all_backends_in_figure_order() {
        let backends = all_backends(&CanonConfig::default());
        let archs: Vec<Arch> = backends.iter().map(|b| b.arch()).collect();
        assert_eq!(archs, Arch::all().to_vec());
    }

    #[test]
    fn every_backend_runs_the_standard_families() {
        let backends = all_backends(&CanonConfig::default());
        let ops = [
            Workload::Tensor(TensorOp::Gemm {
                m: 32,
                k: 32,
                n: 32,
            }),
            spmm_op(),
            Workload::Tensor(TensorOp::SpmmNm {
                m: 32,
                k: 32,
                n: 32,
                n_of: 2,
                m_of: 4,
            }),
            Workload::Tensor(TensorOp::SddmmUnstructured {
                seq: 32,
                head_dim: 32,
                sparsity: 0.5,
            }),
            Workload::Tensor(TensorOp::SddmmWindow {
                seq: 32,
                window: 8,
                head_dim: 32,
            }),
        ];
        for op in &ops {
            for b in &backends {
                assert!(b.supports(op), "{} should support {op:?}", b.name());
                let rec = b
                    .run(op, 9)
                    .unwrap_or_else(|e| panic!("{} on {op:?}: {e}", b.name()));
                assert!(rec.cycles > 0, "{} on {op:?}", b.name());
                assert!(rec.energy_pj > 0.0, "{} on {op:?}", b.name());
                assert!((0.0..=1.0).contains(&rec.utilization), "{}", b.name());
            }
        }
    }

    #[test]
    fn loop_workloads_run_on_canon_and_cgra_only() {
        let backends = all_backends(&CanonConfig::default());
        let w = loop_workload();
        for b in &backends {
            let reconfigurable = matches!(b.arch(), Arch::Canon | Arch::Cgra);
            assert_eq!(b.supports(&w), reconfigurable, "{}", b.name());
            match b.run(&w, 1) {
                Ok(rec) => {
                    assert!(reconfigurable, "{} must not run loops", b.name());
                    assert!(rec.cycles > 0 && rec.energy_pj > 0.0, "{}", b.name());
                }
                Err(BackendError::Unsupported) => {
                    assert!(!reconfigurable, "{} must run loops", b.name())
                }
                Err(e) => panic!("{}: {e}", b.name()),
            }
        }
    }

    #[test]
    fn unknown_loop_kernel_is_mapping_error_not_panic() {
        let w = Workload::Loop(LoopKernel {
            name: "cholesky",
            n: 8,
        });
        let canon = CanonBackend::default();
        assert!(matches!(canon.run(&w, 1), Err(BackendError::Sim(_))));
    }

    #[test]
    fn identical_seed_identical_record() {
        let canon = CanonBackend::default();
        let a = canon.run(&spmm_op(), 11).unwrap();
        let b = canon.run(&spmm_op(), 11).unwrap();
        assert_eq!(a, b);
        let c = canon.run(&spmm_op(), 12).unwrap();
        assert_ne!(a.cycles, c.cycles);
    }

    #[test]
    fn operands_shared_across_backends() {
        // The sparse operand a baseline sees (drawn without the dense B)
        // must equal Canon's from the full kernel_input stream.
        for op in [
            TensorOp::Spmm {
                m: 32,
                k: 32,
                n: 32,
                sparsity: 0.6,
            },
            TensorOp::SpmmNm {
                m: 32,
                k: 32,
                n: 32,
                n_of: 2,
                m_of: 4,
            },
        ] {
            let baseline_a = sparse_operand(&op, 3);
            match kernel_input(&op, 3) {
                KernelInput::Spmm { a, .. } | KernelInput::SpmmNm { a, .. } => {
                    assert_eq!(a, baseline_a, "{op:?}")
                }
                _ => panic!("wrong kernel input family"),
            }
        }
    }

    #[test]
    fn canon_mapping_violation_is_sim_error() {
        let canon = CanonBackend::default();
        // K = 20 is not a multiple of the 8-row fabric.
        let bad = Workload::Tensor(TensorOp::Spmm {
            m: 8,
            k: 20,
            n: 8,
            sparsity: 0.5,
        });
        match canon.run(&bad, 1) {
            Err(BackendError::Sim(_)) => {}
            other => panic!("expected mapping error, got {other:?}"),
        }
    }

    #[test]
    fn backends_are_iso_mac_at_every_geometry() {
        let cfg = CanonConfig::default();
        for geometry in [(4, 4), (8, 8), (16, 16), (8, 16)] {
            let want = (geometry.0 * geometry.1 * LANES) as u64;
            for arch in Arch::all() {
                let b = backend_for(arch, geometry, &cfg);
                assert_eq!(
                    b.peak_macs_per_cycle(),
                    want,
                    "{} at {geometry:?}",
                    b.name()
                );
            }
        }
    }

    #[test]
    fn loop_runs_scale_with_geometry() {
        // A bigger fabric (and its iso-MAC CGRA) should not be slower on a
        // parallel kernel.
        let w = Workload::Loop(LoopKernel {
            name: "gemm",
            n: 64,
        });
        let cfg = CanonConfig::default();
        for arch in [Arch::Canon, Arch::Cgra] {
            let small = backend_for(arch, (8, 8), &cfg).run(&w, 1).unwrap();
            let large = backend_for(arch, (16, 16), &cfg).run(&w, 1).unwrap();
            assert!(
                large.cycles <= small.cycles,
                "{arch:?}: {} vs {}",
                large.cycles,
                small.cycles
            );
        }
    }
}
