//! Declarative scenario grids.
//!
//! A [`Scenario`] is one fully-specified cell: an architecture running one
//! concrete [`Workload`] — a tensor kernel or a PolyBench loop nest — at a
//! fabric geometry and problem scale. Grids are described declaratively
//! through [`GridBuilder`] — workload *templates* crossed with sparsity
//! bands, scales, geometries, and architectures — and expanded cartesianly
//! into a deterministic scenario order, which is also the order of every
//! result file and report column the sweep produces.
//!
//! The geometry axis applies to **every** architecture: baselines are
//! provisioned iso-MAC with the Canon fabric of the cell (see
//! [`crate::backend::backend_for`]), so each geometry point is a complete
//! five-architecture comparison at equal peak compute.

use canon_energy::Arch;
use canon_sparse::gen::SparsityBand;
use canon_workloads::{round_dim, LoopKernel, TensorOp, Workload};

/// A workload shape template at full scale. Tensor dimensions are divided
/// by the grid's scale divisor and rounded to mapping-friendly multiples of
/// 32 (via [`round_dim`]) at expansion time; loop-nest problem sizes divide
/// directly (minimum 4); sparsity comes from the grid's band axis where the
/// template is band-sensitive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpTemplate {
    /// Dense GEMM (band-insensitive).
    Gemm {
        /// Output rows at full scale.
        m: usize,
        /// Contraction length at full scale.
        k: usize,
        /// Output columns at full scale.
        n: usize,
    },
    /// Unstructured SpMM; sparsity from the band axis.
    Spmm {
        /// Output rows at full scale.
        m: usize,
        /// Contraction length at full scale.
        k: usize,
        /// Output columns at full scale.
        n: usize,
    },
    /// N:M structured SpMM (band-insensitive — sparsity is `1 - n/m`).
    SpmmNm {
        /// Output rows at full scale.
        m: usize,
        /// Contraction length at full scale.
        k: usize,
        /// Output columns at full scale.
        n: usize,
        /// Non-zeros kept per group.
        n_of: usize,
        /// Group size.
        m_of: usize,
    },
    /// Unstructured SDDMM; mask sparsity from the band axis.
    Sddmm {
        /// Sequence length at full scale.
        seq: usize,
        /// Head dimension at full scale.
        head_dim: usize,
    },
    /// Sliding-window SDDMM with `window = seq / window_div`
    /// (band-insensitive — the band is the structural window).
    Window {
        /// Sequence length at full scale.
        seq: usize,
        /// Window divisor (Longformer ≈ 8, Mistral ≈ 4).
        window_div: usize,
        /// Head dimension at full scale.
        head_dim: usize,
    },
    /// A PolyBench loop nest (band-insensitive; only reconfigurable
    /// architectures run it — the `X` cells of Figs 12/13).
    Loop {
        /// PolyBench kernel name (must be in the evaluated suite).
        name: &'static str,
        /// Problem size at full scale.
        n: usize,
    },
}

impl OpTemplate {
    /// Whether the sparsity-band axis changes this template's workload.
    pub fn band_sensitive(&self) -> bool {
        matches!(self, OpTemplate::Spmm { .. } | OpTemplate::Sddmm { .. })
    }

    /// Instantiates the concrete workload at a scale divisor and optional
    /// band.
    pub fn instantiate(&self, band: Option<SparsityBand>, scale: usize) -> Workload {
        let d = |raw: usize| round_dim(raw, scale);
        let sparsity = band.unwrap_or(SparsityBand::S2).representative();
        match *self {
            OpTemplate::Gemm { m, k, n } => Workload::Tensor(TensorOp::Gemm {
                m: d(m),
                k: d(k),
                n: d(n),
            }),
            OpTemplate::Spmm { m, k, n } => Workload::Tensor(TensorOp::Spmm {
                m: d(m),
                k: d(k),
                n: d(n),
                sparsity,
            }),
            OpTemplate::SpmmNm {
                m,
                k,
                n,
                n_of,
                m_of,
            } => Workload::Tensor(TensorOp::SpmmNm {
                m: d(m),
                k: d(k),
                n: d(n),
                n_of,
                m_of,
            }),
            OpTemplate::Sddmm { seq, head_dim } => Workload::Tensor(TensorOp::SddmmUnstructured {
                seq: d(seq),
                head_dim: d(head_dim),
                sparsity,
            }),
            OpTemplate::Window {
                seq,
                window_div,
                head_dim,
            } => {
                let seq = d(seq);
                Workload::Tensor(TensorOp::SddmmWindow {
                    seq,
                    window: (seq / window_div.max(1)).max(2),
                    head_dim: d(head_dim),
                })
            }
            OpTemplate::Loop { name, n } => Workload::Loop(LoopKernel {
                name,
                // Loop trips need no 32-alignment; the stencils need
                // interior points (n >= 4).
                n: (n / scale.max(1)).max(4),
            }),
        }
    }
}

/// A named workload template — one logical column family of the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Display name ("GEMM", "SpMM", "PolyB-gemm", …); band and scale
    /// suffixes are appended per cell.
    pub name: String,
    /// The shape template.
    pub template: OpTemplate,
}

/// One fully-expanded grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Workload family name.
    pub workload: String,
    /// The concrete workload.
    pub op: Workload,
    /// Sparsity band (`None` for band-insensitive workloads).
    pub band: Option<SparsityBand>,
    /// Fabric geometry `(rows, cols)`: the Canon array for Canon cells, the
    /// iso-MAC provisioning point for baseline cells.
    pub geometry: (usize, usize),
    /// Scale divisor the shapes were instantiated at.
    pub scale: usize,
    /// The architecture executing this cell.
    pub arch: Arch,
    /// Operand-generation seed — shared by every architecture of the same
    /// cell so all backends see identical operands.
    pub seed: u64,
}

/// The one definition of a workload cell's display label (name, band,
/// scale, geometry) — grids and stored records must agree on it, since
/// reports group records back into cells by this string. The geometry is
/// always spelled out: with baselines provisioned per geometry, eliding a
/// "default" would let cells of different geometries collide.
pub fn cell_label_for(
    workload: &str,
    band: Option<&str>,
    scale: usize,
    geometry: (usize, usize),
) -> String {
    let mut label = workload.to_string();
    if let Some(b) = band {
        label.push_str(&format!("-{b}"));
    }
    if scale != 1 {
        label.push_str(&format!("/s{scale}"));
    }
    label.push_str(&format!("@{}x{}", geometry.0, geometry.1));
    label
}

impl Scenario {
    /// Label of the workload cell this scenario belongs to (shared across
    /// architectures): name, band, scale, and geometry.
    pub fn cell_label(&self) -> String {
        let band = self.band.map(|b| b.to_string());
        cell_label_for(&self.workload, band.as_deref(), self.scale, self.geometry)
    }

    /// Canonical single-line description of the concrete workload — part of
    /// the cache key and of the stored record.
    pub fn op_descriptor(&self) -> String {
        self.op.descriptor()
    }

    /// The canonical key material of this cell (scenario side; the store
    /// appends the configuration fingerprint and code-version salt).
    pub fn canonical(&self) -> String {
        format!(
            "workload={};op={};band={};geom={}x{};scale={};arch={};seed={}",
            self.workload,
            self.op_descriptor(),
            self.band.map_or_else(|| "-".into(), |b| b.to_string()),
            self.geometry.0,
            self.geometry.1,
            self.scale,
            self.arch.label(),
            self.seed,
        )
    }
}

/// An expanded grid: scenarios in deterministic cartesian order
/// (workload-major, then band, scale, geometry, and architecture innermost).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioGrid {
    /// The expanded scenarios.
    pub scenarios: Vec<Scenario>,
}

impl ScenarioGrid {
    /// Starts an empty builder (all architectures, all bands, the default
    /// 8×8 geometry, scale divisor 1).
    pub fn builder() -> GridBuilder {
        GridBuilder::new()
    }

    /// The standard multi-backend grid mirroring the Figs 12/13 columns:
    /// GEMM, banded SpMM, 2:4 / 2:8 structured SpMM, banded SDDMM, the two
    /// window-attention shapes, and three PolyBench loop nests (one per
    /// category), across all five architectures.
    ///
    /// `scale` is the shape divisor (1 = full scale, 4 ≈ smoke).
    pub fn standard(scale: usize) -> ScenarioGrid {
        let mut b = GridBuilder::new().scales(&[scale]);
        for w in standard_workloads() {
            b = b.workload(&w.name, w.template);
        }
        b.build()
    }

    /// Number of distinct workload cells (scenario count / architectures).
    pub fn cell_count(&self) -> usize {
        let mut labels: Vec<String> = self.scenarios.iter().map(Scenario::cell_label).collect();
        labels.dedup();
        labels.len()
    }
}

/// The large-fabric scale tier's geometry axis: the two fabric sizes the
/// `large` tier of `repro bench`/`repro sweep` measures (64×64 and 128×64,
/// 4096 and 8192 PEs). One definition shared by the bench harness, the
/// sweep CLI default under `--large`, and CI's large-geometry determinism
/// diff.
pub fn large_geometries() -> [(usize, usize); 2] {
    [(64, 64), (128, 64)]
}

/// The workload templates of [`ScenarioGrid::standard`]: seven tensor
/// families plus three PolyBench loop nests (one per figure category).
pub fn standard_workloads() -> Vec<WorkloadSpec> {
    let spec = |name: &str, template| WorkloadSpec {
        name: name.into(),
        template,
    };
    vec![
        spec(
            "GEMM",
            OpTemplate::Gemm {
                m: 256,
                k: 256,
                n: 128,
            },
        ),
        spec(
            "SpMM",
            OpTemplate::Spmm {
                m: 256,
                k: 256,
                n: 128,
            },
        ),
        spec(
            "SpMM-2:4",
            OpTemplate::SpmmNm {
                m: 256,
                k: 256,
                n: 128,
                n_of: 2,
                m_of: 4,
            },
        ),
        spec(
            "SpMM-2:8",
            OpTemplate::SpmmNm {
                m: 256,
                k: 256,
                n: 128,
                n_of: 2,
                m_of: 8,
            },
        ),
        spec(
            "SDDMM",
            OpTemplate::Sddmm {
                seq: 128,
                head_dim: 64,
            },
        ),
        spec(
            "SDDMM-Win1",
            OpTemplate::Window {
                seq: 256,
                window_div: 8,
                head_dim: 64,
            },
        ),
        spec(
            "SDDMM-Win2",
            OpTemplate::Window {
                seq: 512,
                window_div: 4,
                head_dim: 128,
            },
        ),
        // One loop nest per Figs 12/13 PolyBench category: BLAS, Kernel,
        // Stencil. Systolic variants and ZeD record these as Unsupported.
        spec(
            "PolyB-gemm",
            OpTemplate::Loop {
                name: "gemm",
                n: 64,
            },
        ),
        spec("PolyB-2mm", OpTemplate::Loop { name: "2mm", n: 64 }),
        spec(
            "PolyB-jacobi-2d",
            OpTemplate::Loop {
                name: "jacobi-2d",
                n: 64,
            },
        ),
    ]
}

/// Builder for [`ScenarioGrid`] — each axis defaults to the evaluation's
/// standard setting and can be overridden before [`GridBuilder::build`].
#[derive(Debug, Clone)]
pub struct GridBuilder {
    archs: Vec<Arch>,
    workloads: Vec<WorkloadSpec>,
    bands: Vec<SparsityBand>,
    geometries: Vec<(usize, usize)>,
    scales: Vec<usize>,
    base_seed: u64,
}

impl Default for GridBuilder {
    fn default() -> Self {
        GridBuilder::new()
    }
}

impl GridBuilder {
    /// Creates a builder with the default axes: all five architectures, all
    /// three sparsity bands, the 8×8 geometry, scale divisor 1.
    pub fn new() -> GridBuilder {
        GridBuilder {
            archs: Arch::all().to_vec(),
            workloads: Vec::new(),
            bands: SparsityBand::all().to_vec(),
            geometries: vec![(8, 8)],
            scales: vec![1],
            base_seed: DEFAULT_BASE_SEED,
        }
    }

    /// Restricts the architecture axis.
    pub fn archs(mut self, archs: &[Arch]) -> GridBuilder {
        self.archs = archs.to_vec();
        self
    }

    /// Adds one workload template.
    pub fn workload(mut self, name: &str, template: OpTemplate) -> GridBuilder {
        self.workloads.push(WorkloadSpec {
            name: name.into(),
            template,
        });
        self
    }

    /// Sets the sparsity-band axis (applied to band-sensitive templates).
    pub fn bands(mut self, bands: &[SparsityBand]) -> GridBuilder {
        self.bands = bands.to_vec();
        self
    }

    /// Sets the fabric-geometry axis. Every architecture expands over it:
    /// Canon instantiates a `rows × cols` fabric, baselines are provisioned
    /// iso-MAC with it.
    pub fn geometries(mut self, geometries: &[(usize, usize)]) -> GridBuilder {
        self.geometries = geometries.to_vec();
        self
    }

    /// Switches the geometry axis to the large-fabric tier
    /// ([`large_geometries`]).
    pub fn large_tier(self) -> GridBuilder {
        let geoms = large_geometries();
        self.geometries(&geoms)
    }

    /// Sets the scale-divisor axis.
    pub fn scales(mut self, scales: &[usize]) -> GridBuilder {
        self.scales = scales.to_vec();
        self
    }

    /// Sets the base seed the per-cell operand seeds derive from.
    pub fn seed(mut self, seed: u64) -> GridBuilder {
        self.base_seed = seed;
        self
    }

    /// Expands the cartesian product into a deterministic scenario order.
    pub fn build(self) -> ScenarioGrid {
        let mut scenarios = Vec::new();
        let bands_of = |w: &WorkloadSpec| -> Vec<Option<SparsityBand>> {
            if w.template.band_sensitive() && !self.bands.is_empty() {
                self.bands.iter().copied().map(Some).collect()
            } else {
                vec![None]
            }
        };
        for w in &self.workloads {
            for band in bands_of(w) {
                for &scale in &self.scales {
                    let op = w.template.instantiate(band, scale.max(1));
                    let seed = cell_seed(self.base_seed, &w.name, band, scale);
                    for &geometry in &self.geometries {
                        for &arch in &self.archs {
                            scenarios.push(Scenario {
                                workload: w.name.clone(),
                                op,
                                band,
                                geometry,
                                scale: scale.max(1),
                                arch,
                                seed,
                            });
                        }
                    }
                }
            }
        }
        ScenarioGrid { scenarios }
    }
}

/// The builder's default operand base seed — any surface that derives
/// per-cell seeds outside a [`GridBuilder`] (the serve protocol's
/// seed-omitted submits) must use the same base for keys to line up with
/// batch-swept grids.
pub const DEFAULT_BASE_SEED: u64 = 0xCA50_0001;

/// Operand seed of one workload cell: identical across architectures and
/// geometries so every backend sees the same inputs.
pub fn cell_seed(base: u64, workload: &str, band: Option<SparsityBand>, scale: usize) -> u64 {
    let material = format!(
        "{base}:{workload}:{}:{scale}",
        band.map_or_else(|| "-".into(), |b| b.to_string())
    );
    crate::store::fnv1a64(material.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_deterministic_and_complete() {
        let g1 = ScenarioGrid::standard(4);
        let g2 = ScenarioGrid::standard(4);
        assert_eq!(g1, g2);
        // 10 templates -> 14 cells (SpMM and SDDMM fan out over 3 bands),
        // each with all 5 architectures.
        assert_eq!(g1.cell_count(), 14);
        assert_eq!(g1.scenarios.len(), 70);
    }

    #[test]
    fn standard_grid_contains_loop_workloads() {
        let g = ScenarioGrid::standard(4);
        let loops: Vec<&Scenario> = g
            .scenarios
            .iter()
            .filter(|s| matches!(s.op, Workload::Loop(_)))
            .collect();
        // 3 loop kernels x 5 architectures.
        assert_eq!(loops.len(), 15);
        assert!(loops
            .iter()
            .any(|s| s.op == Workload::Loop(LoopKernel { name: "2mm", n: 16 })));
    }

    #[test]
    fn seeds_shared_within_a_cell_and_distinct_across() {
        let g = ScenarioGrid::standard(4);
        let gemm: Vec<&Scenario> = g
            .scenarios
            .iter()
            .filter(|s| s.workload == "GEMM")
            .collect();
        assert_eq!(gemm.len(), 5);
        assert!(gemm.iter().all(|s| s.seed == gemm[0].seed));
        let spmm_s1 = g
            .scenarios
            .iter()
            .find(|s| s.workload == "SpMM" && s.band == Some(SparsityBand::S1))
            .unwrap();
        let spmm_s3 = g
            .scenarios
            .iter()
            .find(|s| s.workload == "SpMM" && s.band == Some(SparsityBand::S3))
            .unwrap();
        assert_ne!(spmm_s1.seed, spmm_s3.seed);
    }

    #[test]
    fn band_insensitive_templates_do_not_fan_out() {
        let grid = GridBuilder::new()
            .workload(
                "GEMM",
                OpTemplate::Gemm {
                    m: 64,
                    k: 64,
                    n: 64,
                },
            )
            .build();
        assert_eq!(grid.scenarios.len(), 5);
        assert!(grid.scenarios.iter().all(|s| s.band.is_none()));
    }

    #[test]
    fn geometry_axis_applies_to_every_architecture() {
        let grid = GridBuilder::new()
            .workload(
                "GEMM",
                OpTemplate::Gemm {
                    m: 64,
                    k: 64,
                    n: 64,
                },
            )
            .geometries(&[(8, 8), (16, 16)])
            .build();
        // Baselines are iso-MAC provisioned per geometry, so all 5 archs
        // appear at both geometries.
        assert_eq!(grid.scenarios.len(), 10);
        for geometry in [(8, 8), (16, 16)] {
            let archs: Vec<Arch> = grid
                .scenarios
                .iter()
                .filter(|s| s.geometry == geometry)
                .map(|s| s.arch)
                .collect();
            assert_eq!(archs, Arch::all().to_vec(), "at {geometry:?}");
        }
    }

    #[test]
    fn instantiation_rounds_to_mapping_friendly_dims() {
        let op = OpTemplate::Spmm {
            m: 100,
            k: 200,
            n: 60,
        }
        .instantiate(Some(SparsityBand::S3), 2);
        match op {
            Workload::Tensor(TensorOp::Spmm { m, k, n, sparsity }) => {
                assert_eq!(m % 32, 0);
                assert_eq!(k % 32, 0);
                assert_eq!(n % 32, 0);
                assert!((sparsity - 0.80).abs() < 1e-12);
            }
            other => panic!("wrong op {other:?}"),
        }
    }

    #[test]
    fn loop_template_scales_with_floor() {
        let w = OpTemplate::Loop {
            name: "jacobi-2d",
            n: 64,
        };
        assert_eq!(
            w.instantiate(None, 8),
            Workload::Loop(LoopKernel {
                name: "jacobi-2d",
                n: 8
            })
        );
        // Clamped to the stencil minimum.
        assert_eq!(
            w.instantiate(None, 100),
            Workload::Loop(LoopKernel {
                name: "jacobi-2d",
                n: 4
            })
        );
        assert!(!w.band_sensitive());
    }

    #[test]
    fn cell_labels_encode_axes_including_geometry() {
        let g = ScenarioGrid::standard(4);
        let labels: Vec<String> = g.scenarios.iter().map(|s| s.cell_label()).collect();
        assert!(labels.iter().any(|l| l == "SpMM-S2/s4@8x8"));
        assert!(labels.iter().any(|l| l == "GEMM/s4@8x8"));
        assert!(labels.iter().any(|l| l == "PolyB-gemm/s4@8x8"));
        // Same cell at two geometries must not collide.
        assert_ne!(
            cell_label_for("GEMM", None, 1, (8, 8)),
            cell_label_for("GEMM", None, 1, (16, 16)),
        );
    }
}
