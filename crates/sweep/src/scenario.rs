//! Declarative scenario grids.
//!
//! A [`Scenario`] is one fully-specified cell: an architecture running one
//! concrete [`TensorOp`] at a fabric geometry and problem scale. Grids are
//! described declaratively through [`GridBuilder`] — shape *templates*
//! crossed with sparsity bands, scales, geometries, and architectures — and
//! expanded cartesianly into a deterministic scenario order, which is also
//! the order of every result file and report column the sweep produces.

use canon_energy::Arch;
use canon_sparse::gen::SparsityBand;
use canon_workloads::{round_dim, TensorOp};

/// A workload shape template at full scale. Dimensions are divided by the
/// grid's scale divisor and rounded to mapping-friendly multiples of 32
/// (via [`round_dim`]) at expansion time; sparsity comes from the grid's
/// band axis where the template is band-sensitive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpTemplate {
    /// Dense GEMM (band-insensitive).
    Gemm {
        /// Output rows at full scale.
        m: usize,
        /// Contraction length at full scale.
        k: usize,
        /// Output columns at full scale.
        n: usize,
    },
    /// Unstructured SpMM; sparsity from the band axis.
    Spmm {
        /// Output rows at full scale.
        m: usize,
        /// Contraction length at full scale.
        k: usize,
        /// Output columns at full scale.
        n: usize,
    },
    /// N:M structured SpMM (band-insensitive — sparsity is `1 - n/m`).
    SpmmNm {
        /// Output rows at full scale.
        m: usize,
        /// Contraction length at full scale.
        k: usize,
        /// Output columns at full scale.
        n: usize,
        /// Non-zeros kept per group.
        n_of: usize,
        /// Group size.
        m_of: usize,
    },
    /// Unstructured SDDMM; mask sparsity from the band axis.
    Sddmm {
        /// Sequence length at full scale.
        seq: usize,
        /// Head dimension at full scale.
        head_dim: usize,
    },
    /// Sliding-window SDDMM with `window = seq / window_div`
    /// (band-insensitive — the band is the structural window).
    Window {
        /// Sequence length at full scale.
        seq: usize,
        /// Window divisor (Longformer ≈ 8, Mistral ≈ 4).
        window_div: usize,
        /// Head dimension at full scale.
        head_dim: usize,
    },
}

impl OpTemplate {
    /// Whether the sparsity-band axis changes this template's workload.
    pub fn band_sensitive(&self) -> bool {
        matches!(self, OpTemplate::Spmm { .. } | OpTemplate::Sddmm { .. })
    }

    /// Instantiates the concrete op at a scale divisor and optional band.
    pub fn instantiate(&self, band: Option<SparsityBand>, scale: usize) -> TensorOp {
        let d = |raw: usize| round_dim(raw, scale);
        let sparsity = band.unwrap_or(SparsityBand::S2).representative();
        match *self {
            OpTemplate::Gemm { m, k, n } => TensorOp::Gemm {
                m: d(m),
                k: d(k),
                n: d(n),
            },
            OpTemplate::Spmm { m, k, n } => TensorOp::Spmm {
                m: d(m),
                k: d(k),
                n: d(n),
                sparsity,
            },
            OpTemplate::SpmmNm {
                m,
                k,
                n,
                n_of,
                m_of,
            } => TensorOp::SpmmNm {
                m: d(m),
                k: d(k),
                n: d(n),
                n_of,
                m_of,
            },
            OpTemplate::Sddmm { seq, head_dim } => TensorOp::SddmmUnstructured {
                seq: d(seq),
                head_dim: d(head_dim),
                sparsity,
            },
            OpTemplate::Window {
                seq,
                window_div,
                head_dim,
            } => {
                let seq = d(seq);
                TensorOp::SddmmWindow {
                    seq,
                    window: (seq / window_div.max(1)).max(2),
                    head_dim: d(head_dim),
                }
            }
        }
    }
}

/// A named workload template — one logical column family of the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Display name ("GEMM", "SpMM", …); band and scale suffixes are
    /// appended per cell.
    pub name: String,
    /// The shape template.
    pub template: OpTemplate,
}

/// One fully-expanded grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Workload family name.
    pub workload: String,
    /// The concrete tensor operation.
    pub op: TensorOp,
    /// Sparsity band (`None` for band-insensitive workloads).
    pub band: Option<SparsityBand>,
    /// Canon fabric geometry `(rows, cols)`; baselines always run their
    /// fixed 256-MAC configuration and carry the default geometry.
    pub geometry: (usize, usize),
    /// Scale divisor the shapes were instantiated at.
    pub scale: usize,
    /// The architecture executing this cell.
    pub arch: Arch,
    /// Operand-generation seed — shared by every architecture of the same
    /// cell so all backends see identical operands.
    pub seed: u64,
}

/// The one definition of a workload cell's display label (name, band,
/// scale, non-default geometry) — grids and stored records must agree on
/// it, since reports group records back into cells by this string.
pub fn cell_label_for(
    workload: &str,
    band: Option<&str>,
    scale: usize,
    geometry: (usize, usize),
) -> String {
    let mut label = workload.to_string();
    if let Some(b) = band {
        label.push_str(&format!("-{b}"));
    }
    if scale != 1 {
        label.push_str(&format!("/s{scale}"));
    }
    if geometry != (8, 8) {
        label.push_str(&format!("@{}x{}", geometry.0, geometry.1));
    }
    label
}

impl Scenario {
    /// Label of the workload cell this scenario belongs to (shared across
    /// architectures): name, band, scale, and non-default geometry.
    pub fn cell_label(&self) -> String {
        let band = self.band.map(|b| b.to_string());
        cell_label_for(&self.workload, band.as_deref(), self.scale, self.geometry)
    }

    /// Canonical single-line description of the concrete op — part of the
    /// cache key and of the stored record.
    pub fn op_descriptor(&self) -> String {
        match self.op {
            TensorOp::Gemm { m, k, n } => format!("gemm(m={m},k={k},n={n})"),
            TensorOp::Spmm { m, k, n, sparsity } => {
                format!("spmm(m={m},k={k},n={n},sp={sparsity})")
            }
            TensorOp::SpmmNm {
                m,
                k,
                n,
                n_of,
                m_of,
            } => {
                format!("spmm_nm(m={m},k={k},n={n},{n_of}:{m_of})")
            }
            TensorOp::SddmmUnstructured {
                seq,
                head_dim,
                sparsity,
            } => format!("sddmm(seq={seq},h={head_dim},sp={sparsity})"),
            TensorOp::SddmmWindow {
                seq,
                window,
                head_dim,
            } => format!("window(seq={seq},w={window},h={head_dim})"),
        }
    }

    /// The canonical key material of this cell (scenario side; the store
    /// appends the configuration fingerprint and code-version salt).
    pub fn canonical(&self) -> String {
        format!(
            "workload={};op={};band={};geom={}x{};scale={};arch={};seed={}",
            self.workload,
            self.op_descriptor(),
            self.band.map_or_else(|| "-".into(), |b| b.to_string()),
            self.geometry.0,
            self.geometry.1,
            self.scale,
            self.arch.label(),
            self.seed,
        )
    }
}

/// An expanded grid: scenarios in deterministic cartesian order
/// (workload-major, then band, scale, geometry, and architecture innermost).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioGrid {
    /// The expanded scenarios.
    pub scenarios: Vec<Scenario>,
}

impl ScenarioGrid {
    /// Starts an empty builder (all architectures, all bands, the default
    /// 8×8 geometry, scale divisor 1).
    pub fn builder() -> GridBuilder {
        GridBuilder::new()
    }

    /// The standard multi-backend grid mirroring the Figs 12/13 tensor
    /// columns: GEMM, banded SpMM, 2:4 / 2:8 structured SpMM, banded SDDMM,
    /// and the two window-attention shapes, across all five architectures.
    ///
    /// `scale` is the shape divisor (1 = full scale, 4 ≈ smoke).
    pub fn standard(scale: usize) -> ScenarioGrid {
        let mut b = GridBuilder::new().scales(&[scale]);
        for w in standard_workloads() {
            b = b.workload(&w.name, w.template);
        }
        b.build()
    }

    /// Number of distinct workload cells (scenario count / architectures).
    pub fn cell_count(&self) -> usize {
        let mut labels: Vec<String> = self.scenarios.iter().map(Scenario::cell_label).collect();
        labels.dedup();
        labels.len()
    }
}

/// The workload templates of [`ScenarioGrid::standard`].
pub fn standard_workloads() -> Vec<WorkloadSpec> {
    let spec = |name: &str, template| WorkloadSpec {
        name: name.into(),
        template,
    };
    vec![
        spec(
            "GEMM",
            OpTemplate::Gemm {
                m: 256,
                k: 256,
                n: 128,
            },
        ),
        spec(
            "SpMM",
            OpTemplate::Spmm {
                m: 256,
                k: 256,
                n: 128,
            },
        ),
        spec(
            "SpMM-2:4",
            OpTemplate::SpmmNm {
                m: 256,
                k: 256,
                n: 128,
                n_of: 2,
                m_of: 4,
            },
        ),
        spec(
            "SpMM-2:8",
            OpTemplate::SpmmNm {
                m: 256,
                k: 256,
                n: 128,
                n_of: 2,
                m_of: 8,
            },
        ),
        spec(
            "SDDMM",
            OpTemplate::Sddmm {
                seq: 128,
                head_dim: 64,
            },
        ),
        spec(
            "SDDMM-Win1",
            OpTemplate::Window {
                seq: 256,
                window_div: 8,
                head_dim: 64,
            },
        ),
        spec(
            "SDDMM-Win2",
            OpTemplate::Window {
                seq: 512,
                window_div: 4,
                head_dim: 128,
            },
        ),
    ]
}

/// Builder for [`ScenarioGrid`] — each axis defaults to the evaluation's
/// standard setting and can be overridden before [`GridBuilder::build`].
#[derive(Debug, Clone)]
pub struct GridBuilder {
    archs: Vec<Arch>,
    workloads: Vec<WorkloadSpec>,
    bands: Vec<SparsityBand>,
    geometries: Vec<(usize, usize)>,
    scales: Vec<usize>,
    base_seed: u64,
}

impl Default for GridBuilder {
    fn default() -> Self {
        GridBuilder::new()
    }
}

impl GridBuilder {
    /// Creates a builder with the default axes: all five architectures, all
    /// three sparsity bands, the 8×8 geometry, scale divisor 1.
    pub fn new() -> GridBuilder {
        GridBuilder {
            archs: Arch::all().to_vec(),
            workloads: Vec::new(),
            bands: SparsityBand::all().to_vec(),
            geometries: vec![(8, 8)],
            scales: vec![1],
            base_seed: 0xCA50_0001,
        }
    }

    /// Restricts the architecture axis.
    pub fn archs(mut self, archs: &[Arch]) -> GridBuilder {
        self.archs = archs.to_vec();
        self
    }

    /// Adds one workload template.
    pub fn workload(mut self, name: &str, template: OpTemplate) -> GridBuilder {
        self.workloads.push(WorkloadSpec {
            name: name.into(),
            template,
        });
        self
    }

    /// Sets the sparsity-band axis (applied to band-sensitive templates).
    pub fn bands(mut self, bands: &[SparsityBand]) -> GridBuilder {
        self.bands = bands.to_vec();
        self
    }

    /// Sets the Canon fabric geometries. Baselines are fixed-geometry
    /// models, so geometry expansion applies to Canon cells only.
    pub fn geometries(mut self, geometries: &[(usize, usize)]) -> GridBuilder {
        self.geometries = geometries.to_vec();
        self
    }

    /// Sets the scale-divisor axis.
    pub fn scales(mut self, scales: &[usize]) -> GridBuilder {
        self.scales = scales.to_vec();
        self
    }

    /// Sets the base seed the per-cell operand seeds derive from.
    pub fn seed(mut self, seed: u64) -> GridBuilder {
        self.base_seed = seed;
        self
    }

    /// Expands the cartesian product into a deterministic scenario order.
    pub fn build(self) -> ScenarioGrid {
        let mut scenarios = Vec::new();
        let bands_of = |w: &WorkloadSpec| -> Vec<Option<SparsityBand>> {
            if w.template.band_sensitive() && !self.bands.is_empty() {
                self.bands.iter().copied().map(Some).collect()
            } else {
                vec![None]
            }
        };
        for w in &self.workloads {
            for band in bands_of(w) {
                for &scale in &self.scales {
                    let op = w.template.instantiate(band, scale.max(1));
                    let seed = cell_seed(self.base_seed, &w.name, band, scale);
                    for (gi, &geometry) in self.geometries.iter().enumerate() {
                        for &arch in &self.archs {
                            // Baselines don't have a geometry axis: emit
                            // them once (at the first geometry, recorded as
                            // the default 8×8) to avoid duplicate cells.
                            if arch != Arch::Canon && gi > 0 {
                                continue;
                            }
                            let geometry = if arch == Arch::Canon {
                                geometry
                            } else {
                                (8, 8)
                            };
                            scenarios.push(Scenario {
                                workload: w.name.clone(),
                                op,
                                band,
                                geometry,
                                scale: scale.max(1),
                                arch,
                                seed,
                            });
                        }
                    }
                }
            }
        }
        ScenarioGrid { scenarios }
    }
}

/// Operand seed of one workload cell: identical across architectures and
/// geometries so every backend sees the same inputs.
fn cell_seed(base: u64, workload: &str, band: Option<SparsityBand>, scale: usize) -> u64 {
    let material = format!(
        "{base}:{workload}:{}:{scale}",
        band.map_or_else(|| "-".into(), |b| b.to_string())
    );
    crate::store::fnv1a64(material.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_deterministic_and_complete() {
        let g1 = ScenarioGrid::standard(4);
        let g2 = ScenarioGrid::standard(4);
        assert_eq!(g1, g2);
        // 7 templates -> 11 cells (SpMM and SDDMM fan out over 3 bands),
        // each with all 5 architectures.
        assert_eq!(g1.cell_count(), 11);
        assert_eq!(g1.scenarios.len(), 55);
    }

    #[test]
    fn seeds_shared_within_a_cell_and_distinct_across() {
        let g = ScenarioGrid::standard(4);
        let gemm: Vec<&Scenario> = g
            .scenarios
            .iter()
            .filter(|s| s.workload == "GEMM")
            .collect();
        assert_eq!(gemm.len(), 5);
        assert!(gemm.iter().all(|s| s.seed == gemm[0].seed));
        let spmm_s1 = g
            .scenarios
            .iter()
            .find(|s| s.workload == "SpMM" && s.band == Some(SparsityBand::S1))
            .unwrap();
        let spmm_s3 = g
            .scenarios
            .iter()
            .find(|s| s.workload == "SpMM" && s.band == Some(SparsityBand::S3))
            .unwrap();
        assert_ne!(spmm_s1.seed, spmm_s3.seed);
    }

    #[test]
    fn band_insensitive_templates_do_not_fan_out() {
        let grid = GridBuilder::new()
            .workload(
                "GEMM",
                OpTemplate::Gemm {
                    m: 64,
                    k: 64,
                    n: 64,
                },
            )
            .build();
        assert_eq!(grid.scenarios.len(), 5);
        assert!(grid.scenarios.iter().all(|s| s.band.is_none()));
    }

    #[test]
    fn geometry_axis_applies_to_canon_only() {
        let grid = GridBuilder::new()
            .workload(
                "GEMM",
                OpTemplate::Gemm {
                    m: 64,
                    k: 64,
                    n: 64,
                },
            )
            .geometries(&[(8, 8), (16, 16)])
            .build();
        // 5 archs at the first geometry + 1 extra Canon cell at 16x16.
        assert_eq!(grid.scenarios.len(), 6);
        let canon16 = grid
            .scenarios
            .iter()
            .filter(|s| s.geometry == (16, 16))
            .collect::<Vec<_>>();
        assert_eq!(canon16.len(), 1);
        assert_eq!(canon16[0].arch, Arch::Canon);
    }

    #[test]
    fn instantiation_rounds_to_mapping_friendly_dims() {
        let op = OpTemplate::Spmm {
            m: 100,
            k: 200,
            n: 60,
        }
        .instantiate(Some(SparsityBand::S3), 2);
        match op {
            TensorOp::Spmm { m, k, n, sparsity } => {
                assert_eq!(m % 32, 0);
                assert_eq!(k % 32, 0);
                assert_eq!(n % 32, 0);
                assert!((sparsity - 0.80).abs() < 1e-12);
            }
            other => panic!("wrong op {other:?}"),
        }
    }

    #[test]
    fn cell_labels_encode_axes() {
        let g = ScenarioGrid::standard(4);
        let labels: Vec<String> = g.scenarios.iter().map(|s| s.cell_label()).collect();
        assert!(labels.iter().any(|l| l == "SpMM-S2/s4"));
        assert!(labels.iter().any(|l| l == "GEMM/s4"));
    }
}
