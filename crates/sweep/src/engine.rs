//! The parallel sweep driver.
//!
//! [`run_sweep`] fans a [`ScenarioGrid`] out over a work-stealing pool of
//! `std` scoped threads: cells are dealt into per-worker deques in
//! contiguous blocks, a worker drains its own deque from the front and
//! steals from the back of its neighbours' when empty — cheap cells (cache
//! probes, unsupported architectures, small shapes) never leave a thread
//! idle while a large Canon simulation finishes elsewhere.
//!
//! Results are written back by *scenario index*, so the record order — and
//! therefore the JSONL file the store rewrites — is byte-identical whatever
//! the thread count or completion order. Cells whose content key is already
//! in the [`ResultStore`] are never executed; the cache-hit count is
//! reported in [`SweepStats`].
//!
//! Workers share one [`OperandCache`], so the five backends of a cell (and
//! the cell's other geometry points) materialize their identical operand
//! streams once per `(op, seed)` instead of once per backend — operand
//! values are deterministic in the seed, so caching cannot change any
//! record or the byte-identical-store guarantee.

use crate::backend::{backend_for, BackendError, OperandCache};
use crate::scenario::{Scenario, ScenarioGrid};
use crate::store::{cell_key, cfg_fingerprint, RecordStatus, ResultStore, StoredRecord, CODE_SALT};
use canon_core::CanonConfig;
use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Sweep execution options.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker-thread count (clamped to at least 1).
    pub jobs: usize,
    /// Base Canon configuration; per-scenario geometry overrides rows/cols.
    pub base_cfg: CanonConfig,
    /// Emit a live progress line on stderr while the sweep executes
    /// (cells done/total, cells/sec, operand-cache and result-store hit
    /// rates). Off by default: library consumers and tests stay silent.
    pub progress: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
            base_cfg: CanonConfig::default(),
            progress: false,
        }
    }
}

/// Counters of one sweep invocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepStats {
    /// Grid cells in total.
    pub total: usize,
    /// Cells actually executed on a backend this run.
    pub executed: usize,
    /// Cells satisfied from the result store.
    pub cache_hits: usize,
    /// Cells whose architecture cannot run the workload.
    pub unsupported: usize,
    /// Cells rejected by a simulator (mapping violation, protocol error).
    pub errors: usize,
    /// Simulated cycles summed over the cells *executed* this run (cache
    /// hits contribute nothing — no simulation happened for them).
    pub sim_cycles: u64,
    /// Host wall-clock seconds spent in the parallel execution phase.
    pub wall_secs: f64,
}

/// Equality covers the architectural outcome and deliberately ignores
/// `wall_secs`, which varies run to run on the host (the same convention as
/// `RunReport`).
impl PartialEq for SweepStats {
    fn eq(&self, other: &SweepStats) -> bool {
        self.total == other.total
            && self.executed == other.executed
            && self.cache_hits == other.cache_hits
            && self.unsupported == other.unsupported
            && self.errors == other.errors
            && self.sim_cycles == other.sim_cycles
    }
}

impl SweepStats {
    /// Aggregate simulator throughput of this run: simulated cycles per host
    /// wall-clock second across all workers. Zero for fully-cached runs.
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.sim_cycles as f64 / self.wall_secs
    }
}

/// A completed sweep: records in scenario order plus counters.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One record per grid cell, in grid order.
    pub records: Vec<StoredRecord>,
    /// Execution counters.
    pub stats: SweepStats,
}

fn record_for(
    scenario: &Scenario,
    key: String,
    opts: &SweepOptions,
    cache: &OperandCache,
) -> StoredRecord {
    let backend = backend_for(scenario.arch, scenario.geometry, &opts.base_cfg);
    let (status, cycles, energy_pj, useful_macs, utilization, stalls) = if !backend
        .supports(&scenario.op)
    {
        (RecordStatus::Unsupported, 0, 0.0, 0, 0.0, None)
    } else {
        match backend.run_cached(&scenario.op, scenario.seed, cache) {
            Ok(r) => (
                RecordStatus::Ok,
                r.cycles,
                r.energy_pj,
                r.useful_macs,
                r.utilization,
                r.stalls,
            ),
            Err(BackendError::Unsupported) => (RecordStatus::Unsupported, 0, 0.0, 0, 0.0, None),
            Err(BackendError::Sim(e)) => (RecordStatus::Error(e.to_string()), 0, 0.0, 0, 0.0, None),
        }
    };
    StoredRecord {
        key,
        salt: CODE_SALT.to_string(),
        workload: scenario.workload.clone(),
        arch: scenario.arch.label().to_string(),
        band: scenario.band.map(|b| b.to_string()),
        rows: scenario.geometry.0,
        cols: scenario.geometry.1,
        scale: scenario.scale,
        seed: scenario.seed,
        op: scenario.op_descriptor(),
        status,
        cycles,
        energy_pj,
        useful_macs,
        utilization,
        stalls,
    }
}

/// Runs the grid, consulting and then rewriting `store`.
///
/// Execution is skipped for every cell already present in the store under
/// its content key. On return the store's backing file (if any) holds the
/// complete sweep in grid order.
///
/// # Errors
///
/// Propagates store I/O errors. Per-cell simulator failures do not abort
/// the sweep; they are recorded with an error status and counted in
/// [`SweepStats::errors`].
pub fn run_sweep(
    grid: &ScenarioGrid,
    store: &mut ResultStore,
    opts: &SweepOptions,
) -> io::Result<SweepOutcome> {
    let fingerprint = cfg_fingerprint(&opts.base_cfg);
    let keys: Vec<String> = grid
        .scenarios
        .iter()
        .map(|s| cell_key(s, &fingerprint))
        .collect();

    let mut slots: Vec<Option<StoredRecord>> = grid
        .scenarios
        .iter()
        .zip(&keys)
        .map(|(_, key)| store.lookup(key).cloned())
        .collect();
    let misses: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_none().then_some(i))
        .collect();
    let cache_hits = slots.len() - misses.len();

    let jobs = opts.jobs.clamp(1, misses.len().max(1));
    // Contiguous deal: worker w owns a block of neighbouring cells, which
    // share operands and shapes, so stealing (from the back) tends to move
    // whole foreign cells rather than interleave one cell's architectures.
    let queues: Vec<Mutex<VecDeque<usize>>> = misses
        .chunks(misses.len().div_ceil(jobs).max(1))
        .map(|chunk| Mutex::new(chunk.iter().copied().collect()))
        .collect();
    let executed = AtomicUsize::new(0);
    // One operand cache for the whole sweep: the architectures of a cell
    // (and the same cell at other geometries) share materialized inputs.
    // Sized with the worker count — each worker drains its own contiguous
    // chunk with a distinct (op, seed), so capacity must comfortably cover
    // the keys live across all workers or the FIFO thrashes.
    let cache = OperandCache::with_capacity(16.max(2 * jobs));

    let wall_start = std::time::Instant::now();
    let finished = std::sync::atomic::AtomicBool::new(false);
    let computed: Vec<(usize, StoredRecord)> = std::thread::scope(|scope| {
        if opts.progress && !misses.is_empty() {
            // Progress monitor: one line on stderr, rewritten in place, with
            // the throughput numbers a long sweep is usually watched for.
            let executed = &executed;
            let finished = &finished;
            let cache = &cache;
            let total = misses.len();
            scope.spawn(move || loop {
                let done = executed.load(Ordering::Relaxed);
                let secs = wall_start.elapsed().as_secs_f64();
                let (h, m) = (cache.hit_count(), cache.miss_count());
                let operand_rate = if h + m > 0 {
                    100.0 * h as f64 / (h + m) as f64
                } else {
                    0.0
                };
                let store_rate = if cache_hits + total > 0 {
                    100.0 * cache_hits as f64 / (cache_hits + total) as f64
                } else {
                    0.0
                };
                eprint!(
                    "\rsweep: {done}/{total} cells  {:.1} cells/sec  \
                         operand-cache {operand_rate:.0}%  store {store_rate:.0}%   ",
                    done as f64 / secs.max(1e-9),
                );
                if finished.load(Ordering::Relaxed) {
                    eprintln!();
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(200));
            });
        }
        let handles: Vec<_> = (0..queues.len())
            .map(|w| {
                let queues = &queues;
                let keys = &keys;
                let executed = &executed;
                let cache = &cache;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        // Own deque first (front), then steal from the back
                        // of the first non-empty victim. The own-queue guard
                        // is dropped before any victim lock is taken.
                        let own = queues[w].lock().unwrap().pop_front();
                        let task = own.or_else(|| {
                            (1..queues.len()).find_map(|d| {
                                queues[(w + d) % queues.len()].lock().unwrap().pop_back()
                            })
                        });
                        let Some(idx) = task else { break };
                        let scenario = &grid.scenarios[idx];
                        out.push((idx, record_for(scenario, keys[idx].clone(), opts, cache)));
                        executed.fetch_add(1, Ordering::Relaxed);
                    }
                    out
                })
            })
            .collect();
        let computed = handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect();
        finished.store(true, Ordering::Relaxed);
        computed
    });
    let wall_secs = wall_start.elapsed().as_secs_f64();
    let sim_cycles: u64 = computed.iter().map(|(_, rec)| rec.cycles).sum();

    for (idx, rec) in computed {
        store.insert(rec.clone());
        slots[idx] = Some(rec);
    }
    let records: Vec<StoredRecord> = slots
        .into_iter()
        .map(|s| s.expect("every cell resolved"))
        .collect();
    // The file holds this grid in scenario order, then every other cached
    // cell (other grids/scales/configurations) in key order — rewriting for
    // one grid must not evict the rest of the cache.
    let current: std::collections::HashSet<&str> = records.iter().map(|r| r.key.as_str()).collect();
    let mut extras: Vec<&StoredRecord> = store
        .records()
        .filter(|r| !current.contains(r.key.as_str()))
        .collect();
    extras.sort_by(|a, b| a.key.cmp(&b.key));
    let mut file_records = records.clone();
    file_records.extend(extras.into_iter().cloned());
    store.write_ordered(&file_records)?;

    let stats = SweepStats {
        total: records.len(),
        executed: executed.load(Ordering::Relaxed),
        cache_hits,
        unsupported: records
            .iter()
            .filter(|r| r.status == RecordStatus::Unsupported)
            .count(),
        errors: records
            .iter()
            .filter(|r| matches!(r.status, RecordStatus::Error(_)))
            .count(),
        sim_cycles,
        wall_secs,
    };
    Ok(SweepOutcome { records, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{GridBuilder, OpTemplate};

    fn tiny_grid() -> ScenarioGrid {
        GridBuilder::new()
            .workload(
                "GEMM",
                OpTemplate::Gemm {
                    m: 32,
                    k: 32,
                    n: 32,
                },
            )
            .workload(
                "SpMM",
                OpTemplate::Spmm {
                    m: 32,
                    k: 32,
                    n: 32,
                },
            )
            .bands(&[canon_sparse::gen::SparsityBand::S3])
            .build()
    }

    #[test]
    fn sweep_completes_and_orders_records() {
        let grid = tiny_grid();
        let mut store = ResultStore::in_memory();
        let out = run_sweep(
            &grid,
            &mut store,
            &SweepOptions {
                jobs: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.records.len(), grid.scenarios.len());
        assert_eq!(out.stats.executed, grid.scenarios.len());
        assert_eq!(out.stats.cache_hits, 0);
        for (rec, scenario) in out.records.iter().zip(&grid.scenarios) {
            assert_eq!(rec.workload, scenario.workload);
            assert_eq!(rec.arch, scenario.arch.label());
            assert_eq!(
                rec.status,
                RecordStatus::Ok,
                "{}/{}",
                rec.workload,
                rec.arch
            );
        }
    }

    #[test]
    fn warm_store_skips_every_execution() {
        let grid = tiny_grid();
        let mut store = ResultStore::in_memory();
        let first = run_sweep(
            &grid,
            &mut store,
            &SweepOptions {
                jobs: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let second = run_sweep(
            &grid,
            &mut store,
            &SweepOptions {
                jobs: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(second.stats.executed, 0);
        assert_eq!(second.stats.cache_hits, grid.scenarios.len());
        assert_eq!(second.records, first.records);
    }

    #[test]
    fn jobs_do_not_change_results() {
        let grid = tiny_grid();
        let run = |jobs| {
            let mut store = ResultStore::in_memory();
            run_sweep(
                &grid,
                &mut store,
                &SweepOptions {
                    jobs,
                    ..Default::default()
                },
            )
            .unwrap()
            .records
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn rewriting_for_one_grid_preserves_other_grids_cache() {
        let grid_a = tiny_grid();
        let grid_b = GridBuilder::new()
            .workload(
                "Win",
                OpTemplate::Window {
                    seq: 64,
                    window_div: 8,
                    head_dim: 32,
                },
            )
            .build();
        let path = std::env::temp_dir().join(format!(
            "canon-sweep-crossgrid-{}.jsonl",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let opts = SweepOptions {
            jobs: 2,
            ..Default::default()
        };
        let mut store = ResultStore::open(&path).unwrap();
        run_sweep(&grid_a, &mut store, &opts).unwrap();
        drop(store);
        // Sweeping a different grid rewrites the file but must keep A's cells.
        let mut store = ResultStore::open(&path).unwrap();
        run_sweep(&grid_b, &mut store, &opts).unwrap();
        drop(store);
        let mut store = ResultStore::open(&path).unwrap();
        assert_eq!(store.len(), grid_a.scenarios.len() + grid_b.scenarios.len());
        let again = run_sweep(&grid_a, &mut store, &opts).unwrap();
        assert_eq!(again.stats.executed, 0, "grid A must still be fully cached");
        assert_eq!(again.stats.cache_hits, grid_a.scenarios.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sim_errors_are_recorded_not_fatal() {
        // The builder rounds dimensions to mapping-friendly sizes, so force
        // an invalid shape (K = 20 is not a multiple of the 8-row fabric)
        // onto the expanded scenario directly.
        let mut grid = GridBuilder::new()
            .archs(&[canon_energy::Arch::Canon])
            .workload(
                "odd",
                OpTemplate::Gemm {
                    m: 32,
                    k: 32,
                    n: 32,
                },
            )
            .build();
        for s in &mut grid.scenarios {
            s.op = canon_workloads::Workload::Tensor(canon_workloads::TensorOp::Spmm {
                m: 8,
                k: 20,
                n: 8,
                sparsity: 0.5,
            });
        }
        let mut store = ResultStore::in_memory();
        let out = run_sweep(
            &grid,
            &mut store,
            &SweepOptions {
                jobs: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.stats.errors, 1);
        assert!(matches!(out.records[0].status, RecordStatus::Error(_)));
    }
}
