//! The parallel sweep driver.
//!
//! [`run_sweep`] fans a [`ScenarioGrid`] out over a work-stealing pool of
//! `std` scoped threads: cells are dealt into per-worker deques in
//! contiguous blocks, a worker drains its own deque from the front and
//! steals from the back of its neighbours' when empty — cheap cells (cache
//! probes, unsupported architectures, small shapes) never leave a thread
//! idle while a large Canon simulation finishes elsewhere.
//!
//! Results are written back by *scenario index*, so the record order — and
//! therefore the JSONL file the store rewrites — is byte-identical whatever
//! the thread count or completion order. Cells whose content key is already
//! in the [`ResultStore`] are never executed; the cache-hit count is
//! reported in [`SweepStats`].
//!
//! Workers share one [`OperandCache`], so the five backends of a cell (and
//! the cell's other geometry points) materialize their identical operand
//! streams once per `(op, seed)` instead of once per backend — operand
//! values are deterministic in the seed, so caching cannot change any
//! record or the byte-identical-store guarantee.
//!
//! # Fault tolerance
//!
//! Each cell executes inside `catch_unwind`, so a panicking backend becomes
//! a structured [`CellFailure::Panic`] record instead of tearing down the
//! pool; watchdog deadlocks and budget timeouts ([`SweepOptions`] threads
//! per-cell wall-clock/cycle budgets into the fabric) are likewise
//! quarantined as [`CellFailure::Deadlock`]/[`CellFailure::Timeout`], and
//! transient failures are retried with exponential backoff up to
//! [`SweepOptions::max_retries`] times. Every freshly computed record is
//! journaled to the store with an fsync'd append the moment a worker
//! completes it, so a crash or SIGKILL loses at most the in-flight cells
//! and a re-run resumes from the journal; on clean completion the file is
//! atomically rewritten in canonical grid order, which is why interrupted
//! and uninterrupted runs converge to byte-identical stores. A cooperative
//! [`SweepOptions::shutdown`] flag (the `repro` binary wires SIGINT to it)
//! stops workers from taking new cells while in-flight cells drain and are
//! journaled.

use crate::backend::{backend_for, BackendError, OperandCache};
use crate::scenario::{Scenario, ScenarioGrid};
use crate::store::{
    cell_key, cfg_fingerprint, CellFailure, RecordStatus, ResultStore, StoredRecord, CODE_SALT,
};
use canon_core::fault::{FaultAction, FaultPlan};
use canon_core::{CanonConfig, SimError};
use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Sweep execution options.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker-thread count (clamped to at least 1).
    pub jobs: usize,
    /// Base Canon configuration; per-scenario geometry overrides rows/cols.
    pub base_cfg: CanonConfig,
    /// Emit a live progress line on stderr while the sweep executes
    /// (cells done/total, cells/sec, operand-cache and result-store hit
    /// rates). Off by default: library consumers and tests stay silent.
    pub progress: bool,
    /// Wall-clock budget per cell: a Canon simulation still running after
    /// this long aborts with a [`CellFailure::Timeout`] record carrying its
    /// partial stats. `None` (default) leaves cells unbounded. Cells swept
    /// under a budget carry it in their cache key — a raised budget can
    /// change an outcome, so budgeted and unbudgeted runs never share
    /// records.
    pub cell_wall_budget: Option<Duration>,
    /// Simulated-cycle ceiling per cell, independent of host speed (and
    /// therefore deterministic); also recorded as [`CellFailure::Timeout`].
    pub cell_cycle_budget: Option<u64>,
    /// Retry budget for failures classified transient
    /// ([`CellFailure::is_transient`]). Deterministic failures — panic,
    /// deadlock, timeout, mapping error — are never retried.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per subsequent attempt.
    pub retry_backoff: Duration,
    /// Deterministic fault injection, keyed by scenario index (see
    /// [`canon_core::fault`]). Faulted cells get their own cache keys, so
    /// an injection run never pollutes the store healthy sweeps read.
    pub fault_plan: FaultPlan,
    /// Cooperative shutdown: when the flag turns true, workers stop taking
    /// new cells, in-flight cells finish and are journaled, and the sweep
    /// returns early with [`SweepStats::interrupted`] set (skipping the
    /// canonical rewrite so the journal keeps everything already paid for).
    pub shutdown: Option<Arc<AtomicBool>>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
            base_cfg: CanonConfig::default(),
            progress: false,
            cell_wall_budget: None,
            cell_cycle_budget: None,
            max_retries: 2,
            retry_backoff: Duration::from_millis(10),
            fault_plan: FaultPlan::new(),
            shutdown: None,
        }
    }
}

impl SweepOptions {
    /// True when any option alters cell configurations relative to
    /// `base_cfg` alone (budgets apply to every cell, faults per cell).
    pub fn budgets_set(&self) -> bool {
        self.cell_wall_budget.is_some() || self.cell_cycle_budget.is_some()
    }

    /// The effective Canon configuration of cell `idx`: base config plus
    /// the per-cell budgets and any injected fault.
    pub fn cell_cfg(&self, idx: usize) -> CanonConfig {
        let mut cfg = self.base_cfg.clone();
        if let Some(d) = self.cell_wall_budget {
            cfg.wall_budget_ns = Some(d.as_nanos() as u64);
        }
        if let Some(c) = self.cell_cycle_budget {
            cfg.max_cycles = Some(c);
        }
        cfg.fault = self.fault_plan.action_for(idx);
        cfg
    }
}

/// Counters of one sweep invocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepStats {
    /// Grid cells in total.
    pub total: usize,
    /// Cells actually executed on a backend this run.
    pub executed: usize,
    /// Cells satisfied from the result store.
    pub cache_hits: usize,
    /// Cells whose architecture cannot run the workload.
    pub unsupported: usize,
    /// Cells rejected by a simulator (mapping violation, protocol error).
    pub errors: usize,
    /// Cells quarantined by the fault-tolerance layer (panic, deadlock,
    /// timeout, exhausted transient retries) — counted over the final
    /// records, so cached failures from earlier runs count too.
    pub failed: usize,
    /// Retry attempts consumed by transient failures this run.
    pub retries: u64,
    /// True when a shutdown request stopped the sweep before every cell
    /// resolved; [`SweepOutcome::records`] then holds only completed cells.
    pub interrupted: bool,
    /// Simulated cycles summed over the cells *executed* this run (cache
    /// hits contribute nothing — no simulation happened for them).
    pub sim_cycles: u64,
    /// Host wall-clock seconds spent in the parallel execution phase.
    pub wall_secs: f64,
}

/// Equality covers the architectural outcome and deliberately ignores
/// `wall_secs`, which varies run to run on the host (the same convention as
/// `RunReport`), plus `retries` and `interrupted`, which describe how this
/// particular run got there (a warm run retries nothing yet must compare
/// equal to the cold run that populated it).
impl PartialEq for SweepStats {
    fn eq(&self, other: &SweepStats) -> bool {
        self.total == other.total
            && self.executed == other.executed
            && self.cache_hits == other.cache_hits
            && self.unsupported == other.unsupported
            && self.errors == other.errors
            && self.failed == other.failed
            && self.sim_cycles == other.sim_cycles
    }
}

impl SweepStats {
    /// Aggregate simulator throughput of this run: simulated cycles per host
    /// wall-clock second across all workers. Zero for fully-cached runs.
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.sim_cycles as f64 / self.wall_secs
    }
}

/// A completed sweep: records in scenario order plus counters.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One record per grid cell, in grid order. An interrupted sweep
    /// ([`SweepStats::interrupted`]) holds only the cells that resolved
    /// before the drain.
    pub records: Vec<StoredRecord>,
    /// Execution counters.
    pub stats: SweepStats,
}

/// One execution attempt of a cell, fully isolated: a backend panic is
/// caught and every simulator error is folded into a record status.
fn attempt_cell(
    scenario: &Scenario,
    cfg: &CanonConfig,
    attempt: u32,
    cache: &OperandCache,
) -> (
    RecordStatus,
    u64,
    f64,
    u64,
    f64,
    Option<canon_core::StallBreakdown>,
) {
    if let Some(FaultAction::Transient { failures }) = cfg.fault {
        if attempt < failures {
            let detail = format!(
                "injected transient fault (attempt {} of {} failing)",
                attempt + 1,
                failures
            );
            return (
                RecordStatus::Failed(CellFailure::Transient { detail }),
                0,
                0.0,
                0,
                0.0,
                None,
            );
        }
    }
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let backend = backend_for(scenario.arch, scenario.geometry, cfg);
        if !backend.supports(&scenario.op) {
            return Ok(None);
        }
        backend
            .run_cached(&scenario.op, scenario.seed, cache)
            .map(Some)
    }));
    match run {
        Ok(Ok(Some(r))) => (
            RecordStatus::Ok,
            r.cycles,
            r.energy_pj,
            r.useful_macs,
            r.utilization,
            r.stalls,
        ),
        Ok(Ok(None)) | Ok(Err(BackendError::Unsupported)) => {
            (RecordStatus::Unsupported, 0, 0.0, 0, 0.0, None)
        }
        Ok(Err(BackendError::Sim(SimError::Deadlock { cycle, waiting_on }))) => (
            RecordStatus::Failed(CellFailure::Deadlock { detail: waiting_on }),
            cycle,
            0.0,
            0,
            0.0,
            None,
        ),
        Ok(Err(BackendError::Sim(SimError::Timeout { cycle, budget }))) => (
            RecordStatus::Failed(CellFailure::Timeout { detail: budget }),
            cycle,
            0.0,
            0,
            0.0,
            None,
        ),
        Ok(Err(BackendError::Sim(e))) => (RecordStatus::Error(e.to_string()), 0, 0.0, 0, 0.0, None),
        Err(payload) => {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            (
                RecordStatus::Failed(CellFailure::Panic { message }),
                0,
                0.0,
                0,
                0.0,
                None,
            )
        }
    }
}

/// Executes one cell to a final record, retrying transient failures with
/// exponential backoff. Returns the record and the retries consumed.
///
/// This is the sweep engine's whole per-cell fault-isolation stack —
/// `catch_unwind` around the backend, deadlock/timeout mapping into
/// structured [`CellFailure`] records, transient retry — packaged for
/// reuse: `run_sweep` calls it per grid cell, and the serving daemon
/// (`canon-serve`) calls it per request so protocol replies carry exactly
/// the taxonomy batch sweeps journal. Only [`SweepOptions::max_retries`]
/// and [`SweepOptions::retry_backoff`] are consulted from `opts`; `cfg`
/// must already be the cell's effective configuration (see
/// [`SweepOptions::cell_cfg`]) for `key` to be honest.
pub fn execute_cell(
    scenario: &Scenario,
    key: String,
    cfg: &CanonConfig,
    opts: &SweepOptions,
    cache: &OperandCache,
) -> (StoredRecord, u64) {
    let mut attempt: u32 = 0;
    let (status, cycles, energy_pj, useful_macs, utilization, stalls) = loop {
        let outcome = attempt_cell(scenario, cfg, attempt, cache);
        let transient = matches!(&outcome.0, RecordStatus::Failed(f) if f.is_transient());
        if transient && attempt < opts.max_retries {
            std::thread::sleep(opts.retry_backoff.saturating_mul(1 << attempt.min(16)));
            attempt += 1;
            continue;
        }
        break outcome;
    };
    let rec = StoredRecord {
        key,
        salt: CODE_SALT.to_string(),
        workload: scenario.workload.clone(),
        arch: scenario.arch.label().to_string(),
        band: scenario.band.map(|b| b.to_string()),
        rows: scenario.geometry.0,
        cols: scenario.geometry.1,
        scale: scenario.scale,
        seed: scenario.seed,
        op: scenario.op_descriptor(),
        status,
        cycles,
        energy_pj,
        useful_macs,
        utilization,
        stalls,
    };
    (rec, attempt as u64)
}

/// Runs the grid, consulting, journaling into, and finally rewriting
/// `store`.
///
/// Execution is skipped for every cell already present in the store under
/// its content key. Freshly computed records are fsync-appended to the
/// store's backing file as they complete (crash-safe journal); on clean
/// completion the file is atomically rewritten to hold the complete sweep
/// in grid order, so interrupted-then-resumed and uninterrupted runs
/// converge to byte-identical stores.
///
/// # Errors
///
/// Propagates store I/O errors. Per-cell simulator failures — including
/// panics, watchdog deadlocks, and budget timeouts — never abort the
/// sweep; they are quarantined as structured failure records and counted
/// in [`SweepStats::failed`] / [`SweepStats::errors`].
pub fn run_sweep(
    grid: &ScenarioGrid,
    store: &mut ResultStore,
    opts: &SweepOptions,
) -> io::Result<SweepOutcome> {
    let base_fingerprint = cfg_fingerprint(&opts.base_cfg);
    let keys: Vec<String> = grid
        .scenarios
        .iter()
        .enumerate()
        .map(|(i, s)| {
            if opts.budgets_set() || opts.fault_plan.action_for(i).is_some() {
                cell_key(s, &cfg_fingerprint(&opts.cell_cfg(i)))
            } else {
                cell_key(s, &base_fingerprint)
            }
        })
        .collect();

    let mut slots: Vec<Option<StoredRecord>> = grid
        .scenarios
        .iter()
        .zip(&keys)
        .map(|(_, key)| store.lookup(key).cloned())
        .collect();
    let misses: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_none().then_some(i))
        .collect();
    let cache_hits = slots.len() - misses.len();

    let jobs = opts.jobs.clamp(1, misses.len().max(1));
    // Contiguous deal: worker w owns a block of neighbouring cells, which
    // share operands and shapes, so stealing (from the back) tends to move
    // whole foreign cells rather than interleave one cell's architectures.
    let queues: Vec<Mutex<VecDeque<usize>>> = misses
        .chunks(misses.len().div_ceil(jobs).max(1))
        .map(|chunk| Mutex::new(chunk.iter().copied().collect()))
        .collect();
    let executed = AtomicUsize::new(0);
    let retries_total = std::sync::atomic::AtomicU64::new(0);
    // Stop-taking-new-cells flag: set by the caller's shutdown handle
    // (SIGINT) or internally when journaling hits an I/O error.
    let stop = AtomicBool::new(false);
    let stop_requested = || {
        stop.load(Ordering::Relaxed)
            || opts
                .shutdown
                .as_ref()
                .is_some_and(|f| f.load(Ordering::Relaxed))
    };
    // One operand cache for the whole sweep: the architectures of a cell
    // (and the same cell at other geometries) share materialized inputs.
    // Sized with the worker count — each worker drains its own contiguous
    // chunk with a distinct (op, seed), so capacity must comfortably cover
    // the keys live across all workers or the FIFO thrashes.
    let cache = OperandCache::with_capacity(16.max(2 * jobs));

    let wall_start = std::time::Instant::now();
    let finished = AtomicBool::new(false);
    // Workers stream completed cells to this thread, which journals each
    // one (fsync'd append) before parking it in its slot — the store is
    // never touched from more than one thread, and a kill at any instant
    // loses only cells whose append had not yet returned.
    let (tx, rx) = mpsc::channel::<(usize, StoredRecord)>();
    let mut journal_error: Option<io::Error> = None;
    let mut sim_cycles: u64 = 0;
    std::thread::scope(|scope| {
        if opts.progress && !misses.is_empty() {
            // Progress monitor: one line on stderr, rewritten in place, with
            // the throughput numbers a long sweep is usually watched for.
            let executed = &executed;
            let finished = &finished;
            let cache = &cache;
            let total = misses.len();
            scope.spawn(move || loop {
                let done = executed.load(Ordering::Relaxed);
                let secs = wall_start.elapsed().as_secs_f64();
                let (h, m) = (cache.hit_count(), cache.miss_count());
                let operand_rate = if h + m > 0 {
                    100.0 * h as f64 / (h + m) as f64
                } else {
                    0.0
                };
                let store_rate = if cache_hits + total > 0 {
                    100.0 * cache_hits as f64 / (cache_hits + total) as f64
                } else {
                    0.0
                };
                eprint!(
                    "\rsweep: {done}/{total} cells  {:.1} cells/sec  \
                         operand-cache {operand_rate:.0}%  store {store_rate:.0}%   ",
                    done as f64 / secs.max(1e-9),
                );
                if finished.load(Ordering::Relaxed) {
                    eprintln!();
                    break;
                }
                std::thread::sleep(Duration::from_millis(200));
            });
        }
        for w in 0..queues.len() {
            let queues = &queues;
            let keys = &keys;
            let executed = &executed;
            let retries_total = &retries_total;
            let cache = &cache;
            let stop_requested = &stop_requested;
            let tx = tx.clone();
            scope.spawn(move || {
                // Warm fabric reuse across this worker's cells: kernel
                // mappers acquire fabrics from the thread's pool, so
                // consecutive cells (and tiles within one cell) reset
                // slabs in place instead of reallocating them. Capacity 2
                // covers the two north-edge kinds at one geometry.
                let _pool = canon_core::pool::install(2);
                loop {
                    if stop_requested() {
                        break;
                    }
                    // Own deque first (front), then steal from the back
                    // of the first non-empty victim. The own-queue guard
                    // is dropped before any victim lock is taken.
                    let own = queues[w].lock().unwrap().pop_front();
                    let task = own.or_else(|| {
                        (1..queues.len())
                            .find_map(|d| queues[(w + d) % queues.len()].lock().unwrap().pop_back())
                    });
                    let Some(idx) = task else { break };
                    let scenario = &grid.scenarios[idx];
                    let cfg = opts.cell_cfg(idx);
                    let (rec, retries) =
                        execute_cell(scenario, keys[idx].clone(), &cfg, opts, cache);
                    retries_total.fetch_add(retries, Ordering::Relaxed);
                    executed.fetch_add(1, Ordering::Relaxed);
                    if tx.send((idx, rec)).is_err() {
                        break; // journal thread gone (I/O error drain)
                    }
                }
            });
        }
        drop(tx); // workers hold the remaining senders
        for (idx, rec) in rx {
            if journal_error.is_none() {
                if let Err(e) = store.append(&rec) {
                    // Stop issuing new cells; keep draining so workers exit.
                    journal_error = Some(e);
                    stop.store(true, Ordering::Relaxed);
                }
            }
            sim_cycles += rec.cycles;
            slots[idx] = Some(rec);
        }
        finished.store(true, Ordering::Relaxed);
    });
    if let Some(e) = journal_error {
        return Err(e);
    }
    let wall_secs = wall_start.elapsed().as_secs_f64();
    let interrupted = slots.iter().any(|s| s.is_none());

    let records: Vec<StoredRecord> = slots.into_iter().flatten().collect();
    if !interrupted {
        // The file holds this grid in scenario order, then every other
        // cached cell (other grids/scales/configurations) in key order —
        // rewriting for one grid must not evict the rest of the cache. An
        // interrupted sweep skips this: the fsync'd journal already holds
        // everything computed, and the next `--resume` run converges to
        // this same canonical layout.
        let current: std::collections::HashSet<&str> =
            records.iter().map(|r| r.key.as_str()).collect();
        let mut extras: Vec<StoredRecord> = store
            .records()
            .filter(|r| !current.contains(r.key.as_str()))
            .cloned()
            .collect();
        extras.sort_by(|a, b| a.key.cmp(&b.key));
        let mut file_records = records.clone();
        file_records.extend(extras);
        store.write_ordered(&file_records)?;
    }

    let stats = SweepStats {
        total: grid.scenarios.len(),
        executed: executed.load(Ordering::Relaxed),
        cache_hits,
        unsupported: records
            .iter()
            .filter(|r| r.status == RecordStatus::Unsupported)
            .count(),
        errors: records
            .iter()
            .filter(|r| matches!(r.status, RecordStatus::Error(_)))
            .count(),
        failed: records
            .iter()
            .filter(|r| matches!(r.status, RecordStatus::Failed(_)))
            .count(),
        retries: retries_total.load(Ordering::Relaxed),
        interrupted,
        sim_cycles,
        wall_secs,
    };
    Ok(SweepOutcome { records, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{GridBuilder, OpTemplate};

    fn tiny_grid() -> ScenarioGrid {
        GridBuilder::new()
            .workload(
                "GEMM",
                OpTemplate::Gemm {
                    m: 32,
                    k: 32,
                    n: 32,
                },
            )
            .workload(
                "SpMM",
                OpTemplate::Spmm {
                    m: 32,
                    k: 32,
                    n: 32,
                },
            )
            .bands(&[canon_sparse::gen::SparsityBand::S3])
            .build()
    }

    #[test]
    fn sweep_completes_and_orders_records() {
        let grid = tiny_grid();
        let mut store = ResultStore::in_memory();
        let out = run_sweep(
            &grid,
            &mut store,
            &SweepOptions {
                jobs: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.records.len(), grid.scenarios.len());
        assert_eq!(out.stats.executed, grid.scenarios.len());
        assert_eq!(out.stats.cache_hits, 0);
        assert_eq!(out.stats.failed, 0);
        assert!(!out.stats.interrupted);
        for (rec, scenario) in out.records.iter().zip(&grid.scenarios) {
            assert_eq!(rec.workload, scenario.workload);
            assert_eq!(rec.arch, scenario.arch.label());
            assert_eq!(
                rec.status,
                RecordStatus::Ok,
                "{}/{}",
                rec.workload,
                rec.arch
            );
        }
    }

    #[test]
    fn warm_store_skips_every_execution() {
        let grid = tiny_grid();
        let mut store = ResultStore::in_memory();
        let first = run_sweep(
            &grid,
            &mut store,
            &SweepOptions {
                jobs: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let second = run_sweep(
            &grid,
            &mut store,
            &SweepOptions {
                jobs: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(second.stats.executed, 0);
        assert_eq!(second.stats.cache_hits, grid.scenarios.len());
        assert_eq!(second.records, first.records);
    }

    #[test]
    fn jobs_do_not_change_results() {
        let grid = tiny_grid();
        let run = |jobs| {
            let mut store = ResultStore::in_memory();
            run_sweep(
                &grid,
                &mut store,
                &SweepOptions {
                    jobs,
                    ..Default::default()
                },
            )
            .unwrap()
            .records
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn rewriting_for_one_grid_preserves_other_grids_cache() {
        let grid_a = tiny_grid();
        let grid_b = GridBuilder::new()
            .workload(
                "Win",
                OpTemplate::Window {
                    seq: 64,
                    window_div: 8,
                    head_dim: 32,
                },
            )
            .build();
        let path = std::env::temp_dir().join(format!(
            "canon-sweep-crossgrid-{}.jsonl",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let opts = SweepOptions {
            jobs: 2,
            ..Default::default()
        };
        let mut store = ResultStore::open(&path).unwrap();
        run_sweep(&grid_a, &mut store, &opts).unwrap();
        drop(store);
        // Sweeping a different grid rewrites the file but must keep A's cells.
        let mut store = ResultStore::open(&path).unwrap();
        run_sweep(&grid_b, &mut store, &opts).unwrap();
        drop(store);
        let mut store = ResultStore::open(&path).unwrap();
        assert_eq!(store.len(), grid_a.scenarios.len() + grid_b.scenarios.len());
        let again = run_sweep(&grid_a, &mut store, &opts).unwrap();
        assert_eq!(again.stats.executed, 0, "grid A must still be fully cached");
        assert_eq!(again.stats.cache_hits, grid_a.scenarios.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sim_errors_are_recorded_not_fatal() {
        // The builder rounds dimensions to mapping-friendly sizes, so force
        // an invalid shape (K = 20 is not a multiple of the 8-row fabric)
        // onto the expanded scenario directly.
        let mut grid = GridBuilder::new()
            .archs(&[canon_energy::Arch::Canon])
            .workload(
                "odd",
                OpTemplate::Gemm {
                    m: 32,
                    k: 32,
                    n: 32,
                },
            )
            .build();
        for s in &mut grid.scenarios {
            s.op = canon_workloads::Workload::Tensor(canon_workloads::TensorOp::Spmm {
                m: 8,
                k: 20,
                n: 8,
                sparsity: 0.5,
            });
        }
        let mut store = ResultStore::in_memory();
        let out = run_sweep(
            &grid,
            &mut store,
            &SweepOptions {
                jobs: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.stats.errors, 1);
        assert!(matches!(out.records[0].status, RecordStatus::Error(_)));
    }

    /// A single-workload Canon-only grid: every cell runs the cycle
    /// simulator, so injected fabric faults always land.
    fn canon_grid() -> ScenarioGrid {
        GridBuilder::new()
            .archs(&[canon_energy::Arch::Canon])
            .workload(
                "GEMM",
                OpTemplate::Gemm {
                    m: 32,
                    k: 32,
                    n: 32,
                },
            )
            .workload(
                "SpMM",
                OpTemplate::Spmm {
                    m: 32,
                    k: 32,
                    n: 32,
                },
            )
            .bands(&[canon_sparse::gen::SparsityBand::S3])
            .build()
    }

    #[test]
    fn injected_panic_is_quarantined_not_fatal() {
        let grid = canon_grid();
        let opts = SweepOptions {
            jobs: 2,
            fault_plan: FaultPlan::new().with_fault(0, FaultAction::PanicAt { cycle: 4 }),
            ..Default::default()
        };
        let mut store = ResultStore::in_memory();
        let out = run_sweep(&grid, &mut store, &opts).unwrap();
        assert_eq!(out.stats.failed, 1);
        match &out.records[0].status {
            RecordStatus::Failed(CellFailure::Panic { message }) => {
                assert!(message.contains("injected fault"), "got: {message}");
            }
            other => panic!("expected a panic record, got {other:?}"),
        }
        // Healthy siblings are unaffected.
        assert!(out.records[1..]
            .iter()
            .all(|r| r.status == RecordStatus::Ok));
    }

    #[test]
    fn injected_deadlock_is_cached_on_warm_run() {
        let grid = canon_grid();
        let opts = SweepOptions {
            jobs: 1,
            fault_plan: FaultPlan::new().with_fault(1, FaultAction::WithholdCredits),
            ..Default::default()
        };
        let mut store = ResultStore::in_memory();
        let cold = run_sweep(&grid, &mut store, &opts).unwrap();
        assert_eq!(cold.stats.failed, 1);
        match &cold.records[1].status {
            RecordStatus::Failed(CellFailure::Deadlock { .. }) => {}
            other => panic!("expected a deadlock record, got {other:?}"),
        }
        assert!(cold.records[1].cycles > 0, "abort cycle is partial stats");
        // The failure is a cached outcome: the warm run re-simulates nothing.
        let warm = run_sweep(&grid, &mut store, &opts).unwrap();
        assert_eq!(warm.stats.executed, 0);
        assert_eq!(warm.stats.failed, 1);
        assert_eq!(warm.records, cold.records);
    }

    #[test]
    fn cycle_budget_times_out_runaway_cells() {
        let grid = canon_grid();
        let opts = SweepOptions {
            jobs: 1,
            cell_cycle_budget: Some(16),
            ..Default::default()
        };
        let mut store = ResultStore::in_memory();
        let out = run_sweep(&grid, &mut store, &opts).unwrap();
        assert_eq!(out.stats.failed, grid.scenarios.len());
        for rec in &out.records {
            match &rec.status {
                RecordStatus::Failed(CellFailure::Timeout { detail }) => {
                    assert!(detail.contains("cycle ceiling"));
                }
                other => panic!("expected timeout records, got {other:?}"),
            }
        }
    }

    #[test]
    fn transient_faults_retry_then_succeed_or_exhaust() {
        let grid = canon_grid();
        // Cell 0: fails once, succeeds on retry. Cell 1: outlasts the budget.
        let opts = SweepOptions {
            jobs: 1,
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            fault_plan: FaultPlan::new()
                .with_fault(0, FaultAction::Transient { failures: 1 })
                .with_fault(1, FaultAction::Transient { failures: 9 }),
            ..Default::default()
        };
        let mut store = ResultStore::in_memory();
        let out = run_sweep(&grid, &mut store, &opts).unwrap();
        assert_eq!(out.records[0].status, RecordStatus::Ok);
        match &out.records[1].status {
            RecordStatus::Failed(CellFailure::Transient { detail }) => {
                assert!(detail.contains("injected transient fault"));
            }
            other => panic!("expected exhausted-transient record, got {other:?}"),
        }
        // 1 retry healed cell 0; 2 (the budget) were burned on cell 1.
        assert_eq!(out.stats.retries, 3);
        assert_eq!(out.stats.failed, 1);
    }

    #[test]
    fn faulted_cells_use_distinct_cache_keys() {
        let grid = canon_grid();
        let mut store = ResultStore::in_memory();
        let healthy = run_sweep(&grid, &mut store, &SweepOptions::default()).unwrap();
        // Injecting a fault into a warm store must not serve the healthy
        // record for the faulted cell, and must not evict it either.
        let opts = SweepOptions {
            fault_plan: FaultPlan::new().with_fault(0, FaultAction::PanicAt { cycle: 0 }),
            ..Default::default()
        };
        let faulted = run_sweep(&grid, &mut store, &opts).unwrap();
        assert_eq!(faulted.stats.executed, 1, "only the faulted cell misses");
        assert!(matches!(
            faulted.records[0].status,
            RecordStatus::Failed(CellFailure::Panic { .. })
        ));
        let healthy_again = run_sweep(&grid, &mut store, &SweepOptions::default()).unwrap();
        assert_eq!(healthy_again.stats.executed, 0);
        assert_eq!(healthy_again.records, healthy.records);
    }

    #[test]
    fn preset_shutdown_interrupts_before_any_cell() {
        let grid = canon_grid();
        let flag = Arc::new(AtomicBool::new(true));
        let opts = SweepOptions {
            jobs: 2,
            shutdown: Some(Arc::clone(&flag)),
            ..Default::default()
        };
        let mut store = ResultStore::in_memory();
        let out = run_sweep(&grid, &mut store, &opts).unwrap();
        assert!(out.stats.interrupted);
        assert_eq!(out.stats.executed, 0);
        assert!(out.records.is_empty());
        // Clearing the flag resumes to a complete sweep.
        flag.store(false, Ordering::Relaxed);
        let full = run_sweep(&grid, &mut store, &opts).unwrap();
        assert!(!full.stats.interrupted);
        assert_eq!(full.records.len(), grid.scenarios.len());
    }
}
