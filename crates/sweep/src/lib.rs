//! `canon-sweep` — a parallel scenario-sweep engine over every simulator in
//! the workspace.
//!
//! The per-figure harness (`canon-bench`) runs one (architecture, workload)
//! pair at a time on a single thread. This crate turns the workspace into a
//! throughput-oriented evaluation service:
//!
//! * [`scenario`] — a declarative scenario grid (architecture ×
//!   [`Workload`] × sparsity band × fabric geometry × scale) with a builder
//!   API and cartesian expansion. The workload axis spans both of the
//!   paper's execution classes — tensor kernels
//!   ([`TensorOp`]) and PolyBench loop nests
//!   ([`canon_workloads::LoopKernel`]) — and the geometry axis applies to
//!   every architecture: baselines are provisioned **iso-MAC** with the
//!   Canon fabric of each cell, so a geometry sweep compares equal peak
//!   compute at every point;
//! * [`backend`] — the [`Backend`](backend::Backend) trait: one uniform
//!   `supports`/`run` interface over any [`Workload`], implemented for
//!   Canon and the four baseline simulators, replacing per-figure dispatch
//!   (loop nests on the tensor-only baselines surface as `Unsupported`, the
//!   figures' `X` cells);
//! * [`engine`] — a work-stealing thread-pool driver over `std` scoped
//!   threads; output ordering is deterministic regardless of completion
//!   order, so equal grids produce byte-identical result files at any
//!   thread count. Cells execute under `catch_unwind` with per-cell
//!   wall-clock/cycle budgets and bounded transient retry, so panics,
//!   deadlocks, and runaways become structured
//!   [`CellFailure`](store::CellFailure) records instead of lost sweeps —
//!   with a deterministic [`FaultPlan`](canon_core::FaultPlan) hook to
//!   exercise every failure path on demand;
//! * [`store`] — a JSONL result store (hand-rolled serializer, no external
//!   deps) keyed by a content hash of (scenario, configuration,
//!   code-version salt), giving re-runs cache hits instead of simulations.
//!   The file doubles as a crash-safe journal (fsync'd appends, torn-tail
//!   recovery on open, atomic tmp+rename rewrites), so an interrupted
//!   sweep resumes from what it already paid for; [`ResultStore::compact`]
//!   garbage-collects records stranded by salt/schema bumps;
//! * [`report`] — cross-backend speedup and EDP comparison tables built on
//!   [`report::format_matrix`], plus the [`report::quarantine_report`]
//!   failure summary.
//!
//! # Example
//!
//! ```
//! use canon_sweep::engine::{run_sweep, SweepOptions};
//! use canon_sweep::report::speedup_table;
//! use canon_sweep::scenario::ScenarioGrid;
//! use canon_sweep::store::ResultStore;
//!
//! # fn main() -> std::io::Result<()> {
//! let grid = ScenarioGrid::standard(8); // 1/8-scale smoke grid
//! let mut store = ResultStore::in_memory();
//! let out = run_sweep(&grid, &mut store, &SweepOptions { jobs: 2, ..Default::default() })?;
//! assert_eq!(out.stats.total, grid.scenarios.len());
//! println!("{}", speedup_table(&out.records));
//! # Ok(())
//! # }
//! ```
//!
//! [`TensorOp`]: canon_workloads::TensorOp
//! [`Workload`]: canon_workloads::Workload

pub mod backend;
pub mod engine;
pub mod report;
pub mod scenario;
pub mod store;

pub use backend::{all_backends, backend_for, Backend, BackendError, CanonBackend, RunRecord};
pub use engine::{execute_cell, run_sweep, SweepOptions, SweepOutcome, SweepStats};
pub use report::{
    edp_table, format_matrix, quarantine_report, quarantine_report_with, speedup_table,
};
pub use scenario::{GridBuilder, OpTemplate, Scenario, ScenarioGrid, WorkloadSpec};
pub use store::{CellFailure, CompactStats, RecoveryStats, ResultStore, StoreLock, StoredRecord};
