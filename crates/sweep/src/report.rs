//! Cross-backend comparison tables over sweep records.
//!
//! [`format_matrix`] is the workspace's shared architecture × workload table
//! renderer (re-exported by `canon-bench`, whose figures use it directly);
//! [`speedup_table`] and [`edp_table`] assemble it from a sweep's
//! [`StoredRecord`]s, normalizing each workload cell to Canon exactly like
//! Figs 12–14.

use crate::store::{RecordStatus, StoredRecord};
use canon_energy::{edp, Arch};

/// Formats a normalized-metric table: rows = architectures, columns =
/// workloads; `None` renders as `X` (unsupported), as in Figs 12/13.
pub fn format_matrix(
    title: &str,
    columns: &[String],
    rows: &[(&'static str, Vec<Option<f64>>)],
) -> String {
    use std::fmt::Write as _;
    // Keep the figures' classic 13-char columns, widening when a sweep
    // label (band/scale/geometry suffixes) would otherwise run into its
    // neighbour.
    let width = columns
        .iter()
        .map(|c| c.len() + 2)
        .max()
        .unwrap_or(0)
        .max(13);
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = write!(out, "{:<14}", "arch");
    for c in columns {
        let _ = write!(out, "{c:>width$}");
    }
    let _ = writeln!(out);
    for (name, vals) in rows {
        let _ = write!(out, "{name:<14}");
        for v in vals {
            match v {
                Some(x) => {
                    let _ = write!(out, "{x:>width$.3}");
                }
                None => {
                    let _ = write!(out, "{:>width$}", "X");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// One workload cell of a sweep: its label and the per-architecture records
/// in [`Arch::all`] order (missing/unsupported → `None`).
fn group_cells(records: &[StoredRecord]) -> Vec<(String, Vec<Option<&StoredRecord>>)> {
    let arch_index = |label: &str| Arch::all().iter().position(|a| a.label() == label);
    let mut cells: Vec<(String, Vec<Option<&StoredRecord>>)> = Vec::new();
    for rec in records {
        let label = rec.cell_label();
        let entry = match cells.iter_mut().find(|(l, _)| *l == label) {
            Some(e) => e,
            None => {
                cells.push((label, vec![None; Arch::all().len()]));
                cells.last_mut().expect("just pushed")
            }
        };
        if let Some(i) = arch_index(&rec.arch) {
            if rec.status == RecordStatus::Ok {
                entry.1[i] = Some(rec);
            }
        }
    }
    cells
}

fn normalized_table(
    title: &str,
    records: &[StoredRecord],
    metric: impl Fn(&StoredRecord) -> f64,
    invert: bool,
) -> String {
    let cells = group_cells(records);
    let canon_idx = Arch::all()
        .iter()
        .position(|a| *a == Arch::Canon)
        .expect("Canon is in Arch::all");
    let columns: Vec<String> = cells.iter().map(|(l, _)| l.clone()).collect();
    let rows: Vec<(&'static str, Vec<Option<f64>>)> = Arch::all()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let vals = cells
                .iter()
                .map(|(_, recs)| {
                    let canon = metric(recs[canon_idx]?);
                    let own = metric(recs[i]?);
                    if own <= 0.0 || canon <= 0.0 {
                        return None;
                    }
                    Some(if invert { canon / own } else { own / canon })
                })
                .collect();
            (a.label(), vals)
        })
        .collect();
    format_matrix(title, &columns, &rows)
}

/// Performance (cycles) of every architecture normalized to Canon — higher
/// is better, Canon ≡ 1. Columns are workload cells in sweep order.
pub fn speedup_table(records: &[StoredRecord]) -> String {
    normalized_table(
        "Sweep: performance normalized to Canon",
        records,
        |r| r.cycles as f64,
        true,
    )
}

/// Energy-delay product normalized to Canon — lower is better, Canon ≡ 1.
pub fn edp_table(records: &[StoredRecord]) -> String {
    normalized_table(
        "Sweep: EDP normalized to Canon (lower is better)",
        records,
        |r| edp(r.energy_pj, r.cycles, 1e9),
        false,
    )
}

/// The quarantine summary of a sweep: one line per cell the
/// fault-tolerance layer isolated (panic, deadlock, timeout, exhausted
/// transient retries), or `None` when every cell is healthy. The `repro`
/// binary prints this at sweep end and exits nonzero when it is `Some`.
///
/// Equivalent to [`quarantine_report_with`] with no run context.
pub fn quarantine_report(records: &[StoredRecord]) -> Option<String> {
    quarantine_report_with(records, None)
}

/// [`quarantine_report`] with run context from the sweep's
/// [`SweepStats`](crate::engine::SweepStats): when `stats` is given, the
/// header carries the transient-retry count and whether the run was
/// interrupted mid-sweep (records then cover only the cells that resolved
/// — a resumed run may quarantine more).
pub fn quarantine_report_with(
    records: &[StoredRecord],
    stats: Option<&crate::engine::SweepStats>,
) -> Option<String> {
    use std::fmt::Write as _;
    let failed: Vec<&StoredRecord> = records
        .iter()
        .filter(|r| matches!(r.status, RecordStatus::Failed(_)))
        .collect();
    if failed.is_empty() {
        return None;
    }
    let mut out = String::new();
    let _ = write!(out, "== Quarantined cells: {} ==", failed.len());
    if let Some(s) = stats {
        if s.retries > 0 {
            let _ = write!(out, " ({} transient retr{})", s.retries, {
                if s.retries == 1 {
                    "y"
                } else {
                    "ies"
                }
            });
        }
        if s.interrupted {
            let _ = write!(out, " [run interrupted: partial coverage]");
        }
    }
    let _ = writeln!(out);
    for rec in failed {
        let RecordStatus::Failed(f) = &rec.status else {
            continue;
        };
        let mut reason = f.reason().to_string();
        if reason.len() > 72 {
            reason.truncate(69);
            reason.push_str("...");
        }
        let _ = writeln!(
            out,
            "  {:<28} {:<12} {:<9} at cycle {:<8} {}",
            rec.cell_label(),
            rec.arch,
            f.kind(),
            rec.cycles,
            reason
        );
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(workload: &str, arch: &str, cycles: u64, energy: f64, ok: bool) -> StoredRecord {
        StoredRecord {
            key: format!("{workload}-{arch}"),
            salt: crate::store::CODE_SALT.into(),
            workload: workload.into(),
            arch: arch.into(),
            band: None,
            rows: 8,
            cols: 8,
            scale: 1,
            seed: 0,
            op: "gemm(m=1,k=1,n=1)".into(),
            status: if ok {
                RecordStatus::Ok
            } else {
                RecordStatus::Unsupported
            },
            cycles,
            energy_pj: energy,
            useful_macs: 1,
            utilization: 0.5,
            stalls: None,
        }
    }

    #[test]
    fn speedup_normalizes_to_canon() {
        let records = vec![
            rec("W", "Systolic", 200, 10.0, true),
            rec("W", "Canon", 100, 10.0, true),
        ];
        let t = speedup_table(&records);
        assert!(t.contains("W"));
        // Canon row shows 1.000, systolic shows 0.500 (twice the cycles).
        assert!(t.contains("1.000"), "{t}");
        assert!(t.contains("0.500"), "{t}");
    }

    #[test]
    fn unsupported_renders_as_x() {
        let records = vec![
            rec("W", "Systolic", 200, 10.0, false),
            rec("W", "Canon", 100, 10.0, true),
        ];
        let t = edp_table(&records);
        assert!(t.contains('X'), "{t}");
    }

    #[test]
    fn quarantine_report_lists_only_failures() {
        use crate::store::CellFailure;
        let healthy = vec![rec("W", "Canon", 100, 10.0, true)];
        assert_eq!(quarantine_report(&healthy), None);
        let mut bad = rec("W", "Systolic", 917, 0.0, true);
        bad.status = RecordStatus::Failed(CellFailure::Panic {
            message: "injected fault: forced panic at cycle 3".into(),
        });
        let records = vec![healthy[0].clone(), bad];
        let report = quarantine_report(&records).expect("one quarantined cell");
        assert!(report.contains("Quarantined cells: 1"), "{report}");
        assert!(report.contains("panic"), "{report}");
        assert!(report.contains("917"), "{report}");
        assert!(
            !report.contains("Canon "),
            "healthy cells stay out: {report}"
        );
    }

    #[test]
    fn matrix_formatting_renders_x() {
        let s = format_matrix(
            "t",
            &["a".into(), "b".into()],
            &[("canon", vec![Some(1.0), None])],
        );
        assert!(s.contains('X'));
        assert!(s.contains("1.000"));
    }
}
