//! Area / power / energy models (§6.1, Figs 9–11, 13, 14).
//!
//! The paper synthesises every architecture at the same 22 nm node and
//! reports *relative* area and power. This crate substitutes synthesis with
//! component-level tables ([`tech`]): per-component areas calibrated so that
//! the relative breakdowns match the paper's Figs 9/10, and per-event
//! energies at 22 nm-plausible magnitudes applied to the *measured* activity
//! counts from the cycle simulators. Absolute numbers are therefore
//! indicative; ratios (area overheads, perf/W, EDP) are the reproduced
//! quantities — see DESIGN.md's substitution table.

pub mod area;
pub mod power;
pub mod tech;

pub use area::{arch_area, ArchArea};
pub use power::{baseline_energy, canon_energy, canon_loop_energy, EnergyBreakdown};

/// The architectures compared throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Canon (this paper).
    Canon,
    /// Dense systolic array (TPU-like).
    Systolic,
    /// 2:4 sparse systolic (tensor-core-like).
    Systolic24,
    /// ZeD-like variably-sparse accelerator.
    Zed,
    /// HyCUBE-like CGRA.
    Cgra,
}

impl Arch {
    /// All architectures in the figures' order.
    pub fn all() -> [Arch; 5] {
        [
            Arch::Systolic,
            Arch::Systolic24,
            Arch::Zed,
            Arch::Cgra,
            Arch::Canon,
        ]
    }

    /// Display name used in harness tables.
    pub fn label(&self) -> &'static str {
        match self {
            Arch::Canon => "Canon",
            Arch::Systolic => "Systolic",
            Arch::Systolic24 => "Systolic-2:4",
            Arch::Zed => "ZeD",
            Arch::Cgra => "CGRA",
        }
    }
}

/// Energy-delay product in pJ·s for a run at the given clock.
pub fn edp(energy_pj: f64, cycles: u64, hz: f64) -> f64 {
    energy_pj * cycles as f64 / hz
}

/// Performance (useful ops per second) per watt.
///
/// `useful_ops` over `cycles` at `hz`, against average power
/// `energy_pj / time`.
pub fn perf_per_watt(useful_ops: u64, cycles: u64, energy_pj: f64, hz: f64) -> f64 {
    if cycles == 0 || energy_pj <= 0.0 {
        return 0.0;
    }
    let time_s = cycles as f64 / hz;
    let ops_per_s = useful_ops as f64 / time_s;
    let watts = energy_pj * 1e-12 / time_s;
    ops_per_s / watts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edp_scales_linearly() {
        let a = edp(100.0, 10, 1e9);
        let b = edp(100.0, 20, 1e9);
        assert!((b / a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn perf_per_watt_zero_guards() {
        assert_eq!(perf_per_watt(100, 0, 10.0, 1e9), 0.0);
        assert_eq!(perf_per_watt(100, 10, 0.0, 1e9), 0.0);
        assert!(perf_per_watt(100, 10, 10.0, 1e9) > 0.0);
    }

    #[test]
    fn arch_labels_unique() {
        let mut labels: Vec<_> = Arch::all().iter().map(|a| a.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }
}
