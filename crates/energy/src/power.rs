//! Activity-based energy model (Figs 11, 13, 14).
//!
//! Every energy figure is computed from *measured* activity counts: the
//! Canon cycle simulator's [`canon_core::stats::Stats`] and the baseline
//! models' [`canon_baselines::Activity`], multiplied by the per-event
//! energies of [`crate::tech`].

use crate::tech::energy_pj as e;
use crate::Arch;
use canon_baselines::BaselineRun;
use canon_core::stats::RunReport;
use canon_core::LANES;

/// A component-wise energy breakdown in pJ.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyBreakdown {
    /// `(component name, energy pJ)` pairs.
    pub components: Vec<(&'static str, f64)>,
}

impl EnergyBreakdown {
    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.components.iter().map(|(_, v)| v).sum()
    }

    /// Energy of one named component (0 when absent).
    pub fn component(&self, name: &str) -> f64 {
        self.components
            .iter()
            .filter(|(n, _)| *n == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Average power in mW for a run of `cycles` at `hz`.
    pub fn avg_power_mw(&self, cycles: u64, hz: f64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        let time_s = cycles as f64 / hz;
        self.total_pj() * 1e-12 / time_s * 1e3
    }
}

/// Energy of a Canon fabric run, split per Fig 11's categories
/// (data memory, scratchpad read/write, compute, control & routing).
pub fn canon_energy(report: &RunReport) -> EnergyBreakdown {
    let s = &report.stats;
    let dmem = s.dmem_reads as f64 * e::DMEM_READ + s.dmem_writes as f64 * e::DMEM_WRITE;
    let spad_read = s.spad_reads as f64 * e::SPAD_READ;
    let spad_write = s.spad_writes as f64 * e::SPAD_WRITE;
    let compute = s.compute_instrs as f64 * LANES as f64 * e::MAC_SCALAR;
    let control_routing = s.noc_hops as f64 * e::NOC_HOP
        + s.orch_steps as f64 * e::ORCH_STEP
        + s.orch_transitions as f64 * e::ORCH_TRANSITION
        + s.orch_messages as f64 * e::ORCH_MESSAGE
        + s.instrs_executed as f64 * e::INSTR_LATCH;
    let dram = (s.offchip_read_bytes + s.offchip_write_bytes) as f64 * e::DRAM_BYTE;
    EnergyBreakdown {
        components: vec![
            ("data memory", dmem),
            ("spad-read", spad_read),
            ("spad-write", spad_write),
            ("compute", compute),
            ("control & routing", control_routing),
            ("dram", dram),
        ],
    }
}

/// Energy of a Canon loop-IR (PolyBench) run from the analytic mapping
/// model's activity (lane instructions ≈ one dmem read + one lane op each).
pub fn canon_loop_energy(cycles: u64, lane_instrs: u64, useful_ops: u64) -> EnergyBreakdown {
    let compute = useful_ops as f64 * e::MAC_SCALAR;
    let dmem = lane_instrs as f64 * e::DMEM_READ;
    let control = lane_instrs as f64 * e::INSTR_LATCH + cycles as f64 * 8.0 * e::ORCH_STEP;
    EnergyBreakdown {
        components: vec![
            ("data memory", dmem),
            ("compute", compute),
            ("control & routing", control),
        ],
    }
}

/// Energy of a baseline run under that architecture's coefficient set.
pub fn baseline_energy(arch: Arch, run: &BaselineRun) -> EnergyBreakdown {
    let a = &run.activity;
    let compute = a.macs as f64 * e::MAC_SCALAR;
    let dram = (a.offchip_read_bytes + a.offchip_write_bytes) as f64 * e::DRAM_BYTE;
    let components = match arch {
        Arch::Systolic | Arch::Systolic24 => vec![
            (
                "data memory",
                (a.sram_reads + a.sram_writes) as f64 * e::SHARED_SRAM_ACCESS,
            ),
            ("compute", compute),
            (
                "control & routing",
                a.noc_hops as f64 * e::SYSTOLIC_HOP + a.control_events as f64 * e::SEQ_CONTROL,
            ),
            ("sparsity decode", a.special_events as f64 * e::DECODER),
            ("dram", dram),
        ],
        Arch::Zed => vec![
            (
                "data memory",
                (a.sram_reads + a.sram_writes) as f64 * e::SHARED_SRAM_ACCESS,
            ),
            ("compute", compute),
            (
                "control & routing",
                a.control_events as f64 * e::SEQ_CONTROL,
            ),
            (
                "crossbar & decode",
                a.special_events as f64 * (e::CROSSBAR + e::DECODER) / 2.0,
            ),
            ("dram", dram),
        ],
        Arch::Cgra => vec![
            (
                "data memory",
                (a.sram_reads + a.sram_writes) as f64 * e::SHARED_SRAM_ACCESS,
            ),
            ("compute", compute),
            (
                "control & routing",
                a.noc_hops as f64 * e::CGRA_HOP
                    + a.instr_fetches as f64 * e::CGRA_INSTR_FETCH
                    + a.control_events as f64 * e::SEQ_CONTROL,
            ),
            ("dram", dram),
        ],
        Arch::Canon => vec![("compute", compute), ("dram", dram)],
    };
    EnergyBreakdown { components }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_baselines::{Accelerator, Cgra, SystolicArray, ZedAccelerator};
    use canon_core::stats::Stats;

    fn canon_report(spad: u64, macs: u64) -> RunReport {
        let mut stats = Stats::new();
        stats.mac_instrs = macs;
        stats.compute_instrs = macs;
        stats.spad_reads = spad;
        stats.spad_writes = spad;
        stats.dmem_reads = macs;
        stats.orch_steps = 100;
        stats.instrs_executed = macs * 8;
        RunReport {
            cycles: 1000,
            pes: 64,
            stats,
            wall_ns: 0,
        }
    }

    #[test]
    fn spad_component_tracks_usage() {
        let regular = canon_energy(&canon_report(0, 1000));
        let irregular = canon_energy(&canon_report(2000, 1000));
        assert_eq!(regular.component("spad-read"), 0.0);
        assert!(irregular.component("spad-read") > 0.0);
        assert!(irregular.total_pj() > regular.total_pj());
    }

    #[test]
    fn avg_power_sane() {
        let b = canon_energy(&canon_report(100, 1000));
        let mw = b.avg_power_mw(1000, 1e9);
        assert!(mw > 0.0 && mw < 10_000.0, "power {mw} mW");
        assert_eq!(b.avg_power_mw(0, 1e9), 0.0);
    }

    #[test]
    fn cgra_control_heavier_than_systolic() {
        // Same dense GEMM; the CGRA pays instruction fetches every cycle.
        let sys = SystolicArray::default().gemm(128, 128, 128).unwrap();
        let cg = Cgra::default().gemm(128, 128, 128).unwrap();
        let es = baseline_energy(Arch::Systolic, &sys);
        let ec = baseline_energy(Arch::Cgra, &cg);
        assert!(
            ec.component("control & routing") > 3.0 * es.component("control & routing"),
            "cgra {} vs systolic {}",
            ec.component("control & routing"),
            es.component("control & routing")
        );
    }

    #[test]
    fn zed_pays_crossbar_energy() {
        let mut rng = canon_sparse::gen::seeded_rng(1);
        let a = canon_sparse::gen::random_sparse(128, 128, 0.5, &mut rng);
        let r = ZedAccelerator::default().spmm(&a, 128).unwrap();
        let ez = baseline_energy(Arch::Zed, &r);
        assert!(ez.component("crossbar & decode") > 0.0);
    }

    #[test]
    fn loop_energy_components() {
        let b = canon_loop_energy(1000, 5000, 4000);
        assert!(b.component("compute") > 0.0);
        assert!(b.component("data memory") > 0.0);
        assert!(b.total_pj() > 0.0);
    }
}
