//! Technology constants: per-component areas and per-event energies.
//!
//! ## Calibration
//!
//! Areas are in normalised units with **Canon's 8×8 Table 1 instance ≡ 1.0**,
//! split per Fig 10: data memory 58%, scratchpads 13%, compute 16%, routing
//! 5%, control (orchestrators incl. the 6 KB LUT each) 8%. Baseline totals
//! are derived from the paper's reported deltas (systolic ≈ Canon/1.30, ZeD
//! ≈ Canon/1.11, CGRA ≈ Canon×1.075) with component splits consistent with
//! each design's structure (Fig 9's ablation arrows).
//!
//! Energies are 22 nm-plausible magnitudes (pJ per event): an INT8 MAC a
//! fraction of a pJ, small-SRAM word accesses ≈ 1 pJ, with specialised units
//! (ZeD crossbars/decoders, CGRA per-PE instruction fetch) charged per event
//! so that the power *structure* of §6.2 emerges from measured activity.

/// Number of PEs in the reference Canon instance.
pub const CANON_PES: f64 = 64.0;
/// Number of orchestrators in the reference instance.
pub const CANON_ORCHS: f64 = 8.0;

/// Normalised per-unit areas (Canon instance total = 1.0).
pub mod area_units {
    /// Canon: one PE's 4 KB data memory.
    pub const CANON_DMEM_PE: f64 = 0.58 / 64.0;
    /// Canon: one PE's dual-port scratchpad.
    pub const CANON_SPAD_PE: f64 = 0.13 / 64.0;
    /// Canon: one PE's 4-lane INT8 vector unit + registers + pipeline.
    pub const CANON_COMPUTE_PE: f64 = 0.16 / 64.0;
    /// Canon: one PE's circuit-switched router.
    pub const CANON_ROUTER_PE: f64 = 0.05 / 64.0;
    /// Canon: one orchestrator (FSM datapath + 6 KB LUT SRAM).
    pub const CANON_ORCH: f64 = 0.08 / 8.0;

    /// Systolic: shared edge SRAM (same capacity, denser than distributed).
    pub const SYSTOLIC_SHARED_MEM: f64 = 0.55;
    /// Systolic: 256 MACs with pipeline registers.
    pub const SYSTOLIC_COMPUTE: f64 = 0.16;
    /// Systolic: sequencer + accumulators + shift wiring.
    pub const SYSTOLIC_CONTROL: f64 = 0.06;

    /// 2:4 systolic additions: metadata decoders + operand muxes.
    pub const SYSTOLIC24_DECODE: f64 = 0.035;

    /// ZeD: specialised memory banks.
    pub const ZED_MEM_BANKS: f64 = 0.52;
    /// ZeD: compute units (256 MACs).
    pub const ZED_COMPUTE: f64 = 0.16;
    /// ZeD: fully-connected crossbars.
    pub const ZED_CROSSBAR: f64 = 0.08;
    /// ZeD: sparsity decoders.
    pub const ZED_DECODER: f64 = 0.07;
    /// ZeD: schedulers / work-stealing control.
    pub const ZED_CONTROL: f64 = 0.07;

    /// CGRA: edge memory banks.
    pub const CGRA_EDGE_MEM: f64 = 0.55;
    /// CGRA: 256 scalar FUs.
    pub const CGRA_COMPUTE: f64 = 0.16;
    /// CGRA: per-PE instruction memories (the cost Canon's orchestrators
    /// amortise away — Fig 9's "−Instr. Mem +Orchestrators").
    pub const CGRA_INSTR_MEM: f64 = 0.14;
    /// CGRA: over-provisioned multi-hop routing.
    pub const CGRA_ROUTING: f64 = 0.12;
    /// CGRA: configuration/control logic.
    pub const CGRA_CONTROL: f64 = 0.105;
}

/// Per-event energies in pJ.
pub mod energy_pj {
    /// One scalar INT8 MAC.
    pub const MAC_SCALAR: f64 = 0.2;
    /// One 4-byte word read from a per-PE 4 KB SRAM.
    pub const DMEM_READ: f64 = 1.1;
    /// One 4-byte word write to a per-PE 4 KB SRAM.
    pub const DMEM_WRITE: f64 = 1.2;
    /// One scratchpad entry read (dual-port 64 B macro).
    pub const SPAD_READ: f64 = 0.25;
    /// One scratchpad entry write.
    pub const SPAD_WRITE: f64 = 0.3;
    /// One inter-PE link traversal (4 B).
    pub const NOC_HOP: f64 = 0.15;
    /// One orchestrator cycle (FSM datapath + LUT lookup).
    pub const ORCH_STEP: f64 = 0.4;
    /// Extra energy of a data-driven state transition.
    pub const ORCH_TRANSITION: f64 = 0.1;
    /// One inter-orchestrator message.
    pub const ORCH_MESSAGE: f64 = 0.1;
    /// One instruction traversing one PE's pipeline latches.
    pub const INSTR_LATCH: f64 = 0.08;

    /// Baseline: shared/banked SRAM word access.
    pub const SHARED_SRAM_ACCESS: f64 = 1.0;
    /// Baseline: systolic shift-register hop.
    pub const SYSTOLIC_HOP: f64 = 0.05;
    /// Baseline: per-cycle per-lane sequencing control.
    pub const SEQ_CONTROL: f64 = 0.01;
    /// ZeD: one crossbar word traversal.
    pub const CROSSBAR: f64 = 0.5;
    /// ZeD / 2:4 systolic: one sparsity-decoder lookup.
    pub const DECODER: f64 = 0.3;
    /// CGRA: one per-PE instruction fetch from local instruction memory.
    pub const CGRA_INSTR_FETCH: f64 = 0.35;
    /// CGRA: one routed operand hop on the multi-hop NoC.
    pub const CGRA_HOP: f64 = 0.2;
    /// Off-chip DRAM access energy per byte (LPDDR5X-class).
    pub const DRAM_BYTE: f64 = 4.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canon_components_sum_to_unity() {
        let total = area_units::CANON_DMEM_PE * CANON_PES
            + area_units::CANON_SPAD_PE * CANON_PES
            + area_units::CANON_COMPUTE_PE * CANON_PES
            + area_units::CANON_ROUTER_PE * CANON_PES
            + area_units::CANON_ORCH * CANON_ORCHS;
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sram_accesses_dominate_macs() {
        // Sanity of magnitudes: memory access > MAC, scratchpad < dmem.
        assert!(energy_pj::DMEM_READ > energy_pj::MAC_SCALAR);
        assert!(energy_pj::SPAD_READ < energy_pj::DMEM_READ);
        assert!(energy_pj::DRAM_BYTE > energy_pj::DMEM_READ);
    }
}
