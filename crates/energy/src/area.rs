//! Area model: per-architecture component breakdowns (Figs 9, 10).

use crate::tech::{area_units as au, CANON_ORCHS, CANON_PES};
use crate::Arch;

/// A component-wise area breakdown (normalised units, Canon ≡ 1.0).
#[derive(Debug, Clone, PartialEq)]
pub struct ArchArea {
    /// Architecture.
    pub arch: Arch,
    /// `(component name, area)` pairs.
    pub components: Vec<(&'static str, f64)>,
}

impl ArchArea {
    /// Total area.
    pub fn total(&self) -> f64 {
        self.components.iter().map(|(_, a)| a).sum()
    }

    /// Fraction of total occupied by `name` (0 when absent).
    pub fn fraction(&self, name: &str) -> f64 {
        let total = self.total();
        self.components
            .iter()
            .filter(|(n, _)| *n == name)
            .map(|(_, a)| a / total)
            .sum()
    }
}

/// The area breakdown of one architecture at Table 1 provisioning
/// (256 MACs, 1 KB memory per MAC).
pub fn arch_area(arch: Arch) -> ArchArea {
    let components = match arch {
        Arch::Canon => vec![
            ("data memory", au::CANON_DMEM_PE * CANON_PES),
            ("scratchpad", au::CANON_SPAD_PE * CANON_PES),
            ("compute", au::CANON_COMPUTE_PE * CANON_PES),
            ("routing", au::CANON_ROUTER_PE * CANON_PES),
            ("control", au::CANON_ORCH * CANON_ORCHS),
        ],
        Arch::Systolic => vec![
            ("data memory", au::SYSTOLIC_SHARED_MEM),
            ("compute", au::SYSTOLIC_COMPUTE),
            ("control", au::SYSTOLIC_CONTROL),
        ],
        Arch::Systolic24 => vec![
            ("data memory", au::SYSTOLIC_SHARED_MEM),
            ("compute", au::SYSTOLIC_COMPUTE),
            ("control", au::SYSTOLIC_CONTROL),
            ("sparsity decode", au::SYSTOLIC24_DECODE),
        ],
        Arch::Zed => vec![
            ("data memory", au::ZED_MEM_BANKS),
            ("compute", au::ZED_COMPUTE),
            ("crossbar", au::ZED_CROSSBAR),
            ("sparsity decode", au::ZED_DECODER),
            ("control", au::ZED_CONTROL),
        ],
        Arch::Cgra => vec![
            ("data memory", au::CGRA_EDGE_MEM),
            ("compute", au::CGRA_COMPUTE),
            ("instruction memory", au::CGRA_INSTR_MEM),
            ("routing", au::CGRA_ROUTING),
            ("control", au::CGRA_CONTROL),
        ],
    };
    ArchArea { arch, components }
}

/// Fig 9's headline ratios: `(vs systolic, vs ZeD, vs CGRA)` area of Canon
/// relative to each baseline (positive = Canon larger).
pub fn canon_area_deltas() -> (f64, f64, f64) {
    let canon = arch_area(Arch::Canon).total();
    let sys = arch_area(Arch::Systolic).total();
    let zed = arch_area(Arch::Zed).total();
    let cgra = arch_area(Arch::Cgra).total();
    (canon / sys - 1.0, canon / zed - 1.0, canon / cgra - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canon_breakdown_matches_fig10() {
        let a = arch_area(Arch::Canon);
        assert!((a.total() - 1.0).abs() < 1e-9);
        assert!((a.fraction("data memory") - 0.58).abs() < 0.01);
        assert!((a.fraction("scratchpad") - 0.13).abs() < 0.01);
        assert!((a.fraction("compute") - 0.16).abs() < 0.01);
        assert!((a.fraction("routing") - 0.05).abs() < 0.01);
        assert!((a.fraction("control") - 0.08).abs() < 0.01);
    }

    #[test]
    fn deltas_match_paper_shape() {
        let (vs_sys, vs_zed, vs_cgra) = canon_area_deltas();
        // ~+30% vs systolic (§6.1), ~+9–12% vs ZeD, ~−7% vs CGRA.
        assert!((0.2..=0.4).contains(&vs_sys), "vs systolic: {vs_sys}");
        assert!((0.05..=0.15).contains(&vs_zed), "vs ZeD: {vs_zed}");
        assert!((-0.12..=-0.03).contains(&vs_cgra), "vs CGRA: {vs_cgra}");
    }

    #[test]
    fn specialised_units_present_where_expected() {
        assert!(arch_area(Arch::Zed).fraction("crossbar") > 0.0);
        assert_eq!(arch_area(Arch::Systolic).fraction("crossbar"), 0.0);
        assert!(arch_area(Arch::Cgra).fraction("instruction memory") > 0.0);
        assert_eq!(arch_area(Arch::Canon).fraction("instruction memory"), 0.0);
    }

    #[test]
    fn systolic24_slightly_larger_than_systolic() {
        let s = arch_area(Arch::Systolic).total();
        let s24 = arch_area(Arch::Systolic24).total();
        assert!(s24 > s && s24 < s * 1.1);
    }
}
