//! Affine loop-nest IR and the PolyBench kernel suite (§4.2).
//!
//! Canon maps *affine loop nests*: iteration spaces split into temporal and
//! spatial iterators, with affine array-access functions
//! `i_k = c_k + Σ β_ki·t_i + Σ α_kj·s_j`, under the neighbourhood-sharing
//! legality rule that at most one spatial coefficient is in `{−1, 0, 1}` and
//! all others are zero. This crate provides:
//!
//! * the IR itself ([`expr`], [`nest`]) with a reference **executor** used to
//!   validate every kernel definition against hand-written Rust;
//! * the **semantic analyses** of the compilation flow's first stage
//!   ([`analysis`]): per-dimension parallelism/reduction classification,
//!   operation counts, recurrence critical paths, and the §4.2 spatial
//!   legality check;
//! * **mapping cost models** ([`mapping`]) for Canon's time-lapsed SIMD
//!   execution and for the modulo-scheduled CGRA baseline — the models
//!   behind the `PolyB-*` columns of Figs 12/13;
//! * the **PolyBench kernels** ([`polybench`]), re-expressed in the IR with
//!   the same loop structures and grouped into the paper's BLAS / Kernel /
//!   Stencil categories (kernels with square roots or exponentials are
//!   excluded, as in §5).

pub mod analysis;
pub mod expr;
pub mod mapping;
pub mod nest;
pub mod polybench;

pub use analysis::{analyze_nest, NestAnalysis};
pub use expr::{Access, AffineExpr, Expr};
pub use nest::{Array, Kernel, LoopDim, LoopNest, Stmt};

/// PolyBench categories used in the evaluation figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// `PolyB-BLAS`: BLAS routines and solvers.
    Blas,
    /// `PolyB-Kernel`: linear-algebra kernels, data mining, medley.
    Kernel,
    /// `PolyB-Stencil`: stencil computations.
    Stencil,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Category::Blas => write!(f, "BLAS"),
            Category::Kernel => write!(f, "Kernel"),
            Category::Stencil => write!(f, "Stencil"),
        }
    }
}
