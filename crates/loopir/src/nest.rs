//! Loop nests, kernels, and the reference executor.

use crate::expr::{Access, AffineExpr, Expr};

/// A loop dimension (rectangular bounds; triangular iteration spaces are
/// expressed through statement guards, which is also how the Canon frontend
/// models conditional/predicated execution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopDim {
    /// Iterator name (diagnostics).
    pub name: &'static str,
    /// Trip count.
    pub trip: usize,
}

/// A guarded assignment `dst = expr if ∀g ∈ guards: g >= 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// Destination access.
    pub dst: Access,
    /// Right-hand side.
    pub expr: Expr,
    /// Conjunction of affine predicates; the statement executes iff every
    /// guard evaluates `>= 0` (triangular iteration spaces and the paper's
    /// conditional/predicated execution are both expressed this way).
    pub guards: Vec<AffineExpr>,
}

impl Stmt {
    /// Unguarded statement.
    pub fn new(dst: Access, expr: Expr) -> Stmt {
        Stmt {
            dst,
            expr,
            guards: Vec::new(),
        }
    }

    /// Statement with a single guard (`guard >= 0`).
    pub fn guarded(dst: Access, expr: Expr, guard: AffineExpr) -> Stmt {
        Stmt {
            dst,
            expr,
            guards: vec![guard],
        }
    }

    /// Statement with a conjunction of guards.
    pub fn guarded_all(dst: Access, expr: Expr, guards: Vec<AffineExpr>) -> Stmt {
        Stmt { dst, expr, guards }
    }

    /// True when every guard holds at the point.
    pub fn active_at(&self, point: &[usize]) -> bool {
        self.guards.iter().all(|g| g.eval(point) >= 0)
    }
}

/// One perfectly-nested loop with a list of statements in its body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNest {
    /// Loop dimensions, outermost first.
    pub loops: Vec<LoopDim>,
    /// Body statements, executed in order at every iteration point.
    pub stmts: Vec<Stmt>,
}

impl LoopNest {
    /// Total iteration-space size.
    pub fn points(&self) -> u64 {
        self.loops.iter().map(|l| l.trip as u64).product()
    }
}

/// An array declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Array {
    /// Name (diagnostics).
    pub name: &'static str,
    /// Dimension extents.
    pub dims: Vec<usize>,
}

impl Array {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True for zero-sized arrays.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A kernel: a sequence of loop nests over a shared array table (PolyBench
/// kernels are typically several nests run back to back).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    /// Kernel name (PolyBench name).
    pub name: &'static str,
    /// Evaluation category.
    pub category: crate::Category,
    /// Array table.
    pub arrays: Vec<Array>,
    /// Nests, executed in order.
    pub nests: Vec<LoopNest>,
}

impl Kernel {
    /// Useful (guard-weighted) arithmetic operations across every nest —
    /// the workload's invariant work, identical on every architecture that
    /// executes it.
    pub fn useful_ops(&self) -> u64 {
        self.nests
            .iter()
            .map(|n| crate::analysis::analyze_nest(n).useful_ops())
            .sum()
    }
}

/// Executor state: one flat buffer per array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayState {
    dims: Vec<usize>,
    data: Vec<i64>,
}

impl ArrayState {
    fn index(&self, idx: &[i64]) -> usize {
        debug_assert_eq!(idx.len(), self.dims.len());
        let mut flat = 0usize;
        for (d, &i) in idx.iter().enumerate() {
            assert!(
                i >= 0 && (i as usize) < self.dims[d],
                "index {i} out of bounds for dim {d} (extent {})",
                self.dims[d]
            );
            flat = flat * self.dims[d] + i as usize;
        }
        flat
    }

    /// Reads an element.
    pub fn get(&self, idx: &[i64]) -> i64 {
        self.data[self.index(idx)]
    }

    /// Writes an element.
    pub fn set(&mut self, idx: &[i64], v: i64) {
        let i = self.index(idx);
        self.data[i] = v;
    }

    /// The flat contents.
    pub fn data(&self) -> &[i64] {
        &self.data
    }
}

/// Deterministic initial value for array `a`, flat element `i` — the analogue
/// of PolyBench's init functions, kept in small integer range so products
/// stay exact.
pub fn init_value(a: usize, i: usize) -> i64 {
    (((a * 31 + i * 7) % 13) as i64) - 6
}

/// Executes a kernel and returns the final array states.
///
/// This is the semantic ground truth for the IR: PolyBench definitions are
/// validated against hand-written Rust via this executor. It is purely
/// functional-level (no timing) — timing comes from the mapping models.
///
/// # Panics
///
/// Panics on out-of-bounds accesses (a kernel-definition bug).
pub fn execute(kernel: &Kernel) -> Vec<ArrayState> {
    let mut arrays: Vec<ArrayState> = kernel
        .arrays
        .iter()
        .enumerate()
        .map(|(a, arr)| ArrayState {
            dims: arr.dims.clone(),
            data: (0..arr.len()).map(|i| init_value(a, i)).collect(),
        })
        .collect();
    for nest in &kernel.nests {
        let mut point = vec![0usize; nest.loops.len()];
        loop {
            for stmt in &nest.stmts {
                if !stmt.active_at(&point) {
                    continue;
                }
                let v = eval_expr(&stmt.expr, &point, &arrays);
                let idx: Vec<i64> = stmt.dst.indices.iter().map(|f| f.eval(&point)).collect();
                arrays[stmt.dst.array].set(&idx, v);
            }
            // Advance the iteration point (row-major order).
            let mut d = nest.loops.len();
            loop {
                if d == 0 {
                    break;
                }
                d -= 1;
                point[d] += 1;
                if point[d] < nest.loops[d].trip {
                    break;
                }
                point[d] = 0;
                if d == 0 {
                    d = usize::MAX;
                    break;
                }
            }
            if d == usize::MAX || nest.loops.is_empty() {
                break;
            }
        }
    }
    arrays
}

fn eval_expr(e: &Expr, point: &[usize], arrays: &[ArrayState]) -> i64 {
    match e {
        Expr::Load(a) => {
            let idx: Vec<i64> = a.indices.iter().map(|f| f.eval(point)).collect();
            arrays[a.array].get(&idx)
        }
        Expr::Const(c) => *c,
        Expr::Iter(d) => point[*d] as i64,
        Expr::Add(a, b) => eval_expr(a, point, arrays).wrapping_add(eval_expr(b, point, arrays)),
        Expr::Sub(a, b) => eval_expr(a, point, arrays).wrapping_sub(eval_expr(b, point, arrays)),
        Expr::Mul(a, b) => eval_expr(a, point, arrays).wrapping_mul(eval_expr(b, point, arrays)),
        Expr::Min(a, b) => eval_expr(a, point, arrays).min(eval_expr(b, point, arrays)),
        Expr::Max(a, b) => eval_expr(a, point, arrays).max(eval_expr(b, point, arrays)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Category;

    /// A tiny GEMM kernel in the IR.
    fn gemm_kernel(n: usize) -> Kernel {
        // C[i][j] += A[i][k] * B[k][j]
        let c = Access::new(2, vec![AffineExpr::iter(0), AffineExpr::iter(1)]);
        let body = Expr::add(
            Expr::Load(c.clone()),
            Expr::mul(
                Expr::load(0, vec![AffineExpr::iter(0), AffineExpr::iter(2)]),
                Expr::load(1, vec![AffineExpr::iter(2), AffineExpr::iter(1)]),
            ),
        );
        Kernel {
            name: "gemm-test",
            category: Category::Blas,
            arrays: vec![
                Array {
                    name: "A",
                    dims: vec![n, n],
                },
                Array {
                    name: "B",
                    dims: vec![n, n],
                },
                Array {
                    name: "C",
                    dims: vec![n, n],
                },
            ],
            nests: vec![LoopNest {
                loops: vec![
                    LoopDim { name: "i", trip: n },
                    LoopDim { name: "j", trip: n },
                    LoopDim { name: "k", trip: n },
                ],
                stmts: vec![Stmt::new(c, body)],
            }],
        }
    }

    #[test]
    fn executor_matches_handwritten_gemm() {
        let n = 6;
        let out = execute(&gemm_kernel(n));
        // Hand-written reference over the same init values.
        let a = |i: usize, k: usize| init_value(0, i * n + k);
        let b = |k: usize, j: usize| init_value(1, k * n + j);
        for i in 0..n {
            for j in 0..n {
                let mut c = init_value(2, i * n + j);
                for k in 0..n {
                    c += a(i, k) * b(k, j);
                }
                assert_eq!(out[2].get(&[i as i64, j as i64]), c, "C[{i}][{j}]");
            }
        }
    }

    #[test]
    fn guard_skips_iterations() {
        // x[i] = 1 only for i >= 3 (guard i - 3 >= 0).
        let kernel = Kernel {
            name: "guard-test",
            category: Category::Kernel,
            arrays: vec![Array {
                name: "x",
                dims: vec![6],
            }],
            nests: vec![LoopNest {
                loops: vec![LoopDim { name: "i", trip: 6 }],
                stmts: vec![Stmt::guarded(
                    Access::new(0, vec![AffineExpr::iter(0)]),
                    Expr::Const(1),
                    AffineExpr::iter_plus(0, -3),
                )],
            }],
        };
        let out = execute(&kernel);
        for i in 0..6 {
            let expect = if i >= 3 { 1 } else { init_value(0, i) };
            assert_eq!(out[0].get(&[i as i64]), expect);
        }
    }

    #[test]
    fn multiple_nests_run_in_order() {
        // Nest 1: x[i] = 2; Nest 2: x[i] = x[i] * 3.
        let x = |d| Access::new(0, vec![AffineExpr::iter(d)]);
        let kernel = Kernel {
            name: "seq-test",
            category: Category::Kernel,
            arrays: vec![Array {
                name: "x",
                dims: vec![4],
            }],
            nests: vec![
                LoopNest {
                    loops: vec![LoopDim { name: "i", trip: 4 }],
                    stmts: vec![Stmt::new(x(0), Expr::Const(2))],
                },
                LoopNest {
                    loops: vec![LoopDim { name: "i", trip: 4 }],
                    stmts: vec![Stmt::new(x(0), Expr::mul(Expr::Load(x(0)), Expr::Const(3)))],
                },
            ],
        };
        let out = execute(&kernel);
        assert_eq!(out[0].data(), &[6, 6, 6, 6]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_access_panics() {
        let kernel = Kernel {
            name: "oob",
            category: Category::Kernel,
            arrays: vec![Array {
                name: "x",
                dims: vec![2],
            }],
            nests: vec![LoopNest {
                loops: vec![LoopDim { name: "i", trip: 4 }],
                stmts: vec![Stmt::new(
                    Access::new(0, vec![AffineExpr::iter(0)]),
                    Expr::Const(0),
                )],
            }],
        };
        let _ = execute(&kernel);
    }

    #[test]
    fn zero_loop_nest() {
        let kernel = Kernel {
            name: "empty",
            category: Category::Kernel,
            arrays: vec![],
            nests: vec![LoopNest {
                loops: vec![],
                stmts: vec![],
            }],
        };
        assert!(execute(&kernel).is_empty());
    }
}
