//! The PolyBench kernel suite, re-expressed in the loop IR.
//!
//! Following §5, kernels containing square roots, exponentials, or divisions
//! in their loops (cholesky, gramschmidt, correlation, deriche, adi, durbin,
//! ludcmp) are excluded — neither Canon nor the CGRA baseline supports those
//! operators. Floating-point scalings that do not change loop structure
//! (e.g. the `1/N` in covariance means, the `1/3` of Jacobi averaging) are
//! dropped so the integer executor stays exact; the *loop structure*, the
//! dependence pattern, and the operation counts — which are what the mapping
//! cost models consume — are preserved from the PolyBenchC sources.
//!
//! Categories follow the benchmark suite's own grouping, matching the
//! `PolyB-BLAS` / `PolyB-Kernel` / `PolyB-Stencil` columns of Figs 12/13
//! (solvers are folded into BLAS, as the paper's discussion of "some solvers
//! in the BLAS set" implies).

use crate::expr::{Access, AffineExpr, Expr};
use crate::nest::{Array, Kernel, LoopDim, LoopNest, Stmt};
use crate::Category;

fn it(d: usize) -> AffineExpr {
    AffineExpr::iter(d)
}
fn itp(d: usize, o: i64) -> AffineExpr {
    AffineExpr::iter_plus(d, o)
}
fn a1(arr: usize, i: AffineExpr) -> Access {
    Access::new(arr, vec![i])
}
fn a2(arr: usize, i: AffineExpr, j: AffineExpr) -> Access {
    Access::new(arr, vec![i, j])
}
fn a3(arr: usize, i: AffineExpr, j: AffineExpr, k: AffineExpr) -> Access {
    Access::new(arr, vec![i, j, k])
}
fn ld(a: Access) -> Expr {
    Expr::Load(a)
}
fn dims(names: &[(&'static str, usize)]) -> Vec<LoopDim> {
    names
        .iter()
        .map(|&(name, trip)| LoopDim { name, trip })
        .collect()
}
/// `i − j − 1 >= 0` i.e. `iter(a) > iter(b)`.
fn gt(a: usize, b: usize) -> AffineExpr {
    let mut coeffs = vec![0i64; a.max(b) + 1];
    coeffs[a] = 1;
    coeffs[b] = -1;
    AffineExpr { offset: -1, coeffs }
}
/// `iter(a) >= iter(b)`.
fn ge(a: usize, b: usize) -> AffineExpr {
    let mut coeffs = vec![0i64; a.max(b) + 1];
    coeffs[a] = 1;
    coeffs[b] = -1;
    AffineExpr { offset: 0, coeffs }
}
fn sq(name: &'static str, n: usize) -> Array {
    Array {
        name,
        dims: vec![n, n],
    }
}
fn vecn(name: &'static str, n: usize) -> Array {
    Array {
        name,
        dims: vec![n],
    }
}
/// `dst += e`.
fn acc_stmt(dst: Access, e: Expr) -> Stmt {
    Stmt::new(dst.clone(), Expr::add(ld(dst), e))
}

fn gemm(n: usize) -> Kernel {
    Kernel {
        name: "gemm",
        category: Category::Blas,
        arrays: vec![sq("A", n), sq("B", n), sq("C", n)],
        nests: vec![LoopNest {
            loops: dims(&[("i", n), ("j", n), ("k", n)]),
            stmts: vec![acc_stmt(
                a2(2, it(0), it(1)),
                Expr::mul(ld(a2(0, it(0), it(2))), ld(a2(1, it(2), it(1)))),
            )],
        }],
    }
}

fn gemver(n: usize) -> Kernel {
    // 0:A 1:u1 2:v1 3:u2 4:v2 5:y 6:z 7:x 8:w
    Kernel {
        name: "gemver",
        category: Category::Blas,
        arrays: vec![
            sq("A", n),
            vecn("u1", n),
            vecn("v1", n),
            vecn("u2", n),
            vecn("v2", n),
            vecn("y", n),
            vecn("z", n),
            vecn("x", n),
            vecn("w", n),
        ],
        nests: vec![
            LoopNest {
                loops: dims(&[("i", n), ("j", n)]),
                stmts: vec![acc_stmt(
                    a2(0, it(0), it(1)),
                    Expr::add(
                        Expr::mul(ld(a1(1, it(0))), ld(a1(2, it(1)))),
                        Expr::mul(ld(a1(3, it(0))), ld(a1(4, it(1)))),
                    ),
                )],
            },
            LoopNest {
                loops: dims(&[("i", n), ("j", n)]),
                stmts: vec![acc_stmt(
                    a1(7, it(0)),
                    Expr::mul(ld(a2(0, it(1), it(0))), ld(a1(5, it(1)))),
                )],
            },
            LoopNest {
                loops: dims(&[("i", n)]),
                stmts: vec![acc_stmt(a1(7, it(0)), ld(a1(6, it(0))))],
            },
            LoopNest {
                loops: dims(&[("i", n), ("j", n)]),
                stmts: vec![acc_stmt(
                    a1(8, it(0)),
                    Expr::mul(ld(a2(0, it(0), it(1))), ld(a1(7, it(1)))),
                )],
            },
        ],
    }
}

fn gesummv(n: usize) -> Kernel {
    // 0:A 1:B 2:x 3:tmp 4:y
    Kernel {
        name: "gesummv",
        category: Category::Blas,
        arrays: vec![
            sq("A", n),
            sq("B", n),
            vecn("x", n),
            vecn("tmp", n),
            vecn("y", n),
        ],
        nests: vec![
            LoopNest {
                loops: dims(&[("i", n), ("j", n)]),
                stmts: vec![
                    acc_stmt(
                        a1(3, it(0)),
                        Expr::mul(ld(a2(0, it(0), it(1))), ld(a1(2, it(1)))),
                    ),
                    acc_stmt(
                        a1(4, it(0)),
                        Expr::mul(ld(a2(1, it(0), it(1))), ld(a1(2, it(1)))),
                    ),
                ],
            },
            LoopNest {
                loops: dims(&[("i", n)]),
                stmts: vec![Stmt::new(
                    a1(4, it(0)),
                    Expr::add(
                        Expr::mul(ld(a1(3, it(0))), Expr::Const(3)),
                        Expr::mul(ld(a1(4, it(0))), Expr::Const(2)),
                    ),
                )],
            },
        ],
    }
}

fn syrk(n: usize) -> Kernel {
    Kernel {
        name: "syrk",
        category: Category::Blas,
        arrays: vec![sq("C", n), sq("A", n)],
        nests: vec![LoopNest {
            loops: dims(&[("i", n), ("j", n), ("k", n)]),
            stmts: vec![Stmt::guarded(
                a2(0, it(0), it(1)),
                Expr::add(
                    ld(a2(0, it(0), it(1))),
                    Expr::mul(ld(a2(1, it(0), it(2))), ld(a2(1, it(1), it(2)))),
                ),
                ge(0, 1), // j <= i
            )],
        }],
    }
}

fn syr2k(n: usize) -> Kernel {
    Kernel {
        name: "syr2k",
        category: Category::Blas,
        arrays: vec![sq("C", n), sq("A", n), sq("B", n)],
        nests: vec![LoopNest {
            loops: dims(&[("i", n), ("j", n), ("k", n)]),
            stmts: vec![Stmt::guarded(
                a2(0, it(0), it(1)),
                Expr::add(
                    ld(a2(0, it(0), it(1))),
                    Expr::add(
                        Expr::mul(ld(a2(1, it(0), it(2))), ld(a2(2, it(1), it(2)))),
                        Expr::mul(ld(a2(2, it(0), it(2))), ld(a2(1, it(1), it(2)))),
                    ),
                ),
                ge(0, 1),
            )],
        }],
    }
}

fn trmm(n: usize) -> Kernel {
    Kernel {
        name: "trmm",
        category: Category::Blas,
        arrays: vec![sq("A", n), sq("B", n)],
        nests: vec![LoopNest {
            loops: dims(&[("i", n), ("j", n), ("k", n)]),
            stmts: vec![Stmt::guarded(
                a2(1, it(0), it(1)),
                Expr::add(
                    ld(a2(1, it(0), it(1))),
                    Expr::mul(ld(a2(0, it(2), it(0))), ld(a2(1, it(2), it(1)))),
                ),
                gt(2, 0), // k > i
            )],
        }],
    }
}

fn trisolv(n: usize) -> Kernel {
    // 0:L 1:x 2:b — unit-diagonal forward substitution.
    Kernel {
        name: "trisolv",
        category: Category::Blas,
        arrays: vec![sq("L", n), vecn("x", n), vecn("b", n)],
        nests: vec![
            LoopNest {
                loops: dims(&[("i", n)]),
                stmts: vec![Stmt::new(a1(1, it(0)), ld(a1(2, it(0))))],
            },
            LoopNest {
                loops: dims(&[("i", n), ("j", n)]),
                stmts: vec![Stmt::guarded(
                    a1(1, it(0)),
                    Expr::sub(
                        ld(a1(1, it(0))),
                        Expr::mul(ld(a2(0, it(0), it(1))), ld(a1(1, it(1)))),
                    ),
                    gt(0, 1), // j < i
                )],
            },
        ],
    }
}

fn lu(n: usize) -> Kernel {
    // Unit-diagonal Doolittle update step.
    Kernel {
        name: "lu",
        category: Category::Blas,
        arrays: vec![sq("A", n)],
        nests: vec![LoopNest {
            loops: dims(&[("k", n), ("i", n), ("j", n)]),
            stmts: vec![Stmt::guarded_all(
                a2(0, it(1), it(2)),
                Expr::sub(
                    ld(a2(0, it(1), it(2))),
                    Expr::mul(ld(a2(0, it(1), it(0))), ld(a2(0, it(0), it(2)))),
                ),
                vec![gt(1, 0), gt(2, 0)], // i > k, j > k
            )],
        }],
    }
}

fn two_mm(n: usize) -> Kernel {
    // 0:A 1:B 2:C 3:D 4:tmp
    Kernel {
        name: "2mm",
        category: Category::Kernel,
        arrays: vec![sq("A", n), sq("B", n), sq("C", n), sq("D", n), sq("tmp", n)],
        nests: vec![
            LoopNest {
                loops: dims(&[("i", n), ("j", n), ("k", n)]),
                stmts: vec![acc_stmt(
                    a2(4, it(0), it(1)),
                    Expr::mul(ld(a2(0, it(0), it(2))), ld(a2(1, it(2), it(1)))),
                )],
            },
            LoopNest {
                loops: dims(&[("i", n), ("j", n), ("k", n)]),
                stmts: vec![acc_stmt(
                    a2(3, it(0), it(1)),
                    Expr::mul(ld(a2(4, it(0), it(2))), ld(a2(2, it(2), it(1)))),
                )],
            },
        ],
    }
}

fn three_mm(n: usize) -> Kernel {
    // 0:A 1:B 2:C 3:D 4:E 5:F 6:G
    let mm = |dst: usize, l: usize, r: usize| LoopNest {
        loops: dims(&[("i", n), ("j", n), ("k", n)]),
        stmts: vec![acc_stmt(
            a2(dst, it(0), it(1)),
            Expr::mul(ld(a2(l, it(0), it(2))), ld(a2(r, it(2), it(1)))),
        )],
    };
    Kernel {
        name: "3mm",
        category: Category::Kernel,
        arrays: vec![
            sq("A", n),
            sq("B", n),
            sq("C", n),
            sq("D", n),
            sq("E", n),
            sq("F", n),
            sq("G", n),
        ],
        nests: vec![mm(4, 0, 1), mm(5, 2, 3), mm(6, 4, 5)],
    }
}

fn atax(n: usize) -> Kernel {
    // 0:A 1:x 2:y 3:tmp
    Kernel {
        name: "atax",
        category: Category::Kernel,
        arrays: vec![sq("A", n), vecn("x", n), vecn("y", n), vecn("tmp", n)],
        nests: vec![
            LoopNest {
                loops: dims(&[("i", n), ("j", n)]),
                stmts: vec![acc_stmt(
                    a1(3, it(0)),
                    Expr::mul(ld(a2(0, it(0), it(1))), ld(a1(1, it(1)))),
                )],
            },
            LoopNest {
                loops: dims(&[("i", n), ("j", n)]),
                stmts: vec![acc_stmt(
                    a1(2, it(1)),
                    Expr::mul(ld(a2(0, it(0), it(1))), ld(a1(3, it(0)))),
                )],
            },
        ],
    }
}

fn bicg(n: usize) -> Kernel {
    // 0:A 1:s 2:q 3:p 4:r
    Kernel {
        name: "bicg",
        category: Category::Kernel,
        arrays: vec![
            sq("A", n),
            vecn("s", n),
            vecn("q", n),
            vecn("p", n),
            vecn("r", n),
        ],
        nests: vec![LoopNest {
            loops: dims(&[("i", n), ("j", n)]),
            stmts: vec![
                acc_stmt(
                    a1(1, it(1)),
                    Expr::mul(ld(a1(4, it(0))), ld(a2(0, it(0), it(1)))),
                ),
                acc_stmt(
                    a1(2, it(0)),
                    Expr::mul(ld(a2(0, it(0), it(1))), ld(a1(3, it(1)))),
                ),
            ],
        }],
    }
}

fn mvt(n: usize) -> Kernel {
    // 0:A 1:x1 2:x2 3:y1 4:y2
    Kernel {
        name: "mvt",
        category: Category::Kernel,
        arrays: vec![
            sq("A", n),
            vecn("x1", n),
            vecn("x2", n),
            vecn("y1", n),
            vecn("y2", n),
        ],
        nests: vec![LoopNest {
            loops: dims(&[("i", n), ("j", n)]),
            stmts: vec![
                acc_stmt(
                    a1(1, it(0)),
                    Expr::mul(ld(a2(0, it(0), it(1))), ld(a1(3, it(1)))),
                ),
                acc_stmt(
                    a1(2, it(0)),
                    Expr::mul(ld(a2(0, it(1), it(0))), ld(a1(4, it(1)))),
                ),
            ],
        }],
    }
}

fn doitgen(n: usize) -> Kernel {
    // 0:A[r][q][p] 1:C4[s][p] 2:sum[r][q][p]
    Kernel {
        name: "doitgen",
        category: Category::Kernel,
        arrays: vec![
            Array {
                name: "A",
                dims: vec![n, n, n],
            },
            sq("C4", n),
            Array {
                name: "sum",
                dims: vec![n, n, n],
            },
        ],
        nests: vec![
            LoopNest {
                loops: dims(&[("r", n), ("q", n), ("p", n), ("s", n)]),
                stmts: vec![acc_stmt(
                    a3(2, it(0), it(1), it(2)),
                    Expr::mul(ld(a3(0, it(0), it(1), it(3))), ld(a2(1, it(3), it(2)))),
                )],
            },
            LoopNest {
                loops: dims(&[("r", n), ("q", n), ("p", n)]),
                stmts: vec![Stmt::new(
                    a3(0, it(0), it(1), it(2)),
                    ld(a3(2, it(0), it(1), it(2))),
                )],
            },
        ],
    }
}

fn covariance(n: usize) -> Kernel {
    // 0:data 1:mean 2:cov (1/N scalings dropped; structure preserved).
    Kernel {
        name: "covariance",
        category: Category::Kernel,
        arrays: vec![sq("data", n), vecn("mean", n), sq("cov", n)],
        nests: vec![
            LoopNest {
                loops: dims(&[("j", n), ("i", n)]),
                stmts: vec![acc_stmt(a1(1, it(0)), ld(a2(0, it(1), it(0))))],
            },
            LoopNest {
                loops: dims(&[("i", n), ("j", n)]),
                stmts: vec![Stmt::new(
                    a2(0, it(0), it(1)),
                    Expr::sub(ld(a2(0, it(0), it(1))), ld(a1(1, it(1)))),
                )],
            },
            LoopNest {
                loops: dims(&[("i", n), ("j", n), ("k", n)]),
                stmts: vec![Stmt::guarded(
                    a2(2, it(0), it(1)),
                    Expr::add(
                        ld(a2(2, it(0), it(1))),
                        Expr::mul(ld(a2(0, it(2), it(0))), ld(a2(0, it(2), it(1)))),
                    ),
                    ge(1, 0), // j >= i
                )],
            },
        ],
    }
}

fn floyd_warshall(n: usize) -> Kernel {
    Kernel {
        name: "floyd-warshall",
        category: Category::Kernel,
        arrays: vec![sq("path", n)],
        nests: vec![LoopNest {
            loops: dims(&[("k", n), ("i", n), ("j", n)]),
            stmts: vec![Stmt::new(
                a2(0, it(1), it(2)),
                Expr::min(
                    ld(a2(0, it(1), it(2))),
                    Expr::add(ld(a2(0, it(1), it(0))), ld(a2(0, it(0), it(2)))),
                ),
            )],
        }],
    }
}

fn jacobi_1d(n: usize) -> Kernel {
    // One sweep (B from A, A from B); averaging scale dropped.
    let star = |src: usize, dst: usize| LoopNest {
        loops: dims(&[("i", n - 2)]),
        stmts: vec![Stmt::new(
            a1(dst, itp(0, 1)),
            Expr::add(
                Expr::add(ld(a1(src, it(0))), ld(a1(src, itp(0, 1)))),
                ld(a1(src, itp(0, 2))),
            ),
        )],
    };
    Kernel {
        name: "jacobi-1d",
        category: Category::Stencil,
        arrays: vec![vecn("A", n), vecn("B", n)],
        nests: vec![star(0, 1), star(1, 0)],
    }
}

fn jacobi_2d(n: usize) -> Kernel {
    let star = |src: usize, dst: usize| LoopNest {
        loops: dims(&[("i", n - 2), ("j", n - 2)]),
        stmts: vec![Stmt::new(
            a2(dst, itp(0, 1), itp(1, 1)),
            Expr::add(
                Expr::add(
                    Expr::add(
                        ld(a2(src, itp(0, 1), itp(1, 1))),
                        ld(a2(src, it(0), itp(1, 1))),
                    ),
                    Expr::add(
                        ld(a2(src, itp(0, 2), itp(1, 1))),
                        ld(a2(src, itp(0, 1), it(1))),
                    ),
                ),
                ld(a2(src, itp(0, 1), itp(1, 2))),
            ),
        )],
    };
    Kernel {
        name: "jacobi-2d",
        category: Category::Stencil,
        arrays: vec![sq("A", n), sq("B", n)],
        nests: vec![star(0, 1), star(1, 0)],
    }
}

fn seidel_2d(n: usize) -> Kernel {
    // In-place 9-point sweep: loop-carried in both space dims.
    let s = |di: i64, dj: i64| ld(a2(0, itp(0, 1 + di), itp(1, 1 + dj)));
    let sum9 = Expr::add(
        Expr::add(
            Expr::add(
                Expr::add(s(-1, -1), s(-1, 0)),
                Expr::add(s(-1, 1), s(0, -1)),
            ),
            Expr::add(Expr::add(s(0, 0), s(0, 1)), Expr::add(s(1, -1), s(1, 0))),
        ),
        s(1, 1),
    );
    Kernel {
        name: "seidel-2d",
        category: Category::Stencil,
        arrays: vec![sq("A", n)],
        nests: vec![LoopNest {
            loops: dims(&[("i", n - 2), ("j", n - 2)]),
            stmts: vec![Stmt::new(a2(0, itp(0, 1), itp(1, 1)), sum9)],
        }],
    }
}

fn fdtd_2d(n: usize) -> Kernel {
    // 0:ex 1:ey 2:hz — one time step, coefficient scalings dropped.
    Kernel {
        name: "fdtd-2d",
        category: Category::Stencil,
        arrays: vec![sq("ex", n), sq("ey", n), sq("hz", n)],
        nests: vec![
            LoopNest {
                loops: dims(&[("i", n - 1), ("j", n)]),
                stmts: vec![Stmt::new(
                    a2(1, itp(0, 1), it(1)),
                    Expr::sub(
                        ld(a2(1, itp(0, 1), it(1))),
                        Expr::sub(ld(a2(2, itp(0, 1), it(1))), ld(a2(2, it(0), it(1)))),
                    ),
                )],
            },
            LoopNest {
                loops: dims(&[("i", n), ("j", n - 1)]),
                stmts: vec![Stmt::new(
                    a2(0, it(0), itp(1, 1)),
                    Expr::sub(
                        ld(a2(0, it(0), itp(1, 1))),
                        Expr::sub(ld(a2(2, it(0), itp(1, 1))), ld(a2(2, it(0), it(1)))),
                    ),
                )],
            },
            LoopNest {
                loops: dims(&[("i", n - 1), ("j", n - 1)]),
                stmts: vec![Stmt::new(
                    a2(2, it(0), it(1)),
                    Expr::sub(
                        ld(a2(2, it(0), it(1))),
                        Expr::add(
                            Expr::sub(ld(a2(0, it(0), itp(1, 1))), ld(a2(0, it(0), it(1)))),
                            Expr::sub(ld(a2(1, itp(0, 1), it(1))), ld(a2(1, it(0), it(1)))),
                        ),
                    ),
                )],
            },
        ],
    }
}

fn heat_3d(n: usize) -> Kernel {
    let star = |src: usize, dst: usize| {
        let c =
            |di: i64, dj: i64, dk: i64| ld(a3(src, itp(0, 1 + di), itp(1, 1 + dj), itp(2, 1 + dk)));
        LoopNest {
            loops: dims(&[("i", n - 2), ("j", n - 2), ("k", n - 2)]),
            stmts: vec![Stmt::new(
                a3(dst, itp(0, 1), itp(1, 1), itp(2, 1)),
                Expr::add(
                    Expr::add(
                        Expr::add(c(0, 0, 0), c(-1, 0, 0)),
                        Expr::add(c(1, 0, 0), c(0, -1, 0)),
                    ),
                    Expr::add(Expr::add(c(0, 1, 0), c(0, 0, -1)), c(0, 0, 1)),
                ),
            )],
        }
    };
    Kernel {
        name: "heat-3d",
        category: Category::Stencil,
        arrays: vec![
            Array {
                name: "A",
                dims: vec![n, n, n],
            },
            Array {
                name: "B",
                dims: vec![n, n, n],
            },
        ],
        nests: vec![star(0, 1), star(1, 0)],
    }
}

/// One suite kernel by PolyBench name at problem size `n`, or `None` for
/// names outside the evaluated suite — the resolution point for workload
/// descriptors (`canon_workloads::LoopKernel`) that carry kernels by name.
/// Builds only the named kernel (sweep backends resolve per run, so this
/// must not construct the whole suite).
///
/// # Panics
///
/// Panics if `n < 4` (stencil kernels need interior points).
pub fn kernel(name: &str, n: usize) -> Option<Kernel> {
    assert!(n >= 4, "PolyBench kernels need n >= 4");
    let build: fn(usize) -> Kernel = match name {
        "gemm" => gemm,
        "gemver" => gemver,
        "gesummv" => gesummv,
        "syrk" => syrk,
        "syr2k" => syr2k,
        "trmm" => trmm,
        "trisolv" => trisolv,
        "lu" => lu,
        "2mm" => two_mm,
        "3mm" => three_mm,
        "atax" => atax,
        "bicg" => bicg,
        "mvt" => mvt,
        "doitgen" => doitgen,
        "covariance" => covariance,
        "floyd-warshall" => floyd_warshall,
        "jacobi-1d" => jacobi_1d,
        "jacobi-2d" => jacobi_2d,
        "seidel-2d" => seidel_2d,
        "fdtd-2d" => fdtd_2d,
        "heat-3d" => heat_3d,
        _ => return None,
    };
    Some(build(n))
}

/// The full evaluated suite at problem size `n` (21 kernels).
///
/// # Panics
///
/// Panics if `n < 4` (stencil kernels need interior points).
pub fn suite(n: usize) -> Vec<Kernel> {
    assert!(n >= 4, "PolyBench suite needs n >= 4");
    vec![
        gemm(n),
        gemver(n),
        gesummv(n),
        syrk(n),
        syr2k(n),
        trmm(n),
        trisolv(n),
        lu(n),
        two_mm(n),
        three_mm(n),
        atax(n),
        bicg(n),
        mvt(n),
        doitgen(n),
        covariance(n),
        floyd_warshall(n),
        jacobi_1d(n),
        jacobi_2d(n),
        seidel_2d(n),
        fdtd_2d(n),
        heat_3d(n),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::{execute, init_value};

    #[test]
    fn suite_has_all_categories() {
        let ks = suite(8);
        assert_eq!(ks.len(), 21);
        for cat in [Category::Blas, Category::Kernel, Category::Stencil] {
            assert!(ks.iter().any(|k| k.category == cat));
        }
        // Names are unique.
        let mut names: Vec<_> = ks.iter().map(|k| k.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 21);
    }

    #[test]
    fn atax_matches_handwritten() {
        let n = 7;
        let out = execute(&atax(n));
        let a = |i: usize, j: usize| init_value(0, i * n + j);
        let x = |j: usize| init_value(1, j);
        let mut tmp: Vec<i64> = (0..n).map(|i| init_value(3, i)).collect();
        let mut y: Vec<i64> = (0..n).map(|j| init_value(2, j)).collect();
        for i in 0..n {
            for j in 0..n {
                tmp[i] += a(i, j) * x(j);
            }
        }
        for i in 0..n {
            for j in 0..n {
                y[j] += a(i, j) * tmp[i];
            }
        }
        for j in 0..n {
            assert_eq!(out[2].get(&[j as i64]), y[j], "y[{j}]");
        }
    }

    #[test]
    fn floyd_warshall_matches_handwritten() {
        let n = 6;
        let out = execute(&floyd_warshall(n));
        let mut p: Vec<Vec<i64>> = (0..n)
            .map(|i| (0..n).map(|j| init_value(0, i * n + j)).collect())
            .collect();
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    p[i][j] = p[i][j].min(p[i][k] + p[k][j]);
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                assert_eq!(out[0].get(&[i as i64, j as i64]), p[i][j]);
            }
        }
    }

    #[test]
    fn trisolv_matches_handwritten() {
        let n = 8;
        let out = execute(&trisolv(n));
        let l = |i: usize, j: usize| init_value(0, i * n + j);
        let b = |i: usize| init_value(2, i);
        let mut x = vec![0i64; n];
        for i in 0..n {
            x[i] = b(i);
            for j in 0..i {
                x[i] -= l(i, j) * x[j];
            }
        }
        for i in 0..n {
            assert_eq!(out[1].get(&[i as i64]), x[i], "x[{i}]");
        }
    }

    #[test]
    fn jacobi_2d_matches_handwritten() {
        let n = 8;
        let out = execute(&jacobi_2d(n));
        let mut a: Vec<Vec<i64>> = (0..n)
            .map(|i| (0..n).map(|j| init_value(0, i * n + j)).collect())
            .collect();
        let mut b: Vec<Vec<i64>> = (0..n)
            .map(|i| (0..n).map(|j| init_value(1, i * n + j)).collect())
            .collect();
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                b[i][j] = a[i][j] + a[i - 1][j] + a[i + 1][j] + a[i][j - 1] + a[i][j + 1];
            }
        }
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                a[i][j] = b[i][j] + b[i - 1][j] + b[i + 1][j] + b[i][j - 1] + b[i][j + 1];
            }
        }
        for i in 0..n {
            for j in 0..n {
                assert_eq!(out[0].get(&[i as i64, j as i64]), a[i][j], "A[{i}][{j}]");
            }
        }
    }

    #[test]
    fn syrk_is_lower_triangular_update() {
        let n = 6;
        let out = execute(&syrk(n));
        // Strictly-upper entries keep their initial values.
        for i in 0..n {
            for j in i + 1..n {
                assert_eq!(out[0].get(&[i as i64, j as i64]), init_value(0, i * n + j));
            }
        }
        // Diagonal entries change (accumulate A·Aᵀ).
        let a = |i: usize, k: usize| init_value(1, i * n + k);
        let mut c00 = init_value(0, 0);
        for k in 0..n {
            c00 += a(0, k) * a(0, k);
        }
        assert_eq!(out[0].get(&[0, 0]), c00);
    }

    #[test]
    fn lu_matches_handwritten() {
        let n = 6;
        let out = execute(&lu(n));
        let mut a: Vec<Vec<i64>> = (0..n)
            .map(|i| (0..n).map(|j| init_value(0, i * n + j)).collect())
            .collect();
        for k in 0..n {
            for i in k + 1..n {
                for j in k + 1..n {
                    a[i][j] -= a[i][k] * a[k][j];
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                assert_eq!(out[0].get(&[i as i64, j as i64]), a[i][j]);
            }
        }
    }

    #[test]
    fn every_kernel_executes_without_oob() {
        for k in suite(6) {
            let _ = execute(&k);
        }
    }

    #[test]
    fn kernel_lookup_by_name() {
        let k = kernel("jacobi-2d", 8).expect("jacobi-2d is in the suite");
        assert_eq!(k.name, "jacobi-2d");
        assert_eq!(k.category, Category::Stencil);
        assert!(k.useful_ops() > 0);
        assert!(kernel("cholesky", 8).is_none(), "excluded per §5");
        // The name dispatch must cover the whole suite and agree with it.
        for suite_kernel in suite(8) {
            let looked_up = kernel(suite_kernel.name, 8)
                .unwrap_or_else(|| panic!("{} must resolve", suite_kernel.name));
            assert_eq!(looked_up, suite_kernel);
        }
    }
}
