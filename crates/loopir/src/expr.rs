//! Expressions and affine access functions.

/// An affine function of the loop iterators:
/// `c + Σ coeffs[i] · iter[i]` (§4.2's access function, one output
/// dimension).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineExpr {
    /// Constant offset `c_k`.
    pub offset: i64,
    /// Per-iterator coefficients, indexed by loop depth (outer → inner).
    pub coeffs: Vec<i64>,
}

impl AffineExpr {
    /// The constant function.
    pub fn constant(offset: i64) -> AffineExpr {
        AffineExpr {
            offset,
            coeffs: Vec::new(),
        }
    }

    /// The single iterator `iter[dim]` (coefficient 1).
    pub fn iter(dim: usize) -> AffineExpr {
        let mut coeffs = vec![0; dim + 1];
        coeffs[dim] = 1;
        AffineExpr { offset: 0, coeffs }
    }

    /// `iter[dim] + offset`.
    pub fn iter_plus(dim: usize, offset: i64) -> AffineExpr {
        AffineExpr {
            offset,
            ..AffineExpr::iter(dim)
        }
    }

    /// Evaluates at an iteration point.
    pub fn eval(&self, point: &[usize]) -> i64 {
        let mut v = self.offset;
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c != 0 {
                v += c * point.get(i).copied().unwrap_or(0) as i64;
            }
        }
        v
    }

    /// Coefficient of iterator `dim` (zero when absent).
    pub fn coeff(&self, dim: usize) -> i64 {
        self.coeffs.get(dim).copied().unwrap_or(0)
    }

    /// True when the function does not depend on iterator `dim`.
    pub fn independent_of(&self, dim: usize) -> bool {
        self.coeff(dim) == 0
    }
}

/// An array access: array id plus one affine index function per array
/// dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// Index into the kernel's array table.
    pub array: usize,
    /// One affine function per array dimension.
    pub indices: Vec<AffineExpr>,
}

impl Access {
    /// Convenience constructor.
    pub fn new(array: usize, indices: Vec<AffineExpr>) -> Access {
        Access { array, indices }
    }
}

/// Statement right-hand sides: integer arithmetic over loads, iterators, and
/// constants. (PolyBench kernels with transcendental ops are excluded from
/// the evaluation, so integer `+ − × min max` suffices.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Load from an array.
    Load(Access),
    /// Integer constant.
    Const(i64),
    /// Current value of a loop iterator.
    Iter(usize),
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Product.
    Mul(Box<Expr>, Box<Expr>),
    /// Minimum.
    Min(Box<Expr>, Box<Expr>),
    /// Maximum.
    Max(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// `a + b` (builder convenience).
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }
    /// `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }
    /// `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }
    /// `min(a, b)`.
    pub fn min(a: Expr, b: Expr) -> Expr {
        Expr::Min(Box::new(a), Box::new(b))
    }
    /// Load shorthand.
    pub fn load(array: usize, indices: Vec<AffineExpr>) -> Expr {
        Expr::Load(Access::new(array, indices))
    }

    /// Number of arithmetic operations in the expression tree.
    pub fn op_count(&self) -> u64 {
        match self {
            Expr::Load(_) | Expr::Const(_) | Expr::Iter(_) => 0,
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => 1 + a.op_count() + b.op_count(),
        }
    }

    /// Depth of the arithmetic DAG (critical path in operations).
    pub fn depth(&self) -> u64 {
        match self {
            Expr::Load(_) | Expr::Const(_) | Expr::Iter(_) => 0,
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => 1 + a.depth().max(b.depth()),
        }
    }

    /// Collects every [`Access`] in the expression.
    pub fn accesses<'a>(&'a self, out: &mut Vec<&'a Access>) {
        match self {
            Expr::Load(a) => out.push(a),
            Expr::Const(_) | Expr::Iter(_) => {}
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => {
                a.accesses(out);
                b.accesses(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_eval() {
        // 2*i - j + 3 at (i, j) = (5, 4) → 9.
        let f = AffineExpr {
            offset: 3,
            coeffs: vec![2, -1],
        };
        assert_eq!(f.eval(&[5, 4]), 9);
        assert_eq!(f.coeff(0), 2);
        assert_eq!(f.coeff(7), 0);
        assert!(f.independent_of(2));
        assert!(!f.independent_of(1));
    }

    #[test]
    fn iter_constructors() {
        assert_eq!(AffineExpr::iter(1).eval(&[9, 7]), 7);
        assert_eq!(AffineExpr::iter_plus(0, -1).eval(&[3, 0]), 2);
        assert_eq!(AffineExpr::constant(5).eval(&[1, 2, 3]), 5);
    }

    #[test]
    fn op_count_and_depth() {
        // (a + b) * (c + d): 3 ops, depth 2.
        let e = Expr::mul(
            Expr::add(Expr::Const(1), Expr::Const(2)),
            Expr::add(Expr::Const(3), Expr::Const(4)),
        );
        assert_eq!(e.op_count(), 3);
        assert_eq!(e.depth(), 2);
    }

    #[test]
    fn accesses_collected() {
        let e = Expr::add(
            Expr::load(0, vec![AffineExpr::iter(0)]),
            Expr::mul(Expr::load(1, vec![AffineExpr::iter(1)]), Expr::Const(2)),
        );
        let mut acc = Vec::new();
        e.accesses(&mut acc);
        assert_eq!(acc.len(), 2);
        assert_eq!(acc[0].array, 0);
        assert_eq!(acc[1].array, 1);
    }
}
