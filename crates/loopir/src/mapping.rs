//! Mapping cost models: Canon's time-lapsed SIMD vs the modulo-scheduled
//! CGRA (the `PolyB-*` columns of Figs 12/13).
//!
//! **Canon** exploits data-level parallelism: parallel iteration dimensions
//! are spatialised over PE rows and over the column×lane dimension (subject
//! to the §4.2 legality rule), and each remaining iteration issues
//! `ops_per_point` instructions from the row orchestrator. Inner loops that
//! cannot be unrolled by the 4-wide SIMD under-utilise the lanes, and
//! data-dependent serial loops confine work to single rows (§4.2's DLP
//! granularity bound).
//!
//! **CGRA** exploits instruction-level parallelism: each nest's dataflow
//! graph is modulo-scheduled; the initiation interval is bounded below by
//! resources (`ops / PEs`) and by the loop-carried recurrence critical path,
//! and published mappers achieve `II ≈ 1.2–1.3 × MII` on average for
//! non-trivial graphs (Morpher/HyCUBE experience), which the model charges
//! as a routing factor. Independent iterations are replicated spatially
//! until PEs run out.

use crate::analysis::{analyze_nest, DimKind};
use crate::nest::Kernel;
use crate::Category;
use canon_baselines::cgra::Cgra;
use canon_baselines::{Accelerator, Activity, BaselineRun};

/// Cost-model output for a kernel on Canon's loop path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CanonLoopRun {
    /// Total cycles.
    pub cycles: u64,
    /// Useful arithmetic operations executed.
    pub useful_ops: u64,
    /// Vector-lane instructions issued (energy accounting).
    pub lane_instrs: u64,
    /// Effective utilization vs the 256-op/cycle peak.
    pub utilization: f64,
}

/// Maps a kernel onto Canon (rows × cols PEs, `lanes`-wide SIMD).
pub fn map_canon(kernel: &Kernel, rows: usize, cols: usize, lanes: usize) -> CanonLoopRun {
    let peak = (rows * cols * lanes) as f64;
    let mut cycles = 0u64;
    let mut lane_instrs = 0u64;
    for nest in &kernel.nests {
        let a = analyze_nest(nest);
        if a.points == 0 {
            continue;
        }
        // Choose spatial dims among parallel dims, largest trips first,
        // respecting the legality rule per §4.2.
        let mut par: Vec<(usize, usize)> = a
            .dims
            .iter()
            .enumerate()
            .filter(|(_, k)| **k == DimKind::Parallel)
            .map(|(d, _)| (d, nest.loops[d].trip))
            .collect();
        par.sort_by_key(|&(_, t)| std::cmp::Reverse(t));
        let mut spatial: Vec<usize> = Vec::new();
        let mut row_par = 1usize;
        let mut col_par = 1usize;
        for &(d, trip) in &par {
            let mut candidate = spatial.clone();
            candidate.push(d);
            if !crate::analysis::spatial_legal(nest, &candidate) {
                continue;
            }
            if spatial.is_empty() {
                col_par = trip.min(cols * lanes);
                spatial = candidate;
            } else if spatial.len() == 1 {
                row_par = trip.min(rows);
                spatial = candidate;
                break;
            }
        }
        // Lane efficiency: the column-dim parallelism fills 4-wide lanes;
        // a trip below the lane width leaves lanes idle (§4.2).
        let lane_eff = if col_par >= lanes {
            1.0
        } else {
            col_par as f64 / lanes as f64
        };
        let groups = (a.points as f64 / (row_par as f64 * col_par as f64)).ceil();
        // Each group of spatially-mapped points issues `ops_per_point`
        // instructions; the orchestrator adds ~1 control token per group
        // (row-end-style bookkeeping), and the staggered pipe drains once.
        let nest_cycles = groups * (a.ops_per_point.max(1) as f64) * a.active_fraction.max(0.05)
            + groups * 0.03 * a.ops_per_point as f64
            + (cols * 3) as f64;
        cycles += nest_cycles.ceil() as u64;
        // Lane instructions actually issued across the active rows/cols.
        lane_instrs +=
            (groups * a.ops_per_point as f64 * row_par as f64 * cols as f64).ceil() as u64;
        let _ = lane_eff;
    }
    // Useful ops: real arithmetic (guard-weighted), independent of mapping.
    let useful = kernel.useful_ops();
    let utilization = if cycles == 0 {
        0.0
    } else {
        useful as f64 / (cycles as f64 * peak)
    };
    CanonLoopRun {
        cycles,
        useful_ops: useful,
        lane_instrs,
        utilization,
    }
}

/// Maps a kernel onto the CGRA baseline via modulo scheduling.
pub fn map_cgra(kernel: &Kernel, cgra: &Cgra) -> BaselineRun {
    let mut total = BaselineRun {
        cycles: cgra.config_cycles, // one configuration per kernel
        activity: Activity::default(),
        useful_macs: 0,
        peak_macs_per_cycle: cgra.peak_macs_per_cycle(),
    };
    for nest in &kernel.nests {
        let a = analyze_nest(nest);
        if a.points == 0 {
            continue;
        }
        let ops = a.ops_per_point.max(1);
        // Spatial replication of independent iterations until PEs run out.
        let par = a.parallel_points(nest).max(1);
        let unroll = ((cgra.pes as u64) / ops).clamp(1, par);
        let res_mii = (ops * unroll).div_ceil(cgra.pes as u64).max(1);
        let rec_mii = a.recurrence_depth.max(1);
        let mii = res_mii.max(rec_mii);
        // Routing factor: achieved II exceeds MII for non-trivial graphs.
        let ii = if ops * unroll >= 4 {
            (mii as f64 * 1.25).ceil() as u64
        } else {
            mii
        };
        let iterations = (a.points as f64 / unroll as f64).ceil() as u64;
        let prologue = a.recurrence_depth + 4;
        let r = cgra.loop_kernel(ii, iterations, ops, (ops * unroll) as usize, prologue);
        // `loop_kernel` already charges config; keep only one global config.
        total.cycles += r.cycles - cgra.config_cycles;
        total.useful_macs += a.useful_ops();
        total.activity.macs += a.useful_ops();
        total.activity.instr_fetches += r.activity.instr_fetches;
        total.activity.sram_reads += r.activity.sram_reads;
        total.activity.sram_writes += r.activity.sram_writes;
        total.activity.noc_hops += r.activity.noc_hops;
    }
    total.activity.control_events += cgra.config_cycles * cgra.pes as u64;
    total
}

/// Aggregate comparison for a kernel category (geometric-mean speedup of
/// Canon over the CGRA, plus the raw runs).
#[derive(Debug, Clone)]
pub struct CategoryComparison {
    /// Category compared.
    pub category: Category,
    /// Per-kernel `(name, canon, cgra)` runs.
    pub kernels: Vec<(&'static str, CanonLoopRun, BaselineRun)>,
}

impl CategoryComparison {
    /// Geometric mean of CGRA-cycles / Canon-cycles (>1 means Canon faster).
    pub fn geomean_speedup(&self) -> f64 {
        if self.kernels.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self
            .kernels
            .iter()
            .map(|(_, canon, cgra)| (cgra.cycles.max(1) as f64 / canon.cycles.max(1) as f64).ln())
            .sum();
        (log_sum / self.kernels.len() as f64).exp()
    }
}

/// Runs every kernel of a category through both mappers.
pub fn compare_category(
    kernels: &[Kernel],
    category: Category,
    rows: usize,
    cols: usize,
    lanes: usize,
) -> CategoryComparison {
    let cgra = Cgra::default();
    let runs = kernels
        .iter()
        .filter(|k| k.category == category)
        .map(|k| (k.name, map_canon(k, rows, cols, lanes), map_cgra(k, &cgra)))
        .collect();
    CategoryComparison {
        category,
        kernels: runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polybench;

    #[test]
    fn gemm_canon_beats_cgra_on_parallel_kernel() {
        let ks = polybench::suite(64);
        let gemm = ks.iter().find(|k| k.name == "gemm").unwrap();
        let canon = map_canon(gemm, 8, 8, 4);
        let cgra = map_cgra(gemm, &Cgra::default());
        assert!(canon.cycles > 0 && cgra.cycles > 0);
        assert!(
            canon.cycles <= cgra.cycles,
            "canon {} vs cgra {}",
            canon.cycles,
            cgra.cycles
        );
        assert!(canon.utilization > 0.3, "utilization {}", canon.utilization);
    }

    #[test]
    fn sequential_kernel_favors_cgra() {
        let ks = polybench::suite(64);
        let seidel = ks.iter().find(|k| k.name == "seidel-2d").unwrap();
        let canon = map_canon(seidel, 8, 8, 4);
        let cgra = map_cgra(seidel, &Cgra::default());
        // Seidel's space dims are loop-carried: Canon gets no DLP while the
        // CGRA pipelines the recurrence at II ≈ depth.
        assert!(
            cgra.cycles < canon.cycles,
            "cgra {} should beat canon {}",
            cgra.cycles,
            canon.cycles
        );
    }

    #[test]
    fn category_comparison_runs() {
        let ks = polybench::suite(32);
        for cat in [Category::Blas, Category::Kernel, Category::Stencil] {
            let cmp = compare_category(&ks, cat, 8, 8, 4);
            assert!(!cmp.kernels.is_empty(), "no kernels in {cat}");
            let g = cmp.geomean_speedup();
            assert!(g.is_finite() && g > 0.0);
        }
    }
}
