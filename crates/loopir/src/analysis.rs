//! Semantic analyses (stage 1 of the compilation flow, Fig 6): memory access
//! patterns, data dependences, conditional execution, and the §4.2 spatial
//! legality rule.

use crate::expr::Access;
use crate::nest::LoopNest;

/// Classification of one loop dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimKind {
    /// No loop-carried dependence: iterations can run spatially in parallel.
    Parallel,
    /// Accumulation into a location independent of this dimension
    /// (reorderable by associativity; Canon's asynchronous reduction applies).
    Reduction,
    /// Genuine loop-carried dependence: must run temporally.
    Sequential,
}

/// Analysis result for one loop nest.
#[derive(Debug, Clone, PartialEq)]
pub struct NestAnalysis {
    /// Per-dimension classification (outer → inner).
    pub dims: Vec<DimKind>,
    /// Arithmetic operations per iteration point (all statements).
    pub ops_per_point: u64,
    /// Critical arithmetic path of the loop-carried recurrence, in ops
    /// (lower-bounds the CGRA's recurrence MII; 0 when no recurrence).
    pub recurrence_depth: u64,
    /// Fraction of iteration points whose guards are satisfied, in `[0, 1]`.
    pub active_fraction: f64,
    /// Total iteration points.
    pub points: u64,
}

impl NestAnalysis {
    /// Trip-count product of dimensions with the given kind.
    pub fn trips_of(&self, nest: &LoopNest, kind: DimKind) -> u64 {
        self.dims
            .iter()
            .zip(&nest.loops)
            .filter(|(k, _)| **k == kind)
            .map(|(_, l)| l.trip as u64)
            .product()
    }

    /// Degree of exploitable data-level parallelism (parallel-dim product).
    pub fn parallel_points(&self, nest: &LoopNest) -> u64 {
        self.trips_of(nest, DimKind::Parallel)
    }

    /// Useful arithmetic operations (guards applied).
    pub fn useful_ops(&self) -> u64 {
        (self.points as f64 * self.active_fraction * self.ops_per_point as f64).round() as u64
    }
}

/// Analyses one nest.
///
/// Dependence testing is deliberately conservative (the paper's flow also
/// combines static analyses "with a human in the loop"): a dimension is
/// *sequential* if some statement writes an array that any statement also
/// reads through a different index function involving that dimension;
/// *reduction* if the only write–read coupling is the accumulation pattern
/// `X[f(..)] = X[f(..)] ⊕ …` with the destination independent of the
/// dimension; *parallel* otherwise.
pub fn analyze_nest(nest: &LoopNest) -> NestAnalysis {
    let ndims = nest.loops.len();
    let mut dims = vec![DimKind::Parallel; ndims];
    let ops_per_point: u64 = nest.stmts.iter().map(|s| s.expr.op_count()).sum();

    // Collect all reads per statement.
    let mut recurrence_depth = 0u64;
    for d in 0..ndims {
        let mut kind = DimKind::Parallel;
        for w_stmt in &nest.stmts {
            let w = &w_stmt.dst;
            for r_stmt in &nest.stmts {
                let mut reads: Vec<&Access> = Vec::new();
                r_stmt.expr.accesses(&mut reads);
                for r in reads {
                    if r.array != w.array {
                        continue;
                    }
                    if r == w {
                        // Accumulation pattern: X[f] = X[f] ⊕ …; a reduction
                        // over d when the destination ignores d.
                        if w.indices.iter().all(|f| f.independent_of(d)) {
                            if kind == DimKind::Parallel {
                                kind = DimKind::Reduction;
                            }
                            recurrence_depth = recurrence_depth.max(r_stmt.expr.depth());
                        }
                        continue;
                    }
                    // Different index function to the written array: a
                    // potential loop-carried dependence. It involves d when
                    // either side's index functions use d, or when the write
                    // ignores d entirely (all iterations of d touch it).
                    let involves_d = w.indices.iter().any(|f| !f.independent_of(d))
                        || r.indices.iter().any(|f| !f.independent_of(d))
                        || w.indices.iter().all(|f| f.independent_of(d));
                    if involves_d {
                        kind = DimKind::Sequential;
                        recurrence_depth = recurrence_depth.max(r_stmt.expr.depth());
                    }
                }
            }
        }
        dims[d] = kind;
    }

    let points = nest.points();
    let active_fraction = guard_fraction(nest);
    NestAnalysis {
        dims,
        ops_per_point,
        recurrence_depth,
        active_fraction,
        points,
    }
}

/// Fraction of (statement, point) executions whose guard holds. Exact when
/// the iteration space is small; a triangular-space estimate otherwise.
fn guard_fraction(nest: &LoopNest) -> f64 {
    if nest.stmts.is_empty() || nest.stmts.iter().all(|s| s.guards.is_empty()) {
        return 1.0;
    }
    let points = nest.points();
    if points == 0 {
        return 1.0;
    }
    if points <= 1 << 20 {
        let mut active = 0u64;
        let mut total = 0u64;
        let mut point = vec![0usize; nest.loops.len()];
        loop {
            for s in &nest.stmts {
                total += 1;
                if s.active_at(&point) {
                    active += 1;
                }
            }
            let mut d = nest.loops.len();
            loop {
                if d == 0 {
                    break;
                }
                d -= 1;
                point[d] += 1;
                if point[d] < nest.loops[d].trip {
                    break;
                }
                point[d] = 0;
                if d == 0 {
                    d = usize::MAX;
                    break;
                }
            }
            if d == usize::MAX || nest.loops.is_empty() {
                break;
            }
        }
        active as f64 / total as f64
    } else {
        // Large triangular spaces: guards of the `i − j` form keep half.
        0.5
    }
}

/// The §4.2 spatial legality rule, applied per index expression: every array
/// dimension's affine function may involve at most one spatial iterator, and
/// only with coefficient in `{−1, 0, 1}`.
///
/// (The paper states the rule per access function; a stationary operand like
/// `C[i][j]` tiled along two spatial dims is mappable — each spatial
/// iterator selects along its own array dimension — so the constraint that
/// actually gates mesh-neighbourhood sharing is that no *single* index
/// expression mixes spatial iterators or strides them.)
pub fn spatial_legal(nest: &LoopNest, spatial_dims: &[usize]) -> bool {
    let mut accesses: Vec<&Access> = Vec::new();
    for s in &nest.stmts {
        accesses.push(&s.dst);
        s.expr.accesses(&mut accesses);
    }
    for a in accesses {
        for f in &a.indices {
            let mut nonzero = 0;
            for &d in spatial_dims {
                let c = f.coeff(d);
                if c != 0 {
                    nonzero += 1;
                    if c.abs() > 1 {
                        return false;
                    }
                }
            }
            if nonzero > 1 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Access, AffineExpr, Expr};
    use crate::nest::{LoopDim, Stmt};

    fn gemm_nest(n: usize) -> LoopNest {
        let c = Access::new(2, vec![AffineExpr::iter(0), AffineExpr::iter(1)]);
        LoopNest {
            loops: vec![
                LoopDim { name: "i", trip: n },
                LoopDim { name: "j", trip: n },
                LoopDim { name: "k", trip: n },
            ],
            stmts: vec![Stmt::new(
                c.clone(),
                Expr::add(
                    Expr::Load(c),
                    Expr::mul(
                        Expr::load(0, vec![AffineExpr::iter(0), AffineExpr::iter(2)]),
                        Expr::load(1, vec![AffineExpr::iter(2), AffineExpr::iter(1)]),
                    ),
                ),
            )],
        }
    }

    #[test]
    fn gemm_dims_classified() {
        let nest = gemm_nest(8);
        let a = analyze_nest(&nest);
        assert_eq!(a.dims[0], DimKind::Parallel); // i
        assert_eq!(a.dims[1], DimKind::Parallel); // j
        assert_eq!(a.dims[2], DimKind::Reduction); // k
        assert_eq!(a.ops_per_point, 2);
        assert_eq!(a.points, 512);
        assert_eq!(a.parallel_points(&nest), 64);
        assert_eq!(a.useful_ops(), 1024);
    }

    #[test]
    fn seidel_like_is_sequential() {
        // A[i] = A[i-1] + A[i+1]: same-array read at shifted indices.
        let nest = LoopNest {
            loops: vec![LoopDim { name: "i", trip: 8 }],
            stmts: vec![Stmt::new(
                Access::new(0, vec![AffineExpr::iter_plus(0, 1)]),
                Expr::add(
                    Expr::load(0, vec![AffineExpr::iter(0)]),
                    Expr::load(0, vec![AffineExpr::iter_plus(0, 2)]),
                ),
            )],
        };
        let a = analyze_nest(&nest);
        assert_eq!(a.dims[0], DimKind::Sequential);
        assert!(a.recurrence_depth >= 1);
    }

    #[test]
    fn jacobi_like_is_parallel() {
        // B[i] = A[i-1] + A[i+1]: different arrays → parallel.
        let nest = LoopNest {
            loops: vec![LoopDim { name: "i", trip: 8 }],
            stmts: vec![Stmt::new(
                Access::new(1, vec![AffineExpr::iter_plus(0, 1)]),
                Expr::add(
                    Expr::load(0, vec![AffineExpr::iter(0)]),
                    Expr::load(0, vec![AffineExpr::iter_plus(0, 2)]),
                ),
            )],
        };
        let a = analyze_nest(&nest);
        assert_eq!(a.dims[0], DimKind::Parallel);
        assert_eq!(a.recurrence_depth, 0);
    }

    #[test]
    fn guard_fraction_triangular() {
        // Guard j <= i on an n×n space ≈ (n+1)/2n.
        let nest = LoopNest {
            loops: vec![
                LoopDim {
                    name: "i",
                    trip: 16,
                },
                LoopDim {
                    name: "j",
                    trip: 16,
                },
            ],
            stmts: vec![Stmt::guarded(
                Access::new(0, vec![AffineExpr::iter(0), AffineExpr::iter(1)]),
                Expr::Const(1),
                AffineExpr {
                    offset: 0,
                    coeffs: vec![1, -1],
                },
            )],
        };
        let a = analyze_nest(&nest);
        assert!((a.active_fraction - 17.0 / 32.0).abs() < 1e-9);
    }

    #[test]
    fn spatial_legality_rule() {
        let nest = gemm_nest(8);
        // i and j touch different arrays with unit coefficients → legal.
        assert!(spatial_legal(&nest, &[0]));
        assert!(spatial_legal(&nest, &[1]));
        assert!(spatial_legal(&nest, &[0, 1]));
        // A nest with a 2-strided access is illegal on that dim.
        let strided = LoopNest {
            loops: vec![LoopDim { name: "i", trip: 8 }],
            stmts: vec![Stmt::new(
                Access::new(
                    0,
                    vec![AffineExpr {
                        offset: 0,
                        coeffs: vec![2],
                    }],
                ),
                Expr::Const(0),
            )],
        };
        assert!(!spatial_legal(&strided, &[0]));
        assert!(spatial_legal(&strided, &[]));
    }

    #[test]
    fn two_spatial_dims_in_one_access_illegal() {
        // X[i + j] with both i, j spatial: two nonzero spatial coefficients.
        let nest = LoopNest {
            loops: vec![
                LoopDim { name: "i", trip: 4 },
                LoopDim { name: "j", trip: 4 },
            ],
            stmts: vec![Stmt::new(
                Access::new(
                    0,
                    vec![AffineExpr {
                        offset: 0,
                        coeffs: vec![1, 1],
                    }],
                ),
                Expr::Const(0),
            )],
        };
        assert!(!spatial_legal(&nest, &[0, 1]));
        assert!(spatial_legal(&nest, &[0]));
    }
}
