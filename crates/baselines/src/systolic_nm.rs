//! 2:4 sparse systolic array (NVIDIA-tensor-core-like).
//!
//! Extends the dense systolic array with hard-wired 2:4 structured-sparsity
//! support: when the streamed operand satisfies "two non-zeros per four
//! elements", the contraction dimension is compressed 2× and per-element
//! metadata muxes select the matching dense operands.
//!
//! The specialisation is *extreme* in the paper's sense: it does not
//! generalise. A 2:8 input (two non-zeros per eight) still executes with
//! the fixed 2:4 datapath — each 4-group is padded to two slots — so no
//! speedup beyond 2× materialises. Unstructured sparsity cannot use the
//! sparse path at all and falls back to dense execution.

use crate::systolic::SystolicArray;
use crate::{Accelerator, BaselineRun};
use canon_sparse::{CsrMatrix, Mask};

/// The 2:4 sparse systolic model (wraps the dense model).
#[derive(Debug, Clone, Default)]
pub struct SparseSystolic24 {
    dense: SystolicArray,
}

impl SparseSystolic24 {
    /// The model provisioned iso-MAC with a Canon fabric of geometry
    /// `(rows, cols)` (see [`SystolicArray::iso_mac`]).
    pub fn iso_mac(rows: usize, cols: usize) -> SparseSystolic24 {
        SparseSystolic24 {
            dense: SystolicArray::iso_mac(rows, cols),
        }
    }

    /// The effective contraction length the 2:4 datapath achieves for an
    /// `n_of:m_of` structured input: each aligned group of 4 always occupies
    /// `2` compressed slots, so the best case is `K/2` regardless of how
    /// much sparser than 2:4 the input is.
    pub fn effective_k(k: usize, n_of: usize, m_of: usize) -> usize {
        if m_of == 0 {
            return k;
        }
        let density = n_of as f64 / m_of as f64;
        if density <= 0.5 {
            // Exploitable by the fixed 2:4 datapath: K compresses to K/2,
            // never further.
            k.div_ceil(2)
        } else {
            // Denser than 2:4: the sparse path cannot represent it; dense.
            k
        }
    }
}

impl Accelerator for SparseSystolic24 {
    fn name(&self) -> &'static str {
        "systolic-2:4"
    }

    fn peak_macs_per_cycle(&self) -> u64 {
        self.dense.peak_macs_per_cycle()
    }

    fn gemm(&self, m: usize, k: usize, n: usize) -> Option<BaselineRun> {
        self.dense.gemm(m, k, n)
    }

    fn spmm(&self, a: &CsrMatrix, n: usize) -> Option<BaselineRun> {
        // Unstructured input: metadata cannot encode it; dense fallback.
        self.dense.spmm(a, n)
    }

    fn spmm_nm(&self, a: &CsrMatrix, n: usize, n_of: usize, m_of: usize) -> Option<BaselineRun> {
        let k_eff = Self::effective_k(a.cols(), n_of, m_of);
        let mut run = self.dense.dense_run(a.rows(), k_eff, n);
        run.useful_macs = a.nnz() as u64 * n as u64;
        // Metadata decode: one mux lookup per compressed operand fetch.
        run.activity.special_events += (a.rows() * k_eff) as u64;
        // Metadata storage traffic: 2 bits per 4-group ≈ k/16 bytes per row.
        run.activity.offchip_read_bytes += (a.rows() * a.cols() / 16) as u64;
        Some(run)
    }

    fn sddmm(&self, mask: &Mask, k: usize) -> Option<BaselineRun> {
        // Output sparsity is not 2:4 input structure: dense fallback.
        self.dense.sddmm(mask, k)
    }

    fn window_attention(&self, seq: usize, window: usize, head_dim: usize) -> Option<BaselineRun> {
        self.dense.window_attention(seq, window, head_dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_sparse::gen;

    #[test]
    fn two_four_halves_cycles() {
        let mut rng = gen::seeded_rng(1);
        let a = gen::nm_sparse(256, 256, 2, 4, &mut rng);
        let s24 = SparseSystolic24::default();
        let dense_cost = s24.gemm(256, 256, 256).unwrap().cycles;
        let sparse_cost = s24.spmm_nm(&a, 256, 2, 4).unwrap().cycles;
        let ratio = dense_cost as f64 / sparse_cost as f64;
        assert!(
            (1.6..=2.2).contains(&ratio),
            "2:4 speedup {ratio} should be ~2x"
        );
    }

    #[test]
    fn two_eight_gains_nothing_beyond_two_four() {
        let mut rng = gen::seeded_rng(2);
        let a24 = gen::nm_sparse(128, 256, 2, 4, &mut rng);
        let a28 = gen::nm_sparse(128, 256, 2, 8, &mut rng);
        let s24 = SparseSystolic24::default();
        let c24 = s24.spmm_nm(&a24, 128, 2, 4).unwrap().cycles;
        let c28 = s24.spmm_nm(&a28, 128, 2, 8).unwrap().cycles;
        // Same cycles: the fixed datapath cannot exploit the extra sparsity,
        // so 2:8 utilization is half of 2:4.
        assert_eq!(c24, c28);
    }

    #[test]
    fn unstructured_falls_back_to_dense() {
        let mut rng = gen::seeded_rng(3);
        let a = gen::random_sparse(128, 128, 0.5, &mut rng);
        let s24 = SparseSystolic24::default();
        let dense = s24.gemm(128, 128, 128).unwrap().cycles;
        let sparse = s24.spmm(&a, 128).unwrap().cycles;
        assert_eq!(dense, sparse);
    }

    #[test]
    fn effective_k_rules() {
        assert_eq!(SparseSystolic24::effective_k(256, 2, 4), 128);
        assert_eq!(SparseSystolic24::effective_k(256, 2, 8), 128);
        assert_eq!(SparseSystolic24::effective_k(256, 3, 4), 256); // too dense
        assert_eq!(SparseSystolic24::effective_k(256, 1, 4), 128); // capped at 2x
        assert_eq!(SparseSystolic24::effective_k(7, 0, 0), 7);
    }
}
