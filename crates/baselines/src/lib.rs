//! Baseline accelerator models for the Canon evaluation (§5).
//!
//! The paper compares Canon against four architectures, each provisioned
//! with the *same number of MAC units* (256 INT8 MACs at the Table 1
//! geometry) and the same average on-chip memory per MAC (1 KB), so that
//! differences come from orchestration, not peak compute. Every model has an
//! `iso_mac(rows, cols)` constructor that provisions it with the same peak
//! compute as a Canon fabric of that geometry (`rows × cols × LANES` scalar
//! MACs), so geometry sweeps keep the Table 1 parity requirement at every
//! point:
//!
//! | Baseline | Specialisation | Module |
//! |---|---|---|
//! | Systolic array (TPU-like, 16×16) | dense tensor | [`systolic`] |
//! | 2:4 sparse systolic (tensor-core-like) | 2:4 structured sparsity | [`systolic_nm`] |
//! | ZeD-like accelerator (row scheduling + work stealing + crossbars) | variably sparse tensor | [`zed`] |
//! | CGRA (HyCUBE-like, compile-time mapped) | general reconfigurable | [`cgra`] |
//!
//! Each model is a from-scratch cycle model at the fidelity the comparison
//! needs: the systolic models walk the exact tile loops; the ZeD model runs
//! a discrete work-stealing schedule over the real non-zero distribution;
//! the CGRA model charges configuration and per-PE instruction-fetch
//! overheads on top of the systolic dataflow it must emulate for tensor
//! kernels (its PolyBench side lives in `canon-loopir`, which feeds both
//! Canon and the CGRA from the same loop IR).
//!
//! A baseline returns `None` for workloads it cannot execute at all (the
//! `X` marks in Figs 12/13) — e.g. arbitrary loop nests on the systolic
//! array.

pub mod cgra;
pub mod systolic;
pub mod systolic_nm;
pub mod zed;

pub use cgra::Cgra;
pub use systolic::SystolicArray;
pub use systolic_nm::SparseSystolic24;
pub use zed::ZedAccelerator;

use canon_sparse::{CsrMatrix, Mask};

/// MAC lanes per Canon PE — the conversion factor between a Canon geometry
/// `(rows, cols)` and the iso-MAC budget `rows × cols × LANES` every
/// baseline constructor provisions against.
pub const LANES: usize = canon_core::LANES;

// The iso_mac constructors split the ×LANES factor as ×2 per array
// dimension (systolic) or fold it into vector lanes (ZeD); both assume the
// 4-wide SIMD of Table 1.
const _: () = assert!(LANES == 4, "iso_mac constructors assume 4 MAC lanes");

/// Activity counters common to the baseline models, consumed by
/// `canon-energy`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Activity {
    /// Scalar MAC operations executed (including padding/zero work the
    /// architecture cannot skip).
    pub macs: u64,
    /// On-chip SRAM word (4 B) reads.
    pub sram_reads: u64,
    /// On-chip SRAM word writes.
    pub sram_writes: u64,
    /// Inter-PE / array-internal transfers.
    pub noc_hops: u64,
    /// Control events (per-cycle sequencing, scheduler decisions).
    pub control_events: u64,
    /// Specialised-unit events: crossbar traversals (ZeD), sparsity-decoder
    /// lookups (ZeD / 2:4 systolic).
    pub special_events: u64,
    /// Per-PE instruction fetches (CGRA).
    pub instr_fetches: u64,
    /// Off-chip bytes read.
    pub offchip_read_bytes: u64,
    /// Off-chip bytes written.
    pub offchip_write_bytes: u64,
}

/// The outcome of running one kernel on a baseline model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineRun {
    /// Total cycles.
    pub cycles: u64,
    /// Activity counters.
    pub activity: Activity,
    /// Scalar MACs that were *useful* (contributed to the mathematical
    /// result) — the numerator of effective utilization.
    pub useful_macs: u64,
    /// Peak scalar MACs per cycle, derived from the model's provisioned
    /// geometry ([`Accelerator::peak_macs_per_cycle`]; 256 at the Table 1
    /// default).
    pub peak_macs_per_cycle: u64,
}

impl BaselineRun {
    /// Effective compute utilization: useful MACs over peak MAC-cycles.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.useful_macs as f64 / (self.cycles as f64 * self.peak_macs_per_cycle as f64)
    }
}

/// Workload families an accelerator can be asked about, used for capability
/// queries before any operands are materialized (the sweep engine skips
/// unsupported cells without generating inputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Dense GEMM.
    Gemm,
    /// Unstructured SpMM.
    Spmm,
    /// N:M structured SpMM.
    SpmmNm,
    /// Unstructured SDDMM.
    Sddmm,
    /// Sliding-window SDDMM.
    WindowAttention,
    /// Arbitrary affine loop nests (PolyBench) — only reconfigurable
    /// architectures run these; tensor accelerators render as `X`.
    LoopNest,
}

/// The common interface of the four baseline models.
///
/// `None` means the architecture cannot run the workload at all (rendered as
/// `X` in the paper's figures). Implementations that *can* run a workload
/// but only by padding it to a denser form (e.g. a systolic array executing
/// sparse SpMM densely) return the padded cost. [`Accelerator::supports`]
/// answers the same question without operands; `run` methods returning
/// `Some` must agree with it.
///
/// The `Sync` bound lets harnesses share one model instance across sweep
/// worker threads (all models are immutable parameter sets).
pub trait Accelerator: Sync {
    /// Short display name used by the harness tables.
    fn name(&self) -> &'static str;

    /// Peak scalar MACs per cycle of this instance, derived from its
    /// provisioned geometry. Every [`BaselineRun`] the model returns carries
    /// this value as its utilization denominator.
    fn peak_macs_per_cycle(&self) -> u64;

    /// Whether this architecture can execute the workload family at all.
    /// Tensor accelerators default to everything except arbitrary loop
    /// nests; reconfigurable architectures override.
    fn supports(&self, kind: OpKind) -> bool {
        !matches!(kind, OpKind::LoopNest)
    }

    /// Dense GEMM `C[m×n] = A[m×k] × B[k×n]`.
    fn gemm(&self, m: usize, k: usize, n: usize) -> Option<BaselineRun>;

    /// SpMM with a concrete sparse operand (`C = A × B`, `B` is `a.cols()×n`).
    fn spmm(&self, a: &CsrMatrix, n: usize) -> Option<BaselineRun>;

    /// SpMM with N:M structured sparsity (the model may exploit the
    /// structure; `a` satisfies `n_of:m_of`).
    fn spmm_nm(&self, a: &CsrMatrix, n: usize, n_of: usize, m_of: usize) -> Option<BaselineRun>;

    /// SDDMM with output mask `mask` and contraction length `k`.
    fn sddmm(&self, mask: &Mask, k: usize) -> Option<BaselineRun>;

    /// Sliding-window attention scores (seq×seq output, banded mask).
    fn window_attention(&self, seq: usize, window: usize, head_dim: usize) -> Option<BaselineRun>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_queries_match_figures() {
        let tensor_only: [&dyn Accelerator; 3] = [
            &SystolicArray::default(),
            &SparseSystolic24::default(),
            &ZedAccelerator::default(),
        ];
        for acc in tensor_only {
            assert!(acc.supports(OpKind::Gemm), "{}", acc.name());
            assert!(acc.supports(OpKind::Spmm), "{}", acc.name());
            assert!(!acc.supports(OpKind::LoopNest), "{}", acc.name());
        }
        assert!(Cgra::default().supports(OpKind::LoopNest));
    }

    #[test]
    fn iso_mac_parity_across_geometries() {
        for (r, c) in [(4, 4), (8, 8), (16, 16), (8, 16)] {
            let want = (r * c * LANES) as u64;
            assert_eq!(SystolicArray::iso_mac(r, c).peak_macs_per_cycle(), want);
            assert_eq!(SparseSystolic24::iso_mac(r, c).peak_macs_per_cycle(), want);
            assert_eq!(ZedAccelerator::iso_mac(r, c).peak_macs_per_cycle(), want);
            assert_eq!(Cgra::iso_mac(r, c).peak_macs_per_cycle(), want);
        }
        // The Table 1 defaults are the (8, 8) iso-MAC instances.
        assert_eq!(SystolicArray::default().peak_macs_per_cycle(), 256);
        assert_eq!(Cgra::default().peak_macs_per_cycle(), 256);
    }

    #[test]
    fn utilization_bounds() {
        let r = BaselineRun {
            cycles: 10,
            activity: Activity::default(),
            useful_macs: 2560,
            peak_macs_per_cycle: 256,
        };
        assert!((r.utilization() - 1.0).abs() < 1e-12);
        let z = BaselineRun { cycles: 0, ..r };
        assert_eq!(z.utilization(), 0.0);
    }
}
