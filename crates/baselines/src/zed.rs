//! ZeD-like variably-sparse accelerator model.
//!
//! ZeD (Dangi et al., PACT'24) is the paper's state-of-the-art specialised
//! sparse baseline: compute units consume the non-zeros of sparse rows with
//! dedicated sparsity decoders, fetch dense operands through fully-connected
//! crossbars, and balance load by *work stealing* rows across compute units.
//! Per §5, the row-reorganisation preprocessing is excluded (the same
//! optimisation could be applied to Canon).
//!
//! The model runs a discrete scheduling simulation over the real non-zero
//! distribution: each output row is a work grain of
//! `nnz(row) · ceil(N/lanes)` lane-cycles plus a fixed dispatch overhead,
//! and grains are assigned online to the least-loaded compute unit — the
//! behaviour of an idle-steal policy. The makespan gives the cycle count, so
//! ZeD's strengths (near-perfect balance when rows are plentiful and
//! regular) and weaknesses (row-granular stealing leaves a straggler tail
//! under skew; no exploitation of known structure) emerge from the
//! simulation rather than from fitted constants.

use crate::{Accelerator, Activity, BaselineRun, LANES};
use canon_sparse::{CsrMatrix, Mask};

/// The ZeD-like accelerator model.
#[derive(Debug, Clone)]
pub struct ZedAccelerator {
    /// Number of compute units.
    pub compute_units: usize,
    /// Vector lanes per compute unit (`compute_units × lanes` = 256 MACs).
    pub lanes: usize,
    /// Fixed dispatch/steal overhead per row grain, cycles.
    pub row_overhead: u64,
}

impl Default for ZedAccelerator {
    fn default() -> Self {
        // The (8, 8) iso-MAC instance: 64 CUs × 4 lanes = 256 MACs.
        ZedAccelerator::iso_mac(8, 8)
    }
}

impl ZedAccelerator {
    /// The model provisioned iso-MAC with a Canon fabric of geometry
    /// `(rows, cols)`: one compute unit per Canon PE, each [`LANES`]-wide,
    /// for `rows × cols × LANES` MACs.
    pub fn iso_mac(rows: usize, cols: usize) -> ZedAccelerator {
        ZedAccelerator {
            compute_units: rows * cols,
            lanes: LANES,
            row_overhead: 4,
        }
    }

    /// Online least-loaded assignment of row grains (idle work stealing):
    /// returns the makespan in cycles.
    fn makespan(&self, grains: impl Iterator<Item = u64>) -> u64 {
        let mut loads = vec![0u64; self.compute_units];
        for g in grains {
            // Least-loaded CU receives the next grain; a binary heap would be
            // asymptotically better but CU counts are tiny.
            let (idx, _) = loads
                .iter()
                .enumerate()
                .min_by_key(|&(_, &l)| l)
                .expect("at least one CU");
            loads[idx] += g + self.row_overhead;
        }
        loads.into_iter().max().unwrap_or(0)
    }

    fn run_rows(
        &self,
        row_nnz: impl Iterator<Item = usize> + Clone,
        inner: usize,
        gather_factor: u64,
        useful_macs: u64,
        read_bytes: u64,
        write_bytes: u64,
    ) -> BaselineRun {
        let per_lane_chunks = inner.div_ceil(self.lanes) as u64 * gather_factor;
        let cycles = self.makespan(row_nnz.clone().map(|nnz| nnz as u64 * per_lane_chunks));
        let total_nnz: u64 = row_nnz.map(|n| n as u64).sum();
        let lane_ops = total_nnz * per_lane_chunks;
        let activity = Activity {
            macs: lane_ops * self.lanes as u64,
            // Each non-zero fetches its dense row through the crossbar, in
            // lane-wide words; outputs write back once per row chunk.
            sram_reads: lane_ops,
            sram_writes: lane_ops,
            noc_hops: 0,
            control_events: cycles * self.compute_units as u64,
            // Crossbar traversals (per fetched word) + decoder lookups (per
            // nnz) — ZeD's specialised-unit power (§6.2: "allocates a
            // significant portion of its power budget to address sparsity
            // via fully connected crossbars and specialized decoders").
            special_events: lane_ops + total_nnz,
            instr_fetches: 0,
            offchip_read_bytes: read_bytes,
            offchip_write_bytes: write_bytes,
        };
        BaselineRun {
            cycles,
            activity,
            useful_macs,
            peak_macs_per_cycle: self.peak_macs_per_cycle(),
        }
    }
}

impl Accelerator for ZedAccelerator {
    fn name(&self) -> &'static str {
        "zed"
    }

    fn peak_macs_per_cycle(&self) -> u64 {
        (self.compute_units * self.lanes) as u64
    }

    fn gemm(&self, m: usize, k: usize, n: usize) -> Option<BaselineRun> {
        // Dense input = every element is a non-zero row entry.
        Some(self.run_rows(
            std::iter::repeat_n(k, m),
            n,
            1,
            (m * k * n) as u64,
            (m * k + k * n) as u64,
            (m * n) as u64,
        ))
    }

    fn spmm(&self, a: &CsrMatrix, n: usize) -> Option<BaselineRun> {
        let rows: Vec<usize> = (0..a.rows()).map(|r| a.row_nnz(r)).collect();
        Some(self.run_rows(
            rows.iter().copied(),
            n,
            1,
            a.nnz() as u64 * n as u64,
            (2 * a.nnz() + a.rows() + a.cols() * n) as u64,
            (a.rows() * n) as u64,
        ))
    }

    fn spmm_nm(&self, a: &CsrMatrix, n: usize, _n_of: usize, _m_of: usize) -> Option<BaselineRun> {
        // "ZeD's fixed datapath prevents it from leveraging structured
        // inputs, treating all matrices as unstructured" (§6.2).
        self.spmm(a, n)
    }

    fn sddmm(&self, mask: &Mask, k: usize) -> Option<BaselineRun> {
        // SDDMM gathers a *key* vector per masked output through the
        // crossbar. Unlike SpMM's row-major streaming of the stationary
        // operand, these fetches are data-dependent random bank accesses;
        // without ZeD's (excluded, §5) row-reorganisation preprocessing the
        // banked fetches from 64 concurrent units serialise roughly 2×.
        let rows: Vec<usize> = (0..mask.rows()).map(|r| mask.row_nnz(r)).collect();
        Some(self.run_rows(
            rows.iter().copied(),
            k,
            2,
            mask.nnz() as u64 * k as u64,
            (2 * mask.nnz() + mask.rows() + (mask.rows() + mask.cols()) * k) as u64,
            mask.nnz() as u64,
        ))
    }

    fn window_attention(&self, seq: usize, window: usize, head_dim: usize) -> Option<BaselineRun> {
        // No window specialisation: the band is processed as an unstructured
        // output mask.
        let mask = canon_sparse::gen::window_mask(seq, window);
        self.sddmm(&mask, head_dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_sparse::gen;

    #[test]
    fn dense_gemm_near_peak() {
        let z = ZedAccelerator::default();
        let r = z.gemm(256, 256, 256).unwrap();
        let util = r.utilization();
        assert!(util > 0.9, "utilization {util}");
    }

    #[test]
    fn balanced_sparse_input_high_utilization() {
        let mut rng = gen::seeded_rng(1);
        let a = gen::random_sparse(512, 256, 0.5, &mut rng);
        let z = ZedAccelerator::default();
        let r = z.spmm(&a, 256).unwrap();
        assert!(r.utilization() > 0.85, "utilization {}", r.utilization());
    }

    #[test]
    fn skewed_rows_leave_straggler_tail() {
        let mut rng = gen::seeded_rng(2);
        let balanced = gen::random_sparse(128, 256, 0.8, &mut rng);
        let skewed = gen::skewed_sparse(128, 256, 0.8, 4.0, &mut rng);
        let z = ZedAccelerator::default();
        let rb = z.spmm(&balanced, 256).unwrap();
        let rs = z.spmm(&skewed, 256).unwrap();
        assert!(
            rs.utilization() < rb.utilization(),
            "skewed {} should be below balanced {}",
            rs.utilization(),
            rb.utilization()
        );
    }

    #[test]
    fn structure_blind_on_nm() {
        let mut rng = gen::seeded_rng(3);
        let a = gen::nm_sparse(128, 256, 2, 8, &mut rng);
        let z = ZedAccelerator::default();
        let structured = z.spmm_nm(&a, 128, 2, 8).unwrap();
        let unstructured = z.spmm(&a, 128).unwrap();
        assert_eq!(structured.cycles, unstructured.cycles);
    }

    #[test]
    fn crossbar_and_decoder_events_scale_with_nnz() {
        let mut rng = gen::seeded_rng(4);
        let sparse = gen::random_sparse(128, 128, 0.9, &mut rng);
        let denser = gen::random_sparse(128, 128, 0.3, &mut rng);
        let z = ZedAccelerator::default();
        let rs = z.spmm(&sparse, 128).unwrap();
        let rd = z.spmm(&denser, 128).unwrap();
        assert!(rd.activity.special_events > rs.activity.special_events);
    }

    #[test]
    fn makespan_empty_and_single() {
        let z = ZedAccelerator::default();
        assert_eq!(z.makespan(std::iter::empty()), 0);
        // One giant row cannot be split: makespan = its full work.
        let r = z.makespan(std::iter::once(10_000));
        assert_eq!(r, 10_000 + z.row_overhead);
    }
}
