//! Conventional CGRA baseline (HyCUBE-like 2D mesh, compile-time mapped).
//!
//! The general-purpose reconfigurable reference point: a 16×16 array of
//! scalar FUs with circuit-switched single-cycle multi-hop interconnect and
//! a small per-PE instruction memory. All orchestration is compile-time:
//! kernels are place-and-routed once (configuration cost), then iterate at
//! the initiation interval (II) the mapper achieved.
//!
//! For tensor kernels the CGRA "must emulate the systolic dataflow … since
//! it has no dynamic mechanism to exploit sparsity" (§6.2): cycle counts
//! match the systolic schedule (plus configuration), while resource costs
//! are higher — every PE fetches an instruction from its local instruction
//! memory every cycle, and the routing fabric is over-provisioned. Its
//! PolyBench strength comes from fine-grained per-PE programs; that path is
//! modelled by `canon-loopir`'s modulo scheduler, which feeds this model's
//! [`Cgra::loop_kernel`] entry point.

use crate::systolic::SystolicArray;
use crate::{Accelerator, Activity, BaselineRun, LANES};
use canon_sparse::{CsrMatrix, Mask};

/// The CGRA model.
#[derive(Debug, Clone)]
pub struct Cgra {
    /// Array PEs (scalar FUs).
    pub pes: usize,
    /// Cycles to stream one full configuration into the array.
    pub config_cycles: u64,
    dense: SystolicArray,
}

impl Default for Cgra {
    fn default() -> Self {
        // The (8, 8) iso-MAC instance: 256 scalar FUs.
        Cgra::iso_mac(8, 8)
    }
}

impl Cgra {
    /// The model provisioned iso-MAC with a Canon fabric of geometry
    /// `(rows, cols)`: `rows × cols × LANES` scalar FUs, a configuration
    /// stream proportional to the array size, and an iso-MAC systolic
    /// schedule for its dense-tensor emulation path.
    pub fn iso_mac(rows: usize, cols: usize) -> Cgra {
        let pes = rows * cols * LANES;
        Cgra {
            pes,
            // Two configuration words per PE stream in at one word/cycle
            // (512 cycles at the default 256-PE array).
            config_cycles: 2 * pes as u64,
            dense: SystolicArray::iso_mac(rows, cols),
        }
    }

    /// Wraps a systolic-schedule run with CGRA overheads: one configuration
    /// plus per-PE instruction fetches every cycle. The run's utilization
    /// denominator becomes this array's FU count.
    fn emulate_systolic(&self, mut run: BaselineRun) -> BaselineRun {
        run.cycles += self.config_cycles;
        run.activity.instr_fetches += run.cycles * self.pes as u64;
        run.activity.control_events += self.config_cycles * self.pes as u64;
        run.peak_macs_per_cycle = self.peak_macs_per_cycle();
        run
    }

    /// A modulo-scheduled loop kernel (from `canon-loopir`'s mapper): `ii`
    /// cycles per iteration over `iterations` iterations with `ops_per_iter`
    /// useful scalar ops, using `active_pes` of the array.
    pub fn loop_kernel(
        &self,
        ii: u64,
        iterations: u64,
        ops_per_iter: u64,
        active_pes: usize,
        prologue: u64,
    ) -> BaselineRun {
        let cycles = self.config_cycles + prologue + ii * iterations;
        let useful = ops_per_iter * iterations;
        let activity = Activity {
            macs: useful,
            sram_reads: iterations * 2,
            sram_writes: iterations,
            noc_hops: useful, // operands route between PEs each op
            control_events: self.config_cycles * self.pes as u64,
            special_events: 0,
            instr_fetches: cycles * active_pes.min(self.pes) as u64,
            offchip_read_bytes: 0,
            offchip_write_bytes: 0,
        };
        BaselineRun {
            cycles,
            activity,
            useful_macs: useful,
            peak_macs_per_cycle: self.peak_macs_per_cycle(),
        }
    }
}

impl Accelerator for Cgra {
    fn name(&self) -> &'static str {
        "cgra"
    }

    fn peak_macs_per_cycle(&self) -> u64 {
        self.pes as u64
    }

    fn supports(&self, _kind: crate::OpKind) -> bool {
        // Compile-time reconfiguration runs any kernel, including arbitrary
        // loop nests (the PolyBench side lives in `canon-loopir`).
        true
    }

    fn gemm(&self, m: usize, k: usize, n: usize) -> Option<BaselineRun> {
        Some(self.emulate_systolic(self.dense.dense_run(m, k, n)))
    }

    fn spmm(&self, a: &CsrMatrix, n: usize) -> Option<BaselineRun> {
        // No dynamic mechanism to exploit sparsity: dense emulation.
        let mut run = self.emulate_systolic(self.dense.dense_run(a.rows(), a.cols(), n));
        run.useful_macs = a.nnz() as u64 * n as u64;
        Some(run)
    }

    fn spmm_nm(&self, a: &CsrMatrix, n: usize, _n_of: usize, _m_of: usize) -> Option<BaselineRun> {
        self.spmm(a, n)
    }

    fn sddmm(&self, mask: &Mask, k: usize) -> Option<BaselineRun> {
        let mut run = self.emulate_systolic(self.dense.dense_run(mask.rows(), k, mask.cols()));
        run.useful_macs = mask.nnz() as u64 * k as u64;
        Some(run)
    }

    fn window_attention(&self, seq: usize, window: usize, head_dim: usize) -> Option<BaselineRun> {
        // Sliding-chunk dense decomposition with one configuration reused.
        let base = self.dense.window_attention(seq, window, head_dim)?;
        Some(self.emulate_systolic(base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_sparse::gen;

    #[test]
    fn gemm_matches_systolic_plus_config() {
        let c = Cgra::default();
        let s = SystolicArray::default();
        let rc = c.gemm(256, 256, 256).unwrap();
        let rs = s.dense_run(256, 256, 256);
        assert_eq!(rc.cycles, rs.cycles + c.config_cycles);
        assert_eq!(rc.useful_macs, rs.useful_macs);
    }

    #[test]
    fn instruction_fetch_overhead_present() {
        let c = Cgra::default();
        let r = c.gemm(128, 128, 128).unwrap();
        assert_eq!(r.activity.instr_fetches, r.cycles * 256);
    }

    #[test]
    fn sparse_is_dense_emulated() {
        let mut rng = gen::seeded_rng(1);
        let a = gen::random_sparse(128, 128, 0.9, &mut rng);
        let c = Cgra::default();
        let sparse = c.spmm(&a, 128).unwrap();
        let dense = c.gemm(128, 128, 128).unwrap();
        assert_eq!(sparse.cycles, dense.cycles);
        assert!(sparse.utilization() < 0.2);
    }

    #[test]
    fn loop_kernel_cycles() {
        let c = Cgra::default();
        let r = c.loop_kernel(2, 1000, 4, 64, 10);
        assert_eq!(r.cycles, c.config_cycles + 10 + 2000);
        assert_eq!(r.useful_macs, 4000);
        assert_eq!(r.activity.instr_fetches, r.cycles * 64);
    }
}
