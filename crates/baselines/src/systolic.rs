//! TPU-like weight-stationary systolic array (16×16 INT8 MACs).
//!
//! The dense-tensor reference point of the evaluation. The model walks the
//! exact tile loops of a weight-stationary schedule: for each 16×16 tile of
//! `B`, weights are loaded column-by-column (16 cycles), then the `M`
//! activation rows stream through with a `rows + cols` pipeline fill/drain.
//!
//! The systolic array has no mechanism to skip zeros: sparse inputs execute
//! at dense cost (its fragility in Figs 12/13), SDDMM computes the full
//! dense score matrix and discards unmasked entries, and window attention
//! uses the sliding-chunk dense decomposition.

use crate::{Accelerator, Activity, BaselineRun};
use canon_core::kernels::window::sliding_chunk_shapes;
use canon_sparse::{CsrMatrix, Mask};

/// The systolic array model.
#[derive(Debug, Clone)]
pub struct SystolicArray {
    /// Array height (activation-streaming dimension).
    pub rows: usize,
    /// Array width (output-column dimension).
    pub cols: usize,
}

impl Default for SystolicArray {
    fn default() -> Self {
        // The (8, 8) iso-MAC instance: 16×16 = 256 MACs, matching the
        // default Canon fabric's provisioning.
        SystolicArray::iso_mac(8, 8)
    }
}

impl SystolicArray {
    /// The array provisioned iso-MAC with a Canon fabric of geometry
    /// `(rows, cols)`: each Canon PE carries [`crate::LANES`] (4) MAC
    /// lanes, so doubling both array dimensions yields
    /// `rows × cols × LANES` MACs in the squarest aspect ratio the budget
    /// admits.
    pub fn iso_mac(rows: usize, cols: usize) -> SystolicArray {
        SystolicArray {
            rows: rows * 2,
            cols: cols * 2,
        }
    }

    /// Cycle/activity model of one dense GEMM.
    pub fn dense_run(&self, m: usize, k: usize, n: usize) -> BaselineRun {
        if m == 0 || k == 0 || n == 0 {
            return BaselineRun {
                cycles: 0,
                activity: Activity::default(),
                useful_macs: 0,
                peak_macs_per_cycle: self.peak_macs_per_cycle(),
            };
        }
        let k_tiles = k.div_ceil(self.rows);
        let n_tiles = n.div_ceil(self.cols);
        // Weight-stationary schedule with double-buffered weight loads:
        // activations stream back-to-back across the K-tiles of one N-tile
        // (partial sums accumulate in the output SRAM), so the pipeline
        // fill/drain is paid once per N-tile.
        let cycles = n_tiles as u64 * (k_tiles as u64 * m as u64 + (self.rows + self.cols) as u64);
        let padded_macs = (k_tiles * self.rows * n_tiles * self.cols) as u64 * m as u64;
        let useful_macs = (m * k * n) as u64;
        let activity = Activity {
            macs: padded_macs,
            // Activations enter once per (k-tile, n-tile) pass; psums write
            // back per output per k-tile.
            sram_reads: (m * k) as u64 * n_tiles as u64,
            sram_writes: (m * n) as u64 * k_tiles as u64,
            noc_hops: padded_macs, // operand shifts accompany every MAC
            control_events: cycles,
            special_events: 0,
            instr_fetches: 0,
            offchip_read_bytes: (m * k + k * n) as u64,
            offchip_write_bytes: (m * n) as u64,
        };
        BaselineRun {
            cycles,
            activity,
            useful_macs,
            peak_macs_per_cycle: self.peak_macs_per_cycle(),
        }
    }
}

impl Accelerator for SystolicArray {
    fn name(&self) -> &'static str {
        "systolic"
    }

    fn peak_macs_per_cycle(&self) -> u64 {
        (self.rows * self.cols) as u64
    }

    fn gemm(&self, m: usize, k: usize, n: usize) -> Option<BaselineRun> {
        Some(self.dense_run(m, k, n))
    }

    fn spmm(&self, a: &CsrMatrix, n: usize) -> Option<BaselineRun> {
        // No sparsity support: dense execution; useful work is only the nnz.
        let mut run = self.dense_run(a.rows(), a.cols(), n);
        run.useful_macs = a.nnz() as u64 * n as u64;
        Some(run)
    }

    fn spmm_nm(&self, a: &CsrMatrix, n: usize, _n_of: usize, _m_of: usize) -> Option<BaselineRun> {
        self.spmm(a, n)
    }

    fn sddmm(&self, mask: &Mask, k: usize) -> Option<BaselineRun> {
        // Computes the full dense score matrix, discards unmasked outputs.
        let mut run = self.dense_run(mask.rows(), k, mask.cols());
        run.useful_macs = mask.nnz() as u64 * k as u64;
        Some(run)
    }

    fn window_attention(&self, seq: usize, window: usize, head_dim: usize) -> Option<BaselineRun> {
        // Sliding-chunk decomposition into dense blocks.
        let mut total = BaselineRun {
            cycles: 0,
            activity: Activity::default(),
            useful_macs: 0,
            peak_macs_per_cycle: self.peak_macs_per_cycle(),
        };
        for (m, n, k) in sliding_chunk_shapes(seq, window, head_dim) {
            let r = self.dense_run(m, k, n);
            total.cycles += r.cycles;
            total.useful_macs += r.useful_macs;
            merge_activity(&mut total.activity, &r.activity);
        }
        Some(total)
    }
}

pub(crate) fn merge_activity(into: &mut Activity, from: &Activity) {
    into.macs += from.macs;
    into.sram_reads += from.sram_reads;
    into.sram_writes += from.sram_writes;
    into.noc_hops += from.noc_hops;
    into.control_events += from.control_events;
    into.special_events += from.special_events;
    into.instr_fetches += from.instr_fetches;
    into.offchip_read_bytes += from.offchip_read_bytes;
    into.offchip_write_bytes += from.offchip_write_bytes;
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_sparse::{gen, Dense};

    #[test]
    fn dense_gemm_near_full_utilization() {
        let s = SystolicArray::default();
        let r = s.gemm(512, 256, 256).unwrap();
        let util = r.utilization();
        assert!(util > 0.85, "utilization {util}");
        assert_eq!(r.useful_macs, 512 * 256 * 256);
    }

    #[test]
    fn sparse_input_wastes_cycles() {
        let mut rng = gen::seeded_rng(1);
        let dense = gen::random_sparse(256, 256, 0.0, &mut rng);
        let sparse = gen::random_sparse(256, 256, 0.9, &mut rng);
        let s = SystolicArray::default();
        let rd = s.spmm(&dense, 256).unwrap();
        let rs = s.spmm(&sparse, 256).unwrap();
        // Same cycles (no skipping), far less useful work.
        assert_eq!(rd.cycles, rs.cycles);
        assert!(rs.utilization() < 0.2 * rd.utilization());
    }

    #[test]
    fn tile_padding_costs_show_up() {
        let s = SystolicArray::default();
        let aligned = s.gemm(64, 32, 32).unwrap();
        let ragged = s.gemm(64, 33, 33).unwrap();
        assert!(ragged.cycles > aligned.cycles);
        assert!(ragged.activity.macs > aligned.activity.macs);
    }

    #[test]
    fn zero_sized_gemm() {
        let s = SystolicArray::default();
        let r = s.gemm(0, 16, 16).unwrap();
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn sddmm_dense_cost_sparse_usefulness() {
        let mut rng = gen::seeded_rng(2);
        let _ = Dense::random(1, 1, &mut rng);
        let mask = gen::random_mask(64, 64, 0.8, &mut rng);
        let s = SystolicArray::default();
        let r = s.sddmm(&mask, 64).unwrap();
        let full = s.gemm(64, 64, 64).unwrap();
        assert_eq!(r.cycles, full.cycles);
        assert!(r.useful_macs < full.useful_macs / 3);
    }

    #[test]
    fn window_attention_charges_chunks() {
        let s = SystolicArray::default();
        let r = s.window_attention(256, 32, 64).unwrap();
        assert!(r.cycles > 0);
        // Chunked dense work exceeds the exact band work.
        let band = gen::window_mask(256, 32).nnz() as u64 * 64;
        assert!(r.useful_macs >= band / 2);
    }
}
