//! Activity counters and run reports.
//!
//! The simulator counts every architecturally-visible event (MACs, memory
//! port accesses, NoC transfers, orchestrator steps and state transitions).
//! `canon-energy` converts these counts into power/energy; the harness uses
//! them for the utilization figures (Figs 15, 17) and the power breakdown
//! (Fig 11).

use crate::isa::LANES;

/// Why an orchestrator was back-pressured on a cycle it wanted to act.
///
/// Every stall cycle ([`Stats::stall_cycles`]) carries exactly one cause,
/// recorded by the FSM that returned the stall
/// ([`crate::orchestrator::OrchAction::stall`]) and accumulated per cause in
/// [`StallBreakdown`]. The five causes cover the protocol resources an
/// orchestrator can wait on; `NocConflict` and `MetaWait` are reserved for
/// the spatial runner's router model and meta-prefetch experiments — no
/// in-tree FSM currently produces them (router conflicts abort the run as a
/// protocol error instead of stalling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum StallCause {
    /// No credit left on the row's southbound data channel.
    Credit = 0,
    /// The inter-orchestrator message slot towards the southern row is full.
    MsgSlot = 1,
    /// A router direction the instruction needs is already claimed.
    NocConflict = 2,
    /// The input meta stream has no deliverable head token.
    MetaWait = 3,
    /// A data operand (north token, evicted window entry) is not available.
    OperandWait = 4,
}

impl StallCause {
    /// All causes, in [`StallBreakdown`] field order.
    pub const ALL: [StallCause; 5] = [
        StallCause::Credit,
        StallCause::MsgSlot,
        StallCause::NocConflict,
        StallCause::MetaWait,
        StallCause::OperandWait,
    ];

    /// Stable lower-case name (store records, exporters).
    pub fn name(self) -> &'static str {
        match self {
            StallCause::Credit => "credit",
            StallCause::MsgSlot => "msg_slot",
            StallCause::NocConflict => "noc_conflict",
            StallCause::MetaWait => "meta_wait",
            StallCause::OperandWait => "operand_wait",
        }
    }

    /// Inverse of `self as u8` (trace decoding).
    pub fn from_index(i: u8) -> Option<StallCause> {
        StallCause::ALL.get(i as usize).copied()
    }
}

impl std::fmt::Display for StallCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-cause split of [`Stats::stall_cycles`].
///
/// Invariant (asserted by the trace replay tests): the field sum equals
/// `stall_cycles` exactly — every stall cycle is attributed to exactly one
/// cause, including the cycles settled arithmetically for parked rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Stalls waiting on a southbound-channel credit.
    pub credit: u64,
    /// Stalls waiting on a free inter-orchestrator message slot.
    pub msg_slot: u64,
    /// Stalls waiting on a router direction (reserved, see [`StallCause`]).
    pub noc_conflict: u64,
    /// Stalls waiting on a meta-stream token (reserved, see [`StallCause`]).
    pub meta_wait: u64,
    /// Stalls waiting on a data operand.
    pub operand_wait: u64,
}

impl StallBreakdown {
    /// Adds `n` stall cycles of the given cause.
    #[inline]
    pub fn add(&mut self, cause: StallCause, n: u64) {
        *self.slot_mut(cause) += n;
    }

    /// Cycles attributed to `cause`.
    pub fn get(&self, cause: StallCause) -> u64 {
        match cause {
            StallCause::Credit => self.credit,
            StallCause::MsgSlot => self.msg_slot,
            StallCause::NocConflict => self.noc_conflict,
            StallCause::MetaWait => self.meta_wait,
            StallCause::OperandWait => self.operand_wait,
        }
    }

    fn slot_mut(&mut self, cause: StallCause) -> &mut u64 {
        match cause {
            StallCause::Credit => &mut self.credit,
            StallCause::MsgSlot => &mut self.msg_slot,
            StallCause::NocConflict => &mut self.noc_conflict,
            StallCause::MetaWait => &mut self.meta_wait,
            StallCause::OperandWait => &mut self.operand_wait,
        }
    }

    /// Sum over all causes (equals [`Stats::stall_cycles`] by invariant).
    pub fn total(&self) -> u64 {
        self.credit + self.msg_slot + self.noc_conflict + self.meta_wait + self.operand_wait
    }

    /// Adds another breakdown into this one.
    pub fn merge(&mut self, other: &StallBreakdown) {
        for cause in StallCause::ALL {
            self.add(cause, other.get(cause));
        }
    }
}

/// Aggregated activity counters for one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Instructions entering PE pipelines (including NOPs), summed over PEs.
    pub instrs_executed: u64,
    /// Vector-lane compute instructions executed (op.is_compute()).
    pub compute_instrs: u64,
    /// Vector MAC instructions executed (op.is_mac()); each is `LANES` MACs.
    pub mac_instrs: u64,
    /// Data-memory word reads.
    pub dmem_reads: u64,
    /// Data-memory word writes.
    pub dmem_writes: u64,
    /// Scratchpad word reads.
    pub spad_reads: u64,
    /// Scratchpad word writes.
    pub spad_writes: u64,
    /// NoC link traversals (pushes onto inter-PE links and edge links).
    pub noc_hops: u64,
    /// Orchestrator active steps (cycles an orchestrator was not finished).
    pub orch_steps: u64,
    /// Data-driven FSM state transitions (Fig 11's transition counts).
    pub orch_transitions: u64,
    /// Orchestrator-to-orchestrator messages sent.
    pub orch_messages: u64,
    /// Cycles in which an orchestrator wanted to act but was back-pressured
    /// (no credit / message slot) — the load-imbalance stall metric.
    pub stall_cycles: u64,
    /// Per-cause split of `stall_cycles` (field sum equals it exactly).
    pub stall_breakdown: StallBreakdown,
    /// Meta tokens consumed from the input streams.
    pub meta_tokens: u64,
    /// Bytes streamed in from off-chip (operand streams + preload).
    pub offchip_read_bytes: u64,
    /// Bytes streamed out to off-chip (collected results).
    pub offchip_write_bytes: u64,
    /// PE-cycles spent in the step loop's active set (sum over cycles of the
    /// active-set size) — a scheduler diagnostic: `active_pe_cycles /
    /// (cycles × pes)` is the fraction of PE sweeps the active-set scheduler
    /// actually performs; the remainder is work the pre-scheduler simulator
    /// swept through for nothing.
    pub active_pe_cycles: u64,
    /// Orchestrator polls the event-driven engine skipped: row-cycles on
    /// which a live row was parked on a pure wait and the polling engine
    /// would have rebuilt its `OrchIo` and re-stepped its FSM for the same
    /// decision. A scheduler diagnostic — the architectural counters
    /// (`orch_steps`, `stall_cycles`, issued bubbles) already include these
    /// cycles as if polled.
    pub orch_polls_skipped: u64,
    /// Distinct row wake events raised into the orchestrator wake set (link
    /// events, delivery timers, freed message slots). A scheduler
    /// diagnostic: `wake_events / orch_steps` is how event-driven the run
    /// was (0 under pure polling).
    pub wake_events: u64,
    /// PE-cycles executed through the column-vectorized batch fast path
    /// (whole-row LOAD+COMMIT passes over the SoA slabs when every pipeline
    /// slot of a row holds the same MAC plan shape). A scheduler diagnostic:
    /// `batched_pe_cycles / active_pe_cycles` is the batch hit rate — the
    /// fraction of swept PE work the uniformity detector vectorized. The
    /// architectural counters are identical either way.
    pub batched_pe_cycles: u64,
    /// Cycles fast-forwarded by the steady-state replay engine: the PE-array
    /// sweep of these cycles was deferred and settled arithmetically at the
    /// next stretch flush (see `crate::replay`). A scheduler diagnostic —
    /// every architectural counter is identical with replay on or off;
    /// `replayed_cycles / cycles` is the fraction of the run the engine
    /// fast-forwarded.
    pub replayed_cycles: u64,
    /// Uniform-issue stretches the replay engine captured and flushed (each
    /// contributed ≥ 1 to `replayed_cycles`). A scheduler diagnostic:
    /// `replayed_cycles / replay_stretches` is the mean stretch length.
    pub replay_stretches: u64,
}

impl Stats {
    /// Creates zeroed counters.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &Stats) {
        self.instrs_executed += other.instrs_executed;
        self.compute_instrs += other.compute_instrs;
        self.mac_instrs += other.mac_instrs;
        self.dmem_reads += other.dmem_reads;
        self.dmem_writes += other.dmem_writes;
        self.spad_reads += other.spad_reads;
        self.spad_writes += other.spad_writes;
        self.noc_hops += other.noc_hops;
        self.orch_steps += other.orch_steps;
        self.orch_transitions += other.orch_transitions;
        self.orch_messages += other.orch_messages;
        self.stall_cycles += other.stall_cycles;
        self.stall_breakdown.merge(&other.stall_breakdown);
        self.meta_tokens += other.meta_tokens;
        self.offchip_read_bytes += other.offchip_read_bytes;
        self.offchip_write_bytes += other.offchip_write_bytes;
        self.active_pe_cycles += other.active_pe_cycles;
        self.orch_polls_skipped += other.orch_polls_skipped;
        self.wake_events += other.wake_events;
        self.batched_pe_cycles += other.batched_pe_cycles;
        self.replayed_cycles += other.replayed_cycles;
        self.replay_stretches += other.replay_stretches;
    }

    /// Total scalar MAC operations performed (vector MACs × lanes).
    pub fn scalar_macs(&self) -> u64 {
        self.mac_instrs * LANES as u64
    }
}

/// The result of running a kernel on the fabric: cycle count, geometry, and
/// activity counters.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Total cycles simulated until the fabric drained.
    pub cycles: u64,
    /// Number of PEs in the fabric.
    pub pes: usize,
    /// Activity counters.
    pub stats: Stats,
    /// Host wall-clock time spent inside the simulator's cycle loop
    /// ([`crate::Fabric::run`], summed over tiles; the spatial runner's
    /// execution loop, which interleaves edge feed/drain with its cycles),
    /// in nanoseconds. A simulator-throughput metric only — it is
    /// host-dependent and therefore excluded from equality (two runs of the
    /// same workload compare equal even though their wall times differ).
    pub wall_ns: u64,
}

/// Equality covers the architectural outcome (cycles, geometry, counters)
/// and deliberately ignores `wall_ns`, which varies run to run on the host.
impl PartialEq for RunReport {
    fn eq(&self, other: &RunReport) -> bool {
        self.cycles == other.cycles && self.pes == other.pes && self.stats == other.stats
    }
}

impl RunReport {
    /// Simulator throughput: simulated cycles per host wall-clock second.
    /// Zero when no wall time was recorded.
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.cycles as f64 / (self.wall_ns as f64 * 1e-9)
    }

    /// Compute utilization: fraction of PE-cycles spent on vector MAC
    /// instructions — the metric of Figs 15 and 17 ("compute utilization").
    pub fn compute_utilization(&self) -> f64 {
        if self.cycles == 0 || self.pes == 0 {
            return 0.0;
        }
        self.stats.mac_instrs as f64 / (self.cycles as f64 * self.pes as f64)
    }

    /// Scalar MAC throughput per cycle.
    pub fn macs_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.stats.scalar_macs() as f64 / self.cycles as f64
    }

    /// Execution time in seconds at the given clock (the paper targets 1 GHz).
    pub fn seconds_at(&self, hz: f64) -> f64 {
        self.cycles as f64 / hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = Stats::new();
        a.mac_instrs = 3;
        a.noc_hops = 5;
        let mut b = Stats::new();
        b.mac_instrs = 7;
        b.stall_cycles = 2;
        a.merge(&b);
        assert_eq!(a.mac_instrs, 10);
        assert_eq!(a.noc_hops, 5);
        assert_eq!(a.stall_cycles, 2);
        assert_eq!(a.scalar_macs(), 40);
    }

    #[test]
    fn stall_breakdown_sums_and_merges() {
        let mut b = StallBreakdown::default();
        b.add(StallCause::Credit, 3);
        b.add(StallCause::MsgSlot, 2);
        b.add(StallCause::OperandWait, 1);
        assert_eq!(b.total(), 6);
        assert_eq!(b.get(StallCause::Credit), 3);
        assert_eq!(b.get(StallCause::NocConflict), 0);
        let mut a = Stats::new();
        a.stall_cycles = 4;
        a.stall_breakdown.add(StallCause::Credit, 4);
        let mut other = Stats::new();
        other.stall_cycles = 6;
        other.stall_breakdown = b;
        a.merge(&other);
        assert_eq!(a.stall_cycles, 10);
        assert_eq!(a.stall_breakdown.total(), a.stall_cycles);
        assert_eq!(a.stall_breakdown.credit, 7);
        for c in StallCause::ALL {
            assert_eq!(StallCause::from_index(c as u8), Some(c));
            assert!(!c.name().is_empty());
        }
        assert_eq!(StallCause::from_index(9), None);
    }

    #[test]
    fn utilization_bounds() {
        let mut stats = Stats::new();
        stats.mac_instrs = 640;
        let r = RunReport {
            cycles: 10,
            pes: 64,
            stats,
            wall_ns: 0,
        };
        assert!((r.compute_utilization() - 1.0).abs() < 1e-12);
        assert_eq!(r.macs_per_cycle(), 256.0);
        assert!((r.seconds_at(1e9) - 1e-8).abs() < 1e-20);
    }

    #[test]
    fn utilization_zero_cycles() {
        let r = RunReport {
            cycles: 0,
            pes: 64,
            stats: Stats::new(),
            wall_ns: 0,
        };
        assert_eq!(r.compute_utilization(), 0.0);
        assert_eq!(r.macs_per_cycle(), 0.0);
        assert_eq!(r.cycles_per_sec(), 0.0);
    }

    #[test]
    fn wall_time_is_excluded_from_equality_but_drives_throughput() {
        let mk = |wall_ns| RunReport {
            cycles: 1000,
            pes: 64,
            stats: Stats::new(),
            wall_ns,
        };
        assert_eq!(mk(10), mk(999));
        assert!((mk(1_000_000).cycles_per_sec() - 1e6).abs() < 1e-3);
    }
}
