//! Dense GEMM on Canon: the systolic-dataflow emulation of §6.2.
//!
//! For fully regular inputs Canon "emulates the systolic dataflow of
//! conventional systolic arrays": the streamed operand arrives in row-major
//! order with no gaps, partial sums accumulate in a SIMD register (the
//! scratchpad stays idle — Fig 11 shows no scratchpad power under GEMM), and
//! every row flushes its contribution south on each row boundary. Flushed
//! fragments ride the NoC south through downstream rows (pass-through routes
//! along the MAC stream) and are merged at the bottom edge.
//!
//! The same FSM serves N:M structured sparsity (§4.1.3): with exactly N
//! non-zeros per M elements the workload is balanced by construction, "there
//! is no need of workload balancing with scratchpad", and the psum is flushed
//! to the next row after every group — which is precisely the register-mode
//! flush-on-row-end behaviour with the structured stream.

use crate::config::CanonConfig;
use crate::isa::{Addr, Direction, Instruction, Opcode, Vector};
use crate::kernels::spmm::{run_spmm, state, SpmmMapping, SpmmOutput};
use crate::orchestrator::{msg_id, MetaToken, OrchAction, OrchIo, OrchMessage, OrchProgram};
use crate::stats::StallCause;
use crate::SimError;
use canon_sparse::{CsrMatrix, Dense};

/// Register-accumulation FSM: MACs accumulate into `Reg(0)`, each row end
/// flushes the register south, incoming psums always bypass (no managed
/// window).
#[derive(Debug)]
pub struct RegAccFsm {
    m_total: u32,
    done: bool,
}

impl RegAccFsm {
    /// Creates the FSM for `m_total` output rows.
    pub fn new(m_total: usize) -> RegAccFsm {
        RegAccFsm {
            m_total: m_total as u32,
            done: m_total == 0,
        }
    }

    #[inline]
    fn input_decision(&mut self, io: &OrchIo) -> OrchAction {
        match io.input {
            Some(MetaToken::Nnz { row, col, value }) => OrchAction::issue(
                Instruction::new(
                    Opcode::MacS,
                    Addr::Imm,
                    Addr::DataMem(col as u16),
                    Addr::Reg(0),
                )
                .with_imm(Vector::splat(value))
                .with_tag(row),
                state::MAC,
            )
            .take_input(),
            Some(MetaToken::RowEnd { row }) => {
                if io.south_credits == 0 {
                    return OrchAction::stall(state::FLUSH, StallCause::Credit);
                }
                if !io.msg_slot_free {
                    return OrchAction::stall(state::FLUSH, StallCause::MsgSlot);
                }
                OrchAction::issue(
                    Instruction::new(
                        Opcode::MovFlush,
                        Addr::Reg(0),
                        Addr::Null,
                        Addr::Port(Direction::South),
                    )
                    .with_tag(row),
                    state::FLUSH,
                )
                .take_input()
                .send(OrchMessage {
                    id: msg_id::PSUM,
                    rid: row,
                })
            }
            Some(MetaToken::End) => {
                self.done = true;
                OrchAction::nop(state::DONE).take_input()
            }
            Some(other) => {
                debug_assert!(false, "unexpected token {other:?} in GEMM stream");
                OrchAction::nop(state::NOP)
            }
            None => OrchAction::nop(state::NOP),
        }
    }
}

impl OrchProgram for RegAccFsm {
    #[inline]
    fn step(&mut self, io: &OrchIo) -> OrchAction {
        let _ = self.m_total;
        // Bypass handling stays live after the local stream finished (the
        // DONE state keeps reacting to upstream psums).
        if let Some(msg) = io.msg {
            // No managed window: every upstream psum bypasses south. A
            // blocked bypass labels the stall with the state of the action it
            // would have carried (the ride-along MAC for an nnz token, a
            // plain relay otherwise), matching the assembled LUT's
            // `state_out` labeling so the trace streams stay identical.
            let blocked = match io.input {
                Some(MetaToken::Nnz { .. }) if !self.done => state::MAC,
                _ => state::NOP,
            };
            if io.south_credits == 0 {
                return OrchAction::stall(blocked, StallCause::Credit);
            }
            if !io.msg_slot_free {
                return OrchAction::stall(blocked, StallCause::MsgSlot);
            }
            let sub_io = OrchIo {
                south_credits: io.south_credits - 1,
                msg_slot_free: false,
                ..*io
            };
            // Only a MAC can host the pass-through (a flush uses the south
            // port itself).
            let mut action = match sub_io.input {
                Some(MetaToken::Nnz { .. }) if !self.done => self.input_decision(&sub_io),
                _ => OrchAction::nop(state::NOP),
            };
            action.instr = action.instr.with_route(Direction::North, Direction::South);
            action = action.take_msg().send(msg);
            action.clear_stall();
            return action;
        }
        if self.done {
            return OrchAction::nop(state::DONE);
        }
        self.input_decision(io)
    }

    fn done(&self) -> bool {
        self.done
    }
}

/// Converts a dense matrix into a "dense CSR" that keeps explicit zeros, so
/// that the data-agnostic GEMM stream contains every element (no sparsity
/// exploitation — GEMM is the regular-workload reference point).
pub fn dense_as_full_csr(a: &Dense) -> CsrMatrix {
    let m = a.rows();
    let k = a.cols();
    let row_ptr = (0..=m).map(|r| r * k).collect();
    let col_idx = (0..m).flat_map(|_| 0..k).collect();
    let values = a.as_slice().to_vec();
    CsrMatrix::new(m, k, row_ptr, col_idx, values).expect("dense CSR structure is valid")
}

/// Runs dense GEMM (`C = A × B`) on the Canon fabric.
///
/// # Errors
///
/// Same mapping constraints as [`run_spmm`].
pub fn run_gemm(cfg: &CanonConfig, a: &Dense, b: &Dense) -> Result<SpmmOutput, SimError> {
    let full = dense_as_full_csr(a);
    run_spmm(
        cfg,
        &SpmmMapping {
            spad_depth: 1,
            use_scratchpad: false,
            ..SpmmMapping::default()
        },
        &full,
        b,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_sparse::{gen, reference};

    #[test]
    fn gemm_matches_reference() {
        let mut rng = gen::seeded_rng(31);
        let a = Dense::random(24, 32, &mut rng);
        let b = Dense::random(32, 32, &mut rng);
        let out = run_gemm(&CanonConfig::default(), &a, &b).unwrap();
        assert_eq!(out.result, reference::gemm(&a, &b));
    }

    #[test]
    fn gemm_streams_every_element() {
        let mut rng = gen::seeded_rng(32);
        let a = Dense::random(16, 32, &mut rng);
        let b = Dense::random(32, 32, &mut rng);
        let out = run_gemm(&CanonConfig::default(), &a, &b).unwrap();
        // Data-agnostic: exactly M*K MAC tokens per row tile, across 8 rows.
        assert_eq!(out.report.stats.mac_instrs, (16 * 32 / 8 * 8 * 8) as u64);
    }

    #[test]
    fn gemm_does_not_touch_scratchpad() {
        let mut rng = gen::seeded_rng(33);
        let a = Dense::random(16, 32, &mut rng);
        let b = Dense::random(32, 32, &mut rng);
        let out = run_gemm(&CanonConfig::default(), &a, &b).unwrap();
        assert_eq!(out.report.stats.spad_reads, 0, "GEMM must not read spad");
        assert_eq!(out.report.stats.spad_writes, 0, "GEMM must not write spad");
    }

    #[test]
    fn gemm_high_utilization() {
        let mut rng = gen::seeded_rng(34);
        let a = Dense::random(64, 64, &mut rng);
        let b = Dense::random(64, 32, &mut rng);
        let out = run_gemm(&CanonConfig::default(), &a, &b).unwrap();
        let util = out.report.compute_utilization();
        assert!(util > 0.75, "dense GEMM utilization {util} too low");
    }

    #[test]
    fn dense_as_full_csr_keeps_zeros() {
        let a = Dense::from_rows(&[vec![0, 1], vec![2, 0]]);
        let full = dense_as_full_csr(&a);
        assert_eq!(full.nnz(), 4);
        assert_eq!(full.to_dense(), a);
    }

    #[test]
    fn regacc_fsm_flush_on_rowend() {
        let mut fsm = RegAccFsm::new(2);
        let io = OrchIo {
            cycle: 0,
            input: Some(MetaToken::RowEnd { row: 0 }),
            msg: None,
            south_credits: 2,
            msg_slot_free: true,
            north_tokens: 0,
        };
        let a = fsm.step(&io);
        assert_eq!(a.instr.op, Opcode::MovFlush);
        assert_eq!(a.instr.op1, Addr::Reg(0));
        assert_eq!(a.msg_out().unwrap().rid, 0);
    }

    #[test]
    fn regacc_fsm_always_bypasses_messages() {
        let mut fsm = RegAccFsm::new(4);
        let io = OrchIo {
            cycle: 0,
            input: Some(MetaToken::Nnz {
                row: 0,
                col: 1,
                value: 2,
            }),
            msg: Some(OrchMessage {
                id: msg_id::PSUM,
                rid: 0,
            }),
            south_credits: 2,
            msg_slot_free: true,
            north_tokens: 1,
        };
        let a = fsm.step(&io);
        assert!(a.consumes_msg() && a.consumes_input());
        assert_eq!(a.instr.op, Opcode::MacS);
        assert!(a.instr.route.is_some());
        assert_eq!(a.msg_out().unwrap().rid, 0);
    }
}
