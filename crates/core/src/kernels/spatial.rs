//! Static spatial (place-and-route) execution mode — Appendix D.
//!
//! Canon is backwards compatible with the classical CGRA execution model:
//! during a *configuration phase* the orchestrators stream instructions into
//! the array without executing their side effects (`cols × 3` cycles for a
//! full array), after which every PE *holds* its instruction and re-executes
//! it each cycle, with the staggered issue stopped. A kernel's dataflow graph
//! can then be spatially mimicked on the fabric like on a conventional
//! reconfigurable architecture.
//!
//! The simulator models the steady state directly: each PE repeats its held
//! instruction for `steps` cycles over elastic links (pops of not-yet-filled
//! links read zero during the pipeline warm-up, which the compiler accounts
//! for when deciding which output cycles are valid), and the configuration
//! cost is added to the reported cycle count.

use crate::config::CanonConfig;
use crate::isa::{InstrHandle, InstrRing, Instruction, Vector, LANES};
use crate::noc::{LinkGrid, TaggedVector};
use crate::pe::PeArray;
use crate::stats::{RunReport, Stats};
use crate::SimError;
use std::collections::VecDeque;

/// A static spatial configuration: one held instruction per PE, plus
/// optional per-PE data-memory preloads.
#[derive(Debug, Clone)]
pub struct SpatialProgram {
    /// `rows × cols` held instructions (use [`Instruction::NOP`] for unused
    /// PEs).
    pub grid: Vec<Vec<Instruction>>,
    /// Data-memory preloads: `(row, col, base word, words)`.
    pub preload: Vec<(usize, usize, usize, Vec<Vector>)>,
}

/// Output of a spatial run.
#[derive(Debug, Clone)]
pub struct SpatialOutput {
    /// Entries that exited the south edge, in cycle order.
    pub south: Vec<TaggedVector>,
    /// Entries that exited the east edge, in cycle order.
    pub east: Vec<TaggedVector>,
    /// Cycle counts (including the configuration phase) and activity.
    pub report: RunReport,
}

/// Runs a spatial program for `steps` execution cycles.
///
/// `north_feed[c]` streams one token per cycle into column `c`'s north edge.
///
/// # Errors
///
/// Propagates address/router errors from the held instructions.
///
/// # Panics
///
/// Panics if the instruction grid does not match the configuration's
/// dimensions.
pub fn run_spatial(
    cfg: &CanonConfig,
    program: &SpatialProgram,
    north_feed: Vec<Vec<TaggedVector>>,
    steps: usize,
) -> Result<SpatialOutput, SimError> {
    assert_eq!(program.grid.len(), cfg.rows, "instruction grid rows");
    for row in &program.grid {
        assert_eq!(row.len(), cfg.cols, "instruction grid cols");
    }
    let mut pes = PeArray::new(cfg.pe_count(), cfg.dmem_words, cfg.spad_entries);
    for (r, c, base, words) in &program.preload {
        pes.pe_mut(r * cfg.cols + c).dmem.preload(*base, words);
    }
    // Validate every held instruction's §3.1 route rules once up front
    // (cycle 0, row-major — exactly where and when the per-cycle LOAD used
    // to detect it); the execution loop then re-loads without re-checking.
    if steps > 0 {
        for r in 0..cfg.rows {
            for c in 0..cfg.cols {
                if let Some(d) = program.grid[r][c].noc_conflict() {
                    return Err(SimError::RouterConflict {
                        cycle: 0,
                        pe: (r, c),
                        direction: d.to_string(),
                    });
                }
            }
        }
    }
    let mut grid = LinkGrid::new_elastic(cfg.rows, cfg.cols);
    // Held instructions are interned once; the execution loop replays the
    // 4-byte handles. The ring is sized to the PE count and never interns
    // again, so no slot is ever reused (generation tags stay valid for the
    // whole run).
    let mut ring = InstrRing::with_capacity(cfg.pe_count().max(1));
    let mut handles: Vec<InstrHandle> = Vec::with_capacity(cfg.pe_count());
    for row in &program.grid {
        for &i in row {
            handles.push(ring.intern(i));
        }
    }
    let mut feeders: Vec<VecDeque<TaggedVector>> =
        north_feed.into_iter().map(VecDeque::from).collect();
    feeders.resize(cfg.cols, VecDeque::new());

    let mut south = Vec::new();
    let mut east = Vec::new();
    let mut feed_bytes = 0u64;
    let wall_start = std::time::Instant::now();
    // Execution phase: every PE replays its held instruction each cycle.
    // Warm-up drains through the elastic links; `steps` covers warm-up plus
    // useful throughput (the caller accounts for the pipeline fill).
    for cycle in 0..steps as u64 {
        for c in 0..cfg.cols {
            if let Some(tok) = feeders[c].pop_front() {
                grid.vertical(0, c).push(tok, cycle, "spatial feeder")?;
                feed_bytes += LANES as u64;
            }
        }
        // Unlike the dynamic fabric's fused active sweep, the phases stay
        // barriered here: elastic links pop zero when empty, so the relative
        // order of pushes and pops across PEs is architecturally visible
        // during warm-up and must match the hardware's phase ordering.
        for r in 0..cfg.rows {
            for c in 0..cfg.cols {
                pes.commit_into(r * cfg.cols + c, &ring, &mut grid, r, c, cycle, None)?;
            }
        }
        for r in 0..cfg.rows {
            for c in 0..cfg.cols {
                let idx = r * cfg.cols + c;
                pes.load_forwarded(idx, handles[idx], &ring, &mut grid, r, c, cycle)?;
            }
        }
        pes.advance();
        for c in 0..cfg.cols {
            south.extend(grid.vertical(cfg.rows, c).drain_all());
        }
        for r in 0..cfg.rows {
            east.extend(grid.horizontal(r, cfg.cols).drain_all());
        }
    }

    let config_cycles = (cfg.cols * cfg.pipe_depth) as u64;
    let mut stats = Stats::new();
    for idx in 0..pes.len() {
        let c = pes.counters(idx);
        stats.instrs_executed += c.instrs;
        stats.compute_instrs += c.compute_instrs;
        stats.mac_instrs += c.mac_instrs;
        let pe = pes.pe(idx);
        stats.dmem_reads += pe.dmem.read_count();
        stats.dmem_writes += pe.dmem.write_count();
        stats.spad_reads += pe.spad.read_count();
        stats.spad_writes += pe.spad.write_count();
    }
    stats.noc_hops = grid.total_pushes();
    stats.offchip_read_bytes = feed_bytes;
    Ok(SpatialOutput {
        south,
        east,
        report: RunReport {
            cycles: steps as u64 + config_cycles,
            pes: cfg.pe_count(),
            stats,
            wall_ns: wall_start.elapsed().as_nanos() as u64,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Addr, Direction, Opcode};

    fn cfg(rows: usize, cols: usize) -> CanonConfig {
        CanonConfig {
            rows,
            cols,
            dmem_words: 8,
            spad_entries: 4,
            ..CanonConfig::default()
        }
    }

    /// A 1×3 pipeline: y = ((x * 2) + 3) * 4 computed spatially, one element
    /// per cycle in steady state.
    #[test]
    fn spatial_pipeline_steady_state() {
        let cfg = cfg(1, 3);
        // PE (0,0): Mul north-input by dmem[0]=2 → East.
        // PE (0,1): Add west by dmem[0]=3 → East.
        // PE (0,2): Mul west by dmem[0]=4 → East (edge sink).
        let grid = vec![vec![
            Instruction::new(
                Opcode::Mul,
                Addr::Port(Direction::North),
                Addr::DataMem(0),
                Addr::Port(Direction::East),
            ),
            Instruction::new(
                Opcode::Add,
                Addr::Port(Direction::West),
                Addr::DataMem(0),
                Addr::Port(Direction::East),
            ),
            Instruction::new(
                Opcode::Mul,
                Addr::Port(Direction::West),
                Addr::DataMem(0),
                Addr::Port(Direction::East),
            ),
        ]];
        let program = SpatialProgram {
            grid,
            preload: vec![
                (0, 0, 0, vec![Vector::splat(2)]),
                (0, 1, 0, vec![Vector::splat(3)]),
                (0, 2, 0, vec![Vector::splat(4)]),
            ],
        };
        let n = 10;
        let feed: Vec<TaggedVector> = (1..=n)
            .map(|i| TaggedVector {
                value: Vector::splat(i),
                tag: i as u32,
            })
            .collect();
        let out = run_spatial(&cfg, &program, vec![feed], n as usize + 12).unwrap();
        // Steady-state outputs: ((x*2)+3)*4 for each fed x. Warm-up zeros
        // compute ((0*2)+3)*4 = 12; filter them by checking against the
        // expected set.
        let expected: Vec<i32> = (1..=n).map(|x| ((x * 2) + 3) * 4).collect();
        let got: Vec<i32> = out
            .east
            .iter()
            .map(|e| e.value.lane0())
            .filter(|v| expected.contains(v))
            .collect();
        assert_eq!(got, expected);
        // Config phase charged: cols * 3.
        assert_eq!(out.report.cycles, (n as u64 + 12) + 9);
    }

    #[test]
    fn spatial_counts_compute() {
        let cfg = cfg(1, 1);
        let grid = vec![vec![Instruction::new(
            Opcode::Add,
            Addr::Port(Direction::North),
            Addr::DataMem(0),
            Addr::Port(Direction::South),
        )]];
        let program = SpatialProgram {
            grid,
            preload: vec![(0, 0, 0, vec![Vector::splat(1)])],
        };
        let out = run_spatial(&cfg, &program, vec![vec![]], 5).unwrap();
        assert_eq!(out.report.stats.compute_instrs, 5);
        assert_eq!(out.south.len(), 3); // 5 cycles minus 2-cycle fill
    }

    #[test]
    #[should_panic(expected = "instruction grid rows")]
    fn spatial_grid_shape_checked() {
        let cfg = cfg(2, 1);
        let program = SpatialProgram {
            grid: vec![vec![Instruction::NOP]],
            preload: vec![],
        };
        let _ = run_spatial(&cfg, &program, vec![], 1);
    }
}
