//! Sliding-window SDDMM (structured sparse attention, §4.1.3).
//!
//! Window attention (Longformer, Mistral) makes the SDDMM output mask a
//! diagonal band known at compile time. Canon maps it with the ordinary
//! SDDMM dataflow — the orchestrator simply skips non-window positions for
//! free, and the balanced band eliminates buffering stalls.
//!
//! Architectures without window support must convert the computation into
//! dense operations via the *sliding chunk* decomposition (Longformer's
//! implementation): the sequence is cut into overlapping chunks of twice the
//! window width and each chunk computes a dense `chunk × chunk` score block.
//! [`sliding_chunk_shapes`] produces those dense GEMM shapes so the baseline
//! simulators can be charged the same work the paper charges them.

use crate::config::CanonConfig;
use crate::kernels::sddmm::{run_sddmm, SddmmMapping, SddmmOutput};
use crate::SimError;
use canon_sparse::{gen, Dense};

/// A window-attention workload: the QKᵀ score computation of one head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowAttention {
    /// Sequence length (number of query/key rows).
    pub seq: usize,
    /// Total attention window width (positions `|i-j| <= window/2` are kept).
    pub window: usize,
    /// Head dimension (the contraction length `K`).
    pub head_dim: usize,
}

impl WindowAttention {
    /// The Longformer/BERT configuration scaled to a given sequence length
    /// (paper: window 512, sequence 4K).
    pub fn longformer(seq: usize) -> WindowAttention {
        WindowAttention {
            seq,
            window: seq / 8,
            head_dim: 64,
        }
    }

    /// The Mistral-7B configuration shape (paper: window 4K, context 16K —
    /// i.e. window = seq/4).
    pub fn mistral(seq: usize) -> WindowAttention {
        WindowAttention {
            seq,
            window: seq / 4,
            head_dim: 128,
        }
    }

    /// Output sparsity of the banded mask.
    pub fn mask_sparsity(&self) -> f64 {
        gen::window_mask(self.seq, self.window).sparsity()
    }
}

/// Runs window SDDMM on Canon for the given attention shape, generating
/// random Q/K operands from `seed`.
///
/// # Errors
///
/// Propagates SDDMM mapping and simulation errors.
pub fn run_window_attention(
    cfg: &CanonConfig,
    mapping: &SddmmMapping,
    wa: &WindowAttention,
    seed: u64,
) -> Result<SddmmOutput, SimError> {
    let mut rng = gen::seeded_rng(seed);
    let q = Dense::random(wa.seq, wa.head_dim, &mut rng);
    let k = Dense::random(wa.seq, wa.head_dim, &mut rng);
    let mask = gen::window_mask(wa.seq, wa.window);
    // The compiler knows the mask is a diagonal band and selects the
    // interleaved column partitioning, spreading each band across all rows.
    let mapping = SddmmMapping {
        partition: crate::kernels::sddmm::ColPartition::Cyclic,
        ..mapping.clone()
    };
    run_sddmm(cfg, &mapping, &mask, &q, &k)
}

/// Dense GEMM shapes `(m, n, k)` of the sliding-chunk decomposition used by
/// the window-oblivious baselines: chunks of `window` rows each compute a
/// dense block against `2·window` keys (clamped at the sequence ends).
pub fn sliding_chunk_shapes(
    seq: usize,
    window: usize,
    head_dim: usize,
) -> Vec<(usize, usize, usize)> {
    if window == 0 || seq == 0 {
        return Vec::new();
    }
    let chunk = window.max(1);
    let mut shapes = Vec::new();
    let mut start = 0;
    while start < seq {
        let rows = chunk.min(seq - start);
        let key_lo = start.saturating_sub(window / 2);
        let key_hi = (start + rows + window / 2).min(seq);
        shapes.push((rows, key_hi - key_lo, head_dim));
        start += chunk;
    }
    shapes
}

/// Total scalar MACs of the sliding-chunk decomposition (what the baselines
/// execute for window attention).
pub fn sliding_chunk_macs(seq: usize, window: usize, head_dim: usize) -> u64 {
    sliding_chunk_shapes(seq, window, head_dim)
        .iter()
        .map(|&(m, n, k)| (m * n * k) as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_sparse::reference;

    #[test]
    fn window_attention_matches_reference() {
        let cfg = CanonConfig::default();
        let wa = WindowAttention {
            seq: 16,
            window: 4,
            head_dim: 32,
        };
        let out = run_window_attention(&cfg, &SddmmMapping::default(), &wa, 7).unwrap();
        // Recompute the reference with the same seed.
        let mut rng = gen::seeded_rng(7);
        let q = Dense::random(16, 32, &mut rng);
        let k = Dense::random(16, 32, &mut rng);
        let mask = gen::window_mask(16, 4);
        assert_eq!(out.result, reference::sddmm(&mask, &q, &k));
    }

    #[test]
    fn chunk_shapes_cover_sequence() {
        let shapes = sliding_chunk_shapes(64, 8, 16);
        let total_rows: usize = shapes.iter().map(|s| s.0).sum();
        assert_eq!(total_rows, 64);
        // Interior chunks see 2x window keys.
        assert!(shapes[1].1 >= 8);
    }

    #[test]
    fn chunk_macs_exceed_band_macs() {
        // The dense decomposition wastes work relative to the exact band.
        let seq = 128;
        let window = 16;
        let k = 32;
        let band_macs = gen::window_mask(seq, window).nnz() as u64 * k as u64;
        let chunk = sliding_chunk_macs(seq, window, k);
        assert!(
            chunk > band_macs,
            "chunked {chunk} should exceed banded {band_macs}"
        );
    }

    #[test]
    fn chunk_shapes_degenerate() {
        assert!(sliding_chunk_shapes(0, 8, 16).is_empty());
        assert!(sliding_chunk_shapes(8, 0, 16).is_empty());
    }

    #[test]
    fn preset_configs() {
        let lf = WindowAttention::longformer(4096);
        assert_eq!(lf.window, 512);
        let mi = WindowAttention::mistral(16384);
        assert_eq!(mi.window, 4096);
        assert!(mi.mask_sparsity() > 0.5);
        assert!(lf.mask_sparsity() > mi.mask_sparsity() * 0.9);
    }
}
