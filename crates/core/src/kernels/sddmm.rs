//! SDDMM on Canon (§4.1.2, Fig 19, Listing 4).
//!
//! `C = M · (A × Bᵀ)`: `A` is `M×K` dense and streamed from the **top** edge;
//! `B` (`N×K`, one key vector per output column) is stationary; the binary
//! mask `M` (`M×N`) selects which outputs are computed.
//!
//! ## Mapping
//!
//! With an `Y×X` array and `V`-wide lanes, `K = W·X·V` and `N = Y·H`:
//!
//! * PE `(y, x)` stores, at data-memory word `h·W + w`, the vector
//!   `B[y·H + h][(w·X + x)·V .. +V]` — its `V`-slice of key `n = yH + h` for
//!   chunk `w`;
//! * the north-edge mover streams, into column `x`, the token sequence
//!   `t = m·W + w ↦ A[m][(w·X + x)·V .. +V]`;
//! * every PE row forwards each `A` token south (pass-through riding the
//!   `LoadA` instruction) while buffering it in the scratchpad for local
//!   reuse across that row's masked positions — the §4.1.2 buffering that
//!   absorbs mask-induced load imbalance;
//! * for each masked output `(m, h)` the row issues `W` vector MACs
//!   accumulating into `Reg(0)`, then a *chain* instruction that adds the
//!   west neighbour's partial vector and sends the sum east; the east edge
//!   collector performs the final `V`-to-scalar reduction (the paper places
//!   this tiny reduction in the last PE column, "just before the result is
//!   forwarded to the memory controllers" — doing it in the mover is
//!   behaviourally identical and noted in DESIGN.md).

use crate::config::CanonConfig;
use crate::isa::{Addr, Direction, Instruction, Opcode, Vector, LANES};
use crate::noc::TaggedVector;
use crate::orchestrator::{MetaToken, OrchAction, OrchIo, OrchProgram};
use crate::stats::{RunReport, StallCause};
use crate::SimError;
use canon_sparse::{Dense, Mask};

/// FSM states for SDDMM.
pub mod state {
    /// Loading (and forwarding) an `A` token from the north.
    pub const LOAD_A: u8 = 0;
    /// Vector MAC for the current masked output.
    pub const MAC: u8 = 1;
    /// Chain step: add west partial, send east.
    pub const CHAIN: u8 = 2;
    /// Idle / consuming row-end meta.
    pub const NOP: u8 = 3;
    /// Finished.
    pub const DONE: u8 = 4;
}

/// How output columns are partitioned across PE rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColPartition {
    /// Row `y` owns the contiguous block `[yH, (y+1)H)` — the natural layout
    /// for unstructured masks.
    #[default]
    Block,
    /// Row `y` owns columns `n ≡ y (mod rows)` — the interleaved layout the
    /// compiler selects for diagonal-window masks (§4.1.3), which would
    /// otherwise concentrate each output row's whole band on one PE row.
    Cyclic,
}

/// Mapping parameters for SDDMM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SddmmMapping {
    /// Scratchpad entries used as the `A`-reuse buffer (clamped to the
    /// configured scratchpad, must be ≥ `W = K / (cols·LANES)`).
    pub spad_depth: usize,
    /// Output-column partitioning across PE rows.
    pub partition: ColPartition,
}

impl Default for SddmmMapping {
    fn default() -> Self {
        SddmmMapping {
            spad_depth: 16,
            partition: ColPartition::Block,
        }
    }
}

/// The SDDMM orchestrator FSM.
#[derive(Debug)]
pub struct SddmmFsm {
    w: u32,
    n_total: u32,
    n_base: u32,
    n_stride: u32,
    depth: u32,
    total_tokens: u32,
    t_loaded: u32,
    evict_target: u32,
    m_work: u32,
    /// Current masked output in progress: `(local h, next w step)`.
    work: Option<(u32, u32)>,
    done: bool,
    forward_south: bool,
}

impl SddmmFsm {
    /// Creates the FSM for one PE row.
    ///
    /// * `w` — `A` tokens per output row (`K / (cols·LANES)`).
    /// * `m_total` — number of streamed `A` rows.
    /// * `n_total` — global output width `N` (for collector tags).
    /// * `n_base` / `n_stride` — this row's global column for local index `h`
    ///   is `n_base + h·n_stride` (block: `(yH, 1)`; cyclic: `(y, rows)`).
    /// * `depth` — scratchpad buffer entries (≥ `w`).
    /// * `forward_south` — false for the bottom row (its forwards would fall
    ///   into the edge sink; the compiler omits the pass-through there).
    ///
    /// # Panics
    ///
    /// Panics if `depth < w` or `w == 0`.
    pub fn new(
        w: usize,
        m_total: usize,
        n_total: usize,
        n_base: usize,
        n_stride: usize,
        depth: usize,
        forward_south: bool,
    ) -> SddmmFsm {
        assert!(w > 0, "W must be positive");
        assert!(depth >= w, "A-buffer depth {depth} must be >= W = {w}");
        SddmmFsm {
            w: w as u32,
            n_total: n_total as u32,
            n_base: n_base as u32,
            n_stride: n_stride.max(1) as u32,
            depth: depth as u32,
            total_tokens: (m_total * w) as u32,
            t_loaded: 0,
            evict_target: 0,
            m_work: 0,
            work: None,
            done: m_total == 0,
            forward_south,
        }
    }

    fn t_evicted(&self) -> u32 {
        self.evict_target.min(self.t_loaded)
    }

    fn a_slot(&self, t: u32) -> u16 {
        (t % self.depth) as u16
    }

    /// Attempts to issue a `LoadA` for the next token. Returns the blocking
    /// cause when it cannot (no token at the north port or buffer full →
    /// operand wait; no south credit for the forward → credit).
    fn try_load_a(&mut self, io: &OrchIo) -> Result<OrchAction, StallCause> {
        if self.t_loaded >= self.total_tokens
            || io.north_tokens == 0
            || self.t_loaded - self.t_evicted() >= self.depth
        {
            return Err(StallCause::OperandWait);
        }
        if self.forward_south && io.south_credits == 0 {
            return Err(StallCause::Credit);
        }
        let t = self.t_loaded;
        self.t_loaded += 1;
        let mut instr = Instruction::new(
            Opcode::Mov,
            Addr::Port(Direction::North),
            Addr::Null,
            Addr::Spad(self.a_slot(t)),
        );
        if self.forward_south {
            instr = instr.with_route(Direction::North, Direction::South);
        }
        Ok(OrchAction::issue(instr, state::LOAD_A))
    }

    /// Issues the next step of the in-progress masked output, or a blocking
    /// `LoadA`, or records a stall.
    fn progress_work(&mut self, io: &OrchIo, h: u32, w_step: u32) -> OrchAction {
        if w_step == self.w {
            // Chain: add west partial to our accumulated Reg(0), send east.
            let tag = self.m_work * self.n_total + self.n_base + h * self.n_stride;
            self.work = None;
            return OrchAction::issue(
                Instruction::new(
                    Opcode::AddFlush,
                    Addr::Reg(0),
                    Addr::Port(Direction::West),
                    Addr::Port(Direction::East),
                )
                .with_tag(tag),
                state::CHAIN,
            );
        }
        let t_need = self.m_work * self.w + w_step;
        if t_need < self.t_loaded {
            self.work = Some((h, w_step + 1));
            return OrchAction::issue(
                Instruction::new(
                    Opcode::MacV,
                    Addr::Spad(self.a_slot(t_need)),
                    Addr::DataMem((h * self.w + w_step) as u16),
                    Addr::Reg(0),
                ),
                state::MAC,
            );
        }
        // The needed A token is not buffered yet: load it (loads are in
        // token order, so repeated loads reach it).
        self.work = Some((h, w_step));
        match self.try_load_a(io) {
            Ok(a) => a,
            Err(cause) => OrchAction::stall(state::LOAD_A, cause),
        }
    }
}

impl OrchProgram for SddmmFsm {
    #[inline]
    fn step(&mut self, io: &OrchIo) -> OrchAction {
        if self.done {
            return OrchAction::nop(state::DONE);
        }
        if let Some((h, w_step)) = self.work {
            return self.progress_work(io, h, w_step);
        }
        match io.input {
            Some(MetaToken::MaskPos { row, col }) => {
                debug_assert_eq!(row, self.m_work, "mask stream out of order");
                self.work = Some((col, 0));
                self.progress_work(io, col, 0).take_input()
            }
            Some(MetaToken::MRowEnd { row }) => {
                debug_assert_eq!(row, self.m_work);
                self.evict_target = (self.m_work + 1) * self.w;
                self.m_work += 1;
                // Ride an A-load along the row-end consumption if possible.
                let action = match self.try_load_a(io) {
                    Ok(a) => a,
                    Err(_) => OrchAction::nop(state::NOP),
                };
                action.take_input()
            }
            Some(MetaToken::End) => {
                // Keep forwarding remaining A tokens for downstream rows.
                if self.t_loaded < self.total_tokens {
                    self.evict_target = self.total_tokens;
                    match self.try_load_a(io) {
                        Ok(a) => a,
                        Err(cause) => OrchAction::stall(state::LOAD_A, cause),
                    }
                } else {
                    self.done = true;
                    OrchAction::nop(state::DONE).take_input()
                }
            }
            Some(other) => {
                debug_assert!(false, "unexpected token {other:?} in SDDMM stream");
                OrchAction::nop(state::NOP)
            }
            None => OrchAction::nop(state::NOP),
        }
    }

    fn done(&self) -> bool {
        self.done
    }
}

/// Output of an SDDMM run.
#[derive(Debug, Clone, PartialEq)]
pub struct SddmmOutput {
    /// The computed `M×N` result (unmasked positions are zero).
    pub result: Dense,
    /// Cycle counts and activity counters.
    pub report: RunReport,
}

/// Runs SDDMM (`C = mask · (A × Bᵀ)`) on the Canon fabric.
///
/// `a` is `M×K` (query rows), `b` is `N×K` (key rows), `mask` is `M×N`.
///
/// # Errors
///
/// Returns [`SimError::Mapping`] when shapes violate the constraints
/// (`K % (cols·LANES) == 0`, `N % rows == 0`, tile fits in data memory,
/// buffer ≥ `W`), and propagates simulation protocol errors.
pub fn run_sddmm(
    cfg: &CanonConfig,
    mapping: &SddmmMapping,
    mask: &Mask,
    a: &Dense,
    b: &Dense,
) -> Result<SddmmOutput, SimError> {
    run_sddmm_traced(cfg, mapping, mask, a, b, None)
}

/// [`run_sddmm`] with an optional trace sink attached to the mapped fabric
/// for the duration of the run (the mapper owns its fabric, so the sink
/// must be threaded through; see [`crate::trace`]).
///
/// # Errors
///
/// Same as [`run_sddmm`].
pub fn run_sddmm_traced(
    cfg: &CanonConfig,
    mapping: &SddmmMapping,
    mask: &Mask,
    a: &Dense,
    b: &Dense,
    trace: Option<Box<dyn crate::trace::TraceSink>>,
) -> Result<SddmmOutput, SimError> {
    let m = a.rows();
    let k = a.cols();
    let n = b.rows();
    if b.cols() != k {
        return Err(SimError::Mapping {
            reason: format!("A is {m}x{k} but B is {n}x{}", b.cols()),
        });
    }
    if mask.rows() != m || mask.cols() != n {
        return Err(SimError::Mapping {
            reason: format!("mask is {}x{}, expected {m}x{n}", mask.rows(), mask.cols()),
        });
    }
    let x = cfg.cols;
    let y = cfg.rows;
    // Auto-pad the contraction dimension: when K is not a multiple of
    // cols·lanes (e.g. head_dim = 32 on a 16×16 grid, where cols·lanes =
    // 64), zero-pad both operands up to the next multiple. The padded
    // columns contribute exactly zero to every Q·Kᵀ dot product, so results
    // are bit-identical to the unpadded computation; only the streamed
    // token count (and hence cycles/traffic) reflects the padded width.
    let k_padded = k.div_ceil(x * LANES) * (x * LANES);
    if k_padded != k {
        let pad = |m: &Dense| {
            let mut out = Dense::zeros(m.rows(), k_padded);
            for rr in 0..m.rows() {
                for cc in 0..k {
                    out[(rr, cc)] = m[(rr, cc)];
                }
            }
            out
        };
        return run_sddmm_traced(cfg, mapping, mask, &pad(a), &pad(b), trace);
    }
    if !n.is_multiple_of(y) {
        return Err(SimError::Mapping {
            reason: format!("N = {n} must be a multiple of rows = {y}"),
        });
    }
    let w = k / (x * LANES);
    let h = n / y;
    if h * w > cfg.dmem_words {
        return Err(SimError::Mapping {
            reason: format!(
                "B tile of {h}×{w} words exceeds data memory ({} words)",
                cfg.dmem_words
            ),
        });
    }
    let depth = mapping.spad_depth.min(cfg.spad_entries);
    if depth < w {
        return Err(SimError::Mapping {
            reason: format!("A buffer depth {depth} must be >= W = {w}"),
        });
    }

    // Global output column owned by row `yy` at local index `hh`.
    let n_global = |yy: usize, hh: usize| match mapping.partition {
        ColPartition::Block => yy * h + hh,
        ColPartition::Cyclic => hh * y + yy,
    };

    let mut fabric = crate::pool::acquire(cfg, true);
    // Stationary B tiles.
    for yy in 0..y {
        for xx in 0..x {
            let mut words = Vec::with_capacity(h * w);
            for hh in 0..h {
                for ww in 0..w {
                    let mut lanes = [0; LANES];
                    for (v, lane) in lanes.iter_mut().enumerate() {
                        *lane = b[(n_global(yy, hh), (ww * x + xx) * LANES + v)];
                    }
                    words.push(Vector(lanes));
                }
            }
            fabric.pe_mut(yy, xx).dmem.preload(0, &words);
        }
    }
    // A stream from the top edge.
    for xx in 0..x {
        let mut tokens = Vec::with_capacity(m * w);
        for mm in 0..m {
            for ww in 0..w {
                let mut lanes = [0; LANES];
                for (v, lane) in lanes.iter_mut().enumerate() {
                    *lane = a[(mm, (ww * x + xx) * LANES + v)];
                }
                tokens.push(TaggedVector {
                    value: Vector(lanes),
                    tag: (mm * w + ww) as u32,
                });
            }
        }
        fabric.set_feeder(xx, tokens);
    }
    // Meta streams and FSMs. The FSM tags collector outputs with
    // `m·N + n_base + h·n_stride`, so the two partitionings share one FSM.
    for yy in 0..y {
        let mut stream = Vec::new();
        for mm in 0..m {
            for col in mask.row_iter(mm) {
                let local = match mapping.partition {
                    ColPartition::Block => {
                        if col >= yy * h && col < (yy + 1) * h {
                            Some(col - yy * h)
                        } else {
                            None
                        }
                    }
                    ColPartition::Cyclic => {
                        if col % y == yy {
                            Some(col / y)
                        } else {
                            None
                        }
                    }
                };
                if let Some(local) = local {
                    stream.push(MetaToken::MaskPos {
                        row: mm as u32,
                        col: local as u32,
                    });
                }
            }
            stream.push(MetaToken::MRowEnd { row: mm as u32 });
        }
        stream.push(MetaToken::End);
        fabric.set_meta_stream(yy, stream);
        let (n_base, n_stride) = match mapping.partition {
            ColPartition::Block => (yy * h, 1),
            ColPartition::Cyclic => (yy, y),
        };
        fabric.set_program(
            yy,
            SddmmFsm::new(w, m, n, n_base, n_stride, depth, yy + 1 < y),
        );
    }
    // Off-chip traffic: B preload (A feed is counted by the fabric), the mask
    // coordinates, and the sparse output.
    fabric.add_offchip_read_bytes((n * k) as u64 + (2 * mask.nnz() + m) as u64);
    fabric.add_offchip_write_bytes(mask.nnz() as u64);

    if let Some(sink) = trace {
        fabric.set_trace_sink(sink);
    }
    let report = fabric.run()?;
    fabric.take_trace_sink();
    let mut result = Dense::zeros(m, n);
    for e in fabric.east_collected() {
        let mm = e.tag as usize / n;
        let nn = e.tag as usize % n;
        // Final V-to-scalar reduction at the edge mover.
        result[(mm, nn)] += e.value.reduce_sum();
    }
    Ok(SddmmOutput { result, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_sparse::{gen, reference};

    fn cfg() -> CanonConfig {
        CanonConfig::default()
    }

    #[test]
    fn sddmm_matches_reference_unstructured() {
        let mut rng = gen::seeded_rng(51);
        let a = Dense::random(16, 64, &mut rng); // M=16, K=64 → W=2
        let b = Dense::random(16, 64, &mut rng); // N=16 → H=2
        let mask = gen::random_mask(16, 16, 0.6, &mut rng);
        let out = run_sddmm(&cfg(), &SddmmMapping::default(), &mask, &a, &b).unwrap();
        assert_eq!(out.result, reference::sddmm(&mask, &a, &b));
        assert!(out.report.cycles > 0);
    }

    #[test]
    fn sddmm_full_mask_is_dense_qkt() {
        let mut rng = gen::seeded_rng(52);
        let a = Dense::random(8, 32, &mut rng);
        let b = Dense::random(8, 32, &mut rng);
        let mask = Mask::full(8, 8);
        let out = run_sddmm(&cfg(), &SddmmMapping::default(), &mask, &a, &b).unwrap();
        assert_eq!(out.result, reference::gemm(&a, &b.transpose()));
    }

    #[test]
    fn sddmm_empty_mask_streams_but_computes_nothing() {
        let mut rng = gen::seeded_rng(53);
        let a = Dense::random(8, 32, &mut rng);
        let b = Dense::random(8, 32, &mut rng);
        let mask = Mask::empty(8, 8);
        let out = run_sddmm(&cfg(), &SddmmMapping::default(), &mask, &a, &b).unwrap();
        assert_eq!(out.result, Dense::zeros(8, 8));
        assert_eq!(out.report.stats.mac_instrs, 0);
        // A still flows through the array.
        assert!(out.report.stats.noc_hops > 0);
    }

    #[test]
    fn sddmm_skewed_mask_exercises_buffering() {
        let mut rng = gen::seeded_rng(54);
        let a = Dense::random(24, 64, &mut rng);
        let b = Dense::random(24, 64, &mut rng);
        // Rows 0..8 dense, rest sparse: strong inter-PE-row imbalance.
        let mut mask = gen::random_mask(24, 24, 0.9, &mut rng);
        for r in 0..24 {
            for c in 0..8 {
                mask.set(r, c, true);
            }
        }
        let out = run_sddmm(&cfg(), &SddmmMapping::default(), &mask, &a, &b).unwrap();
        assert_eq!(out.result, reference::sddmm(&mask, &a, &b));
    }

    #[test]
    fn sddmm_window_mask() {
        let mut rng = gen::seeded_rng(55);
        let a = Dense::random(16, 32, &mut rng);
        let b = Dense::random(16, 32, &mut rng);
        let mask = gen::window_mask(16, 4);
        let out = run_sddmm(&cfg(), &SddmmMapping::default(), &mask, &a, &b).unwrap();
        assert_eq!(out.result, reference::sddmm(&mask, &a, &b));
    }

    #[test]
    fn sddmm_auto_pads_ragged_k() {
        // K = 48 is not a multiple of cols·lanes = 32: zero-padded to 64,
        // bit-identical result.
        let mut rng = gen::seeded_rng(56);
        let a = Dense::random(4, 48, &mut rng);
        let b = Dense::random(8, 48, &mut rng);
        let mask = Mask::full(4, 8);
        let out = run_sddmm(&cfg(), &SddmmMapping::default(), &mask, &a, &b).unwrap();
        assert_eq!(out.result, reference::sddmm(&mask, &a, &b));
    }

    #[test]
    fn sddmm_16x16_grid_auto_pads_head_dim_32() {
        // Regression for the former ROADMAP caveat: a 16×16 grid used to
        // record head_dim = 32 cells as mapping errors (K = 32 < cols·lanes
        // = 64). K is now zero-padded up to the next multiple; padded
        // columns contribute zero to every dot product, so the result is
        // bit-identical to the reference.
        let mut rng = gen::seeded_rng(58);
        let cfg = CanonConfig::default().with_geometry(16, 16);
        let a = Dense::random(32, 32, &mut rng);
        let b = Dense::random(32, 32, &mut rng);
        let mask = gen::random_mask(32, 32, 0.5, &mut rng);
        let out = run_sddmm(&cfg, &SddmmMapping::default(), &mask, &a, &b).unwrap();
        assert_eq!(out.result, reference::sddmm(&mask, &a, &b));
        assert!(out.report.cycles > 0);
    }

    #[test]
    fn sddmm_mapping_errors() {
        let mut rng = gen::seeded_rng(56);
        let a = Dense::random(4, 32, &mut rng);
        let b = Dense::random(9, 32, &mut rng); // N=9 not multiple of 8
        let mask = Mask::full(4, 9);
        assert!(matches!(
            run_sddmm(&cfg(), &SddmmMapping::default(), &mask, &a, &b),
            Err(SimError::Mapping { .. })
        ));
    }

    #[test]
    fn fsm_requires_buffer_at_least_w() {
        let mut rng = gen::seeded_rng(57);
        let a = Dense::random(4, 256, &mut rng); // W = 8
        let b = Dense::random(8, 256, &mut rng);
        let mask = Mask::full(4, 8);
        let bad = SddmmMapping {
            spad_depth: 4,
            ..SddmmMapping::default()
        };
        assert!(matches!(
            run_sddmm(&cfg(), &bad, &mask, &a, &b),
            Err(SimError::Mapping { .. })
        ));
    }
}
