//! Kernel mappings (§4, Appendices A–D).
//!
//! Each submodule maps one kernel family onto the Canon fabric: it lays out
//! the stationary operand across PE data memories, builds the per-row
//! meta-data streams the compiler would generate, installs the orchestrator
//! FSM ("microcode"), runs the fabric, and reassembles the output from the
//! edge collectors.
//!
//! | Kernel | Paper section | Module |
//! |---|---|---|
//! | SpMM (unstructured, Gustavson dataflow, Listing 1 FSM) | §4.1.1, App A/C | [`spmm`] |
//! | Dense GEMM (systolic-style emulation, register accumulation) | §6.2 | [`gemm`] |
//! | N:M structured SpMM (2:4, 2:8, any N:M) | §4.1.3 | [`nm`] |
//! | SDDMM (unstructured mask) | §4.1.2, App B | [`sddmm`] |
//! | Sliding-window SDDMM (Longformer/Mistral attention) | §4.1.3 | [`window`] |
//! | Static spatial (place-and-route) execution | App D | [`spatial`] |

pub mod gemm;
pub mod nm;
pub mod sddmm;
pub mod spatial;
pub mod spmm;
pub mod window;
