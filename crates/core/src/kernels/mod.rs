//! Kernel mappings (§4, Appendices A–D).
//!
//! Each submodule maps one kernel family onto the Canon fabric: it lays out
//! the stationary operand across PE data memories, builds the per-row
//! meta-data streams the compiler would generate, installs the orchestrator
//! FSM ("microcode"), runs the fabric, and reassembles the output from the
//! edge collectors.
//!
//! | Kernel | Paper section | Module |
//! |---|---|---|
//! | SpMM (unstructured, Gustavson dataflow, Listing 1 FSM) | §4.1.1, App A/C | [`spmm`] |
//! | Dense GEMM (systolic-style emulation, register accumulation) | §6.2 | [`gemm`] |
//! | N:M structured SpMM (2:4, 2:8, any N:M) | §4.1.3 | [`nm`] |
//! | SDDMM (unstructured mask) | §4.1.2, App B | [`sddmm`] |
//! | Sliding-window SDDMM (Longformer/Mistral attention) | §4.1.3 | [`window`] |
//! | Static spatial (place-and-route) execution | App D | [`spatial`] |
//!
//! [`run_kernel`] is the uniform entry point over all of the above: callers
//! that dispatch workloads generically (the `canon-sweep` backends, the
//! harness figures) build a [`KernelInput`] and get a [`KernelOutput`] back,
//! without naming the per-kernel `run_*` functions.

pub mod gemm;
pub mod nm;
pub mod sddmm;
pub mod spatial;
pub mod spmm;
pub mod window;

use crate::config::CanonConfig;
use crate::stats::RunReport;
use crate::SimError;
use canon_sparse::{CsrMatrix, Dense, Mask};

/// Materialized operands for one kernel invocation — the argument of the
/// uniform [`run_kernel`] dispatcher.
#[derive(Debug, Clone)]
pub enum KernelInput {
    /// Dense GEMM `C = A × B`.
    Gemm {
        /// Dense `M×K` operand.
        a: Dense,
        /// Dense `K×N` operand.
        b: Dense,
    },
    /// Unstructured SpMM `C = A × B` with mapping parameters.
    Spmm {
        /// Sparse `M×K` operand.
        a: CsrMatrix,
        /// Dense `K×N` operand.
        b: Dense,
        /// Scratchpad-window mapping.
        mapping: spmm::SpmmMapping,
    },
    /// N:M structured SpMM (register-accumulation mapping).
    SpmmNm {
        /// Sparse `M×K` operand satisfying `n_of:m_of` structure.
        a: CsrMatrix,
        /// Dense `K×N` operand.
        b: Dense,
        /// Non-zeros per group.
        n_of: usize,
        /// Group size.
        m_of: usize,
    },
    /// Unstructured SDDMM `C = mask · (Q × KVᵀ)`.
    Sddmm {
        /// Output mask (`M×N`).
        mask: Mask,
        /// Dense `M×K` query rows.
        q: Dense,
        /// Dense `N×K` key rows.
        kv: Dense,
        /// Buffer/partition mapping.
        mapping: sddmm::SddmmMapping,
    },
    /// Sliding-window SDDMM with operands generated from `seed`.
    Window {
        /// Attention shape.
        wa: window::WindowAttention,
        /// Operand-generation seed.
        seed: u64,
    },
}

/// The uniform result of [`run_kernel`]: the computed output plus the cycle
/// report, regardless of which kernel family ran.
#[derive(Debug, Clone)]
pub struct KernelOutput {
    /// The computed dense result (masked positions zero for SDDMM).
    pub result: Dense,
    /// Cycle counts and activity counters.
    pub report: RunReport,
}

/// Runs any Canon kernel through one entry point.
///
/// # Errors
///
/// Propagates the underlying kernel's mapping and simulation errors.
pub fn run_kernel(cfg: &CanonConfig, input: &KernelInput) -> Result<KernelOutput, SimError> {
    match input {
        KernelInput::Gemm { a, b } => {
            let out = gemm::run_gemm(cfg, a, b)?;
            Ok(KernelOutput {
                result: out.result,
                report: out.report,
            })
        }
        KernelInput::Spmm { a, b, mapping } => {
            let out = spmm::run_spmm(cfg, mapping, a, b)?;
            Ok(KernelOutput {
                result: out.result,
                report: out.report,
            })
        }
        KernelInput::SpmmNm { a, b, n_of, m_of } => {
            let out = nm::run_spmm_nm(cfg, a, b, *n_of, *m_of)?;
            Ok(KernelOutput {
                result: out.result,
                report: out.report,
            })
        }
        KernelInput::Sddmm {
            mask,
            q,
            kv,
            mapping,
        } => {
            let out = sddmm::run_sddmm(cfg, mapping, mask, q, kv)?;
            Ok(KernelOutput {
                result: out.result,
                report: out.report,
            })
        }
        KernelInput::Window { wa, seed } => {
            let out =
                window::run_window_attention(cfg, &sddmm::SddmmMapping::default(), wa, *seed)?;
            Ok(KernelOutput {
                result: out.result,
                report: out.report,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_sparse::{gen, reference};

    #[test]
    fn run_kernel_matches_direct_entry_points() {
        let cfg = CanonConfig::default();
        let mut rng = gen::seeded_rng(77);
        let a = gen::random_sparse(32, 32, 0.5, &mut rng);
        let b = Dense::random(32, 32, &mut rng);
        let via_uniform = run_kernel(
            &cfg,
            &KernelInput::Spmm {
                a: a.clone(),
                b: b.clone(),
                mapping: spmm::SpmmMapping::default(),
            },
        )
        .unwrap();
        let direct = spmm::run_spmm(&cfg, &spmm::SpmmMapping::default(), &a, &b).unwrap();
        assert_eq!(via_uniform.result, direct.result);
        assert_eq!(via_uniform.report, direct.report);
        assert_eq!(via_uniform.result, reference::spmm(&a, &b));
    }

    #[test]
    fn run_kernel_covers_every_family() {
        let cfg = CanonConfig::default();
        let mut rng = gen::seeded_rng(78);
        let da = Dense::random(16, 32, &mut rng);
        let db = Dense::random(32, 16, &mut rng);
        let gemm = run_kernel(
            &cfg,
            &KernelInput::Gemm {
                a: da.clone(),
                b: db.clone(),
            },
        )
        .unwrap();
        assert_eq!(gemm.result, reference::gemm(&da, &db));

        let nm = gen::nm_sparse(16, 32, 2, 4, &mut rng);
        let out = run_kernel(
            &cfg,
            &KernelInput::SpmmNm {
                a: nm.clone(),
                b: db.clone(),
                n_of: 2,
                m_of: 4,
            },
        )
        .unwrap();
        assert_eq!(out.result, reference::spmm(&nm, &db));

        let q = Dense::random(16, 32, &mut rng);
        let kv = Dense::random(16, 32, &mut rng);
        let mask = gen::random_mask(16, 16, 0.5, &mut rng);
        let sddmm = run_kernel(
            &cfg,
            &KernelInput::Sddmm {
                mask: mask.clone(),
                q: q.clone(),
                kv: kv.clone(),
                mapping: sddmm::SddmmMapping::default(),
            },
        )
        .unwrap();
        assert_eq!(sddmm.result, reference::sddmm(&mask, &q, &kv));

        let win = run_kernel(
            &cfg,
            &KernelInput::Window {
                wa: window::WindowAttention {
                    seq: 32,
                    window: 8,
                    head_dim: 32,
                },
                seed: 5,
            },
        )
        .unwrap();
        assert!(win.report.cycles > 0);
    }
}
