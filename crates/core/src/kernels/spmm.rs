//! SpMM on Canon: the Gustavson-dataflow mapping of §4.1.1 with the
//! Listing 1 orchestrator FSM (asynchronous reduction + explicit scratchpad
//! buffer management).
//!
//! ## Mapping (Fig 7a / Fig 18)
//!
//! * `A` (`M×K`, sparse) is streamed row-major: PE row `r` receives the
//!   non-zeros whose column falls in its K-segment `[rH, (r+1)H)`, plus a
//!   row-end token per output row.
//! * `B` (`K×N`, dense) is stationary: PE `(r, c)` holds
//!   `B[rH .. (r+1)H][cL .. (c+1)L]` in data memory (`L` = SIMD lanes), so a
//!   non-zero `a[m][k]` makes every PE of row `r` read the *same* local
//!   address `k - rH` — the uniform, fully deterministic access pattern the
//!   paper relies on for staggered issue.
//! * Partial sums accumulate per output row in the scratchpad (a circular
//!   FIFO window of `depth` row-ids) and are flushed south on row ends; the
//!   southern row either accumulates them (in-window: Fig 8 path 1.1) or
//!   bypasses them further south (out-of-window: path 1.2). Fragments exiting
//!   the bottom edge are summed by the collector (Listing 3's second loop).

use crate::config::CanonConfig;
use crate::fabric::Fabric;
use crate::isa::{Addr, Direction, Instruction, Opcode, Vector, LANES};
use crate::orchestrator::{msg_id, MetaToken, OrchAction, OrchIo, OrchMessage, OrchProgram};
use crate::stats::{RunReport, StallCause};
use crate::SimError;
use canon_sparse::{CsrMatrix, Dense};

/// FSM main states (the 3-bit State Register contents; Listing 1's
/// `{MAC, ACC, FLUSH, NOP}` plus the drain/done phases).
pub mod state {
    /// Performing a scalar-vector MAC for a streamed non-zero.
    pub const MAC: u8 = 0;
    /// Accumulating an in-window psum received from the north.
    pub const ACC: u8 = 1;
    /// Flushing the oldest psum south.
    pub const FLUSH: u8 = 2;
    /// Idle / consuming a row-end without flushing.
    pub const NOP: u8 = 3;
    /// Draining remaining psums after the input stream ended.
    pub const DRAIN: u8 = 4;
    /// Finished.
    pub const DONE: u8 = 5;
}

/// Which orchestrator implementation executes the SpMM microcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrchKind {
    /// The native Rust FSM ([`SpmmFsm`]).
    #[default]
    Native,
    /// The assembled LUT bitstream interpreted by the Fig 5 datapath
    /// ([`crate::orchestrator::lut::LutProgram`]); cycle-identical to the
    /// native FSM (differentially tested).
    Lut,
}

/// Mapping parameters for SpMM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpmmMapping {
    /// Scratchpad psum-window depth in entries (§6.5 evaluates 1–64; the
    /// paper's default, used for all §6.2 results, is 16). Clamped to the
    /// configured scratchpad size at run time.
    pub spad_depth: usize,
    /// When false, partial sums accumulate in a SIMD register and are flushed
    /// on every row end without a managed window (the structured-sparsity /
    /// systolic-emulation mode of §4.1.3 — "there is no need of workload
    /// balancing with scratchpad").
    pub use_scratchpad: bool,
    /// Orchestrator implementation (native FSM or LUT bitstream).
    pub orchestrator: OrchKind,
}

impl Default for SpmmMapping {
    fn default() -> Self {
        SpmmMapping {
            spad_depth: 16,
            use_scratchpad: true,
            orchestrator: OrchKind::Native,
        }
    }
}

/// The Listing 1 orchestrator FSM (native-Rust implementation).
///
/// State registers (Fig 5): the State Register holds one of [`state`]'s
/// values; State Meta Register 0 holds `rid_start` (oldest buffered row id),
/// State Meta Register 1 holds the window occupancy.
#[derive(Debug)]
pub struct SpmmFsm {
    depth: u32,
    m_total: u32,
    rid_start: u32,
    occ: u32,
    done: bool,
    ended: bool,
}

impl SpmmFsm {
    /// Creates the FSM for a stream of `m_total` output rows with a psum
    /// window of `depth` scratchpad entries.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(depth: usize, m_total: usize) -> SpmmFsm {
        assert!(depth > 0, "psum window needs at least one entry");
        SpmmFsm {
            depth: depth as u32,
            m_total: m_total as u32,
            rid_start: 0,
            occ: if m_total == 0 { 0 } else { 1 },
            done: m_total == 0,
            ended: false,
        }
    }

    fn slot(&self, rid: u32) -> u16 {
        (rid % self.depth) as u16
    }

    fn managed(&self, rid: u32) -> bool {
        rid >= self.rid_start && rid < self.rid_start + self.occ
    }

    /// The decision driven purely by the input stream (no message present).
    #[inline]
    fn input_decision(&mut self, io: &OrchIo) -> OrchAction {
        match io.input {
            Some(MetaToken::Nnz { row, col, value }) => {
                debug_assert!(self.managed(row), "nnz for unmanaged row {row}");
                let instr = Instruction::new(
                    Opcode::MacS,
                    Addr::Imm,
                    Addr::DataMem(col as u16),
                    Addr::Spad(self.slot(row)),
                )
                .with_imm(Vector::splat(value))
                .with_tag(row);
                OrchAction::issue(instr, state::MAC).take_input()
            }
            Some(MetaToken::RowEnd { row }) => {
                let allocate_next = row + 1 < self.m_total;
                if self.occ == self.depth {
                    // Window full: flush the oldest psum to make room
                    // (App C case 2).
                    if io.south_credits == 0 {
                        return OrchAction::stall(state::FLUSH, StallCause::Credit);
                    }
                    if !io.msg_slot_free {
                        return OrchAction::stall(state::FLUSH, StallCause::MsgSlot);
                    }
                    let oldest = self.rid_start;
                    let instr = Instruction::new(
                        Opcode::MovFlush,
                        Addr::Spad(self.slot(oldest)),
                        Addr::Null,
                        Addr::Port(Direction::South),
                    )
                    .with_tag(oldest);
                    self.rid_start += 1;
                    if !allocate_next {
                        self.occ -= 1;
                    }
                    OrchAction::issue(instr, state::FLUSH)
                        .take_input()
                        .send(OrchMessage {
                            id: msg_id::PSUM,
                            rid: oldest,
                        })
                } else {
                    if allocate_next {
                        self.occ += 1;
                    }
                    OrchAction::nop(state::NOP).take_input()
                }
            }
            Some(MetaToken::End) => {
                self.ended = true;
                if self.occ > 0 {
                    if io.south_credits == 0 {
                        return OrchAction::stall(state::DRAIN, StallCause::Credit);
                    }
                    if !io.msg_slot_free {
                        return OrchAction::stall(state::DRAIN, StallCause::MsgSlot);
                    }
                    let oldest = self.rid_start;
                    let instr = Instruction::new(
                        Opcode::MovFlush,
                        Addr::Spad(self.slot(oldest)),
                        Addr::Null,
                        Addr::Port(Direction::South),
                    )
                    .with_tag(oldest);
                    self.rid_start += 1;
                    self.occ -= 1;
                    OrchAction::issue(instr, state::DRAIN).send(OrchMessage {
                        id: msg_id::PSUM,
                        rid: oldest,
                    })
                } else {
                    self.done = true;
                    OrchAction::nop(state::DONE).take_input()
                }
            }
            Some(other) => {
                debug_assert!(false, "unexpected token {other:?} in SpMM stream");
                OrchAction::nop(state::NOP)
            }
            None => OrchAction::nop(state::NOP),
        }
    }
}

impl OrchProgram for SpmmFsm {
    #[inline]
    fn step(&mut self, io: &OrchIo) -> OrchAction {
        // Message handling stays live even after the local stream finished:
        // upstream rows may still drain psums through this row (the DONE
        // state keeps its bypass transitions).
        if let Some(msg) = io.msg {
            debug_assert_eq!(msg.id, msg_id::PSUM);
            if self.managed(msg.rid) {
                // Fig 8 path 1.1: accumulate the upstream psum into our
                // window entry.
                let instr = Instruction::new(
                    Opcode::Acc,
                    Addr::Port(Direction::North),
                    Addr::Null,
                    Addr::Spad(self.slot(msg.rid)),
                )
                .with_tag(msg.rid);
                return OrchAction::issue(instr, state::ACC).take_msg();
            }
            // Fig 8 path 1.2: bypass — forward data north→south and relay
            // the message, riding along the input-driven instruction when
            // that instruction does not itself use the south port.
            // A blocked bypass labels the stall with the state the action
            // would have carried (the ride-along MAC for an nnz token, a
            // plain relay otherwise) — the same labeling the assembled LUT
            // derives from the blocked micro-op's `state_out`, so native and
            // LUT trace streams stay byte-identical under back-pressure.
            let blocked = match io.input {
                Some(MetaToken::Nnz { .. }) => state::MAC,
                _ => state::NOP,
            };
            if io.south_credits == 0 {
                return OrchAction::stall(blocked, StallCause::Credit);
            }
            if !io.msg_slot_free {
                return OrchAction::stall(blocked, StallCause::MsgSlot);
            }
            // Reserve one credit and the message slot for the bypass itself;
            // the base action may not take them too.
            let sub_io = OrchIo {
                south_credits: io.south_credits - 1,
                msg_slot_free: false,
                ..*io
            };
            let base = self.input_decision_peek(&sub_io);
            let mut action = match base {
                Some(b) => b,
                None => OrchAction::nop(state::NOP),
            };
            action.instr = action.instr.with_route(Direction::North, Direction::South);
            action = action.take_msg().send(msg);
            action.clear_stall();
            return action;
        }
        if self.done {
            return OrchAction::nop(state::DONE);
        }
        self.input_decision(io)
    }

    fn done(&self) -> bool {
        self.done
    }
}

impl SpmmFsm {
    /// Computes the input-driven action for a bypass cycle, but only if it
    /// does not conflict with the bypass's south push / message. Returns
    /// `None` (pure-bypass NOP) otherwise, leaving input state untouched.
    fn input_decision_peek(&mut self, io: &OrchIo) -> Option<OrchAction> {
        if self.done {
            return None;
        }
        match io.input {
            Some(MetaToken::Nnz { .. }) => Some(self.input_decision(io)),
            // Row ends may flush (south push + message) — do not combine.
            _ => None,
        }
    }
}

/// Output of an SpMM run.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmmOutput {
    /// The computed `M×N` result.
    pub result: Dense,
    /// Cycle counts and activity counters, summed over column tiles.
    pub report: RunReport,
}

/// Builds the per-row meta streams for a sparse operand: row `r` receives
/// the non-zeros with columns in `[rH, (r+1)H)` (column indices localised),
/// one `RowEnd` per output row, and a final `End`.
pub fn build_row_streams(a: &CsrMatrix, rows: usize) -> Result<Vec<Vec<MetaToken>>, SimError> {
    let k = a.cols();
    if !k.is_multiple_of(rows) {
        return Err(SimError::Mapping {
            reason: format!("K = {k} must be a multiple of the row count {rows}"),
        });
    }
    let h = k / rows;
    let mut streams: Vec<Vec<MetaToken>> = vec![Vec::new(); rows];
    for m in 0..a.rows() {
        for (c, v) in a.row_iter(m) {
            let r = c / h;
            streams[r].push(MetaToken::Nnz {
                row: m as u32,
                col: (c - r * h) as u32,
                value: v,
            });
        }
        for s in streams.iter_mut() {
            s.push(MetaToken::RowEnd { row: m as u32 });
        }
    }
    for s in streams.iter_mut() {
        s.push(MetaToken::End);
    }
    Ok(streams)
}

/// Preloads the `B` tile for column tile `tile` into every PE's data memory.
/// PE `(r, c)` receives `B[rH + i][base + cL .. base + (c+1)L]` at word `i`.
pub fn preload_b_tile(
    fabric: &mut Fabric,
    b: &Dense,
    h: usize,
    tile_base: usize,
) -> Result<(), SimError> {
    let cfg = fabric.config().clone();
    if h > cfg.dmem_words {
        return Err(SimError::Mapping {
            reason: format!(
                "K-segment of {h} rows exceeds data memory ({} words)",
                cfg.dmem_words
            ),
        });
    }
    for r in 0..cfg.rows {
        for c in 0..cfg.cols {
            let mut words = Vec::with_capacity(h);
            for i in 0..h {
                let mut lanes = [0; LANES];
                let brow = r * h + i;
                for (l, lane) in lanes.iter_mut().enumerate() {
                    let col = tile_base + c * LANES + l;
                    *lane = b.get(brow, col).unwrap_or(0);
                }
                words.push(Vector(lanes));
            }
            fabric.pe_mut(r, c).dmem.preload(0, &words);
        }
    }
    Ok(())
}

/// Runs SpMM (`C = A × B`) on the Canon fabric, tiling over output columns.
///
/// # Errors
///
/// Returns [`SimError::Mapping`] when shapes violate the mapping constraints
/// (`K` must be a multiple of `cfg.rows`, and the K-segment must fit in data
/// memory), and propagates simulation protocol errors.
pub fn run_spmm(
    cfg: &CanonConfig,
    mapping: &SpmmMapping,
    a: &CsrMatrix,
    b: &Dense,
) -> Result<SpmmOutput, SimError> {
    if a.cols() != b.rows() {
        return Err(SimError::Mapping {
            reason: format!(
                "A is {}x{} but B is {}x{}",
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols()
            ),
        });
    }
    let m = a.rows();
    let n = b.cols();
    let k = a.cols();
    if !k.is_multiple_of(cfg.rows) {
        return Err(SimError::Mapping {
            reason: format!("K = {k} must be a multiple of rows = {}", cfg.rows),
        });
    }
    let h = k / cfg.rows;
    let tile_n = cfg.cols * LANES;
    let tiles = n.div_ceil(tile_n);
    let streams = build_row_streams(a, cfg.rows)?;
    let depth = mapping.spad_depth.min(cfg.spad_entries).max(1);

    let mut result = Dense::zeros(m, n);
    let mut total: Option<RunReport> = None;
    for t in 0..tiles {
        let tile_base = t * tile_n;
        let mut fabric = crate::pool::acquire(cfg, false);
        preload_b_tile(&mut fabric, b, h, tile_base)?;
        for r in 0..cfg.rows {
            fabric.set_meta_stream(r, streams[r].clone());
            if mapping.use_scratchpad {
                match mapping.orchestrator {
                    OrchKind::Native => {
                        fabric.set_program(r, SpmmFsm::new(depth, m));
                    }
                    OrchKind::Lut => {
                        let program = crate::orchestrator::assembler::spmm_fsm_spec(depth, m)
                            .into_program()?;
                        fabric.set_program(r, program);
                    }
                }
            } else {
                match mapping.orchestrator {
                    OrchKind::Native => {
                        fabric.set_program(r, super::gemm::RegAccFsm::new(m));
                    }
                    OrchKind::Lut => {
                        let program =
                            crate::orchestrator::assembler::regacc_fsm_spec(m).into_program()?;
                        fabric.set_program(r, program);
                    }
                }
            }
        }
        // Off-chip traffic: each B tile is loaded once (k·tile_cols bytes,
        // totalling k·n across tiles); the streamed A is fetched from DRAM
        // once and replayed across column tiles from the edge stream buffers
        // (Table 1's 288 KB includes them), costing 1 B per value, 1 B per
        // coordinate when the stream is sparse, and 1 B per row-end token;
        // C is written out once.
        let tile_cols = tile_n.min(n - tile_base);
        fabric.add_offchip_read_bytes((k * tile_cols) as u64);
        if t == 0 {
            let coord_bytes = if a.nnz() < m * k { a.nnz() } else { 0 };
            fabric.add_offchip_read_bytes((a.nnz() + coord_bytes + m) as u64);
        }
        fabric.add_offchip_write_bytes((m * tile_cols) as u64);

        let report = fabric.run()?;
        for e in fabric.south_collected() {
            let row = e.tag as usize;
            for l in 0..LANES {
                let col = tile_base + e.lane * LANES + l;
                if col < n {
                    result[(row, col)] += e.value.0[l];
                }
            }
        }
        total = Some(match total {
            None => report,
            Some(mut acc) => {
                acc.cycles += report.cycles;
                acc.wall_ns += report.wall_ns;
                acc.stats.merge(&report.stats);
                acc
            }
        });
    }
    let report = total.unwrap_or(RunReport {
        cycles: 0,
        pes: cfg.pe_count(),
        stats: Default::default(),
        wall_ns: 0,
    });
    Ok(SpmmOutput { result, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_sparse::{gen, reference};

    fn cfg() -> CanonConfig {
        CanonConfig::default()
    }

    #[test]
    fn spmm_matches_reference_moderate_sparsity() {
        let mut rng = gen::seeded_rng(21);
        let a = gen::random_sparse(24, 32, 0.5, &mut rng);
        let b = Dense::random(32, 32, &mut rng);
        let out = run_spmm(&cfg(), &SpmmMapping::default(), &a, &b).unwrap();
        assert_eq!(out.result, reference::spmm(&a, &b));
        assert!(out.report.cycles > 0);
        assert!(out.report.stats.mac_instrs > 0);
    }

    #[test]
    fn spmm_matches_reference_high_sparsity_skewed() {
        let mut rng = gen::seeded_rng(22);
        let a = gen::skewed_sparse(40, 64, 0.85, 3.0, &mut rng);
        let b = Dense::random(64, 32, &mut rng);
        let out = run_spmm(&cfg(), &SpmmMapping::default(), &a, &b).unwrap();
        assert_eq!(out.result, reference::spmm(&a, &b));
    }

    #[test]
    fn spmm_dense_input_high_utilization() {
        // K = 256 → 32 MACs per output row per PE row; the per-row overhead
        // (row-end + psum accumulation) then costs ~2/34 of the cycles.
        let mut rng = gen::seeded_rng(23);
        let a = gen::random_sparse(32, 256, 0.0, &mut rng); // fully dense
        let b = Dense::random(256, 32, &mut rng);
        let out = run_spmm(&cfg(), &SpmmMapping::default(), &a, &b).unwrap();
        assert_eq!(out.result, reference::spmm(&a, &b));
        let util = out.report.compute_utilization();
        assert!(util > 0.8, "dense utilization {util} too low");
    }

    #[test]
    fn spmm_small_window_forces_bypass() {
        // Depth 1 forces bypasses under skew; result must still be exact.
        let mut rng = gen::seeded_rng(24);
        let a = gen::skewed_sparse(32, 32, 0.7, 4.0, &mut rng);
        let b = Dense::random(32, 32, &mut rng);
        let mapping = SpmmMapping {
            spad_depth: 1,
            ..SpmmMapping::default()
        };
        let out = run_spmm(&cfg(), &mapping, &a, &b).unwrap();
        assert_eq!(out.result, reference::spmm(&a, &b));
    }

    #[test]
    fn spmm_empty_matrix() {
        let a = CsrMatrix::from_dense(&Dense::zeros(8, 32));
        let b = Dense::from_rows(&(0..32).map(|i| vec![i; 32]).collect::<Vec<_>>());
        let out = run_spmm(&cfg(), &SpmmMapping::default(), &a, &b).unwrap();
        assert_eq!(out.result, Dense::zeros(8, 32));
    }

    #[test]
    fn spmm_multi_tile_output() {
        // N = 96 → three 32-wide tiles on the default 8×8 fabric.
        let mut rng = gen::seeded_rng(25);
        let a = gen::random_sparse(16, 32, 0.6, &mut rng);
        let b = Dense::random(32, 96, &mut rng);
        let out = run_spmm(&cfg(), &SpmmMapping::default(), &a, &b).unwrap();
        assert_eq!(out.result, reference::spmm(&a, &b));
    }

    #[test]
    fn spmm_ragged_n_padding() {
        // N = 40: one full tile plus a partial tile.
        let mut rng = gen::seeded_rng(26);
        let a = gen::random_sparse(12, 32, 0.4, &mut rng);
        let b = Dense::random(32, 40, &mut rng);
        let out = run_spmm(&cfg(), &SpmmMapping::default(), &a, &b).unwrap();
        assert_eq!(out.result, reference::spmm(&a, &b));
    }

    #[test]
    fn mapping_errors() {
        let mut rng = gen::seeded_rng(27);
        let a = gen::random_sparse(4, 30, 0.5, &mut rng); // K=30 not /8
        let b = Dense::random(30, 8, &mut rng);
        assert!(matches!(
            run_spmm(&cfg(), &SpmmMapping::default(), &a, &b),
            Err(SimError::Mapping { .. })
        ));
        let a = gen::random_sparse(4, 32, 0.5, &mut rng);
        let b = Dense::random(16, 8, &mut rng); // K mismatch
        assert!(run_spmm(&cfg(), &SpmmMapping::default(), &a, &b).is_err());
    }

    #[test]
    fn deeper_buffer_tolerates_skew_better() {
        let mut rng = gen::seeded_rng(28);
        let a = gen::skewed_sparse(96, 64, 0.8, 4.0, &mut rng);
        let b = Dense::random(64, 32, &mut rng);
        let shallow = run_spmm(
            &cfg(),
            &SpmmMapping {
                spad_depth: 1,
                ..SpmmMapping::default()
            },
            &a,
            &b,
        )
        .unwrap();
        let deep = run_spmm(
            &cfg(),
            &SpmmMapping {
                spad_depth: 16,
                ..SpmmMapping::default()
            },
            &a,
            &b,
        )
        .unwrap();
        assert_eq!(shallow.result, deep.result);
        assert!(
            deep.report.cycles <= shallow.report.cycles,
            "depth 16 ({}) should not be slower than depth 1 ({})",
            deep.report.cycles,
            shallow.report.cycles
        );
    }

    #[test]
    fn fsm_state_machine_unit() {
        // Drive the FSM directly: a single row, single nnz.
        let mut fsm = SpmmFsm::new(4, 1);
        let io = OrchIo {
            cycle: 0,
            input: Some(MetaToken::Nnz {
                row: 0,
                col: 3,
                value: 5,
            }),
            msg: None,
            south_credits: 2,
            msg_slot_free: true,
            north_tokens: 0,
        };
        let a = fsm.step(&io);
        assert_eq!(a.state_id, state::MAC);
        assert!(a.consumes_input());
        assert_eq!(a.instr.op, Opcode::MacS);
        assert_eq!(a.instr.op2, Addr::DataMem(3));
        // Row end: occupancy 1 < depth, no flush, no new row (m_total = 1).
        let io2 = OrchIo {
            input: Some(MetaToken::RowEnd { row: 0 }),
            ..io
        };
        let a2 = fsm.step(&io2);
        assert_eq!(a2.state_id, state::NOP);
        // End: drain the single psum.
        let io3 = OrchIo {
            input: Some(MetaToken::End),
            ..io
        };
        let a3 = fsm.step(&io3);
        assert_eq!(a3.state_id, state::DRAIN);
        assert_eq!(a3.instr.op, Opcode::MovFlush);
        assert!(a3.msg_out().is_some());
        let a4 = fsm.step(&io3);
        assert_eq!(a4.state_id, state::DONE);
        assert!(fsm.done());
    }

    #[test]
    fn fsm_stalls_without_credit() {
        let mut fsm = SpmmFsm::new(1, 2);
        // Fill row 0 then hit its row end with zero credits: flush must stall.
        let io = OrchIo {
            cycle: 0,
            input: Some(MetaToken::RowEnd { row: 0 }),
            msg: None,
            south_credits: 0,
            msg_slot_free: true,
            north_tokens: 0,
        };
        let a = fsm.step(&io);
        assert!(a.stalled());
        assert!(!a.consumes_input());
    }

    #[test]
    fn fsm_acc_on_managed_message() {
        let mut fsm = SpmmFsm::new(4, 4);
        let io = OrchIo {
            cycle: 0,
            input: None,
            msg: Some(OrchMessage {
                id: msg_id::PSUM,
                rid: 0,
            }),
            south_credits: 2,
            msg_slot_free: true,
            north_tokens: 1,
        };
        let a = fsm.step(&io);
        assert_eq!(a.state_id, state::ACC);
        assert!(a.consumes_msg());
        assert_eq!(a.instr.op, Opcode::Acc);
        assert_eq!(a.instr.op1, Addr::Port(Direction::North));
    }

    #[test]
    fn fsm_bypass_on_unmanaged_message() {
        let mut fsm = SpmmFsm::new(2, 10);
        // Advance the window past rid 0: two row ends with full window.
        // depth=2: after RowEnd(0) occ=2; after RowEnd(1) occ==depth → flush.
        let mk_io = |input, msg| OrchIo {
            cycle: 0,
            input,
            msg,
            south_credits: 2,
            msg_slot_free: true,
            north_tokens: 1,
        };
        fsm.step(&mk_io(Some(MetaToken::RowEnd { row: 0 }), None));
        let f = fsm.step(&mk_io(Some(MetaToken::RowEnd { row: 1 }), None));
        assert_eq!(f.state_id, state::FLUSH);
        // rid 0 now below the window → bypass.
        let a = fsm.step(&mk_io(
            None,
            Some(OrchMessage {
                id: msg_id::PSUM,
                rid: 0,
            }),
        ));
        assert!(a.consumes_msg());
        assert_eq!(a.msg_out().unwrap().rid, 0);
        let route = a.instr.route.unwrap();
        assert_eq!(route.from, Direction::North);
        assert_eq!(route.to, Direction::South);
    }
}
