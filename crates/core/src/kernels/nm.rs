//! N:M structured-sparse SpMM (§4.1.3).
//!
//! With exactly N non-zeros in every aligned group of M elements, the
//! non-zero coordinates are fed to the orchestrators just like unstructured
//! SpMM, but the per-row workload is balanced by construction: "there is no
//! need of workload balancing with scratchpad. Instead, the psum is flushed
//! to the next row of PEs for every N elements processed." Canon supports
//! *any* N:M ratio with the same mapping — unlike the 2:4 systolic baseline,
//! which is hard-wired to one ratio.

use crate::config::CanonConfig;
use crate::kernels::spmm::{run_spmm, SpmmMapping, SpmmOutput};
use crate::SimError;
use canon_sparse::{CsrMatrix, Dense};

/// Verifies that `a` actually satisfies the N:M pattern (at most `n` non-zeros
/// in every aligned group of `m_group` columns).
///
/// # Errors
///
/// Returns [`SimError::Mapping`] describing the first violating group.
pub fn check_nm_structure(a: &CsrMatrix, n: usize, m_group: usize) -> Result<(), SimError> {
    if m_group == 0 || !a.cols().is_multiple_of(m_group) {
        return Err(SimError::Mapping {
            reason: format!(
                "K = {} must be a positive multiple of the group size {m_group}",
                a.cols()
            ),
        });
    }
    for r in 0..a.rows() {
        let mut counts = vec![0usize; a.cols() / m_group];
        for (c, _) in a.row_iter(r) {
            counts[c / m_group] += 1;
        }
        if let Some((g, &cnt)) = counts.iter().enumerate().find(|&(_, &cnt)| cnt > n) {
            return Err(SimError::Mapping {
                reason: format!(
                    "row {r}, group {g}: {cnt} non-zeros violate {n}:{m_group} structure"
                ),
            });
        }
    }
    Ok(())
}

/// Runs N:M structured SpMM on Canon. The mapping is identical to SpMM but
/// uses register accumulation (no scratchpad window), exploiting the
/// compile-time-known balance.
///
/// # Errors
///
/// Returns [`SimError::Mapping`] if `a` violates the claimed structure or the
/// SpMM shape constraints fail.
pub fn run_spmm_nm(
    cfg: &CanonConfig,
    a: &CsrMatrix,
    b: &Dense,
    n: usize,
    m_group: usize,
) -> Result<SpmmOutput, SimError> {
    check_nm_structure(a, n, m_group)?;
    run_spmm(
        cfg,
        &SpmmMapping {
            spad_depth: 1,
            use_scratchpad: false,
            ..SpmmMapping::default()
        },
        a,
        b,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_sparse::{gen, reference};

    #[test]
    fn nm_2_4_matches_reference() {
        let mut rng = gen::seeded_rng(41);
        let a = gen::nm_sparse(32, 64, 2, 4, &mut rng);
        let b = Dense::random(64, 32, &mut rng);
        let out = run_spmm_nm(&CanonConfig::default(), &a, &b, 2, 4).unwrap();
        assert_eq!(out.result, reference::spmm(&a, &b));
        assert_eq!(out.report.stats.spad_reads, 0);
    }

    #[test]
    fn nm_2_8_matches_reference() {
        let mut rng = gen::seeded_rng(42);
        let a = gen::nm_sparse(32, 64, 2, 8, &mut rng);
        let b = Dense::random(64, 32, &mut rng);
        let out = run_spmm_nm(&CanonConfig::default(), &a, &b, 2, 8).unwrap();
        assert_eq!(out.result, reference::spmm(&a, &b));
    }

    #[test]
    fn nm_speedup_over_dense_grows_with_sparsity() {
        let mut rng = gen::seeded_rng(43);
        let b = Dense::random(64, 32, &mut rng);
        let a24 = gen::nm_sparse(64, 64, 2, 4, &mut rng);
        let a28 = gen::nm_sparse(64, 64, 2, 8, &mut rng);
        let c24 = run_spmm_nm(&CanonConfig::default(), &a24, &b, 2, 4)
            .unwrap()
            .report
            .cycles;
        let c28 = run_spmm_nm(&CanonConfig::default(), &a28, &b, 2, 8)
            .unwrap()
            .report
            .cycles;
        assert!(
            c28 < c24,
            "2:8 ({c28} cycles) should be faster than 2:4 ({c24} cycles)"
        );
    }

    #[test]
    fn structure_check_rejects_unstructured() {
        let mut rng = gen::seeded_rng(44);
        let a = gen::random_sparse(16, 32, 0.2, &mut rng); // dense-ish: groups overflow
        assert!(check_nm_structure(&a, 2, 4).is_err());
        let ok = gen::nm_sparse(16, 32, 2, 4, &mut rng);
        assert!(check_nm_structure(&ok, 2, 4).is_ok());
        // 2:4 matrices trivially satisfy 2:4 but also looser 4:4.
        assert!(check_nm_structure(&ok, 4, 4).is_ok());
        assert!(check_nm_structure(&ok, 2, 0).is_err());
    }
}
