//! Cycle-accurate simulator of the **Canon** architecture.
//!
//! Canon (ASPLOS 2026) is a 2D-mesh spatial architecture that combines:
//!
//! * **data-driven orchestration** — each row of processing elements (PEs) is
//!   driven by a lightweight programmable FSM (*orchestrator*) that translates
//!   input meta-data (e.g. sparse coordinates) and neighbour messages into PE
//!   instructions at runtime ([`orchestrator`]);
//! * **time-lapsed SIMD execution** — instructions issued by an orchestrator
//!   propagate across its PE row over multiple cycles on a dedicated
//!   instruction network, creating a staggered pipeline in which every PE of a
//!   row eventually executes the same instruction sequence on its own data
//!   ([`noc`], [`fabric`]).
//!
//! The simulator is organised exactly like the hardware:
//!
//! | Hardware (paper) | Module |
//! |---|---|
//! | ISA: `<op> <op1_addr> <op2_addr> <res_addr>`, unified address space (§3.1) | [`isa`] |
//! | 3-stage PE pipeline LOAD/EXECUTE/COMMIT, 4-wide SIMD lane (Fig 4) | [`pe`] |
//! | Per-PE data memory + dual-port scratchpad (§2.2) | [`pe`] (slab views) |
//! | Circuit-switched data NoC, staggered instruction NoC (§2.1) | [`noc`] |
//! | Programmable orchestrator, LUT bitstream (Fig 5, §3.2) | [`orchestrator`] |
//! | PE array + cycle loop, active-set scheduled | [`fabric`], [`sched`] |
//! | Kernel mappings (§4, Appendices A–D) | [`kernels`] |
//! | Off-chip bandwidth / tiling model (§6.4) | [`offchip`] |
//! | Per-component activity counters | [`stats`] |
//! | Cycle trace, stall attribution, Perfetto export | [`trace`] |
//! | Uniform workload dispatch (scenario sweeps) | [`kernels::run_kernel`] + workspace crate `canon-sweep` |
//!
//! # Example
//!
//! ```
//! use canon_core::{CanonConfig, kernels::spmm::{SpmmMapping, run_spmm}};
//! use canon_sparse::{Dense, gen};
//!
//! # fn main() -> Result<(), canon_core::SimError> {
//! let mut rng = gen::seeded_rng(1);
//! let a = gen::random_sparse(32, 32, 0.6, &mut rng);
//! let b = Dense::random(32, 32, &mut rng);
//! let out = run_spmm(&CanonConfig::default(), &SpmmMapping::default(), &a, &b)?;
//! assert_eq!(out.result, canon_sparse::reference::spmm(&a, &b));
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod fabric;
pub mod fault;
pub mod isa;
pub mod kernels;
pub mod noc;
pub mod offchip;
pub mod orchestrator;
pub mod pe;
pub mod pool;
pub(crate) mod replay;
pub mod sched;
pub mod stats;
pub mod trace;

pub use config::CanonConfig;
pub use fabric::Fabric;
pub use fault::{FaultAction, FaultPlan};
pub use isa::{Addr, Instruction, Opcode, Vector, LANES};
pub use stats::{RunReport, StallBreakdown, StallCause, Stats};

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A kernel mapping constraint was violated (shapes vs array geometry).
    Mapping {
        /// Description of the violated constraint.
        reason: String,
    },
    /// A router direction was driven twice in one cycle (§3.1 forbids this;
    /// the compiler is supposed to rule it out, the simulator enforces it).
    RouterConflict {
        /// Cycle at which the conflict occurred.
        cycle: u64,
        /// PE coordinates `(row, col)`.
        pe: (usize, usize),
        /// Offending direction name.
        direction: String,
    },
    /// An address fell outside the addressed structure.
    AddressOutOfRange {
        /// Description of the access.
        context: String,
    },
    /// The fabric failed to drain within the watchdog budget — indicates a
    /// protocol deadlock (e.g. vertical FIFO cycle).
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// What the fabric was waiting for.
        waiting_on: String,
    },
    /// Orchestrator microcode was malformed (bad bitstream or assembler input).
    BadMicrocode {
        /// Explanation.
        reason: String,
    },
    /// The run exceeded a harness budget ([`CanonConfig::max_cycles`] or
    /// [`CanonConfig::wall_budget_ns`]) while still making progress — a
    /// runaway cell, distinct from a [`SimError::Deadlock`] (where the
    /// watchdog fires because nothing can make progress). The report taken
    /// after this error carries the partial stats up to the abort cycle.
    Timeout {
        /// Cycle at which the budget check aborted the run.
        cycle: u64,
        /// Which budget was exhausted (human-readable).
        budget: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Mapping { reason } => write!(f, "mapping error: {reason}"),
            SimError::RouterConflict {
                cycle,
                pe,
                direction,
            } => write!(
                f,
                "router conflict at cycle {cycle} on PE ({}, {}): direction {direction} driven twice",
                pe.0, pe.1
            ),
            SimError::AddressOutOfRange { context } => {
                write!(f, "address out of range: {context}")
            }
            SimError::Deadlock { cycle, waiting_on } => {
                write!(f, "deadlock at cycle {cycle}: waiting on {waiting_on}")
            }
            SimError::BadMicrocode { reason } => write!(f, "bad microcode: {reason}"),
            SimError::Timeout { cycle, budget } => {
                write!(f, "timeout at cycle {cycle}: exceeded {budget}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_error_display() {
        let e = SimError::RouterConflict {
            cycle: 10,
            pe: (1, 2),
            direction: "South".into(),
        };
        assert!(e.to_string().contains("cycle 10"));
        let e = SimError::Deadlock {
            cycle: 99,
            waiting_on: "vertical fifo".into(),
        };
        assert!(e.to_string().contains("deadlock"));
        let e = SimError::Timeout {
            cycle: 512,
            budget: "cycle ceiling 512".into(),
        };
        assert!(e.to_string().contains("timeout at cycle 512"));
    }

    #[test]
    fn sim_error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
