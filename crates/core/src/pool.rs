//! Warm fabric pool: thread-local reuse of drained [`Fabric`]s.
//!
//! Constructing a fabric allocates the PE slabs, link rings, instruction
//! ring, and scheduler bitsets — for a request-serving daemon (and the
//! batch sweep's worker threads) that cost recurs per kernel tile of every
//! request. The pool keeps a small number of drained fabrics per thread
//! and hands them back out after an in-place [`Fabric::reset`], so the
//! steady state re-zeroes slabs instead of reallocating them.
//!
//! # Usage
//!
//! ```
//! use canon_core::{pool, CanonConfig, Fabric};
//!
//! let _guard = pool::install(2); // warm reuse on this thread while alive
//! let cfg = CanonConfig::default();
//! {
//!     let fabric = pool::acquire(&cfg, false); // miss: constructs
//!     assert_eq!(fabric.cycle(), 0);
//! } // drop returns the fabric to the thread's pool
//! let fabric = pool::acquire(&cfg, false); // hit: reset + reuse
//! assert_eq!(fabric.cycle(), 0);
//! assert_eq!(pool::stats().unwrap().hits, 1);
//! ```
//!
//! Without an installed pool, [`acquire`] degrades to [`Fabric::new`] and
//! the drop is a plain drop — kernel mappers call `acquire` unconditionally
//! and single-run callers pay nothing.
//!
//! # Poisoning
//!
//! A fabric held across a panic is **poisoned**: its drop runs during
//! unwinding (`std::thread::panicking()`), and the pool discards it rather
//! than trusting a reset of state abandoned mid-mutation. The next acquire
//! rebuilds from scratch. Deadlocked or timed-out runs are *not* poison —
//! they return an error cleanly and [`Fabric::reset`] clears their
//! mid-flight state (pinned by `assert_pristine` under debug assertions).

use crate::config::CanonConfig;
use crate::fabric::Fabric;
use std::cell::RefCell;

/// Reuse counters of one thread's pool (served through [`stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquires served by resetting a pooled fabric.
    pub hits: u64,
    /// Acquires that had to construct (empty pool or no compatible shape).
    pub misses: u64,
    /// Fabrics dropped instead of pooled: poisoned by a panic, or evicted
    /// because the pool was full.
    pub discarded: u64,
    /// Fabrics currently parked in the pool.
    pub warm: usize,
}

struct PoolInner {
    slots: Vec<Fabric>,
    max_warm: usize,
    hits: u64,
    misses: u64,
    discarded: u64,
}

thread_local! {
    static POOL: RefCell<Option<PoolInner>> = const { RefCell::new(None) };
}

/// Enables warm fabric reuse on the current thread while the returned guard
/// lives, keeping at most `max_warm` drained fabrics parked. Nested
/// installs stack: the inner guard's pool replaces the outer one and the
/// outer is restored (with its parked fabrics) when the inner guard drops.
pub fn install(max_warm: usize) -> PoolGuard {
    let prev = POOL.with(|p| {
        p.borrow_mut().replace(PoolInner {
            slots: Vec::new(),
            max_warm: max_warm.max(1),
            hits: 0,
            misses: 0,
            discarded: 0,
        })
    });
    PoolGuard { prev }
}

/// Reuse counters of the current thread's pool, or `None` when no pool is
/// installed.
pub fn stats() -> Option<PoolStats> {
    POOL.with(|p| {
        p.borrow().as_ref().map(|inner| PoolStats {
            hits: inner.hits,
            misses: inner.misses,
            discarded: inner.discarded,
            warm: inner.slots.len(),
        })
    })
}

/// Uninstalls the current thread's pool on drop, dropping its parked
/// fabrics and restoring any previously installed pool.
pub struct PoolGuard {
    prev: Option<PoolInner>,
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        POOL.with(|p| {
            *p.borrow_mut() = self.prev.take();
        });
    }
}

/// A fabric checked out of (or constructed on behalf of) the thread's
/// pool. Dereferences to [`Fabric`]; dropping it returns the fabric to the
/// pool unless the thread is panicking (poisoned — see the module docs) or
/// no pool is installed.
pub struct PooledFabric {
    fabric: Option<Fabric>,
}

impl std::ops::Deref for PooledFabric {
    type Target = Fabric;
    fn deref(&self) -> &Fabric {
        self.fabric.as_ref().expect("fabric already released")
    }
}

impl std::ops::DerefMut for PooledFabric {
    fn deref_mut(&mut self) -> &mut Fabric {
        self.fabric.as_mut().expect("fabric already released")
    }
}

impl Drop for PooledFabric {
    fn drop(&mut self) {
        let Some(fabric) = self.fabric.take() else {
            return;
        };
        if std::thread::panicking() {
            // Poisoned: the panic may have unwound out of any fabric
            // mutation. Count the discard if a pool is live (the borrow
            // may itself be held if the panic unwound out of pool code —
            // try_borrow keeps the drop panic-free either way).
            POOL.with(|p| {
                if let Ok(mut b) = p.try_borrow_mut() {
                    if let Some(inner) = b.as_mut() {
                        inner.discarded += 1;
                    }
                }
            });
            return;
        }
        POOL.with(|p| {
            if let Some(inner) = p.borrow_mut().as_mut() {
                if inner.slots.len() < inner.max_warm {
                    inner.slots.push(fabric);
                } else {
                    inner.discarded += 1;
                }
            }
        });
    }
}

/// Checks a fabric out for `cfg`: a pooled fabric with matching allocation
/// shape is [`Fabric::reset`] and returned (hit); otherwise a fresh fabric
/// is constructed (miss — also the no-pool fallback, making this a drop-in
/// replacement for [`Fabric::new`] in kernel mappers).
///
/// # Panics
///
/// Panics when `cfg` is invalid (as [`Fabric::new`] would).
pub fn acquire(cfg: &CanonConfig, north_edge_feeder: bool) -> PooledFabric {
    let reused = POOL.with(|p| {
        let mut b = p.borrow_mut();
        let inner = b.as_mut()?;
        let at = inner
            .slots
            .iter()
            .position(|f| f.reusable_for(cfg, north_edge_feeder));
        match at {
            Some(i) => {
                inner.hits += 1;
                Some(inner.slots.swap_remove(i))
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    });
    let fabric = match reused {
        Some(mut f) => {
            f.reset(cfg);
            f
        }
        None => Fabric::new(cfg, north_edge_feeder),
    };
    PooledFabric {
        fabric: Some(fabric),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rows: usize, cols: usize) -> CanonConfig {
        CanonConfig::default().with_geometry(rows, cols)
    }

    #[test]
    fn acquire_without_pool_constructs_fresh() {
        let f = acquire(&cfg(2, 2), false);
        assert_eq!(f.cycle(), 0);
        drop(f);
        assert!(stats().is_none());
    }

    #[test]
    fn pool_reuses_matching_shape_and_rebuilds_mismatches() {
        let _g = install(2);
        drop(acquire(&cfg(2, 2), false));
        assert_eq!(stats().unwrap().warm, 1);
        drop(acquire(&cfg(2, 2), false));
        let s = stats().unwrap();
        assert_eq!((s.hits, s.misses), (1, 1));
        // Different geometry: no reuse, second warm slot.
        drop(acquire(&cfg(2, 4), false));
        let s = stats().unwrap();
        assert_eq!((s.hits, s.misses, s.warm), (1, 2, 2));
        // Feeder-kind mismatch is a miss even at equal geometry.
        drop(acquire(&cfg(2, 2), true));
        assert_eq!(stats().unwrap().misses, 3);
    }

    #[test]
    fn pool_caps_parked_fabrics() {
        let _g = install(1);
        drop(acquire(&cfg(2, 2), false));
        drop(acquire(&cfg(2, 4), false));
        let s = stats().unwrap();
        assert_eq!(s.warm, 1);
        assert_eq!(s.discarded, 1);
    }

    #[test]
    fn panicked_holder_poisons_the_fabric() {
        let _g = install(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _f = acquire(&cfg(2, 2), false);
            panic!("injected");
        }));
        assert!(r.is_err());
        let s = stats().unwrap();
        assert_eq!(s.warm, 0, "poisoned fabric must not be pooled");
        assert_eq!(s.discarded, 1);
    }

    #[test]
    fn guard_restores_outer_pool() {
        let _outer = install(2);
        drop(acquire(&cfg(2, 2), false));
        {
            let _inner = install(2);
            assert_eq!(stats().unwrap().warm, 0);
        }
        assert_eq!(stats().unwrap().warm, 1);
    }
}
