//! The Canon processing elements: 3-stage LOAD / EXECUTE / COMMIT pipelines
//! around 4-wide SIMD lanes (Fig 4), stored struct-of-arrays.
//!
//! PEs contain no control logic: they execute whatever instruction streams in
//! from the west (orchestrator or upstream PE), at a fixed pipeline latency,
//! and forward the instruction east when it retires — producing the
//! time-lapsed SIMD stagger of §2.1.
//!
//! The pipeline implements store-to-load forwarding between in-flight
//! instructions: a LOAD that reads an address written by an instruction in
//! the EXECUTE or COMMIT stage observes the in-flight value. This models the
//! accumulator forwarding a real MAC pipeline needs for back-to-back
//! accumulation into the same scratchpad entry (consecutive non-zeros of one
//! output row in SpMM).
//!
//! ## Struct-of-arrays layout
//!
//! All PEs of a fabric live in one [`PeArray`]: data memories, scratchpads,
//! register banks, activity counters, and the three pipeline-stage slots are
//! parallel `Vec`s indexed by PE id. The per-phase sweeps of
//! [`crate::fabric::Fabric::step`] then walk dense, homogeneous arrays — the
//! stage slot a COMMIT pass touches is contiguous across PEs instead of
//! strided by the whole PE record. Because every PE advances in lockstep,
//! the stage rotation index is a single array-wide field and
//! [`PeArray::advance`] is O(1) regardless of fabric size.
//!
//! The EXECUTE stage exists architecturally (an instruction occupies it for
//! one cycle, and forwarding reads it), but its lane result is a pure
//! function of the operand values captured at LOAD and nothing can observe
//! it earlier — so the simulator computes it eagerly during LOAD and runs no
//! per-PE EXECUTE sweep at all.

use crate::isa::{
    Addr, Direction, InstrHandle, InstrRing, Instruction, Opcode, Plan, PlanKind, Vector,
};
use crate::noc::{ErrCtx, LinkGrid, TaggedVector};
use crate::SimError;

/// Number of SIMD registers per PE.
pub const NUM_REGS: usize = 4;

/// Occupancy of one pipeline-stage slot.
///
/// `PlainNop` is a compressed encoding of the canonical bubble — an
/// instruction that is `Nop` with null operands, null result, and no route
/// (exactly what orchestrators emit for stalls and row ends). Such a slot
/// reads no operands, computes nothing, writes nothing back, can never
/// forward a value, and retires as [`Instruction::NOP`]; encoding it in the
/// state tag lets the sparse-band streams, which are bubble-heavy, move one
/// byte per stage instead of a full in-flight record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Slot {
    /// No instruction in this stage.
    #[default]
    Empty,
    /// The canonical NOP (see above).
    PlainNop,
    /// A real instruction; the per-field stage arrays hold its state.
    Full,
}

/// What a [`PeArray::commit_into`] call did, as compact flags the fabric's
/// wake propagation consumes without re-inspecting the instruction.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommitEffects {
    /// An instruction retired (and was forwarded, when a slot was given).
    pub retired: bool,
    /// The retired instruction was a bubble ([`Instruction::is_plain_nop`]):
    /// nothing was written into the forward slot — the caller should
    /// propagate the bubble as a tag, not a record.
    pub bubble: bool,
    /// The instruction drives the south output link
    /// ([`Instruction::pushes_toward`] semantics — conservative for NOPs).
    pub drives_south: bool,
    /// The instruction drives the east output link.
    pub drives_east: bool,
}

impl CommitEffects {
    /// The no-instruction outcome.
    pub const NONE: CommitEffects = CommitEffects {
        retired: false,
        bubble: false,
        drives_south: false,
        drives_east: false,
    };
}

/// Per-PE activity counters (memory counters live in the memories).
#[derive(Debug, Clone, Copy, Default)]
pub struct PeCounters {
    /// Instructions that entered the pipeline (including NOPs).
    pub instrs: u64,
    /// Compute instructions executed.
    pub compute_instrs: u64,
    /// MAC instructions executed.
    pub mac_instrs: u64,
}

/// Per-PE memory access counters (data memory and scratchpad tracked
/// separately — their per-access energies differ, Fig 11).
#[derive(Debug, Clone, Copy, Default)]
struct MemCounts {
    dmem_reads: u64,
    dmem_writes: u64,
    spad_reads: u64,
    spad_writes: u64,
}

/// Shared view of one PE memory (a strided view of the [`PeArray`] slab:
/// word `a` of PE `idx` lives at `slab[a · stride + idx]`, see the
/// address-major layout notes on [`PeArray`]).
#[derive(Debug)]
pub struct MemRef<'a> {
    slab: &'a [Vector],
    stride: usize,
    offset: usize,
    len: usize,
    reads: u64,
    writes: u64,
}

impl MemRef<'_> {
    /// Capacity in words.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the memory has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads word `addr` without counting the access (tests / debugging).
    ///
    /// # Panics
    ///
    /// Panics when `addr` is out of range.
    pub fn word(&self, addr: usize) -> Vector {
        assert!(addr < self.len, "word {addr} of {}", self.len);
        self.slab[addr * self.stride + self.offset]
    }

    /// Number of counted reads.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Number of counted writes.
    pub fn write_count(&self) -> u64 {
        self.writes
    }
}

/// Mutable view of one PE memory (a strided view of the [`PeArray`] slab —
/// see [`MemRef`]).
#[derive(Debug)]
pub struct MemMut<'a> {
    slab: &'a mut [Vector],
    stride: usize,
    offset: usize,
    len: usize,
    reads: &'a mut u64,
    writes: &'a mut u64,
    what: &'static str,
}

impl MemMut<'_> {
    /// Capacity in words.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the memory has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads a word, counting the access.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AddressOutOfRange`] for addresses past the end.
    pub fn read(&mut self, addr: usize) -> Result<Vector, SimError> {
        if addr < self.len {
            *self.reads += 1;
            Ok(self.slab[addr * self.stride + self.offset])
        } else {
            Err(mem_oob(self.what, "read", addr, self.len))
        }
    }

    /// Writes a word, counting the access.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AddressOutOfRange`] for addresses past the end.
    pub fn write(&mut self, addr: usize, v: Vector) -> Result<(), SimError> {
        if addr < self.len {
            self.slab[addr * self.stride + self.offset] = v;
            *self.writes += 1;
            Ok(())
        } else {
            Err(mem_oob(self.what, "write", addr, self.len))
        }
    }

    /// Preloads contents without counting accesses (models the asynchronous
    /// EDDO memory movers filling the array before kernel execution; the
    /// off-chip traffic is accounted separately by the kernel mappers).
    ///
    /// # Panics
    ///
    /// Panics if `base + data.len()` exceeds the capacity.
    pub fn preload(&mut self, base: usize, data: &[Vector]) {
        assert!(
            base + data.len() <= self.len,
            "preload of {} words at {base} exceeds capacity {}",
            data.len(),
            self.len
        );
        for (i, &w) in data.iter().enumerate() {
            self.slab[(base + i) * self.stride + self.offset] = w;
        }
    }

    /// Number of counted reads.
    pub fn read_count(&self) -> u64 {
        *self.reads
    }

    /// Number of counted writes.
    pub fn write_count(&self) -> u64 {
        *self.writes
    }
}

#[cold]
fn mem_oob(what: &str, op: &str, addr: usize, len: usize) -> SimError {
    SimError::AddressOutOfRange {
        context: format!("{what} {op} {addr} of {len}"),
    }
}

/// Bounds-checked, counted read of word `a` of PE `idx` in an
/// address-major slab (`words` words per PE, `n` PEs: word `a` of PE `idx`
/// at `slab[a * n + idx]`) — the one definition of "checked counted slab
/// access" behind every hot-path memory accessor.
#[allow(clippy::too_many_arguments)]
#[inline]
fn slab_read(
    slab: &[Vector],
    words: usize,
    n: usize,
    idx: usize,
    a: usize,
    count: &mut u64,
    what: &'static str,
) -> Result<Vector, SimError> {
    if a < words {
        *count += 1;
        Ok(slab[a * n + idx])
    } else {
        Err(mem_oob(what, "read", a, words))
    }
}

/// Bounds-checked, counted write — see [`slab_read`].
#[allow(clippy::too_many_arguments)]
#[inline]
fn slab_write(
    slab: &mut [Vector],
    words: usize,
    n: usize,
    idx: usize,
    a: usize,
    v: Vector,
    count: &mut u64,
    what: &'static str,
) -> Result<(), SimError> {
    if a < words {
        *count += 1;
        slab[a * n + idx] = v;
        Ok(())
    } else {
        Err(mem_oob(what, "write", a, words))
    }
}

/// Shared view of one PE inside a [`PeArray`].
#[derive(Debug)]
pub struct PeRef<'a> {
    /// Static-data memory (holds the stationary operand tile).
    pub dmem: MemRef<'a>,
    /// Dual-port scratchpad (psum / stream-reuse buffer).
    pub spad: MemRef<'a>,
    regs: &'a [Vector; NUM_REGS],
    counters: PeCounters,
}

impl PeRef<'_> {
    /// Register file access (tests / debugging).
    pub fn reg(&self, i: usize) -> Vector {
        self.regs[i]
    }

    /// Activity counters.
    pub fn counters(&self) -> PeCounters {
        self.counters
    }
}

/// Mutable view of one PE inside a [`PeArray`] (kernel mappers preload data
/// memories and scratchpads through this).
#[derive(Debug)]
pub struct PeMut<'a> {
    /// Static-data memory (holds the stationary operand tile).
    pub dmem: MemMut<'a>,
    /// Dual-port scratchpad (psum / stream-reuse buffer).
    pub spad: MemMut<'a>,
}

/// All processing elements of one fabric, struct-of-arrays.
///
/// The three pipeline slots per PE live in parallel per-field arrays
/// addressed through one shared rotation index: [`PeArray::advance`] renames
/// the stages for *every* PE by bumping that index once instead of moving
/// per-PE in-flight records — the per-cycle stage shift used to be a per-PE
/// operation on the simulator's hottest path.
#[derive(Debug)]
pub struct PeArray {
    /// Data-memory words of *all* PEs, one flat slab in **address-major**
    /// layout: word `a` of PE `i` lives at `dmem[a * n + i]`. The paper's
    /// uniform-addressing invariant (every PE of a row reads the *same*
    /// local address for one issue, staggered over consecutive cycles)
    /// makes the per-cycle working set a handful of `n`-wide rows of this
    /// slab — contiguous here, but strided 16 KB apart in a PE-major
    /// layout, where a default-config fabric touches one TLB page per PE.
    dmem: Vec<Vector>,
    dmem_words: usize,
    /// Scratchpad entries of all PEs (the accumulator banks), same layout.
    spad: Vec<Vector>,
    spad_entries: usize,
    /// Number of PEs (the slab stride).
    n: usize,
    mem_counts: Vec<MemCounts>,
    regs: Vec<[Vector; NUM_REGS]>,
    /// Pipeline-stage slots, struct-of-arrays at field granularity:
    /// `xxx[s][i]` is field `xxx` of stage slot `s` of PE `i`. Slot roles
    /// rotate via `load_idx` (LOAD at `load_idx`, EXECUTE at `load_idx + 1`,
    /// COMMIT at `load_idx + 2`, mod 3). Splitting by field means each phase
    /// moves only the bytes it actually produces or consumes: LOAD writes a
    /// 4-byte [`InstrHandle`] into the issued-instruction ring plus the
    /// (eagerly computed) lane result, COMMIT resolves the handle back
    /// through the shared [`InstrRing`] (+ routed payload when a route is
    /// present) — and a `PlainNop` bubble moves only its one state byte.
    state: [Vec<Slot>; 3],
    handles: [Vec<InstrHandle>; 3],
    results: [Vec<Vector>; 3],
    /// Store-to-load forwarding cache: the result address of each `Full`
    /// slot's instruction, and the source a flush opcode will clear
    /// ([`Addr::Null`] otherwise). Written once at LOAD so the per-operand
    /// forwarding scan compares two 4-byte addresses per slot instead of
    /// resolving the instruction ring.
    res_addr: [Vec<Addr>; 3],
    flush_addr: [Vec<Addr>; 3],
    /// Pass-through payload popped at LOAD, pushed at COMMIT. Only valid
    /// (and only touched) when the slot's instruction carries a route.
    routed: [Vec<TaggedVector>; 3],
    load_idx: usize,
    counters: Vec<PeCounters>,
    /// Activity of issues executed through the fabric's *planned* (counts
    /// hoisted to issue time) path — see [`PeArray::validate_and_account`].
    /// [`crate::fabric::Fabric::report`] folds these into the totals; the
    /// per-PE counters cover only the generic/direct paths.
    batch_pe: PeCounters,
    batch_mem: MemCounts,
}

impl PeArray {
    /// Creates `n` PEs with the given memory capacities (in vector words).
    pub fn new(n: usize, dmem_words: usize, spad_entries: usize) -> PeArray {
        PeArray {
            dmem: vec![Vector::ZERO; n * dmem_words],
            dmem_words,
            spad: vec![Vector::ZERO; n * spad_entries],
            spad_entries,
            n,
            mem_counts: vec![MemCounts::default(); n],
            regs: vec![[Vector::ZERO; NUM_REGS]; n],
            state: std::array::from_fn(|_| vec![Slot::Empty; n]),
            handles: std::array::from_fn(|_| vec![InstrHandle::default(); n]),
            results: std::array::from_fn(|_| vec![Vector::ZERO; n]),
            res_addr: std::array::from_fn(|_| vec![Addr::Null; n]),
            flush_addr: std::array::from_fn(|_| vec![Addr::Null; n]),
            routed: std::array::from_fn(|_| vec![TaggedVector::ZERO; n]),
            load_idx: 0,
            counters: vec![PeCounters::default(); n],
            batch_pe: PeCounters::default(),
            batch_mem: MemCounts::default(),
        }
    }

    /// Returns the array to its post-construction state in place, reusing
    /// every allocation: memories and registers zeroed, pipeline slots
    /// emptied, all counters cleared. After this call the array is
    /// indistinguishable from `PeArray::new(n, dmem_words, spad_entries)`
    /// (fabric reuse across warm-pool requests depends on that).
    pub fn reset(&mut self) {
        self.dmem.fill(Vector::ZERO);
        self.spad.fill(Vector::ZERO);
        self.mem_counts.fill(MemCounts::default());
        for regs in &mut self.regs {
            *regs = [Vector::ZERO; NUM_REGS];
        }
        for s in 0..3 {
            self.state[s].fill(Slot::Empty);
            self.handles[s].fill(InstrHandle::default());
            self.results[s].fill(Vector::ZERO);
            self.res_addr[s].fill(Addr::Null);
            self.flush_addr[s].fill(Addr::Null);
            self.routed[s].fill(TaggedVector::ZERO);
        }
        self.load_idx = 0;
        self.counters.fill(PeCounters::default());
        self.batch_pe = PeCounters::default();
        self.batch_mem = MemCounts::default();
    }

    /// Number of PEs.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when the array holds no PEs.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    fn exec_idx(&self) -> usize {
        (self.load_idx + 1) % 3
    }

    fn commit_idx(&self) -> usize {
        (self.load_idx + 2) % 3
    }

    /// Shared view of PE `idx`.
    pub fn pe(&self, idx: usize) -> PeRef<'_> {
        let mc = self.mem_counts[idx];
        PeRef {
            dmem: MemRef {
                slab: &self.dmem,
                stride: self.n,
                offset: idx,
                len: self.dmem_words,
                reads: mc.dmem_reads,
                writes: mc.dmem_writes,
            },
            spad: MemRef {
                slab: &self.spad,
                stride: self.n,
                offset: idx,
                len: self.spad_entries,
                reads: mc.spad_reads,
                writes: mc.spad_writes,
            },
            regs: &self.regs[idx],
            counters: self.counters[idx],
        }
    }

    /// Mutable view of PE `idx` (memory preloads).
    pub fn pe_mut(&mut self, idx: usize) -> PeMut<'_> {
        let mc = &mut self.mem_counts[idx];
        PeMut {
            dmem: MemMut {
                slab: &mut self.dmem,
                stride: self.n,
                offset: idx,
                len: self.dmem_words,
                reads: &mut mc.dmem_reads,
                writes: &mut mc.dmem_writes,
                what: "dmem",
            },
            spad: MemMut {
                slab: &mut self.spad,
                stride: self.n,
                offset: idx,
                len: self.spad_entries,
                reads: &mut mc.spad_reads,
                writes: &mut mc.spad_writes,
                what: "spad",
            },
        }
    }

    /// Reads PE `idx`'s data-memory word `a`, counting the access.
    #[inline]
    fn dmem_read(&mut self, idx: usize, a: usize) -> Result<Vector, SimError> {
        let mc = &mut self.mem_counts[idx];
        slab_read(
            &self.dmem,
            self.dmem_words,
            self.n,
            idx,
            a,
            &mut mc.dmem_reads,
            "dmem",
        )
    }

    /// Writes PE `idx`'s data-memory word `a`, counting the access.
    #[inline]
    fn dmem_write(&mut self, idx: usize, a: usize, v: Vector) -> Result<(), SimError> {
        let mc = &mut self.mem_counts[idx];
        slab_write(
            &mut self.dmem,
            self.dmem_words,
            self.n,
            idx,
            a,
            v,
            &mut mc.dmem_writes,
            "dmem",
        )
    }

    /// Reads PE `idx`'s scratchpad entry `a`, counting the access.
    #[inline]
    fn spad_read(&mut self, idx: usize, a: usize) -> Result<Vector, SimError> {
        let mc = &mut self.mem_counts[idx];
        slab_read(
            &self.spad,
            self.spad_entries,
            self.n,
            idx,
            a,
            &mut mc.spad_reads,
            "spad",
        )
    }

    /// Writes PE `idx`'s scratchpad entry `a`, counting the access.
    #[inline]
    fn spad_write(&mut self, idx: usize, a: usize, v: Vector) -> Result<(), SimError> {
        let mc = &mut self.mem_counts[idx];
        slab_write(
            &mut self.spad,
            self.spad_entries,
            self.n,
            idx,
            a,
            v,
            &mut mc.spad_writes,
            "spad",
        )
    }

    /// Activity counters of PE `idx`.
    pub fn counters(&self, idx: usize) -> PeCounters {
        self.counters[idx]
    }

    /// Register file access (tests / debugging).
    pub fn reg(&self, idx: usize, i: usize) -> Vector {
        self.regs[idx][i]
    }

    /// True when PE `idx` has no instruction in flight.
    pub fn pipeline_empty(&self, idx: usize) -> bool {
        self.state[0][idx] == Slot::Empty
            && self.state[1][idx] == Slot::Empty
            && self.state[2][idx] == Slot::Empty
    }

    /// Checks whether an in-flight younger instruction (EXECUTE or COMMIT
    /// stage) of PE `idx` will write `addr`, returning the forwarded value if
    /// so. EXECUTE-stage values take priority (younger instruction).
    #[inline(always)]
    fn forwarded(&self, idx: usize, addr: Addr) -> Option<Vector> {
        if addr == Addr::Null {
            return None;
        }
        // Younger first: the EXECUTE-stage instruction is the most recent
        // writer still in flight. `PlainNop` slots have a null result
        // address and no flush semantics, so only `Full` slots can forward.
        // The scan touches only the cached 4-byte address fields — never
        // the instruction ring.
        for s in [self.exec_idx(), self.commit_idx()] {
            if self.state[s][idx] != Slot::Full {
                continue;
            }
            if self.res_addr[s][idx] == addr {
                return Some(self.results[s][idx]);
            }
            // Flush opcodes clear their op1 source at COMMIT.
            if self.flush_addr[s][idx] == addr {
                return Some(Vector::ZERO);
            }
        }
        None
    }

    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn read_operand(
        &mut self,
        idx: usize,
        addr: Addr,
        instr: &Instruction,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
        shared_route_pop: &mut Option<TaggedVector>,
        fw_possible: bool,
    ) -> Result<Vector, SimError> {
        match addr {
            Addr::Null => Ok(Vector::ZERO),
            Addr::Imm => Ok(instr.imm.unwrap_or(Vector::ZERO)),
            Addr::Reg(i) => {
                let base = self.regs[idx].get(i as usize).copied().ok_or_else(|| {
                    SimError::AddressOutOfRange {
                        context: format!("register r{i} (of {NUM_REGS})"),
                    }
                })?;
                if !fw_possible {
                    return Ok(base);
                }
                Ok(self.forwarded(idx, addr).unwrap_or(base))
            }
            Addr::DataMem(a) => {
                let v = self.dmem_read(idx, a as usize)?;
                if !fw_possible {
                    return Ok(v);
                }
                Ok(self.forwarded(idx, addr).unwrap_or(v))
            }
            Addr::Spad(a) => {
                let v = self.spad_read(idx, a as usize)?;
                if !fw_possible {
                    return Ok(v);
                }
                Ok(self.forwarded(idx, addr).unwrap_or(v))
            }
            Addr::Port(d) => {
                // If a route pass-through pops the same direction, the single
                // popped entry feeds both the operand and the pass-through.
                let entry = Self::pop_port(d, grid, r, c, cycle)?;
                if let Some(route) = instr.route {
                    if route.from == d {
                        *shared_route_pop = Some(entry);
                    }
                }
                Ok(entry.value)
            }
        }
    }

    #[inline]
    fn pop_port(
        d: Direction,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
    ) -> Result<TaggedVector, SimError> {
        // Error context is a copyable `ErrCtx` rendered only when the pop
        // actually fails: this path runs on every successful NoC read and
        // must not allocate.
        let ctx = ErrCtx::Pop { dir: d, pe: (r, c) };
        match d {
            Direction::North => grid.vertical(r, c).pop(cycle, ctx),
            Direction::West => grid.horizontal(r, c).pop(cycle, ctx),
            Direction::South | Direction::East => Err(SimError::AddressOutOfRange {
                context: format!(
                    "PE ({r},{c}) reads {d}: only south/east-bound dataflow is instantiated"
                ),
            }),
        }
    }

    fn push_port(
        d: Direction,
        entry: TaggedVector,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
    ) -> Result<(), SimError> {
        let ctx = ErrCtx::Push { dir: d, pe: (r, c) };
        match d {
            Direction::South => grid.vertical(r + 1, c).push(entry, cycle, ctx),
            Direction::East => grid.horizontal(r, c + 1).push(entry, cycle, ctx),
            Direction::North | Direction::West => Err(SimError::AddressOutOfRange {
                context: format!(
                    "PE ({r},{c}) writes {d}: only south/east-bound dataflow is instantiated"
                ),
            }),
        }
    }

    /// LOAD stage of PE `idx`: accepts the instruction interned at `h` and
    /// resolves its operands, popping NoC ports as needed. The pipeline slot
    /// stores only the 4-byte handle; the record stays in `ring`.
    ///
    /// # Errors
    ///
    /// Propagates address and NoC protocol errors, and reports
    /// [`SimError::RouterConflict`] for instructions violating the §3.1
    /// one-transfer-per-direction rule.
    #[inline]
    pub fn load(
        &mut self,
        idx: usize,
        h: InstrHandle,
        ring: &InstrRing,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
    ) -> Result<(), SimError> {
        self.load_inner::<true>(idx, h, ring, grid, r, c, cycle, true)
    }

    /// [`PeArray::load`] for the fabric's issue path: fast-plan bounds and
    /// activity counts were hoisted to issue time
    /// ([`PeArray::validate_and_account`]), so the per-column execution
    /// performs neither. Generic plans behave exactly like [`PeArray::load`].
    #[inline]
    pub fn load_planned(
        &mut self,
        idx: usize,
        h: InstrHandle,
        ring: &InstrRing,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
    ) -> Result<(), SimError> {
        self.load_inner::<false>(idx, h, ring, grid, r, c, cycle, true)
    }

    /// [`PeArray::load_forwarded`] for the fabric's issue path — see
    /// [`PeArray::load_planned`].
    #[inline]
    pub fn load_planned_forwarded(
        &mut self,
        idx: usize,
        h: InstrHandle,
        ring: &InstrRing,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
    ) -> Result<(), SimError> {
        self.load_inner::<false>(idx, h, ring, grid, r, c, cycle, false)
    }

    /// LOAD of a bubble (see [`Instruction::is_plain_nop`]) into PE `idx`:
    /// counts the instruction and occupies the slot with the one-byte
    /// `PlainNop` state — no operand resolution, no validation.
    #[inline]
    pub fn load_bubble(&mut self, idx: usize) {
        debug_assert!(
            self.state[self.load_idx][idx] == Slot::Empty,
            "LOAD slot occupied at shift time"
        );
        self.counters[idx].instrs += 1;
        self.state[self.load_idx][idx] = Slot::PlainNop;
    }

    /// [`PeArray::load`] for an eastward-forwarded instruction: the §3.1
    /// route-conflict validation is skipped because `noc_conflict` is a pure
    /// function of the instruction and the identical copy was already
    /// validated when the upstream column loaded it. (Also used by the
    /// spatial runner, which validates each held instruction once up front.)
    #[inline]
    pub fn load_forwarded(
        &mut self,
        idx: usize,
        h: InstrHandle,
        ring: &InstrRing,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
    ) -> Result<(), SimError> {
        self.load_inner::<true>(idx, h, ring, grid, r, c, cycle, false)
    }

    /// Counts one MAC-family instruction entering PE `idx`'s pipeline.
    #[inline(always)]
    fn count_mac(&mut self, idx: usize) {
        let c = &mut self.counters[idx];
        c.instrs += 1;
        c.compute_instrs += 1;
        c.mac_instrs += 1;
    }

    /// Fills PE `idx`'s LOAD slot (eager lane result included).
    #[inline(always)]
    fn fill_load_slot(
        &mut self,
        idx: usize,
        h: InstrHandle,
        result: Vector,
        res: Addr,
        flush: Addr,
    ) {
        let s = self.load_idx;
        self.state[s][idx] = Slot::Full;
        self.results[s][idx] = result;
        self.handles[s][idx] = h;
        self.res_addr[s][idx] = res;
        self.flush_addr[s][idx] = flush;
    }

    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn load_inner<const COUNTED: bool>(
        &mut self,
        idx: usize,
        h: InstrHandle,
        ring: &InstrRing,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
        validate: bool,
    ) -> Result<(), SimError> {
        debug_assert!(
            self.state[self.load_idx][idx] == Slot::Empty,
            "LOAD slot occupied at shift time"
        );
        // Dispatch on the issue-time plan: the fast paths below are
        // behaviourally identical to the generic path specialised to their
        // shape (same operand/forwarding/count order, same error cases) and
        // never touch the NoC, the route slot, or the full record. In the
        // uncounted (fabric-planned) flavour, bounds and counts were hoisted
        // to issue time, so fast-plan slab accesses index directly.
        let fw = self.state[self.exec_idx()][idx] == Slot::Full
            || self.state[self.commit_idx()][idx] == Slot::Full;
        match ring.plan(h) {
            Plan::MacSToSpad { a, b, imm } => {
                let (mut op2, mut res_in) = if COUNTED {
                    self.count_mac(idx);
                    (
                        self.dmem_read(idx, a as usize)?,
                        self.spad_read(idx, b as usize)?,
                    )
                } else {
                    (
                        self.dmem[a as usize * self.n + idx],
                        self.spad[b as usize * self.n + idx],
                    )
                };
                if fw {
                    op2 = self.forwarded(idx, Addr::DataMem(a)).unwrap_or(op2);
                    res_in = self.forwarded(idx, Addr::Spad(b)).unwrap_or(res_in);
                }
                let result = res_in.mac(Vector::splat(imm.lane0()), op2);
                self.fill_load_slot(idx, h, result, Addr::Spad(b), Addr::Null);
                Ok(())
            }
            Plan::MacSToReg { a, r: reg, imm } => {
                let mut op2 = if COUNTED {
                    self.count_mac(idx);
                    self.dmem_read(idx, a as usize)?
                } else {
                    self.dmem[a as usize * self.n + idx]
                };
                let mut res_in = self.regs[idx][reg as usize];
                if fw {
                    op2 = self.forwarded(idx, Addr::DataMem(a)).unwrap_or(op2);
                    res_in = self.forwarded(idx, Addr::Reg(reg)).unwrap_or(res_in);
                }
                let result = res_in.mac(Vector::splat(imm.lane0()), op2);
                self.fill_load_slot(idx, h, result, Addr::Reg(reg), Addr::Null);
                Ok(())
            }
            Plan::MacVToReg { a, b, r: reg } => {
                let (mut op1, mut op2) = if COUNTED {
                    self.count_mac(idx);
                    (
                        self.spad_read(idx, a as usize)?,
                        self.dmem_read(idx, b as usize)?,
                    )
                } else {
                    (
                        self.spad[a as usize * self.n + idx],
                        self.dmem[b as usize * self.n + idx],
                    )
                };
                let mut res_in = self.regs[idx][reg as usize];
                if fw {
                    op1 = self.forwarded(idx, Addr::Spad(a)).unwrap_or(op1);
                    op2 = self.forwarded(idx, Addr::DataMem(b)).unwrap_or(op2);
                    res_in = self.forwarded(idx, Addr::Reg(reg)).unwrap_or(res_in);
                }
                let result = res_in.mac(op1, op2);
                self.fill_load_slot(idx, h, result, Addr::Reg(reg), Addr::Null);
                Ok(())
            }
            Plan::Generic => self.load_generic(idx, h, ring, grid, r, c, cycle, validate, fw),
        }
    }

    /// Issue-time validation + batched accounting for a fast plan about to
    /// execute on every column of a row (the fabric's planned issue path).
    /// Bounds are checked once (in the generic path's operand order, so a
    /// violation raises the identical error the column-0 LOAD would have
    /// raised this same cycle), and the `cols` column executions' activity
    /// is credited to the batch counters.
    pub fn validate_and_account(&mut self, plan: Plan, cols: usize) -> Result<(), SimError> {
        let cols = cols as u64;
        match plan {
            Plan::MacSToSpad { a, b, .. } => {
                if a as usize >= self.dmem_words {
                    return Err(mem_oob("dmem", "read", a as usize, self.dmem_words));
                }
                if b as usize >= self.spad_entries {
                    return Err(mem_oob("spad", "read", b as usize, self.spad_entries));
                }
                self.batch_mem.dmem_reads += cols;
                self.batch_mem.spad_reads += cols;
                self.batch_mem.spad_writes += cols; // COMMIT write-back
            }
            Plan::MacSToReg { a, .. } => {
                if a as usize >= self.dmem_words {
                    return Err(mem_oob("dmem", "read", a as usize, self.dmem_words));
                }
                self.batch_mem.dmem_reads += cols;
            }
            Plan::MacVToReg { a, b, .. } => {
                if a as usize >= self.spad_entries {
                    return Err(mem_oob("spad", "read", a as usize, self.spad_entries));
                }
                if b as usize >= self.dmem_words {
                    return Err(mem_oob("dmem", "read", b as usize, self.dmem_words));
                }
                self.batch_mem.spad_reads += cols;
                self.batch_mem.dmem_reads += cols;
            }
            Plan::Generic => debug_assert!(false, "generic plans are not batch-accounted"),
        }
        self.batch_pe.instrs += cols;
        self.batch_pe.compute_instrs += cols;
        self.batch_pe.mac_instrs += cols;
        Ok(())
    }

    /// Column-vectorized COMMIT+LOAD of one whole fabric column: two
    /// straight-line passes (COMMIT write-back, then LOAD + eager EXECUTE)
    /// over the address-major slabs at stride `cols`, each dispatched once
    /// on the column's uniform plan shape instead of once per PE.
    ///
    /// The caller (the fabric's per-column uniformity detector) guarantees —
    /// and debug builds assert — that in every row `r` of the column, the
    /// COMMIT slot is `Full` with a plan of `commit_kind`, the EXECUTE slot
    /// is `Full` with a non-generic (MAC) plan, the LOAD slot is empty, and
    /// `loads[r·cols + col]` is a plan of `load_kind`; both kinds are MAC
    /// shapes (never [`PlanKind::Generic`]). The per-PE *addresses* still
    /// differ — each row issued its own instruction — so the plan lookup
    /// stays per PE; what the pass hoists is the shape dispatch, the
    /// forwarding scan, and every per-PE call/effect decision. Under the
    /// invariants it is instruction-for-instruction identical to the scalar
    /// path:
    ///
    /// * MAC plans drive no NoC link and have a null flush address, so the
    ///   COMMIT write-back is one slab/register store and the effects are
    ///   constant (retired, no link drives, no wakes);
    /// * the fused per-PE order empties a PE's COMMIT slot before its LOAD
    ///   runs, and COMMIT/LOAD touch only PE-local state, so splitting the
    ///   column into a commit pass followed by a load pass reorders nothing
    ///   observable; store-to-load forwarding can then only hit the EXECUTE
    ///   slot — one cached-address compare per operand that *can* match
    ///   (the MAC result address is `Spad`/`Reg` and the EXECUTE slot's
    ///   flush address is null, so `DataMem` operands never forward);
    /// * bounds and activity counts were hoisted to issue time
    ///   ([`PeArray::validate_and_account`]), exactly as on the scalar
    ///   planned path.
    ///
    /// Eastward forwarding is bulk-copied: each row's retiring handle lands
    /// in `forwards[r·cols + col + 1]` (the caller passes the next-cycle
    /// injection slab, or `None` for the last column, where the scalar path
    /// drops the handle too).
    #[allow(clippy::too_many_arguments)]
    pub fn batch_col(
        &mut self,
        col: usize,
        cols: usize,
        n_rows: usize,
        ring: &InstrRing,
        loads: &[InstrHandle],
        forwards: Option<&mut [InstrHandle]>,
        commit_kind: PlanKind,
        load_kind: PlanKind,
    ) {
        let n = self.n;
        let commit_s = self.commit_idx();
        let exec_s = self.exec_idx();
        let load_s = self.load_idx;
        #[cfg(debug_assertions)]
        for r in 0..n_rows {
            let idx = r * cols + col;
            assert_eq!(self.state[commit_s][idx], Slot::Full, "batched COMMIT");
            assert_eq!(self.state[exec_s][idx], Slot::Full, "batched EXECUTE");
            assert_eq!(self.state[load_s][idx], Slot::Empty, "batched LOAD");
            assert_eq!(ring.plan(self.handles[commit_s][idx]).kind(), commit_kind);
            assert_ne!(
                ring.plan(self.handles[exec_s][idx]).kind(),
                PlanKind::Generic,
                "EXECUTE slot must hold a MAC for the forwarding shortcut"
            );
            assert_eq!(ring.plan(loads[idx]).kind(), load_kind);
        }
        if let Some(fw) = forwards {
            for r in 0..n_rows {
                let idx = r * cols + col;
                fw[idx + 1] = self.handles[commit_s][idx];
            }
        }
        // COMMIT pass: accumulator write-back (counted at issue).
        match commit_kind {
            PlanKind::MacSToSpad => {
                for r in 0..n_rows {
                    let idx = r * cols + col;
                    let Plan::MacSToSpad { b, .. } = ring.plan(self.handles[commit_s][idx]) else {
                        unreachable!("uniform column holds one plan shape")
                    };
                    self.spad[b as usize * n + idx] = self.results[commit_s][idx];
                    self.state[commit_s][idx] = Slot::Empty;
                }
            }
            PlanKind::MacSToReg | PlanKind::MacVToReg => {
                for r in 0..n_rows {
                    let idx = r * cols + col;
                    let (Plan::MacSToReg { r: reg, .. } | Plan::MacVToReg { r: reg, .. }) =
                        ring.plan(self.handles[commit_s][idx])
                    else {
                        unreachable!("uniform column holds one plan shape")
                    };
                    self.regs[idx][reg as usize] = self.results[commit_s][idx];
                    self.state[commit_s][idx] = Slot::Empty;
                }
            }
            PlanKind::Generic => unreachable!("generic plans never batch"),
        }
        // LOAD + eager EXECUTE pass.
        match load_kind {
            PlanKind::MacSToSpad => {
                for r in 0..n_rows {
                    let idx = r * cols + col;
                    let Plan::MacSToSpad { a, b, imm } = ring.plan(loads[idx]) else {
                        unreachable!("uniform column holds one plan shape")
                    };
                    let op2 = self.dmem[a as usize * n + idx];
                    let target = Addr::Spad(b);
                    let res_in = if self.res_addr[exec_s][idx] == target {
                        self.results[exec_s][idx]
                    } else {
                        self.spad[b as usize * n + idx]
                    };
                    self.state[load_s][idx] = Slot::Full;
                    self.results[load_s][idx] = res_in.mac(Vector::splat(imm.lane0()), op2);
                    self.handles[load_s][idx] = loads[idx];
                    self.res_addr[load_s][idx] = target;
                    self.flush_addr[load_s][idx] = Addr::Null;
                }
            }
            PlanKind::MacSToReg => {
                for r in 0..n_rows {
                    let idx = r * cols + col;
                    let Plan::MacSToReg { a, r: reg, imm } = ring.plan(loads[idx]) else {
                        unreachable!("uniform column holds one plan shape")
                    };
                    let op2 = self.dmem[a as usize * n + idx];
                    let target = Addr::Reg(reg);
                    let res_in = if self.res_addr[exec_s][idx] == target {
                        self.results[exec_s][idx]
                    } else {
                        self.regs[idx][reg as usize]
                    };
                    self.state[load_s][idx] = Slot::Full;
                    self.results[load_s][idx] = res_in.mac(Vector::splat(imm.lane0()), op2);
                    self.handles[load_s][idx] = loads[idx];
                    self.res_addr[load_s][idx] = target;
                    self.flush_addr[load_s][idx] = Addr::Null;
                }
            }
            PlanKind::MacVToReg => {
                for r in 0..n_rows {
                    let idx = r * cols + col;
                    let Plan::MacVToReg { a, b, r: reg } = ring.plan(loads[idx]) else {
                        unreachable!("uniform column holds one plan shape")
                    };
                    let op1 = self.spad[a as usize * n + idx];
                    let op2 = self.dmem[b as usize * n + idx];
                    let target = Addr::Reg(reg);
                    let res_in = if self.res_addr[exec_s][idx] == target {
                        self.results[exec_s][idx]
                    } else {
                        self.regs[idx][reg as usize]
                    };
                    self.state[load_s][idx] = Slot::Full;
                    self.results[load_s][idx] = res_in.mac(op1, op2);
                    self.handles[load_s][idx] = loads[idx];
                    self.res_addr[load_s][idx] = target;
                    self.flush_addr[load_s][idx] = Addr::Null;
                }
            }
            PlanKind::Generic => unreachable!("generic plans never batch"),
        }
    }

    /// Batched activity of planned fast-path issues (instruction counters).
    pub fn batch_counters(&self) -> PeCounters {
        self.batch_pe
    }

    /// Batched memory accesses of planned fast-path issues:
    /// `(dmem reads, dmem writes, spad reads, spad writes)`.
    pub fn batch_mem_counts(&self) -> (u64, u64, u64, u64) {
        (
            self.batch_mem.dmem_reads,
            self.batch_mem.dmem_writes,
            self.batch_mem.spad_reads,
            self.batch_mem.spad_writes,
        )
    }

    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn load_generic(
        &mut self,
        idx: usize,
        h: InstrHandle,
        ring: &InstrRing,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
        validate: bool,
        fw_possible: bool,
    ) -> Result<(), SimError> {
        let instr = ring.get(h);
        // Fast path for the canonical NOP (null operands and result, no
        // route): the sparse-band streams are NOP-heavy (row ends, stalls,
        // bubbles), and a plain NOP touches no memory, no ports, cannot
        // conflict, and cannot forward — only its state byte moves. (The
        // fabric's injection network pre-classifies bubbles at issue and
        // calls [`PeArray::load_bubble`] directly; this check serves direct
        // callers that intern NOPs, e.g. the spatial runner's unused PEs.)
        if instr.is_plain_nop() {
            self.load_bubble(idx);
            return Ok(());
        }
        if validate {
            if let Some(d) = instr.noc_conflict() {
                return Err(SimError::RouterConflict {
                    cycle,
                    pe: (r, c),
                    direction: d.to_string(),
                });
            }
        }
        self.counters[idx].instrs += 1;
        if instr.op.is_compute() {
            self.counters[idx].compute_instrs += 1;
        }
        if instr.op.is_mac() {
            self.counters[idx].mac_instrs += 1;
        }
        // `fw_possible` (hoisted by the caller): a value can only be
        // forwarded from a `Full` EXECUTE/COMMIT slot, so when both are
        // bubbles or empty (common in sparse bands) every operand read
        // skips the per-address forwarding scan.
        let mut shared_pop = None;
        let op1 = self.read_operand(
            idx,
            instr.op1,
            instr,
            grid,
            r,
            c,
            cycle,
            &mut shared_pop,
            fw_possible,
        )?;
        let op2 = self.read_operand(
            idx,
            instr.op2,
            instr,
            grid,
            r,
            c,
            cycle,
            &mut shared_pop,
            fw_possible,
        )?;
        // Read-modify-write opcodes read the old result value here.
        let res_in = match instr.op {
            Opcode::MacV | Opcode::MacS | Opcode::Acc => match instr.res {
                Addr::Port(_) | Addr::Null | Addr::Imm => Vector::ZERO,
                a => {
                    let mut none = None;
                    self.read_operand(idx, a, instr, grid, r, c, cycle, &mut none, fw_possible)?
                }
            },
            _ => Vector::ZERO,
        };
        // Route pass-through pop (if not shared with an operand pop). The
        // routed slot is written only when a route is present; COMMIT reads
        // it under the same condition.
        if let Some(route) = instr.route {
            self.routed[self.load_idx][idx] = match shared_pop {
                Some(e) => e,
                None => Self::pop_port(route.from, grid, r, c, cycle)?,
            };
        }
        self.state[self.load_idx][idx] = Slot::Full;
        // The EXECUTE stage's lane result is a pure function of the operand
        // values captured right here, and nothing can observe it before the
        // next cycle — so it is computed eagerly instead of in a separate
        // per-PE EXECUTE sweep. The instruction still *occupies* the EXECUTE
        // slot for a full cycle (stage rotation is unchanged); only the
        // simulator's work moves.
        self.results[self.load_idx][idx] = Self::lane_result(instr.op, op1, op2, res_in);
        self.handles[self.load_idx][idx] = h;
        self.res_addr[self.load_idx][idx] = instr.res;
        self.flush_addr[self.load_idx][idx] =
            if matches!(instr.op, Opcode::MovFlush | Opcode::AddFlush) {
                instr.op1
            } else {
                Addr::Null
            };
        Ok(())
    }

    /// The vector-lane function of one opcode.
    #[inline]
    fn lane_result(op: Opcode, op1: Vector, op2: Vector, res_in: Vector) -> Vector {
        match op {
            Opcode::Nop => Vector::ZERO,
            Opcode::Mov | Opcode::MovFlush => op1,
            Opcode::Add | Opcode::AddFlush => op1.add(op2),
            Opcode::Sub => {
                let mut out = [0; crate::isa::LANES];
                for (i, o) in out.iter_mut().enumerate() {
                    *o = op1.0[i].wrapping_sub(op2.0[i]);
                }
                Vector(out)
            }
            Opcode::Mul => op1.mul(op2),
            Opcode::MacV => res_in.mac(op1, op2),
            Opcode::MacS => res_in.mac(Vector::splat(op1.lane0()), op2),
            Opcode::Acc => res_in.add(op1),
            Opcode::RedSum => {
                let mut out = Vector::ZERO;
                out.0[0] = op1.reduce_sum();
                out
            }
            Opcode::Max => {
                let mut out = [0; crate::isa::LANES];
                for (i, o) in out.iter_mut().enumerate() {
                    *o = op1.0[i].max(op2.0[i]);
                }
                Vector(out)
            }
            Opcode::Min => {
                let mut out = [0; crate::isa::LANES];
                for (i, o) in out.iter_mut().enumerate() {
                    *o = op1.0[i].min(op2.0[i]);
                }
                Vector(out)
            }
        }
    }

    /// COMMIT stage of PE `idx`: writes the result (memory / register / NoC
    /// push), performs the flush-clear of `MovFlush`/`AddFlush`, and pushes
    /// the pass-through payload. Returns the retiring instruction so the
    /// fabric can forward it to the eastern neighbour.
    ///
    /// # Errors
    ///
    /// Propagates address and NoC protocol errors.
    pub fn commit(
        &mut self,
        idx: usize,
        ring: &InstrRing,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
    ) -> Result<Option<Instruction>, SimError> {
        let mut fwd = InstrHandle::default();
        let eff = self.commit_into(idx, ring, grid, r, c, cycle, Some(&mut fwd))?;
        if !eff.retired {
            return Ok(None);
        }
        Ok(Some(if eff.bubble {
            Instruction::NOP
        } else {
            *ring.get(fwd)
        }))
    }

    /// [`PeArray::commit`] with the eastward forwarding folded in: a
    /// retiring non-bubble instruction's 4-byte [`InstrHandle`] is written
    /// into `forward_into` (the neighbour's injection slot) — the record
    /// itself never moves, it stays interned in `ring`; a retiring bubble
    /// only sets `bubble` in the returned effects (it *is* the canonical
    /// NOP, so there is nothing to write). The return is a compact effect
    /// descriptor for the caller's wake propagation.
    ///
    /// # Errors
    ///
    /// Propagates address and NoC protocol errors.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn commit_into(
        &mut self,
        idx: usize,
        ring: &InstrRing,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
        forward_into: Option<&mut InstrHandle>,
    ) -> Result<CommitEffects, SimError> {
        self.commit_into_inner::<true>(idx, ring, grid, r, c, cycle, forward_into)
    }

    /// [`PeArray::commit_into`] for the fabric's issue path: fast-plan
    /// write-back counts were hoisted to issue time — see
    /// [`PeArray::load_planned`]. Generic plans are unaffected.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn commit_into_planned(
        &mut self,
        idx: usize,
        ring: &InstrRing,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
        forward_into: Option<&mut InstrHandle>,
    ) -> Result<CommitEffects, SimError> {
        self.commit_into_inner::<false>(idx, ring, grid, r, c, cycle, forward_into)
    }

    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn commit_into_inner<const COUNTED: bool>(
        &mut self,
        idx: usize,
        ring: &InstrRing,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
        forward_into: Option<&mut InstrHandle>,
    ) -> Result<CommitEffects, SimError> {
        let commit_idx = self.commit_idx();
        match self.state[commit_idx][idx] {
            Slot::Empty => return Ok(CommitEffects::NONE),
            Slot::PlainNop => {
                // A bubble writes nothing and pushes nothing; it retires as
                // the canonical NOP (its unused immediate/tag fields are
                // architecturally unobservable), propagated as a tag.
                self.state[commit_idx][idx] = Slot::Empty;
                return Ok(CommitEffects {
                    retired: true,
                    bubble: true,
                    drives_south: false,
                    drives_east: false,
                });
            }
            Slot::Full => {}
        }
        self.state[commit_idx][idx] = Slot::Empty;
        let h = self.handles[commit_idx][idx];
        let result = self.results[commit_idx][idx];
        // Plan fast paths: a MAC writes one accumulator and drives no link —
        // no record resolve, no write-back dispatch, constant effects.
        match ring.plan(h) {
            Plan::MacSToSpad { b, .. } => {
                if COUNTED {
                    self.spad_write(idx, b as usize, result)?;
                } else {
                    // Bounds checked and write counted at issue time.
                    self.spad[b as usize * self.n + idx] = result;
                }
                if let Some(slot) = forward_into {
                    *slot = h;
                }
                return Ok(CommitEffects {
                    retired: true,
                    bubble: false,
                    drives_south: false,
                    drives_east: false,
                });
            }
            Plan::MacSToReg { r: reg, .. } | Plan::MacVToReg { r: reg, .. } => {
                self.regs[idx][reg as usize] = result;
                if let Some(slot) = forward_into {
                    *slot = h;
                }
                return Ok(CommitEffects {
                    retired: true,
                    bubble: false,
                    drives_south: false,
                    drives_east: false,
                });
            }
            Plan::Generic => {}
        }
        let instr = ring.get(h);
        // Result write-back.
        if instr.op != Opcode::Nop {
            match instr.res {
                Addr::Null => {}
                Addr::Imm => {
                    return Err(SimError::AddressOutOfRange {
                        context: "write to immediate".into(),
                    })
                }
                Addr::Reg(i) => {
                    let slot = self.regs[idx].get_mut(i as usize).ok_or_else(|| {
                        SimError::AddressOutOfRange {
                            context: format!("register r{i}"),
                        }
                    })?;
                    *slot = result;
                }
                Addr::DataMem(a) => self.dmem_write(idx, a as usize, result)?,
                Addr::Spad(a) => self.spad_write(idx, a as usize, result)?,
                Addr::Port(d) => {
                    Self::push_port(
                        d,
                        TaggedVector {
                            value: result,
                            tag: instr.tag,
                        },
                        grid,
                        r,
                        c,
                        cycle,
                    )?;
                }
            }
        }
        // Flush-clear of the op1 source.
        if matches!(instr.op, Opcode::MovFlush | Opcode::AddFlush) {
            match instr.op1 {
                Addr::Spad(a) => self.spad_write(idx, a as usize, Vector::ZERO)?,
                Addr::Reg(i) => {
                    let slot = self.regs[idx].get_mut(i as usize).ok_or_else(|| {
                        SimError::AddressOutOfRange {
                            context: format!("register r{i}"),
                        }
                    })?;
                    *slot = Vector::ZERO;
                }
                a => {
                    return Err(SimError::AddressOutOfRange {
                        context: format!("flush-clear of non-storage operand {a}"),
                    })
                }
            }
        }
        // Pass-through push (the routed slot is valid exactly when a route
        // is present — LOAD populated it under the same condition).
        if let Some(route) = instr.route {
            let entry = self.routed[commit_idx][idx];
            Self::push_port(route.to, entry, grid, r, c, cycle)?;
        }
        if let Some(slot) = forward_into {
            *slot = h;
        }
        Ok(CommitEffects {
            retired: true,
            bubble: false,
            drives_south: instr.pushes_toward(Direction::South),
            drives_east: instr.pushes_toward(Direction::East),
        })
    }

    /// Handle of the real (non-bubble) instruction sitting in PE `idx`'s
    /// COMMIT slot this cycle, if any — a read-only peek used by the trace
    /// layer to stamp commit events before the slot is consumed.
    pub fn commit_handle(&self, idx: usize) -> Option<InstrHandle> {
        let s = self.commit_idx();
        if self.state[s][idx] == Slot::Full {
            Some(self.handles[s][idx])
        } else {
            None
        }
    }

    /// Advances every pipeline by one stage (end of cycle): the stages are
    /// renamed by rotating the shared slot index — no in-flight state is
    /// moved, and the cost is independent of the PE count.
    pub fn advance(&mut self) {
        debug_assert!(
            self.state[self.commit_idx()]
                .iter()
                .all(|&s| s == Slot::Empty),
            "commit slot not consumed"
        );
        // The old COMMIT slot (now empty) becomes the new LOAD slot; the
        // old LOAD and EXECUTE slots become EXECUTE and COMMIT in place.
        self.load_idx = self.commit_idx();
    }

    // ---- Steady-state replay support (see `crate::replay`) ----

    /// COMMIT- and EXECUTE-slot handles of PE `idx`, for the replay
    /// engine's stretch-entry decode (both slots are provably `Full` on a
    /// clean stretch — asserted under `debug_assertions`).
    pub(crate) fn replay_slot_handles(&self, idx: usize) -> (InstrHandle, InstrHandle) {
        let cs = self.commit_idx();
        let es = self.exec_idx();
        debug_assert_eq!(
            self.state[cs][idx],
            Slot::Full,
            "replay entry: COMMIT slot not full"
        );
        debug_assert_eq!(
            self.state[es][idx],
            Slot::Full,
            "replay entry: EXECUTE slot not full"
        );
        (self.handles[cs][idx], self.handles[es][idx])
    }

    /// One chain step of a captured MAC issue at PE `idx` (replay flush).
    #[inline]
    fn replay_apply(
        &self,
        kind: PlanKind,
        idx: usize,
        v: Vector,
        e: &crate::replay::ReplayEntry,
    ) -> Vector {
        let n = self.n;
        match kind {
            PlanKind::MacSToSpad | PlanKind::MacSToReg => {
                v.mac(e.imm, self.dmem[e.p1 as usize * n + idx])
            }
            PlanKind::MacVToReg => v.mac(
                self.spad[e.p1 as usize * n + idx],
                self.dmem[e.p2 as usize * n + idx],
            ),
            PlanKind::Generic => unreachable!("generic plans are never captured"),
        }
    }

    /// Prefetch hint covering `bytes` from `ptr` (no-op off x86_64): the
    /// absorb loop's operand slices sit at hardware-prefetch-defeating
    /// strides (row-staggered bands put consecutive reads ~`n` vectors
    /// apart), so each row's slice is requested while the previous one is
    /// being multiplied.
    #[inline(always)]
    #[allow(unused_variables)]
    fn prefetch_bytes(ptr: *const u8, bytes: usize) {
        #[cfg(target_arch = "x86_64")]
        {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let mut off = 0;
            while off < bytes {
                // SAFETY: prefetch is a pure hint — it has no memory or
                // architectural effect even for invalid addresses; `ptr`
                // itself is derived from an in-bounds slice.
                unsafe { _mm_prefetch(ptr.add(off) as *const i8, _MM_HINT_T0) };
                off += 64;
            }
        }
    }

    /// Applies the buffered operand chains of every row to their
    /// accumulator storage: column `c`'s accumulator currently holds the
    /// chain through issue `v_old − 3c − 3` and is advanced through issue
    /// `v_new − 3c − 3` — exactly the commits a cycle-stepped run performs
    /// up to the start of cycle `v_new`'s PE sweep.
    ///
    /// The loop nest is timeline-step-outer, row-inner: issue `t` is
    /// applied at column `c` when `v_old − 3c − 2 ≤ t ≤ v_new − 3c − 3`,
    /// and both bounds are linear in `c` with slope −3, so each step
    /// updates one contiguous column range — the *same* range for every
    /// row. On an interior step that range is the full row, and because
    /// lockstep rows typically read the same dmem address, the row-inner
    /// sweep touches one contiguous `rows × cols`-vector run of the
    /// address-major slab per step. That streaming order (instead of
    /// row-outer passes striding the slab in `cols`-sized slices) is what
    /// keeps the absorb DRAM-bandwidth-bound at full prefetch throughput —
    /// the absorb performs every deferred multiply of a stretch, so its
    /// memory behavior is what the replay speedup is made of. The MAC
    /// itself is a flat lane loop over index-sliced operands, the shape
    /// LLVM autovectorizes.
    ///
    /// `acc` is the caller's reusable whole-fabric accumulator scratch
    /// (`rows × cols` vectors, row-major). Memory counters are untouched:
    /// every captured issue was already accounted at issue time by
    /// [`PeArray::validate_and_account`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn replay_absorb_all(
        &mut self,
        rows: usize,
        cols: usize,
        kind: PlanKind,
        targets: &[u16],
        tls: &[Vec<crate::replay::ReplayEntry>],
        t_base: u64,
        v_old: u64,
        v_new: u64,
        acc: &mut Vec<Vector>,
    ) {
        debug_assert!(v_new >= v_old);
        debug_assert_eq!(rows * cols, self.n);
        let n = self.n;
        acc.clear();
        match kind {
            PlanKind::MacSToSpad => {
                for r in 0..rows {
                    let s = targets[r] as usize * n + r * cols;
                    acc.extend_from_slice(&self.spad[s..s + cols]);
                }
            }
            PlanKind::MacSToReg | PlanKind::MacVToReg => {
                acc.extend((0..n).map(|idx| self.regs[idx][targets[idx / cols] as usize]));
            }
            PlanKind::Generic => unreachable!("generic plans are never captured"),
        }
        use crate::isa::LANES;
        let t_lo = v_old as i64 - 3 * (cols as i64 - 1) - 2;
        let t_hi = v_new as i64 - 3;
        let col_range = |t: i64| {
            let c_min = (v_old as i64 - t).div_euclid(3).max(0);
            let c_max = (v_new as i64 - t - 3).div_euclid(3).min(cols as i64 - 1);
            (c_min, c_max)
        };
        match kind {
            PlanKind::MacSToSpad | PlanKind::MacSToReg => {
                for t in t_lo..=t_hi {
                    let (c_min, c_max) = col_range(t);
                    if c_min > c_max {
                        continue;
                    }
                    let (c0, len) = (c_min as usize, (c_max - c_min + 1) as usize);
                    let j = (t as u64 - t_base) as usize;
                    for r in 0..rows {
                        if r + 2 < rows {
                            let ahead = &tls[r + 2][j];
                            let da = ahead.p1 as usize * n + (r + 2) * cols + c0;
                            if da + len <= self.dmem.len() {
                                Self::prefetch_bytes(
                                    self.dmem[da..].as_ptr() as *const u8,
                                    len * std::mem::size_of::<Vector>(),
                                );
                            }
                        }
                        let e = &tls[r][j];
                        let m = e.imm;
                        let base = r * cols;
                        let d = e.p1 as usize * n + base + c0;
                        let src = &self.dmem[d..d + len];
                        let dst = &mut acc[base + c0..base + c0 + len];
                        for i in 0..len {
                            let w = src[i];
                            let a = &mut dst[i];
                            for l in 0..LANES {
                                a.0[l] = a.0[l].wrapping_add(m.0[l].wrapping_mul(w.0[l]));
                            }
                        }
                    }
                }
            }
            PlanKind::MacVToReg => {
                for t in t_lo..=t_hi {
                    let (c_min, c_max) = col_range(t);
                    if c_min > c_max {
                        continue;
                    }
                    let (c0, len) = (c_min as usize, (c_max - c_min + 1) as usize);
                    let j = (t as u64 - t_base) as usize;
                    for r in 0..rows {
                        if r + 2 < rows {
                            let ahead = &tls[r + 2][j];
                            let bytes = len * std::mem::size_of::<Vector>();
                            let sa = ahead.p1 as usize * n + (r + 2) * cols + c0;
                            let da = ahead.p2 as usize * n + (r + 2) * cols + c0;
                            if sa + len <= self.spad.len() {
                                Self::prefetch_bytes(self.spad[sa..].as_ptr() as *const u8, bytes);
                            }
                            if da + len <= self.dmem.len() {
                                Self::prefetch_bytes(self.dmem[da..].as_ptr() as *const u8, bytes);
                            }
                        }
                        let e = &tls[r][j];
                        let base = r * cols;
                        let s = e.p1 as usize * n + base + c0;
                        let d = e.p2 as usize * n + base + c0;
                        let mul = &self.spad[s..s + len];
                        let src = &self.dmem[d..d + len];
                        let dst = &mut acc[base + c0..base + c0 + len];
                        for i in 0..len {
                            let (sv, w) = (mul[i], src[i]);
                            let a = &mut dst[i];
                            for l in 0..LANES {
                                a.0[l] = a.0[l].wrapping_add(sv.0[l].wrapping_mul(w.0[l]));
                            }
                        }
                    }
                }
            }
            PlanKind::Generic => unreachable!("generic plans are never captured"),
        }
        match kind {
            PlanKind::MacSToSpad => {
                for r in 0..rows {
                    let s = targets[r] as usize * n + r * cols;
                    self.spad[s..s + cols].copy_from_slice(&acc[r * cols..(r + 1) * cols]);
                }
            }
            PlanKind::MacSToReg | PlanKind::MacVToReg => {
                for idx in 0..n {
                    self.regs[idx][targets[idx / cols] as usize] = acc[idx];
                }
            }
            PlanKind::Generic => unreachable!("generic plans are never captured"),
        }
    }

    /// Reconstructs one row's pipeline slots at stretch flush, exactly as a
    /// cycle-stepped run would have left them at the start of cycle `f`'s
    /// PE sweep: per column `c`, the COMMIT slot holds issue `f − 3c − 2`
    /// and the EXECUTE slot issue `f − 3c − 1`, each with its eagerly
    /// computed chain result and forwarding metadata (`res_addr` is the
    /// accumulator target, so post-flush loads forward exactly as in a
    /// stepped run). Storage must already be absorbed through `f` via
    /// [`PeArray::replay_absorb_all`]; `slot_handles[c]` carries the
    /// re-interned `(COMMIT, EXECUTE)` records.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn replay_finalize_row(
        &mut self,
        row: usize,
        cols: usize,
        kind: PlanKind,
        target: u16,
        tl: &[crate::replay::ReplayEntry],
        t_base: u64,
        f: u64,
        slot_handles: &[(InstrHandle, InstrHandle)],
    ) {
        let n = self.n;
        let res = match kind {
            PlanKind::MacSToSpad => Addr::Spad(target),
            PlanKind::MacSToReg | PlanKind::MacVToReg => Addr::Reg(target as u8),
            PlanKind::Generic => unreachable!("generic plans are never captured"),
        };
        let cs = self.commit_idx();
        let es = self.exec_idx();
        for c in 0..cols {
            let idx = row * cols + c;
            let storage = match kind {
                PlanKind::MacSToSpad => self.spad[target as usize * n + idx],
                _ => self.regs[idx][target as usize],
            };
            let jc = (f - 3 * c as u64 - 2 - t_base) as usize;
            let commit_res = self.replay_apply(kind, idx, storage, &tl[jc]);
            let exec_res = self.replay_apply(kind, idx, commit_res, &tl[jc + 1]);
            let (hc, he) = slot_handles[c];
            debug_assert_eq!(
                self.state[self.load_idx][idx],
                Slot::Empty,
                "replay flush: LOAD slot occupied"
            );
            self.state[cs][idx] = Slot::Full;
            self.results[cs][idx] = commit_res;
            self.handles[cs][idx] = hc;
            self.res_addr[cs][idx] = res;
            self.flush_addr[cs][idx] = Addr::Null;
            self.state[es][idx] = Slot::Full;
            self.results[es][idx] = exec_res;
            self.handles[es][idx] = he;
            self.res_addr[es][idx] = res;
            self.flush_addr[es][idx] = Addr::Null;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::LANES;

    fn grid1x1() -> LinkGrid {
        LinkGrid::new(1, 1, 4, false)
    }

    fn one_pe() -> PeArray {
        PeArray::new(1, 4, 4)
    }

    fn ring() -> InstrRing {
        InstrRing::with_capacity(16)
    }

    /// Runs a single instruction through a 1×1 array's PE.
    fn run_one(pes: &mut PeArray, grid: &mut LinkGrid, i: Instruction) {
        let mut ring = ring();
        let h = ring.intern(i);
        pes.load(0, h, &ring, grid, 0, 0, 0).unwrap();
        pes.advance();
        pes.advance();
        pes.commit(0, &ring, grid, 0, 0, 2).unwrap();
    }

    #[test]
    fn mov_imm_to_reg() {
        let mut pes = one_pe();
        let mut g = grid1x1();
        let i = Instruction::new(Opcode::Mov, Addr::Imm, Addr::Null, Addr::Reg(1))
            .with_imm(Vector::splat(9));
        run_one(&mut pes, &mut g, i);
        assert_eq!(pes.reg(0, 1), Vector::splat(9));
        assert_eq!(pes.counters(0).instrs, 1);
        assert_eq!(pes.counters(0).compute_instrs, 0);
    }

    #[test]
    fn macs_accumulates_into_spad() {
        let mut pes = one_pe();
        let mut g = grid1x1();
        pes.pe_mut(0).dmem.preload(0, &[Vector([1, 2, 3, 4])]);
        let mac = Instruction::new(Opcode::MacS, Addr::Imm, Addr::DataMem(0), Addr::Spad(2))
            .with_imm(Vector::splat(3));
        run_one(&mut pes, &mut g, mac);
        run_one(&mut pes, &mut g, mac);
        assert_eq!(pes.pe_mut(0).spad.read(2).unwrap(), Vector([6, 12, 18, 24]));
        assert_eq!(pes.counters(0).mac_instrs, 2);
    }

    #[test]
    fn back_to_back_mac_forwarding() {
        // Two MACs to the same spad slot in consecutive cycles must see each
        // other's in-flight values (RAW across the pipeline).
        let mut pes = one_pe();
        let mut g = grid1x1();
        pes.pe_mut(0).dmem.preload(0, &[Vector::splat(1)]);
        let mac = Instruction::new(Opcode::MacS, Addr::Imm, Addr::DataMem(0), Addr::Spad(0))
            .with_imm(Vector::splat(1));
        let mut ring = ring();
        let h = ring.intern(mac);
        // Pipelined: issue 3 MACs back-to-back.
        pes.load(0, h, &ring, &mut g, 0, 0, 0).unwrap();
        pes.advance();
        pes.load(0, h, &ring, &mut g, 0, 0, 1).unwrap();
        pes.advance();
        pes.commit(0, &ring, &mut g, 0, 0, 2).unwrap();
        pes.load(0, h, &ring, &mut g, 0, 0, 2).unwrap();
        pes.advance();
        pes.commit(0, &ring, &mut g, 0, 0, 3).unwrap();
        pes.advance();
        pes.commit(0, &ring, &mut g, 0, 0, 4).unwrap();
        assert_eq!(pes.pe_mut(0).spad.read(0).unwrap(), Vector::splat(3));
    }

    #[test]
    fn movflush_clears_source() {
        let mut pes = one_pe();
        let mut g = LinkGrid::new(1, 1, 4, false);
        pes.pe_mut(0).spad.write(1, Vector::splat(7)).unwrap();
        let i = Instruction::new(
            Opcode::MovFlush,
            Addr::Spad(1),
            Addr::Null,
            Addr::Port(Direction::South),
        )
        .with_tag(42);
        run_one(&mut pes, &mut g, i);
        assert_eq!(pes.pe_mut(0).spad.read(1).unwrap(), Vector::ZERO);
        let out = g.vertical(1, 0).pop(3, "sink").unwrap();
        assert_eq!(out.tag, 42);
        assert_eq!(out.value, Vector::splat(7));
    }

    #[test]
    fn route_pass_through_preserves_tag() {
        let mut pes = one_pe();
        // 2-row grid so PE (0,0) has a real south link; feed its north edge.
        let mut g = LinkGrid::new(2, 1, 4, true);
        g.vertical(0, 0)
            .push(
                TaggedVector {
                    value: Vector::splat(5),
                    tag: 11,
                },
                0,
                "feed",
            )
            .unwrap();
        let i = Instruction::NOP;
        let i = Instruction {
            op: Opcode::Nop,
            ..i
        }
        .with_route(Direction::North, Direction::South);
        run_one(&mut pes, &mut g, i);
        let out = g.vertical(1, 0).pop(3, "t").unwrap();
        assert_eq!(out.tag, 11);
        assert_eq!(out.value, Vector::splat(5));
    }

    #[test]
    fn shared_pop_feeds_operand_and_route() {
        // Mov op1=North res=Spad with route North→South: one pop serves both.
        let mut pes = one_pe();
        let mut g = LinkGrid::new(2, 1, 4, true);
        g.vertical(0, 0)
            .push(
                TaggedVector {
                    value: Vector([1, 2, 3, 4]),
                    tag: 3,
                },
                0,
                "feed",
            )
            .unwrap();
        let i = Instruction::new(
            Opcode::Mov,
            Addr::Port(Direction::North),
            Addr::Null,
            Addr::Spad(0),
        )
        .with_route(Direction::North, Direction::South);
        run_one(&mut pes, &mut g, i);
        assert_eq!(pes.pe_mut(0).spad.read(0).unwrap(), Vector([1, 2, 3, 4]));
        let fwd = g.vertical(1, 0).pop(3, "t").unwrap();
        assert_eq!(fwd.tag, 3);
        assert_eq!(fwd.value, Vector([1, 2, 3, 4]));
    }

    #[test]
    fn pop_empty_link_is_protocol_error() {
        let mut pes = one_pe();
        let mut g = LinkGrid::new(2, 1, 4, true);
        let i = Instruction::new(
            Opcode::Mov,
            Addr::Port(Direction::North),
            Addr::Null,
            Addr::Reg(0),
        );
        let mut ring = ring();
        let h = ring.intern(i);
        assert!(matches!(
            pes.load(0, h, &ring, &mut g, 0, 0, 0),
            Err(SimError::Deadlock { .. })
        ));
    }

    #[test]
    fn router_conflict_detected_at_load() {
        let mut pes = one_pe();
        let mut g = grid1x1();
        let i = Instruction::new(
            Opcode::Mov,
            Addr::Port(Direction::North),
            Addr::Port(Direction::North),
            Addr::Reg(0),
        );
        let mut ring = ring();
        let h = ring.intern(i);
        assert!(matches!(
            pes.load(0, h, &ring, &mut g, 0, 0, 0),
            Err(SimError::RouterConflict { .. })
        ));
    }

    #[test]
    fn redsum_and_addflush() {
        let mut pes = one_pe();
        let mut g = grid1x1();
        // reg0 = [1,2,3,4]
        run_one(
            &mut pes,
            &mut g,
            Instruction::new(Opcode::Mov, Addr::Imm, Addr::Null, Addr::Reg(0))
                .with_imm(Vector([1, 2, 3, 4])),
        );
        // reg1 = redsum(reg0) = 10 in lane 0
        run_one(
            &mut pes,
            &mut g,
            Instruction::new(Opcode::RedSum, Addr::Reg(0), Addr::Null, Addr::Reg(1)),
        );
        assert_eq!(pes.reg(0, 1), Vector([10, 0, 0, 0]));
        // AddFlush: reg2 = reg0 + reg1; reg0 cleared.
        run_one(
            &mut pes,
            &mut g,
            Instruction::new(Opcode::AddFlush, Addr::Reg(0), Addr::Reg(1), Addr::Reg(2)),
        );
        assert_eq!(pes.reg(0, 2), Vector([11, 2, 3, 4]));
        assert_eq!(pes.reg(0, 0), Vector::ZERO);
    }

    #[test]
    fn nop_produces_no_activity() {
        let mut pes = one_pe();
        let mut g = grid1x1();
        run_one(&mut pes, &mut g, Instruction::NOP);
        assert_eq!(pes.counters(0).instrs, 1);
        assert_eq!(pes.counters(0).compute_instrs, 0);
        assert_eq!(pes.pe(0).dmem.read_count(), 0);
        assert!(pes.pipeline_empty(0));
    }

    #[test]
    fn nop_with_port_result_does_not_push() {
        // `Nop` skips write-back entirely, so a south result address on a
        // NOP must not touch the link (matches the slow path's behaviour).
        let mut pes = one_pe();
        let mut g = LinkGrid::new(1, 1, 4, false);
        let i = Instruction::new(
            Opcode::Nop,
            Addr::Null,
            Addr::Null,
            Addr::Port(Direction::South),
        );
        run_one(&mut pes, &mut g, i);
        assert!(g.vertical(1, 0).is_empty());
        assert_eq!(pes.counters(0).instrs, 1);
    }

    #[test]
    fn soa_array_isolates_pes() {
        // Two PEs in one array: state updates stay per-index.
        let mut pes = PeArray::new(2, 4, 4);
        let mut g = LinkGrid::new(1, 2, 4, false);
        let i0 = Instruction::new(Opcode::Mov, Addr::Imm, Addr::Null, Addr::Reg(0))
            .with_imm(Vector::splat(1));
        let i1 = Instruction::new(Opcode::Mov, Addr::Imm, Addr::Null, Addr::Reg(0))
            .with_imm(Vector::splat(2));
        let mut ring = ring();
        let h0 = ring.intern(i0);
        let h1 = ring.intern(i1);
        pes.load(0, h0, &ring, &mut g, 0, 0, 0).unwrap();
        pes.load(1, h1, &ring, &mut g, 0, 1, 0).unwrap();
        pes.advance();
        pes.advance();
        pes.commit(0, &ring, &mut g, 0, 0, 2).unwrap();
        pes.commit(1, &ring, &mut g, 0, 1, 2).unwrap();
        assert_eq!(pes.reg(0, 0), Vector::splat(1));
        assert_eq!(pes.reg(1, 0), Vector::splat(2));
        assert_eq!(pes.counters(0).instrs, 1);
        assert_eq!(pes.counters(1).instrs, 1);
        assert_eq!(LANES, 4);
    }
}
