//! The Canon processing elements: 3-stage LOAD / EXECUTE / COMMIT pipelines
//! around 4-wide SIMD lanes (Fig 4), stored struct-of-arrays.
//!
//! PEs contain no control logic: they execute whatever instruction streams in
//! from the west (orchestrator or upstream PE), at a fixed pipeline latency,
//! and forward the instruction east when it retires — producing the
//! time-lapsed SIMD stagger of §2.1.
//!
//! The pipeline implements store-to-load forwarding between in-flight
//! instructions: a LOAD that reads an address written by an instruction in
//! the EXECUTE or COMMIT stage observes the in-flight value. This models the
//! accumulator forwarding a real MAC pipeline needs for back-to-back
//! accumulation into the same scratchpad entry (consecutive non-zeros of one
//! output row in SpMM).
//!
//! ## Struct-of-arrays layout
//!
//! All PEs of a fabric live in one [`PeArray`]: data memories, scratchpads,
//! register banks, activity counters, and the three pipeline-stage slots are
//! parallel `Vec`s indexed by PE id. The per-phase sweeps of
//! [`crate::fabric::Fabric::step`] then walk dense, homogeneous arrays — the
//! stage slot a COMMIT pass touches is contiguous across PEs instead of
//! strided by the whole PE record. Because every PE advances in lockstep,
//! the stage rotation index is a single array-wide field and
//! [`PeArray::advance`] is O(1) regardless of fabric size.
//!
//! The EXECUTE stage exists architecturally (an instruction occupies it for
//! one cycle, and forwarding reads it), but its lane result is a pure
//! function of the operand values captured at LOAD and nothing can observe
//! it earlier — so the simulator computes it eagerly during LOAD and runs no
//! per-PE EXECUTE sweep at all.

use crate::isa::{Addr, Direction, Instruction, Opcode, Vector};
use crate::noc::{ErrCtx, LinkGrid, TaggedVector};
use crate::SimError;

/// Number of SIMD registers per PE.
pub const NUM_REGS: usize = 4;

/// Occupancy of one pipeline-stage slot.
///
/// `PlainNop` is a compressed encoding of the canonical bubble — an
/// instruction that is `Nop` with null operands, null result, and no route
/// (exactly what orchestrators emit for stalls and row ends). Such a slot
/// reads no operands, computes nothing, writes nothing back, can never
/// forward a value, and retires as [`Instruction::NOP`]; encoding it in the
/// state tag lets the sparse-band streams, which are bubble-heavy, move one
/// byte per stage instead of a full in-flight record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Slot {
    /// No instruction in this stage.
    #[default]
    Empty,
    /// The canonical NOP (see above).
    PlainNop,
    /// A real instruction; the per-field stage arrays hold its state.
    Full,
}

/// What a [`PeArray::commit_into`] call did, as compact flags the fabric's
/// wake propagation consumes without re-inspecting the instruction.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommitEffects {
    /// An instruction retired (and was forwarded, when a slot was given).
    pub retired: bool,
    /// The retired instruction was a bubble ([`Instruction::is_plain_nop`]):
    /// nothing was written into the forward slot — the caller should
    /// propagate the bubble as a tag, not a record.
    pub bubble: bool,
    /// The instruction drives the south output link
    /// ([`Instruction::pushes_toward`] semantics — conservative for NOPs).
    pub drives_south: bool,
    /// The instruction drives the east output link.
    pub drives_east: bool,
}

impl CommitEffects {
    /// The no-instruction outcome.
    pub const NONE: CommitEffects = CommitEffects {
        retired: false,
        bubble: false,
        drives_south: false,
        drives_east: false,
    };
}

/// Per-PE activity counters (memory counters live in the memories).
#[derive(Debug, Clone, Copy, Default)]
pub struct PeCounters {
    /// Instructions that entered the pipeline (including NOPs).
    pub instrs: u64,
    /// Compute instructions executed.
    pub compute_instrs: u64,
    /// MAC instructions executed.
    pub mac_instrs: u64,
}

/// Per-PE memory access counters (data memory and scratchpad tracked
/// separately — their per-access energies differ, Fig 11).
#[derive(Debug, Clone, Copy, Default)]
struct MemCounts {
    dmem_reads: u64,
    dmem_writes: u64,
    spad_reads: u64,
    spad_writes: u64,
}

/// Shared view of one PE memory (a slice of the [`PeArray`] slab).
#[derive(Debug)]
pub struct MemRef<'a> {
    words: &'a [Vector],
    reads: u64,
    writes: u64,
}

impl MemRef<'_> {
    /// Capacity in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the memory has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Number of counted reads.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Number of counted writes.
    pub fn write_count(&self) -> u64 {
        self.writes
    }
}

/// Mutable view of one PE memory (a slice of the [`PeArray`] slab).
#[derive(Debug)]
pub struct MemMut<'a> {
    words: &'a mut [Vector],
    reads: &'a mut u64,
    writes: &'a mut u64,
    what: &'static str,
}

impl MemMut<'_> {
    /// Capacity in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the memory has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Reads a word, counting the access.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AddressOutOfRange`] for addresses past the end.
    pub fn read(&mut self, addr: usize) -> Result<Vector, SimError> {
        match self.words.get(addr) {
            Some(&v) => {
                *self.reads += 1;
                Ok(v)
            }
            None => Err(mem_oob(self.what, "read", addr, self.words.len())),
        }
    }

    /// Writes a word, counting the access.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AddressOutOfRange`] for addresses past the end.
    pub fn write(&mut self, addr: usize, v: Vector) -> Result<(), SimError> {
        let len = self.words.len();
        match self.words.get_mut(addr) {
            Some(slot) => {
                *slot = v;
                *self.writes += 1;
                Ok(())
            }
            None => Err(mem_oob(self.what, "write", addr, len)),
        }
    }

    /// Preloads contents without counting accesses (models the asynchronous
    /// EDDO memory movers filling the array before kernel execution; the
    /// off-chip traffic is accounted separately by the kernel mappers).
    ///
    /// # Panics
    ///
    /// Panics if `base + data.len()` exceeds the capacity.
    pub fn preload(&mut self, base: usize, data: &[Vector]) {
        assert!(
            base + data.len() <= self.words.len(),
            "preload of {} words at {base} exceeds capacity {}",
            data.len(),
            self.words.len()
        );
        self.words[base..base + data.len()].copy_from_slice(data);
    }

    /// Number of counted reads.
    pub fn read_count(&self) -> u64 {
        *self.reads
    }

    /// Number of counted writes.
    pub fn write_count(&self) -> u64 {
        *self.writes
    }
}

#[cold]
fn mem_oob(what: &str, op: &str, addr: usize, len: usize) -> SimError {
    SimError::AddressOutOfRange {
        context: format!("{what} {op} {addr} of {len}"),
    }
}

/// Bounds-checked, counted read of word `a` of PE `idx`'s region in a flat
/// memory slab (`stride` words per PE) — the one definition of "checked
/// counted slab access" behind every hot-path memory accessor.
#[inline]
fn slab_read(
    slab: &[Vector],
    stride: usize,
    idx: usize,
    a: usize,
    count: &mut u64,
    what: &'static str,
) -> Result<Vector, SimError> {
    if a < stride {
        *count += 1;
        Ok(slab[idx * stride + a])
    } else {
        Err(mem_oob(what, "read", a, stride))
    }
}

/// Bounds-checked, counted write — see [`slab_read`].
#[inline]
fn slab_write(
    slab: &mut [Vector],
    stride: usize,
    idx: usize,
    a: usize,
    v: Vector,
    count: &mut u64,
    what: &'static str,
) -> Result<(), SimError> {
    if a < stride {
        *count += 1;
        slab[idx * stride + a] = v;
        Ok(())
    } else {
        Err(mem_oob(what, "write", a, stride))
    }
}

/// Shared view of one PE inside a [`PeArray`].
#[derive(Debug)]
pub struct PeRef<'a> {
    /// Static-data memory (holds the stationary operand tile).
    pub dmem: MemRef<'a>,
    /// Dual-port scratchpad (psum / stream-reuse buffer).
    pub spad: MemRef<'a>,
    regs: &'a [Vector; NUM_REGS],
    counters: PeCounters,
}

impl PeRef<'_> {
    /// Register file access (tests / debugging).
    pub fn reg(&self, i: usize) -> Vector {
        self.regs[i]
    }

    /// Activity counters.
    pub fn counters(&self) -> PeCounters {
        self.counters
    }
}

/// Mutable view of one PE inside a [`PeArray`] (kernel mappers preload data
/// memories and scratchpads through this).
#[derive(Debug)]
pub struct PeMut<'a> {
    /// Static-data memory (holds the stationary operand tile).
    pub dmem: MemMut<'a>,
    /// Dual-port scratchpad (psum / stream-reuse buffer).
    pub spad: MemMut<'a>,
}

/// All processing elements of one fabric, struct-of-arrays.
///
/// The three pipeline slots per PE live in parallel per-field arrays
/// addressed through one shared rotation index: [`PeArray::advance`] renames
/// the stages for *every* PE by bumping that index once instead of moving
/// per-PE in-flight records — the per-cycle stage shift used to be a per-PE
/// operation on the simulator's hottest path.
#[derive(Debug)]
pub struct PeArray {
    /// Data-memory words of *all* PEs, one flat slab: PE `i` owns
    /// `dmem[i * dmem_words .. (i + 1) * dmem_words]`. One allocation, no
    /// per-PE pointer chase on the operand path.
    dmem: Vec<Vector>,
    dmem_words: usize,
    /// Scratchpad entries of all PEs (the accumulator banks), same layout.
    spad: Vec<Vector>,
    spad_entries: usize,
    mem_counts: Vec<MemCounts>,
    regs: Vec<[Vector; NUM_REGS]>,
    /// Pipeline-stage slots, struct-of-arrays at field granularity:
    /// `xxx[s][i]` is field `xxx` of stage slot `s` of PE `i`. Slot roles
    /// rotate via `load_idx` (LOAD at `load_idx`, EXECUTE at `load_idx + 1`,
    /// COMMIT at `load_idx + 2`, mod 3). Splitting by field means each phase
    /// moves only the bytes it actually produces or consumes: LOAD writes
    /// the instruction and its (eagerly computed) lane result, COMMIT reads
    /// them back (+ routed payload when a route is present) — and a
    /// `PlainNop` bubble moves only its one state byte.
    state: [Vec<Slot>; 3],
    instrs: [Vec<Instruction>; 3],
    results: [Vec<Vector>; 3],
    /// Pass-through payload popped at LOAD, pushed at COMMIT. Only valid
    /// (and only touched) when the slot's instruction carries a route.
    routed: [Vec<TaggedVector>; 3],
    load_idx: usize,
    counters: Vec<PeCounters>,
}

impl PeArray {
    /// Creates `n` PEs with the given memory capacities (in vector words).
    pub fn new(n: usize, dmem_words: usize, spad_entries: usize) -> PeArray {
        PeArray {
            dmem: vec![Vector::ZERO; n * dmem_words],
            dmem_words,
            spad: vec![Vector::ZERO; n * spad_entries],
            spad_entries,
            mem_counts: vec![MemCounts::default(); n],
            regs: vec![[Vector::ZERO; NUM_REGS]; n],
            state: std::array::from_fn(|_| vec![Slot::Empty; n]),
            instrs: std::array::from_fn(|_| vec![Instruction::NOP; n]),
            results: std::array::from_fn(|_| vec![Vector::ZERO; n]),
            routed: std::array::from_fn(|_| vec![TaggedVector::ZERO; n]),
            load_idx: 0,
            counters: vec![PeCounters::default(); n],
        }
    }

    /// Number of PEs.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when the array holds no PEs.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    fn exec_idx(&self) -> usize {
        (self.load_idx + 1) % 3
    }

    fn commit_idx(&self) -> usize {
        (self.load_idx + 2) % 3
    }

    /// Shared view of PE `idx`.
    pub fn pe(&self, idx: usize) -> PeRef<'_> {
        let mc = self.mem_counts[idx];
        PeRef {
            dmem: MemRef {
                words: &self.dmem[idx * self.dmem_words..(idx + 1) * self.dmem_words],
                reads: mc.dmem_reads,
                writes: mc.dmem_writes,
            },
            spad: MemRef {
                words: &self.spad[idx * self.spad_entries..(idx + 1) * self.spad_entries],
                reads: mc.spad_reads,
                writes: mc.spad_writes,
            },
            regs: &self.regs[idx],
            counters: self.counters[idx],
        }
    }

    /// Mutable view of PE `idx` (memory preloads).
    pub fn pe_mut(&mut self, idx: usize) -> PeMut<'_> {
        let mc = &mut self.mem_counts[idx];
        PeMut {
            dmem: MemMut {
                words: &mut self.dmem[idx * self.dmem_words..(idx + 1) * self.dmem_words],
                reads: &mut mc.dmem_reads,
                writes: &mut mc.dmem_writes,
                what: "dmem",
            },
            spad: MemMut {
                words: &mut self.spad[idx * self.spad_entries..(idx + 1) * self.spad_entries],
                reads: &mut mc.spad_reads,
                writes: &mut mc.spad_writes,
                what: "spad",
            },
        }
    }

    /// Reads PE `idx`'s data-memory word `a`, counting the access.
    #[inline]
    fn dmem_read(&mut self, idx: usize, a: usize) -> Result<Vector, SimError> {
        let mc = &mut self.mem_counts[idx];
        slab_read(
            &self.dmem,
            self.dmem_words,
            idx,
            a,
            &mut mc.dmem_reads,
            "dmem",
        )
    }

    /// Writes PE `idx`'s data-memory word `a`, counting the access.
    #[inline]
    fn dmem_write(&mut self, idx: usize, a: usize, v: Vector) -> Result<(), SimError> {
        let mc = &mut self.mem_counts[idx];
        slab_write(
            &mut self.dmem,
            self.dmem_words,
            idx,
            a,
            v,
            &mut mc.dmem_writes,
            "dmem",
        )
    }

    /// Reads PE `idx`'s scratchpad entry `a`, counting the access.
    #[inline]
    fn spad_read(&mut self, idx: usize, a: usize) -> Result<Vector, SimError> {
        let mc = &mut self.mem_counts[idx];
        slab_read(
            &self.spad,
            self.spad_entries,
            idx,
            a,
            &mut mc.spad_reads,
            "spad",
        )
    }

    /// Writes PE `idx`'s scratchpad entry `a`, counting the access.
    #[inline]
    fn spad_write(&mut self, idx: usize, a: usize, v: Vector) -> Result<(), SimError> {
        let mc = &mut self.mem_counts[idx];
        slab_write(
            &mut self.spad,
            self.spad_entries,
            idx,
            a,
            v,
            &mut mc.spad_writes,
            "spad",
        )
    }

    /// Activity counters of PE `idx`.
    pub fn counters(&self, idx: usize) -> PeCounters {
        self.counters[idx]
    }

    /// Register file access (tests / debugging).
    pub fn reg(&self, idx: usize, i: usize) -> Vector {
        self.regs[idx][i]
    }

    /// True when PE `idx` has no instruction in flight.
    pub fn pipeline_empty(&self, idx: usize) -> bool {
        self.state[0][idx] == Slot::Empty
            && self.state[1][idx] == Slot::Empty
            && self.state[2][idx] == Slot::Empty
    }

    /// Checks whether an in-flight younger instruction (EXECUTE or COMMIT
    /// stage) of PE `idx` will write `addr`, returning the forwarded value if
    /// so. EXECUTE-stage values take priority (younger instruction).
    #[inline(always)]
    fn forwarded(&self, idx: usize, addr: Addr) -> Option<Vector> {
        if addr == Addr::Null {
            return None;
        }
        // Younger first: the EXECUTE-stage instruction is the most recent
        // writer still in flight. `PlainNop` slots have a null result
        // address and no flush semantics, so only `Full` slots can forward.
        for s in [self.exec_idx(), self.commit_idx()] {
            if self.state[s][idx] != Slot::Full {
                continue;
            }
            let instr = &self.instrs[s][idx];
            if instr.res == addr {
                return Some(self.results[s][idx]);
            }
            // Flush opcodes clear their op1 source at COMMIT.
            if matches!(instr.op, Opcode::MovFlush | Opcode::AddFlush) && instr.op1 == addr {
                return Some(Vector::ZERO);
            }
        }
        None
    }

    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn read_operand(
        &mut self,
        idx: usize,
        addr: Addr,
        instr: &Instruction,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
        shared_route_pop: &mut Option<TaggedVector>,
        fw_possible: bool,
    ) -> Result<Vector, SimError> {
        match addr {
            Addr::Null => Ok(Vector::ZERO),
            Addr::Imm => Ok(instr.imm.unwrap_or(Vector::ZERO)),
            Addr::Reg(i) => {
                let base = self.regs[idx].get(i as usize).copied().ok_or_else(|| {
                    SimError::AddressOutOfRange {
                        context: format!("register r{i} (of {NUM_REGS})"),
                    }
                })?;
                if !fw_possible {
                    return Ok(base);
                }
                Ok(self.forwarded(idx, addr).unwrap_or(base))
            }
            Addr::DataMem(a) => {
                let v = self.dmem_read(idx, a as usize)?;
                if !fw_possible {
                    return Ok(v);
                }
                Ok(self.forwarded(idx, addr).unwrap_or(v))
            }
            Addr::Spad(a) => {
                let v = self.spad_read(idx, a as usize)?;
                if !fw_possible {
                    return Ok(v);
                }
                Ok(self.forwarded(idx, addr).unwrap_or(v))
            }
            Addr::Port(d) => {
                // If a route pass-through pops the same direction, the single
                // popped entry feeds both the operand and the pass-through.
                let entry = Self::pop_port(d, grid, r, c, cycle)?;
                if let Some(route) = instr.route {
                    if route.from == d {
                        *shared_route_pop = Some(entry);
                    }
                }
                Ok(entry.value)
            }
        }
    }

    fn pop_port(
        d: Direction,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
    ) -> Result<TaggedVector, SimError> {
        // Error context is a copyable `ErrCtx` rendered only when the pop
        // actually fails: this path runs on every successful NoC read and
        // must not allocate.
        let ctx = ErrCtx::Pop { dir: d, pe: (r, c) };
        match d {
            Direction::North => grid.vertical(r, c).pop(cycle, ctx),
            Direction::West => grid.horizontal(r, c).pop(cycle, ctx),
            Direction::South | Direction::East => Err(SimError::AddressOutOfRange {
                context: format!(
                    "PE ({r},{c}) reads {d}: only south/east-bound dataflow is instantiated"
                ),
            }),
        }
    }

    fn push_port(
        d: Direction,
        entry: TaggedVector,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
    ) -> Result<(), SimError> {
        let ctx = ErrCtx::Push { dir: d, pe: (r, c) };
        match d {
            Direction::South => grid.vertical(r + 1, c).push(entry, cycle, ctx),
            Direction::East => grid.horizontal(r, c + 1).push(entry, cycle, ctx),
            Direction::North | Direction::West => Err(SimError::AddressOutOfRange {
                context: format!(
                    "PE ({r},{c}) writes {d}: only south/east-bound dataflow is instantiated"
                ),
            }),
        }
    }

    /// LOAD stage of PE `idx`: accepts `incoming` (if any) and resolves its
    /// operands, popping NoC ports as needed.
    ///
    /// # Errors
    ///
    /// Propagates address and NoC protocol errors, and reports
    /// [`SimError::RouterConflict`] for instructions violating the §3.1
    /// one-transfer-per-direction rule.
    #[inline]
    pub fn load(
        &mut self,
        idx: usize,
        incoming: Option<Instruction>,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
    ) -> Result<(), SimError> {
        self.load_inner(idx, incoming, grid, r, c, cycle, true)
    }

    /// LOAD of a bubble (see [`Instruction::is_plain_nop`]) into PE `idx`:
    /// counts the instruction and occupies the slot with the one-byte
    /// `PlainNop` state — no operand resolution, no validation.
    #[inline]
    pub fn load_bubble(&mut self, idx: usize) {
        debug_assert!(
            self.state[self.load_idx][idx] == Slot::Empty,
            "LOAD slot occupied at shift time"
        );
        self.counters[idx].instrs += 1;
        self.state[self.load_idx][idx] = Slot::PlainNop;
    }

    /// [`PeArray::load`] for an eastward-forwarded instruction: the §3.1
    /// route-conflict validation is skipped because `noc_conflict` is a pure
    /// function of the instruction and the identical copy was already
    /// validated when the upstream column loaded it. (Also used by the
    /// spatial runner, which validates each held instruction once up front.)
    #[inline]
    pub fn load_forwarded(
        &mut self,
        idx: usize,
        incoming: Option<Instruction>,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
    ) -> Result<(), SimError> {
        self.load_inner(idx, incoming, grid, r, c, cycle, false)
    }

    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn load_inner(
        &mut self,
        idx: usize,
        incoming: Option<Instruction>,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
        validate: bool,
    ) -> Result<(), SimError> {
        debug_assert!(
            self.state[self.load_idx][idx] == Slot::Empty,
            "LOAD slot occupied at shift time"
        );
        let Some(instr) = incoming else {
            return Ok(());
        };
        // Fast path for the canonical NOP (null operands and result, no
        // route): the sparse-band streams are NOP-heavy (row ends, stalls,
        // bubbles), and a plain NOP touches no memory, no ports, cannot
        // conflict, and cannot forward — only its state byte moves. (The
        // fabric's injection network pre-classifies bubbles at issue and
        // calls [`PeArray::load_bubble`] directly; this check serves direct
        // callers.)
        if instr.is_plain_nop() {
            self.load_bubble(idx);
            return Ok(());
        }
        if validate {
            if let Some(d) = instr.noc_conflict() {
                return Err(SimError::RouterConflict {
                    cycle,
                    pe: (r, c),
                    direction: d.to_string(),
                });
            }
        }
        self.counters[idx].instrs += 1;
        if instr.op.is_compute() {
            self.counters[idx].compute_instrs += 1;
        }
        if instr.op.is_mac() {
            self.counters[idx].mac_instrs += 1;
        }
        // Hoisted forwarding precondition: a value can only be forwarded
        // from a `Full` EXECUTE/COMMIT slot, so when both are bubbles or
        // empty (common in sparse bands) every operand read skips the
        // per-address forwarding scan.
        let fw_possible = self.state[self.exec_idx()][idx] == Slot::Full
            || self.state[self.commit_idx()][idx] == Slot::Full;
        let mut shared_pop = None;
        let op1 = self.read_operand(
            idx,
            instr.op1,
            &instr,
            grid,
            r,
            c,
            cycle,
            &mut shared_pop,
            fw_possible,
        )?;
        let op2 = self.read_operand(
            idx,
            instr.op2,
            &instr,
            grid,
            r,
            c,
            cycle,
            &mut shared_pop,
            fw_possible,
        )?;
        // Read-modify-write opcodes read the old result value here.
        let res_in = match instr.op {
            Opcode::MacV | Opcode::MacS | Opcode::Acc => match instr.res {
                Addr::Port(_) | Addr::Null | Addr::Imm => Vector::ZERO,
                a => {
                    let mut none = None;
                    self.read_operand(idx, a, &instr, grid, r, c, cycle, &mut none, fw_possible)?
                }
            },
            _ => Vector::ZERO,
        };
        // Route pass-through pop (if not shared with an operand pop). The
        // routed slot is written only when a route is present; COMMIT reads
        // it under the same condition.
        if let Some(route) = instr.route {
            self.routed[self.load_idx][idx] = match shared_pop {
                Some(e) => e,
                None => Self::pop_port(route.from, grid, r, c, cycle)?,
            };
        }
        self.state[self.load_idx][idx] = Slot::Full;
        // The EXECUTE stage's lane result is a pure function of the operand
        // values captured right here, and nothing can observe it before the
        // next cycle — so it is computed eagerly instead of in a separate
        // per-PE EXECUTE sweep. The instruction still *occupies* the EXECUTE
        // slot for a full cycle (stage rotation is unchanged); only the
        // simulator's work moves.
        self.results[self.load_idx][idx] = Self::lane_result(instr.op, op1, op2, res_in);
        self.instrs[self.load_idx][idx] = instr;
        Ok(())
    }

    /// The vector-lane function of one opcode.
    #[inline]
    fn lane_result(op: Opcode, op1: Vector, op2: Vector, res_in: Vector) -> Vector {
        match op {
            Opcode::Nop => Vector::ZERO,
            Opcode::Mov | Opcode::MovFlush => op1,
            Opcode::Add | Opcode::AddFlush => op1.add(op2),
            Opcode::Sub => {
                let mut out = [0; crate::isa::LANES];
                for (i, o) in out.iter_mut().enumerate() {
                    *o = op1.0[i].wrapping_sub(op2.0[i]);
                }
                Vector(out)
            }
            Opcode::Mul => op1.mul(op2),
            Opcode::MacV => res_in.mac(op1, op2),
            Opcode::MacS => res_in.mac(Vector::splat(op1.lane0()), op2),
            Opcode::Acc => res_in.add(op1),
            Opcode::RedSum => {
                let mut out = Vector::ZERO;
                out.0[0] = op1.reduce_sum();
                out
            }
            Opcode::Max => {
                let mut out = [0; crate::isa::LANES];
                for (i, o) in out.iter_mut().enumerate() {
                    *o = op1.0[i].max(op2.0[i]);
                }
                Vector(out)
            }
            Opcode::Min => {
                let mut out = [0; crate::isa::LANES];
                for (i, o) in out.iter_mut().enumerate() {
                    *o = op1.0[i].min(op2.0[i]);
                }
                Vector(out)
            }
        }
    }

    /// COMMIT stage of PE `idx`: writes the result (memory / register / NoC
    /// push), performs the flush-clear of `MovFlush`/`AddFlush`, and pushes
    /// the pass-through payload. Returns the retiring instruction so the
    /// fabric can forward it to the eastern neighbour.
    ///
    /// # Errors
    ///
    /// Propagates address and NoC protocol errors.
    pub fn commit(
        &mut self,
        idx: usize,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
    ) -> Result<Option<Instruction>, SimError> {
        let mut fwd = Instruction::NOP;
        let eff = self.commit_into(idx, grid, r, c, cycle, Some(&mut fwd))?;
        Ok(eff.retired.then_some(fwd))
    }

    /// [`PeArray::commit`] with the eastward forwarding folded in: a
    /// retiring non-bubble instruction is written straight from the stage
    /// array into `forward_into` (the neighbour's injection slot), avoiding
    /// the copy-out/copy-in round trip through a returned value; a retiring
    /// bubble only sets `bubble` in the returned effects (it *is* the
    /// canonical NOP, so there is nothing to write). The return is a compact
    /// effect descriptor for the caller's wake propagation.
    ///
    /// # Errors
    ///
    /// Propagates address and NoC protocol errors.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    pub fn commit_into(
        &mut self,
        idx: usize,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
        forward_into: Option<&mut Instruction>,
    ) -> Result<CommitEffects, SimError> {
        let commit_idx = self.commit_idx();
        match self.state[commit_idx][idx] {
            Slot::Empty => return Ok(CommitEffects::NONE),
            Slot::PlainNop => {
                // A bubble writes nothing and pushes nothing; it retires as
                // the canonical NOP (its unused immediate/tag fields are
                // architecturally unobservable), propagated as a tag.
                self.state[commit_idx][idx] = Slot::Empty;
                return Ok(CommitEffects {
                    retired: true,
                    bubble: true,
                    drives_south: false,
                    drives_east: false,
                });
            }
            Slot::Full => {}
        }
        self.state[commit_idx][idx] = Slot::Empty;
        let instr = self.instrs[commit_idx][idx];
        let result = self.results[commit_idx][idx];
        // Result write-back.
        if instr.op != Opcode::Nop {
            match instr.res {
                Addr::Null => {}
                Addr::Imm => {
                    return Err(SimError::AddressOutOfRange {
                        context: "write to immediate".into(),
                    })
                }
                Addr::Reg(i) => {
                    let slot = self.regs[idx].get_mut(i as usize).ok_or_else(|| {
                        SimError::AddressOutOfRange {
                            context: format!("register r{i}"),
                        }
                    })?;
                    *slot = result;
                }
                Addr::DataMem(a) => self.dmem_write(idx, a as usize, result)?,
                Addr::Spad(a) => self.spad_write(idx, a as usize, result)?,
                Addr::Port(d) => {
                    Self::push_port(
                        d,
                        TaggedVector {
                            value: result,
                            tag: instr.tag,
                        },
                        grid,
                        r,
                        c,
                        cycle,
                    )?;
                }
            }
        }
        // Flush-clear of the op1 source.
        if matches!(instr.op, Opcode::MovFlush | Opcode::AddFlush) {
            match instr.op1 {
                Addr::Spad(a) => self.spad_write(idx, a as usize, Vector::ZERO)?,
                Addr::Reg(i) => {
                    let slot = self.regs[idx].get_mut(i as usize).ok_or_else(|| {
                        SimError::AddressOutOfRange {
                            context: format!("register r{i}"),
                        }
                    })?;
                    *slot = Vector::ZERO;
                }
                a => {
                    return Err(SimError::AddressOutOfRange {
                        context: format!("flush-clear of non-storage operand {a}"),
                    })
                }
            }
        }
        // Pass-through push (the routed slot is valid exactly when a route
        // is present — LOAD populated it under the same condition).
        if let Some(route) = instr.route {
            let entry = self.routed[commit_idx][idx];
            Self::push_port(route.to, entry, grid, r, c, cycle)?;
        }
        if let Some(slot) = forward_into {
            *slot = instr;
        }
        Ok(CommitEffects {
            retired: true,
            bubble: false,
            drives_south: instr.pushes_toward(Direction::South),
            drives_east: instr.pushes_toward(Direction::East),
        })
    }

    /// Advances every pipeline by one stage (end of cycle): the stages are
    /// renamed by rotating the shared slot index — no in-flight state is
    /// moved, and the cost is independent of the PE count.
    pub fn advance(&mut self) {
        debug_assert!(
            self.state[self.commit_idx()]
                .iter()
                .all(|&s| s == Slot::Empty),
            "commit slot not consumed"
        );
        // The old COMMIT slot (now empty) becomes the new LOAD slot; the
        // old LOAD and EXECUTE slots become EXECUTE and COMMIT in place.
        self.load_idx = self.commit_idx();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::LANES;

    fn grid1x1() -> LinkGrid {
        LinkGrid::new(1, 1, 4, false)
    }

    fn one_pe() -> PeArray {
        PeArray::new(1, 4, 4)
    }

    /// Runs a single instruction through a 1×1 array's PE.
    fn run_one(pes: &mut PeArray, grid: &mut LinkGrid, i: Instruction) {
        pes.load(0, Some(i), grid, 0, 0, 0).unwrap();
        pes.advance();
        pes.advance();
        pes.commit(0, grid, 0, 0, 2).unwrap();
    }

    #[test]
    fn mov_imm_to_reg() {
        let mut pes = one_pe();
        let mut g = grid1x1();
        let i = Instruction::new(Opcode::Mov, Addr::Imm, Addr::Null, Addr::Reg(1))
            .with_imm(Vector::splat(9));
        run_one(&mut pes, &mut g, i);
        assert_eq!(pes.reg(0, 1), Vector::splat(9));
        assert_eq!(pes.counters(0).instrs, 1);
        assert_eq!(pes.counters(0).compute_instrs, 0);
    }

    #[test]
    fn macs_accumulates_into_spad() {
        let mut pes = one_pe();
        let mut g = grid1x1();
        pes.pe_mut(0).dmem.preload(0, &[Vector([1, 2, 3, 4])]);
        let mac = Instruction::new(Opcode::MacS, Addr::Imm, Addr::DataMem(0), Addr::Spad(2))
            .with_imm(Vector::splat(3));
        run_one(&mut pes, &mut g, mac);
        run_one(&mut pes, &mut g, mac);
        assert_eq!(pes.pe_mut(0).spad.read(2).unwrap(), Vector([6, 12, 18, 24]));
        assert_eq!(pes.counters(0).mac_instrs, 2);
    }

    #[test]
    fn back_to_back_mac_forwarding() {
        // Two MACs to the same spad slot in consecutive cycles must see each
        // other's in-flight values (RAW across the pipeline).
        let mut pes = one_pe();
        let mut g = grid1x1();
        pes.pe_mut(0).dmem.preload(0, &[Vector::splat(1)]);
        let mac = Instruction::new(Opcode::MacS, Addr::Imm, Addr::DataMem(0), Addr::Spad(0))
            .with_imm(Vector::splat(1));
        // Pipelined: issue 3 MACs back-to-back.
        pes.load(0, Some(mac), &mut g, 0, 0, 0).unwrap();
        pes.advance();
        pes.load(0, Some(mac), &mut g, 0, 0, 1).unwrap();
        pes.advance();
        pes.commit(0, &mut g, 0, 0, 2).unwrap();
        pes.load(0, Some(mac), &mut g, 0, 0, 2).unwrap();
        pes.advance();
        pes.commit(0, &mut g, 0, 0, 3).unwrap();
        pes.advance();
        pes.commit(0, &mut g, 0, 0, 4).unwrap();
        assert_eq!(pes.pe_mut(0).spad.read(0).unwrap(), Vector::splat(3));
    }

    #[test]
    fn movflush_clears_source() {
        let mut pes = one_pe();
        let mut g = LinkGrid::new(1, 1, 4, false);
        pes.pe_mut(0).spad.write(1, Vector::splat(7)).unwrap();
        let i = Instruction::new(
            Opcode::MovFlush,
            Addr::Spad(1),
            Addr::Null,
            Addr::Port(Direction::South),
        )
        .with_tag(42);
        run_one(&mut pes, &mut g, i);
        assert_eq!(pes.pe_mut(0).spad.read(1).unwrap(), Vector::ZERO);
        let out = g.vertical(1, 0).pop(3, "sink").unwrap();
        assert_eq!(out.tag, 42);
        assert_eq!(out.value, Vector::splat(7));
    }

    #[test]
    fn route_pass_through_preserves_tag() {
        let mut pes = one_pe();
        // 2-row grid so PE (0,0) has a real south link; feed its north edge.
        let mut g = LinkGrid::new(2, 1, 4, true);
        g.vertical(0, 0)
            .push(
                TaggedVector {
                    value: Vector::splat(5),
                    tag: 11,
                },
                0,
                "feed",
            )
            .unwrap();
        let i = Instruction::NOP;
        let i = Instruction {
            op: Opcode::Nop,
            ..i
        }
        .with_route(Direction::North, Direction::South);
        run_one(&mut pes, &mut g, i);
        let out = g.vertical(1, 0).pop(3, "t").unwrap();
        assert_eq!(out.tag, 11);
        assert_eq!(out.value, Vector::splat(5));
    }

    #[test]
    fn shared_pop_feeds_operand_and_route() {
        // Mov op1=North res=Spad with route North→South: one pop serves both.
        let mut pes = one_pe();
        let mut g = LinkGrid::new(2, 1, 4, true);
        g.vertical(0, 0)
            .push(
                TaggedVector {
                    value: Vector([1, 2, 3, 4]),
                    tag: 3,
                },
                0,
                "feed",
            )
            .unwrap();
        let i = Instruction::new(
            Opcode::Mov,
            Addr::Port(Direction::North),
            Addr::Null,
            Addr::Spad(0),
        )
        .with_route(Direction::North, Direction::South);
        run_one(&mut pes, &mut g, i);
        assert_eq!(pes.pe_mut(0).spad.read(0).unwrap(), Vector([1, 2, 3, 4]));
        let fwd = g.vertical(1, 0).pop(3, "t").unwrap();
        assert_eq!(fwd.tag, 3);
        assert_eq!(fwd.value, Vector([1, 2, 3, 4]));
    }

    #[test]
    fn pop_empty_link_is_protocol_error() {
        let mut pes = one_pe();
        let mut g = LinkGrid::new(2, 1, 4, true);
        let i = Instruction::new(
            Opcode::Mov,
            Addr::Port(Direction::North),
            Addr::Null,
            Addr::Reg(0),
        );
        assert!(matches!(
            pes.load(0, Some(i), &mut g, 0, 0, 0),
            Err(SimError::Deadlock { .. })
        ));
    }

    #[test]
    fn router_conflict_detected_at_load() {
        let mut pes = one_pe();
        let mut g = grid1x1();
        let i = Instruction::new(
            Opcode::Mov,
            Addr::Port(Direction::North),
            Addr::Port(Direction::North),
            Addr::Reg(0),
        );
        assert!(matches!(
            pes.load(0, Some(i), &mut g, 0, 0, 0),
            Err(SimError::RouterConflict { .. })
        ));
    }

    #[test]
    fn redsum_and_addflush() {
        let mut pes = one_pe();
        let mut g = grid1x1();
        // reg0 = [1,2,3,4]
        run_one(
            &mut pes,
            &mut g,
            Instruction::new(Opcode::Mov, Addr::Imm, Addr::Null, Addr::Reg(0))
                .with_imm(Vector([1, 2, 3, 4])),
        );
        // reg1 = redsum(reg0) = 10 in lane 0
        run_one(
            &mut pes,
            &mut g,
            Instruction::new(Opcode::RedSum, Addr::Reg(0), Addr::Null, Addr::Reg(1)),
        );
        assert_eq!(pes.reg(0, 1), Vector([10, 0, 0, 0]));
        // AddFlush: reg2 = reg0 + reg1; reg0 cleared.
        run_one(
            &mut pes,
            &mut g,
            Instruction::new(Opcode::AddFlush, Addr::Reg(0), Addr::Reg(1), Addr::Reg(2)),
        );
        assert_eq!(pes.reg(0, 2), Vector([11, 2, 3, 4]));
        assert_eq!(pes.reg(0, 0), Vector::ZERO);
    }

    #[test]
    fn nop_produces_no_activity() {
        let mut pes = one_pe();
        let mut g = grid1x1();
        run_one(&mut pes, &mut g, Instruction::NOP);
        assert_eq!(pes.counters(0).instrs, 1);
        assert_eq!(pes.counters(0).compute_instrs, 0);
        assert_eq!(pes.pe(0).dmem.read_count(), 0);
        assert!(pes.pipeline_empty(0));
    }

    #[test]
    fn nop_with_port_result_does_not_push() {
        // `Nop` skips write-back entirely, so a south result address on a
        // NOP must not touch the link (matches the slow path's behaviour).
        let mut pes = one_pe();
        let mut g = LinkGrid::new(1, 1, 4, false);
        let i = Instruction::new(
            Opcode::Nop,
            Addr::Null,
            Addr::Null,
            Addr::Port(Direction::South),
        );
        run_one(&mut pes, &mut g, i);
        assert!(g.vertical(1, 0).is_empty());
        assert_eq!(pes.counters(0).instrs, 1);
    }

    #[test]
    fn soa_array_isolates_pes() {
        // Two PEs in one array: state updates stay per-index.
        let mut pes = PeArray::new(2, 4, 4);
        let mut g = LinkGrid::new(1, 2, 4, false);
        let i0 = Instruction::new(Opcode::Mov, Addr::Imm, Addr::Null, Addr::Reg(0))
            .with_imm(Vector::splat(1));
        let i1 = Instruction::new(Opcode::Mov, Addr::Imm, Addr::Null, Addr::Reg(0))
            .with_imm(Vector::splat(2));
        pes.load(0, Some(i0), &mut g, 0, 0, 0).unwrap();
        pes.load(1, Some(i1), &mut g, 0, 1, 0).unwrap();
        pes.advance();
        pes.advance();
        pes.commit(0, &mut g, 0, 0, 2).unwrap();
        pes.commit(1, &mut g, 0, 1, 2).unwrap();
        assert_eq!(pes.reg(0, 0), Vector::splat(1));
        assert_eq!(pes.reg(1, 0), Vector::splat(2));
        assert_eq!(pes.counters(0).instrs, 1);
        assert_eq!(pes.counters(1).instrs, 1);
        assert_eq!(LANES, 4);
    }
}
