//! The Canon processing element: a 3-stage LOAD / EXECUTE / COMMIT pipeline
//! around a 4-wide SIMD lane (Fig 4).
//!
//! PEs contain no control logic: they execute whatever instruction streams in
//! from the west (orchestrator or upstream PE), at a fixed pipeline latency,
//! and forward the instruction east when it retires — producing the
//! time-lapsed SIMD stagger of §2.1.
//!
//! The pipeline implements store-to-load forwarding between in-flight
//! instructions: a LOAD that reads an address written by an instruction in
//! the EXECUTE or COMMIT stage observes the in-flight value. This models the
//! accumulator forwarding a real MAC pipeline needs for back-to-back
//! accumulation into the same scratchpad entry (consecutive non-zeros of one
//! output row in SpMM).

use crate::isa::{Addr, Direction, Instruction, Opcode, Vector};
use crate::memory::{DataMemory, Scratchpad};
use crate::noc::{ErrCtx, LinkGrid, TaggedVector};
use crate::SimError;

/// Number of SIMD registers per PE.
pub const NUM_REGS: usize = 4;

/// An instruction in flight through the PE pipeline, with its resolved
/// operands and (after EXECUTE) its result.
#[derive(Debug, Clone)]
struct InFlight {
    instr: Instruction,
    op1: Vector,
    op2: Vector,
    /// Old value of the result address, for read-modify-write opcodes.
    res_in: Vector,
    /// Pass-through payload popped at LOAD, pushed at COMMIT.
    routed: Option<TaggedVector>,
    /// Lane output, valid after EXECUTE.
    result: Vector,
}

/// Per-PE activity counters (memory counters live in the memories).
#[derive(Debug, Clone, Copy, Default)]
pub struct PeCounters {
    /// Instructions that entered the pipeline (including NOPs).
    pub instrs: u64,
    /// Compute instructions executed.
    pub compute_instrs: u64,
    /// MAC instructions executed.
    pub mac_instrs: u64,
}

/// One processing element.
///
/// The three pipeline slots live in a rotating array: [`Pe::advance`]
/// renames the stages by bumping an index instead of moving the ~100-byte
/// [`InFlight`] payloads between fields — the per-cycle, per-PE stage shift
/// is on the simulator's hottest path.
#[derive(Debug)]
pub struct Pe {
    /// Static-data memory (holds the stationary operand tile).
    pub dmem: DataMemory,
    /// Dual-port scratchpad (psum / stream-reuse buffer).
    pub spad: Scratchpad,
    regs: [Vector; NUM_REGS],
    /// Stage slots addressed through `load_idx`: LOAD at `load_idx`,
    /// EXECUTE at `load_idx + 1`, COMMIT at `load_idx + 2` (mod 3).
    stages: [Option<InFlight>; 3],
    load_idx: usize,
    counters: PeCounters,
}

impl Pe {
    /// Creates a PE with the given memory capacities (in vector words).
    pub fn new(dmem_words: usize, spad_entries: usize) -> Pe {
        Pe {
            dmem: DataMemory::new(dmem_words),
            spad: Scratchpad::new(spad_entries),
            regs: [Vector::ZERO; NUM_REGS],
            stages: [None, None, None],
            load_idx: 0,
            counters: PeCounters::default(),
        }
    }

    fn exec_idx(&self) -> usize {
        (self.load_idx + 1) % 3
    }

    fn commit_idx(&self) -> usize {
        (self.load_idx + 2) % 3
    }

    /// Activity counters.
    pub fn counters(&self) -> PeCounters {
        self.counters
    }

    /// Register file access (tests / debugging).
    pub fn reg(&self, i: usize) -> Vector {
        self.regs[i]
    }

    /// True when no instruction is in flight.
    pub fn pipeline_empty(&self) -> bool {
        self.stages.iter().all(Option::is_none)
    }

    /// Checks whether an in-flight younger instruction (EXECUTE or COMMIT
    /// stage) will write `addr`, returning the forwarded value if so.
    /// EXECUTE-stage values take priority (younger instruction).
    fn forwarded(&self, addr: Addr) -> Option<Vector> {
        if addr == Addr::Null {
            return None;
        }
        // Younger first: the EXECUTE-stage instruction is the most recent
        // writer still in flight.
        for idx in [self.exec_idx(), self.commit_idx()] {
            let Some(f) = &self.stages[idx] else {
                continue;
            };
            if f.instr.res == addr {
                return Some(f.result);
            }
            // Flush opcodes clear their op1 source at COMMIT.
            if matches!(f.instr.op, Opcode::MovFlush | Opcode::AddFlush) && f.instr.op1 == addr {
                return Some(Vector::ZERO);
            }
        }
        None
    }

    fn read_operand(
        &mut self,
        addr: Addr,
        instr: &Instruction,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
        shared_route_pop: &mut Option<TaggedVector>,
    ) -> Result<Vector, SimError> {
        match addr {
            Addr::Null => Ok(Vector::ZERO),
            Addr::Imm => Ok(instr.imm.unwrap_or(Vector::ZERO)),
            Addr::Reg(i) => {
                let base = self.regs.get(i as usize).copied().ok_or_else(|| {
                    SimError::AddressOutOfRange {
                        context: format!("register r{i} (of {NUM_REGS})"),
                    }
                })?;
                Ok(self.forwarded(addr).unwrap_or(base))
            }
            Addr::DataMem(a) => {
                let v = self.dmem.read(a as usize)?;
                Ok(self.forwarded(addr).unwrap_or(v))
            }
            Addr::Spad(a) => {
                let v = self.spad.read(a as usize)?;
                Ok(self.forwarded(addr).unwrap_or(v))
            }
            Addr::Port(d) => {
                // If a route pass-through pops the same direction, the single
                // popped entry feeds both the operand and the pass-through.
                let entry = self.pop_port(d, grid, r, c, cycle)?;
                if let Some(route) = instr.route {
                    if route.from == d {
                        *shared_route_pop = Some(entry);
                    }
                }
                Ok(entry.value)
            }
        }
    }

    fn pop_port(
        &mut self,
        d: Direction,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
    ) -> Result<TaggedVector, SimError> {
        // Error context is a copyable `ErrCtx` rendered only when the pop
        // actually fails: this path runs on every successful NoC read and
        // must not allocate.
        let ctx = ErrCtx::Pop { dir: d, pe: (r, c) };
        match d {
            Direction::North => grid.vertical(r, c).pop(cycle, ctx),
            Direction::West => grid.horizontal(r, c).pop(cycle, ctx),
            Direction::South | Direction::East => Err(SimError::AddressOutOfRange {
                context: format!(
                    "PE ({r},{c}) reads {d}: only south/east-bound dataflow is instantiated"
                ),
            }),
        }
    }

    fn push_port(
        &mut self,
        d: Direction,
        entry: TaggedVector,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
    ) -> Result<(), SimError> {
        let ctx = ErrCtx::Push { dir: d, pe: (r, c) };
        match d {
            Direction::South => grid.vertical(r + 1, c).push(entry, cycle, ctx),
            Direction::East => grid.horizontal(r, c + 1).push(entry, cycle, ctx),
            Direction::North | Direction::West => Err(SimError::AddressOutOfRange {
                context: format!(
                    "PE ({r},{c}) writes {d}: only south/east-bound dataflow is instantiated"
                ),
            }),
        }
    }

    /// LOAD stage: accepts `incoming` (if any) and resolves its operands,
    /// popping NoC ports as needed.
    ///
    /// # Errors
    ///
    /// Propagates address and NoC protocol errors.
    pub fn load(
        &mut self,
        incoming: Option<Instruction>,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
    ) -> Result<(), SimError> {
        debug_assert!(
            self.stages[self.load_idx].is_none(),
            "LOAD slot occupied at shift time"
        );
        let Some(instr) = incoming else {
            return Ok(());
        };
        if let Some(d) = instr.noc_conflict() {
            return Err(SimError::RouterConflict {
                cycle,
                pe: (r, c),
                direction: d.to_string(),
            });
        }
        self.counters.instrs += 1;
        if instr.op.is_compute() {
            self.counters.compute_instrs += 1;
        }
        if instr.op.is_mac() {
            self.counters.mac_instrs += 1;
        }
        let mut shared_pop = None;
        let op1 = self.read_operand(instr.op1, &instr, grid, r, c, cycle, &mut shared_pop)?;
        let op2 = self.read_operand(instr.op2, &instr, grid, r, c, cycle, &mut shared_pop)?;
        // Read-modify-write opcodes read the old result value here.
        let res_in = match instr.op {
            Opcode::MacV | Opcode::MacS | Opcode::Acc => match instr.res {
                Addr::Port(_) | Addr::Null | Addr::Imm => Vector::ZERO,
                a => {
                    let mut none = None;
                    self.read_operand(a, &instr, grid, r, c, cycle, &mut none)?
                }
            },
            _ => Vector::ZERO,
        };
        // Route pass-through pop (if not shared with an operand pop).
        let routed = match instr.route {
            Some(route) => match shared_pop {
                Some(e) => Some(e),
                None => Some(self.pop_port(route.from, grid, r, c, cycle)?),
            },
            None => None,
        };
        self.stages[self.load_idx] = Some(InFlight {
            instr,
            op1,
            op2,
            res_in,
            routed,
            result: Vector::ZERO,
        });
        Ok(())
    }

    /// EXECUTE stage: computes the lane result of the instruction loaded in
    /// the previous cycle.
    pub fn execute(&mut self) {
        let Some(f) = self.stages[self.exec_idx()].as_mut() else {
            return;
        };
        f.result = match f.instr.op {
            Opcode::Nop => Vector::ZERO,
            Opcode::Mov | Opcode::MovFlush => f.op1,
            Opcode::Add | Opcode::AddFlush => f.op1.add(f.op2),
            Opcode::Sub => {
                let mut out = [0; crate::isa::LANES];
                for (i, o) in out.iter_mut().enumerate() {
                    *o = f.op1.0[i].wrapping_sub(f.op2.0[i]);
                }
                Vector(out)
            }
            Opcode::Mul => f.op1.mul(f.op2),
            Opcode::MacV => f.res_in.mac(f.op1, f.op2),
            Opcode::MacS => f.res_in.mac(Vector::splat(f.op1.lane0()), f.op2),
            Opcode::Acc => f.res_in.add(f.op1),
            Opcode::RedSum => {
                let mut out = Vector::ZERO;
                out.0[0] = f.op1.reduce_sum();
                out
            }
            Opcode::Max => {
                let mut out = [0; crate::isa::LANES];
                for (i, o) in out.iter_mut().enumerate() {
                    *o = f.op1.0[i].max(f.op2.0[i]);
                }
                Vector(out)
            }
            Opcode::Min => {
                let mut out = [0; crate::isa::LANES];
                for (i, o) in out.iter_mut().enumerate() {
                    *o = f.op1.0[i].min(f.op2.0[i]);
                }
                Vector(out)
            }
        };
    }

    /// COMMIT stage: writes the result (memory / register / NoC push),
    /// performs the flush-clear of `MovFlush`/`AddFlush`, and pushes the
    /// pass-through payload. Returns the retiring instruction so the fabric
    /// can forward it to the eastern neighbour.
    ///
    /// # Errors
    ///
    /// Propagates address and NoC protocol errors.
    pub fn commit(
        &mut self,
        grid: &mut LinkGrid,
        r: usize,
        c: usize,
        cycle: u64,
    ) -> Result<Option<Instruction>, SimError> {
        let commit_idx = self.commit_idx();
        let Some(f) = self.stages[commit_idx].take() else {
            return Ok(None);
        };
        // Result write-back.
        if f.instr.op != Opcode::Nop {
            match f.instr.res {
                Addr::Null => {}
                Addr::Imm => {
                    return Err(SimError::AddressOutOfRange {
                        context: "write to immediate".into(),
                    })
                }
                Addr::Reg(i) => {
                    let slot = self.regs.get_mut(i as usize).ok_or_else(|| {
                        SimError::AddressOutOfRange {
                            context: format!("register r{i}"),
                        }
                    })?;
                    *slot = f.result;
                }
                Addr::DataMem(a) => self.dmem.write(a as usize, f.result)?,
                Addr::Spad(a) => self.spad.write(a as usize, f.result)?,
                Addr::Port(d) => {
                    self.push_port(
                        d,
                        TaggedVector {
                            value: f.result,
                            tag: f.instr.tag,
                        },
                        grid,
                        r,
                        c,
                        cycle,
                    )?;
                }
            }
        }
        // Flush-clear of the op1 source.
        if matches!(f.instr.op, Opcode::MovFlush | Opcode::AddFlush) {
            match f.instr.op1 {
                Addr::Spad(a) => self.spad.write(a as usize, Vector::ZERO)?,
                Addr::Reg(i) => {
                    let slot = self.regs.get_mut(i as usize).ok_or_else(|| {
                        SimError::AddressOutOfRange {
                            context: format!("register r{i}"),
                        }
                    })?;
                    *slot = Vector::ZERO;
                }
                a => {
                    return Err(SimError::AddressOutOfRange {
                        context: format!("flush-clear of non-storage operand {a}"),
                    })
                }
            }
        }
        // Pass-through push.
        if let (Some(route), Some(entry)) = (f.instr.route, f.routed) {
            self.push_port(route.to, entry, grid, r, c, cycle)?;
        }
        Ok(Some(f.instr))
    }

    /// Advances the pipeline by one stage (end of cycle): the stages are
    /// renamed by rotating the slot index — no in-flight state is moved.
    pub fn advance(&mut self) {
        debug_assert!(
            self.stages[self.commit_idx()].is_none(),
            "commit slot not consumed"
        );
        // The old COMMIT slot (now empty) becomes the new LOAD slot; the
        // old LOAD and EXECUTE slots become EXECUTE and COMMIT in place.
        self.load_idx = self.commit_idx();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid1x1() -> LinkGrid {
        LinkGrid::new(1, 1, 4, false)
    }

    /// Runs a single instruction through a 1×1 fabric's PE.
    fn run_one(pe: &mut Pe, grid: &mut LinkGrid, i: Instruction) {
        pe.load(Some(i), grid, 0, 0, 0).unwrap();
        pe.advance();
        pe.execute();
        pe.advance();
        pe.commit(grid, 0, 0, 2).unwrap();
    }

    #[test]
    fn mov_imm_to_reg() {
        let mut pe = Pe::new(4, 4);
        let mut g = grid1x1();
        let i = Instruction::new(Opcode::Mov, Addr::Imm, Addr::Null, Addr::Reg(1))
            .with_imm(Vector::splat(9));
        run_one(&mut pe, &mut g, i);
        assert_eq!(pe.reg(1), Vector::splat(9));
        assert_eq!(pe.counters().instrs, 1);
        assert_eq!(pe.counters().compute_instrs, 0);
    }

    #[test]
    fn macs_accumulates_into_spad() {
        let mut pe = Pe::new(4, 4);
        let mut g = grid1x1();
        pe.dmem.preload(0, &[Vector([1, 2, 3, 4])]);
        let mac = Instruction::new(Opcode::MacS, Addr::Imm, Addr::DataMem(0), Addr::Spad(2))
            .with_imm(Vector::splat(3));
        run_one(&mut pe, &mut g, mac);
        run_one(&mut pe, &mut g, mac);
        assert_eq!(pe.spad.read(2).unwrap(), Vector([6, 12, 18, 24]));
        assert_eq!(pe.counters().mac_instrs, 2);
    }

    #[test]
    fn back_to_back_mac_forwarding() {
        // Two MACs to the same spad slot in consecutive cycles must see each
        // other's in-flight values (RAW across the pipeline).
        let mut pe = Pe::new(4, 4);
        let mut g = grid1x1();
        pe.dmem.preload(0, &[Vector::splat(1)]);
        let mac = Instruction::new(Opcode::MacS, Addr::Imm, Addr::DataMem(0), Addr::Spad(0))
            .with_imm(Vector::splat(1));
        // Pipelined: issue 3 MACs back-to-back.
        pe.load(Some(mac), &mut g, 0, 0, 0).unwrap();
        pe.advance();
        pe.execute();
        pe.load(Some(mac), &mut g, 0, 0, 1).unwrap();
        pe.advance();
        pe.commit(&mut g, 0, 0, 2).unwrap();
        pe.execute();
        pe.load(Some(mac), &mut g, 0, 0, 2).unwrap();
        pe.advance();
        pe.commit(&mut g, 0, 0, 3).unwrap();
        pe.execute();
        pe.advance();
        pe.commit(&mut g, 0, 0, 4).unwrap();
        assert_eq!(pe.spad.read(0).unwrap(), Vector::splat(3));
    }

    #[test]
    fn movflush_clears_source() {
        let mut pe = Pe::new(4, 4);
        let mut g = LinkGrid::new(1, 1, 4, false);
        pe.spad.write(1, Vector::splat(7)).unwrap();
        let i = Instruction::new(
            Opcode::MovFlush,
            Addr::Spad(1),
            Addr::Null,
            Addr::Port(Direction::South),
        )
        .with_tag(42);
        run_one(&mut pe, &mut g, i);
        assert_eq!(pe.spad.read(1).unwrap(), Vector::ZERO);
        let out = g.vertical(1, 0).pop(3, "sink").unwrap();
        assert_eq!(out.tag, 42);
        assert_eq!(out.value, Vector::splat(7));
    }

    #[test]
    fn route_pass_through_preserves_tag() {
        let mut pe = Pe::new(4, 4);
        // 2-row grid so PE (0,0) has a real south link; feed its north edge.
        let mut g = LinkGrid::new(2, 1, 4, true);
        g.vertical(0, 0)
            .push(
                TaggedVector {
                    value: Vector::splat(5),
                    tag: 11,
                },
                0,
                "feed",
            )
            .unwrap();
        let i = Instruction::NOP;
        let i = Instruction {
            op: Opcode::Nop,
            ..i
        }
        .with_route(Direction::North, Direction::South);
        run_one(&mut pe, &mut g, i);
        let out = g.vertical(1, 0).pop(3, "t").unwrap();
        assert_eq!(out.tag, 11);
        assert_eq!(out.value, Vector::splat(5));
    }

    #[test]
    fn shared_pop_feeds_operand_and_route() {
        // Mov op1=North res=Spad with route North→South: one pop serves both.
        let mut pe = Pe::new(4, 4);
        let mut g = LinkGrid::new(2, 1, 4, true);
        g.vertical(0, 0)
            .push(
                TaggedVector {
                    value: Vector([1, 2, 3, 4]),
                    tag: 3,
                },
                0,
                "feed",
            )
            .unwrap();
        let i = Instruction::new(
            Opcode::Mov,
            Addr::Port(Direction::North),
            Addr::Null,
            Addr::Spad(0),
        )
        .with_route(Direction::North, Direction::South);
        run_one(&mut pe, &mut g, i);
        assert_eq!(pe.spad.read(0).unwrap(), Vector([1, 2, 3, 4]));
        let fwd = g.vertical(1, 0).pop(3, "t").unwrap();
        assert_eq!(fwd.tag, 3);
        assert_eq!(fwd.value, Vector([1, 2, 3, 4]));
    }

    #[test]
    fn pop_empty_link_is_protocol_error() {
        let mut pe = Pe::new(4, 4);
        let mut g = LinkGrid::new(2, 1, 4, true);
        let i = Instruction::new(
            Opcode::Mov,
            Addr::Port(Direction::North),
            Addr::Null,
            Addr::Reg(0),
        );
        assert!(matches!(
            pe.load(Some(i), &mut g, 0, 0, 0),
            Err(SimError::Deadlock { .. })
        ));
    }

    #[test]
    fn router_conflict_detected_at_load() {
        let mut pe = Pe::new(4, 4);
        let mut g = grid1x1();
        let i = Instruction::new(
            Opcode::Mov,
            Addr::Port(Direction::North),
            Addr::Port(Direction::North),
            Addr::Reg(0),
        );
        assert!(matches!(
            pe.load(Some(i), &mut g, 0, 0, 0),
            Err(SimError::RouterConflict { .. })
        ));
    }

    #[test]
    fn redsum_and_addflush() {
        let mut pe = Pe::new(4, 4);
        let mut g = grid1x1();
        // reg0 = [1,2,3,4]
        run_one(
            &mut pe,
            &mut g,
            Instruction::new(Opcode::Mov, Addr::Imm, Addr::Null, Addr::Reg(0))
                .with_imm(Vector([1, 2, 3, 4])),
        );
        // reg1 = redsum(reg0) = 10 in lane 0
        run_one(
            &mut pe,
            &mut g,
            Instruction::new(Opcode::RedSum, Addr::Reg(0), Addr::Null, Addr::Reg(1)),
        );
        assert_eq!(pe.reg(1), Vector([10, 0, 0, 0]));
        // AddFlush: reg2 = reg0 + reg1; reg0 cleared.
        run_one(
            &mut pe,
            &mut g,
            Instruction::new(Opcode::AddFlush, Addr::Reg(0), Addr::Reg(1), Addr::Reg(2)),
        );
        assert_eq!(pe.reg(2), Vector([11, 2, 3, 4]));
        assert_eq!(pe.reg(0), Vector::ZERO);
    }

    #[test]
    fn nop_produces_no_activity() {
        let mut pe = Pe::new(4, 4);
        let mut g = grid1x1();
        run_one(&mut pe, &mut g, Instruction::NOP);
        assert_eq!(pe.counters().instrs, 1);
        assert_eq!(pe.counters().compute_instrs, 0);
        assert_eq!(pe.dmem.read_count(), 0);
        assert!(pe.pipeline_empty());
    }
}
