//! The Canon fabric: PE array + orchestrators + NoC + edge movers, advanced
//! one cycle at a time.
//!
//! ## Cycle structure
//!
//! Each [`Fabric::step`] performs, in order:
//!
//! 1. **edge feed** — the north-edge stream movers push at most one token per
//!    column into the north edge FIFOs (SDDMM's `A` stream);
//! 2. **credit delivery** — south-channel credits returned by downstream pops
//!    become visible after [`CanonConfig::orch_msg_latency`] cycles;
//! 3. **orchestrator phase** — every row's FSM observes its meta stream head,
//!    delivered message, credits, and north-FIFO occupancy, and issues one
//!    instruction into column 0 (possibly NOP);
//! 4. **COMMIT** for all PEs (NoC pushes happen here), collecting retiring
//!    instructions for eastward forwarding;
//! 5. **EXECUTE** for all PEs;
//! 6. **LOAD** for all PEs — column 0 receives this cycle's orchestrator
//!    instruction, column `c > 0` receives the instruction that retired from
//!    column `c-1` **last** cycle, reproducing the 3-cycle stagger of §2.1
//!    (issue at cycle *n* reaches column *c* at cycle *n + 3c*);
//! 7. pipeline advance and edge-sink draining into the collectors.
//!
//! ## Hot-path discipline
//!
//! [`Fabric::step`] is the simulator's cost center (it runs once per
//! simulated cycle for every sweep cell and figure), so its steady state is
//! allocation-free:
//!
//! * NoC error context is carried as copyable [`ErrCtx`](crate::noc::ErrCtx)
//!   descriptors and rendered only when a protocol error fires;
//! * edge sinks drain **in place** — step 7 pops each south/east sink link
//!   directly into the collector vectors (no per-edge temporary `Vec`), and
//!   the links themselves are fixed-capacity ring buffers;
//! * row programs are enum-dispatched ([`RowProgram`]) rather than
//!   `Box<dyn OrchProgram>`, removing the vtable call from the per-cycle
//!   orchestrator phase.
//!
//! The only remaining steady-state allocations are the amortized growth of
//! the collector vectors themselves.
//!
//! ## Flow control
//!
//! The paper's "dynamically managed circuit-switching" avoids in-array
//! backpressure: orchestrators, knowing the array's deterministic timing,
//! make all congestion decisions at the periphery. The simulator realises
//! this as an orchestrator-level credit protocol on each row's southbound
//! channel plus a bounded message channel between vertically adjacent
//! orchestrators; the per-column FIFOs are then provably bounded, and the
//! simulator verifies (rather than provides) that bound — an overflow or
//! underflow aborts the run as a protocol error.

use crate::config::CanonConfig;
use crate::isa::{Addr, Direction, Instruction, Vector, LANES};
use crate::noc::{LinkGrid, TaggedVector};
use crate::orchestrator::{MetaToken, OrchIo, OrchMessage, OrchProgram, RowProgram};
use crate::pe::Pe;
use crate::stats::{RunReport, Stats};
use crate::SimError;
use std::collections::VecDeque;

/// A value delivered to a south/east edge collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectedEntry {
    /// Producer-attached tag (output row id or linear output index).
    pub tag: u32,
    /// The array lane it exited from (column index for the south edge, row
    /// index for the east edge).
    pub lane: usize,
    /// Payload.
    pub value: Vector,
    /// Cycle at which it exited the array.
    pub cycle: u64,
}

struct RowState {
    program: Option<RowProgram>,
    meta: VecDeque<MetaToken>,
    south_credits: usize,
    inbox: VecDeque<(u64, OrchMessage)>,
    credit_returns: VecDeque<u64>,
    last_state: Option<u8>,
    orch_steps: u64,
    transitions: u64,
    messages_sent: u64,
    stalls: u64,
    meta_consumed: u64,
}

impl RowState {
    fn new(initial_credits: usize) -> RowState {
        RowState {
            program: None,
            meta: VecDeque::new(),
            south_credits: initial_credits,
            inbox: VecDeque::new(),
            credit_returns: VecDeque::new(),
            last_state: None,
            orch_steps: 0,
            transitions: 0,
            messages_sent: 0,
            stalls: 0,
            meta_consumed: 0,
        }
    }

    fn done(&self) -> bool {
        self.program.as_ref().is_none_or(|p| p.done())
    }
}

/// The simulated Canon fabric.
pub struct Fabric {
    cfg: CanonConfig,
    pes: Vec<Pe>,
    grid: LinkGrid,
    rows: Vec<RowState>,
    /// Instruction to inject into each PE this cycle (column > 0 slots are
    /// written by the previous cycle's commits).
    inject_now: Vec<Option<Instruction>>,
    /// Instructions retiring this cycle, to inject next cycle one column east.
    inject_next: Vec<Option<Instruction>>,
    feeders: Vec<VecDeque<TaggedVector>>,
    feeder_bytes_per_token: u64,
    south_collected: Vec<CollectedEntry>,
    east_collected: Vec<CollectedEntry>,
    cycle: u64,
    extra_offchip_read: u64,
    extra_offchip_write: u64,
    /// Host wall time accumulated inside [`Fabric::run`] (ns).
    wall_ns: u64,
}

impl Fabric {
    /// Builds a fabric for the given configuration. `north_edge_feeder`
    /// selects whether the north edge is a token stream (SDDMM) or reads as
    /// zero (SpMM-family kernels).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `pipe_depth != 3` (the
    /// paper's fixed PE pipeline latency; see §2.1).
    pub fn new(cfg: &CanonConfig, north_edge_feeder: bool) -> Fabric {
        cfg.validate().expect("invalid CanonConfig");
        assert_eq!(
            cfg.pipe_depth, 3,
            "the PE pipeline is 3 stages (LOAD/EXECUTE/COMMIT)"
        );
        let n = cfg.pe_count();
        let initial_credits = cfg.link_fifo_depth - 2;
        let mut rows = Vec::with_capacity(cfg.rows);
        for r in 0..cfg.rows {
            let credits = if r + 1 == cfg.rows {
                usize::MAX / 2 // bottom row flushes into the edge sink
            } else {
                initial_credits
            };
            rows.push(RowState::new(credits));
        }
        Fabric {
            pes: (0..n)
                .map(|_| Pe::new(cfg.dmem_words, cfg.spad_entries))
                .collect(),
            grid: LinkGrid::new(cfg.rows, cfg.cols, cfg.link_fifo_depth, north_edge_feeder),
            rows,
            inject_now: vec![None; n],
            inject_next: vec![None; n],
            feeders: vec![VecDeque::new(); cfg.cols],
            feeder_bytes_per_token: LANES as u64,
            south_collected: Vec::new(),
            east_collected: Vec::new(),
            cycle: 0,
            extra_offchip_read: 0,
            extra_offchip_write: 0,
            wall_ns: 0,
            cfg: cfg.clone(),
        }
    }

    /// The configuration this fabric was built with.
    pub fn config(&self) -> &CanonConfig {
        &self.cfg
    }

    /// Mutable access to a PE (kernel mappers preload data memories).
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn pe_mut(&mut self, r: usize, c: usize) -> &mut Pe {
        assert!(
            r < self.cfg.rows && c < self.cfg.cols,
            "PE index out of bounds"
        );
        &mut self.pes[r * self.cfg.cols + c]
    }

    /// Shared access to a PE.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn pe(&self, r: usize, c: usize) -> &Pe {
        assert!(
            r < self.cfg.rows && c < self.cfg.cols,
            "PE index out of bounds"
        );
        &self.pes[r * self.cfg.cols + c]
    }

    /// Installs an orchestrator program on row `r`. Kernel FSMs convert
    /// directly (`fabric.set_program(r, SpmmFsm::new(...))`); arbitrary
    /// programs go through [`RowProgram::custom`].
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds.
    pub fn set_program(&mut self, r: usize, program: impl Into<RowProgram>) {
        self.rows[r].program = Some(program.into());
    }

    /// Sets row `r`'s input meta-data stream.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds.
    pub fn set_meta_stream(&mut self, r: usize, stream: Vec<MetaToken>) {
        self.rows[r].meta = stream.into();
    }

    /// Queues north-edge stream tokens for column `c` (one token enters the
    /// array per column per cycle at most).
    ///
    /// # Panics
    ///
    /// Panics when `c` is out of bounds.
    pub fn set_feeder(&mut self, c: usize, tokens: Vec<TaggedVector>) {
        self.feeders[c] = tokens.into();
    }

    /// Accounts additional off-chip read traffic (operand streams / preload)
    /// known to the kernel mapper.
    pub fn add_offchip_read_bytes(&mut self, bytes: u64) {
        self.extra_offchip_read += bytes;
    }

    /// Accounts additional off-chip write traffic.
    pub fn add_offchip_write_bytes(&mut self, bytes: u64) {
        self.extra_offchip_write += bytes;
    }

    /// Values that exited the south edge so far.
    pub fn south_collected(&self) -> &[CollectedEntry] {
        &self.south_collected
    }

    /// Values that exited the east edge so far.
    pub fn east_collected(&self) -> &[CollectedEntry] {
        &self.east_collected
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    fn instr_pushes_south(i: &Instruction) -> bool {
        matches!(i.res, Addr::Port(Direction::South))
            || i.route.is_some_and(|r| r.to == Direction::South)
    }

    fn instr_pops_north(i: &Instruction) -> bool {
        matches!(i.op1, Addr::Port(Direction::North))
            || matches!(i.op2, Addr::Port(Direction::North))
            || i.route.is_some_and(|r| r.from == Direction::North)
    }

    /// Advances the fabric by one cycle.
    ///
    /// # Errors
    ///
    /// Returns protocol errors (router conflicts, FIFO over/underflow,
    /// address violations) detected during the cycle.
    pub fn step(&mut self) -> Result<(), SimError> {
        let now = self.cycle;
        let cols = self.cfg.cols;
        let nrows = self.cfg.rows;

        // 1. North-edge feeders: at most one token per column per cycle.
        for c in 0..cols {
            if let Some(&tok) = self.feeders[c].front() {
                let link = self.grid.vertical(0, c);
                if link.len() < self.cfg.link_fifo_depth {
                    link.push(tok, now, "north feeder")?;
                    self.feeders[c].pop_front();
                    self.extra_offchip_read += self.feeder_bytes_per_token;
                }
            }
        }

        // 2. Credit delivery.
        for row in &mut self.rows {
            while row
                .credit_returns
                .front()
                .is_some_and(|&deliver| deliver <= now)
            {
                row.credit_returns.pop_front();
                row.south_credits += 1;
            }
        }

        // 3. Orchestrator phase. A finished orchestrator is still stepped
        // while messages are pending: its FSM keeps the bypass transitions of
        // the DONE state so upstream rows can drain through it.
        for r in 0..nrows {
            self.inject_now[r * cols] = None;
            let has_deliverable_msg = self.rows[r]
                .inbox
                .front()
                .is_some_and(|&(deliver, _)| deliver <= now);
            if self.rows[r].program.is_none() || (self.rows[r].done() && !has_deliverable_msg) {
                continue;
            }
            let io = OrchIo {
                cycle: now,
                input: self.rows[r].meta.front().copied(),
                msg: self.rows[r]
                    .inbox
                    .front()
                    .filter(|&&(deliver, _)| deliver <= now)
                    .map(|&(_, m)| m),
                south_credits: self.rows[r].south_credits,
                msg_slot_free: r + 1 >= nrows
                    || self.rows[r + 1].inbox.len() < self.cfg.orch_msg_capacity,
                north_tokens: self.grid.vertical_ref(r, 0).len(),
            };
            let action = {
                let program = self.rows[r]
                    .program
                    .as_mut()
                    .expect("checked present above");
                program.step(&io)
            };
            let row = &mut self.rows[r];
            row.orch_steps += 1;
            if row.last_state != Some(action.state_id) {
                if row.last_state.is_some() {
                    row.transitions += 1;
                }
                row.last_state = Some(action.state_id);
            }
            if action.stalled {
                row.stalls += 1;
            }
            if action.consume_input {
                row.meta.pop_front();
                row.meta_consumed += 1;
            }
            if action.consume_msg {
                row.inbox.pop_front();
            }
            let instr = action.instr;
            if Self::instr_pushes_south(&instr) && r + 1 < nrows {
                if self.rows[r].south_credits == 0 {
                    return Err(SimError::Deadlock {
                        cycle: now,
                        waiting_on: format!("row {r} issued a south push without credit (FSM bug)"),
                    });
                }
                self.rows[r].south_credits -= 1;
            }
            if Self::instr_pops_north(&instr) && r > 0 {
                let deliver = now + self.cfg.orch_msg_latency;
                self.rows[r - 1].credit_returns.push_back(deliver);
            }
            if let Some(m) = action.msg_out {
                self.rows[r].messages_sent += 1;
                if r + 1 < nrows {
                    if self.rows[r + 1].inbox.len() >= self.cfg.orch_msg_capacity {
                        return Err(SimError::Deadlock {
                            cycle: now,
                            waiting_on: format!("row {r} overflowed the message channel"),
                        });
                    }
                    let deliver = now + self.cfg.orch_msg_latency;
                    self.rows[r + 1].inbox.push_back((deliver, m));
                }
            }
            self.inject_now[r * cols] = Some(instr);
        }

        // 4. COMMIT phase (NoC pushes), recording eastward forwards.
        for r in 0..nrows {
            for c in 0..cols {
                let idx = r * cols + c;
                let retired = self.pes[idx].commit(&mut self.grid, r, c, now)?;
                if c + 1 < cols {
                    self.inject_next[idx + 1] = retired;
                }
            }
        }

        // 5. EXECUTE phase.
        for pe in &mut self.pes {
            pe.execute();
        }

        // 6. LOAD phase.
        for r in 0..nrows {
            for c in 0..cols {
                let idx = r * cols + c;
                let incoming = self.inject_now[idx].take();
                self.pes[idx].load(incoming, &mut self.grid, r, c, now)?;
            }
        }

        // 7. Advance pipelines; next cycle's column >0 injections become
        // current.
        for pe in &mut self.pes {
            pe.advance();
        }
        std::mem::swap(&mut self.inject_now, &mut self.inject_next);
        for slot in self.inject_next.iter_mut() {
            *slot = None;
        }

        // 8. Drain edge sinks straight into the collectors: the sink links
        // are popped in place, with no per-edge temporary collection.
        for c in 0..cols {
            let link = self.grid.vertical(nrows, c);
            while let Some(e) = link.try_pop() {
                self.south_collected.push(CollectedEntry {
                    tag: e.tag,
                    lane: c,
                    value: e.value,
                    cycle: now,
                });
            }
        }
        for r in 0..nrows {
            let link = self.grid.horizontal(r, cols);
            while let Some(e) = link.try_pop() {
                self.east_collected.push(CollectedEntry {
                    tag: e.tag,
                    lane: r,
                    value: e.value,
                    cycle: now,
                });
            }
        }

        self.cycle += 1;
        Ok(())
    }

    /// True when all orchestrators are done, all pipelines and links are
    /// empty, and no messages or feeder tokens are pending.
    pub fn quiescent(&self) -> bool {
        self.rows.iter().all(RowState::done)
            && self.rows.iter().all(|r| r.inbox.is_empty())
            && self.pes.iter().all(Pe::pipeline_empty)
            && self.grid.internal_quiescent()
            && !self.grid.north_edge_pending()
            && self.feeders.iter().all(VecDeque::is_empty)
            && self.inject_now.iter().all(Option::is_none)
            && self.inject_next.iter().all(Option::is_none)
    }

    /// Runs until quiescent, returning the run report.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors and reports a [`SimError::Deadlock`] if the
    /// watchdog budget is exhausted before the fabric drains.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        let work: u64 = self.rows.iter().map(|r| r.meta.len() as u64).sum::<u64>()
            + self.feeders.iter().map(|f| f.len() as u64).sum::<u64>();
        let budget = self
            .cfg
            .watchdog_factor
            .saturating_mul(work + (self.cfg.rows + self.cfg.cols) as u64)
            .saturating_add(self.cfg.watchdog_slack);
        let start = self.cycle;
        let wall_start = std::time::Instant::now();
        let result = loop {
            if self.quiescent() {
                break Ok(());
            }
            if self.cycle - start > budget {
                let waiting: Vec<String> = self
                    .rows
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| !r.done())
                    .map(|(i, r)| format!("row {i} ({} meta left)", r.meta.len()))
                    .collect();
                break Err(SimError::Deadlock {
                    cycle: self.cycle,
                    waiting_on: if waiting.is_empty() {
                        "pipeline/NoC drain".into()
                    } else {
                        waiting.join(", ")
                    },
                });
            }
            if let Err(e) = self.step() {
                break Err(e);
            }
        };
        // Accumulated on the error path too, so a report taken after a
        // watchdog/protocol abort still attributes the wall time spent.
        self.wall_ns += wall_start.elapsed().as_nanos() as u64;
        result?;
        Ok(self.report())
    }

    /// Builds the report for the cycles simulated so far.
    pub fn report(&self) -> RunReport {
        let mut stats = Stats::new();
        for pe in &self.pes {
            let c = pe.counters();
            stats.instrs_executed += c.instrs;
            stats.compute_instrs += c.compute_instrs;
            stats.mac_instrs += c.mac_instrs;
            stats.dmem_reads += pe.dmem.read_count();
            stats.dmem_writes += pe.dmem.write_count();
            stats.spad_reads += pe.spad.read_count();
            stats.spad_writes += pe.spad.write_count();
        }
        stats.noc_hops = self.grid.total_pushes();
        for row in &self.rows {
            stats.orch_steps += row.orch_steps;
            stats.orch_transitions += row.transitions;
            stats.orch_messages += row.messages_sent;
            stats.stall_cycles += row.stalls;
            stats.meta_tokens += row.meta_consumed;
        }
        stats.offchip_read_bytes = self.extra_offchip_read;
        stats.offchip_write_bytes = self.extra_offchip_write;
        RunReport {
            cycles: self.cycle,
            pes: self.cfg.pe_count(),
            stats,
            wall_ns: self.wall_ns,
        }
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("rows", &self.cfg.rows)
            .field("cols", &self.cfg.cols)
            .field("cycle", &self.cycle)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Opcode;
    use crate::orchestrator::OrchAction;

    /// A scripted orchestrator that plays back a fixed instruction sequence.
    struct Script {
        instrs: VecDeque<Instruction>,
    }

    impl OrchProgram for Script {
        fn step(&mut self, _io: &OrchIo) -> OrchAction {
            match self.instrs.pop_front() {
                Some(i) => OrchAction {
                    instr: i,
                    ..OrchAction::nop(0)
                },
                None => OrchAction::nop(0),
            }
        }
        fn done(&self) -> bool {
            self.instrs.is_empty()
        }
    }

    fn small_cfg() -> CanonConfig {
        CanonConfig {
            rows: 2,
            cols: 3,
            dmem_words: 16,
            spad_entries: 4,
            ..CanonConfig::default()
        }
    }

    #[test]
    fn staggered_issue_reaches_column_c_at_3c() {
        // One instruction that pushes its dmem word south; dmem preloaded
        // with distinct values per column. The south-edge collector records
        // the exit cycle per column: issue at cycle 0 → commit at column c at
        // cycle 3c + 2.
        let cfg = small_cfg();
        let mut f = Fabric::new(&cfg, false);
        for c in 0..3 {
            f.pe_mut(1, c).dmem.preload(0, &[Vector::splat(c as i32)]);
        }
        let flush = Instruction::new(
            Opcode::Mov,
            Addr::DataMem(0),
            Addr::Null,
            Addr::Port(Direction::South),
        )
        .with_tag(7);
        f.set_program(
            1,
            RowProgram::custom(Script {
                instrs: vec![flush].into(),
            }),
        );
        f.run().unwrap();
        let got = f.south_collected();
        assert_eq!(got.len(), 3);
        for e in got {
            assert_eq!(e.tag, 7);
            assert_eq!(e.value, Vector::splat(e.lane as i32));
            // LOAD at 3c, COMMIT at 3c + 2.
            assert_eq!(e.cycle, 3 * e.lane as u64 + 2);
        }
    }

    #[test]
    fn pipelined_throughput_one_instruction_per_cycle() {
        // N flushes issued back-to-back: last exit cycle = (N-1) + 3(C-1) + 2.
        let cfg = small_cfg();
        let mut f = Fabric::new(&cfg, false);
        let n = 5;
        let instrs: Vec<Instruction> = (0..n)
            .map(|i| {
                Instruction::new(
                    Opcode::Mov,
                    Addr::Imm,
                    Addr::Null,
                    Addr::Port(Direction::South),
                )
                .with_imm(Vector::splat(i as i32))
                .with_tag(i as u32)
            })
            .collect();
        f.set_program(
            1,
            RowProgram::custom(Script {
                instrs: instrs.into(),
            }),
        );
        f.run().unwrap();
        let got = f.south_collected();
        assert_eq!(got.len(), n * 3);
        let last = got.iter().map(|e| e.cycle).max().unwrap();
        assert_eq!(last, (n as u64 - 1) + 3 * 2 + 2);
    }

    #[test]
    fn quiescent_initially_and_after_run() {
        let cfg = small_cfg();
        let mut f = Fabric::new(&cfg, false);
        assert!(f.quiescent());
        f.set_program(
            0,
            RowProgram::custom(Script {
                instrs: VecDeque::new(),
            }),
        );
        let r = f.run().unwrap();
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn watchdog_fires_on_stuck_program() {
        struct Stuck;
        impl OrchProgram for Stuck {
            fn step(&mut self, _io: &OrchIo) -> OrchAction {
                OrchAction::stall(0)
            }
            fn done(&self) -> bool {
                false
            }
        }
        let mut cfg = small_cfg();
        cfg.watchdog_factor = 1;
        cfg.watchdog_slack = 50;
        let mut f = Fabric::new(&cfg, false);
        f.set_program(0, RowProgram::custom(Stuck));
        assert!(matches!(f.run(), Err(SimError::Deadlock { .. })));
    }

    #[test]
    fn report_counts_instructions_and_stalls() {
        let cfg = small_cfg();
        let mut f = Fabric::new(&cfg, false);
        let instrs: Vec<Instruction> = vec![Instruction::NOP; 4];
        f.set_program(
            0,
            RowProgram::custom(Script {
                instrs: instrs.into(),
            }),
        );
        let r = f.run().unwrap();
        // 4 NOPs each traverse 3 PEs.
        assert_eq!(r.stats.instrs_executed, 12);
        assert_eq!(r.stats.compute_instrs, 0);
        assert_eq!(r.stats.orch_steps, 4);
    }

    #[test]
    fn feeder_rate_is_one_token_per_cycle_per_column() {
        let cfg = small_cfg();
        let mut f = Fabric::new(&cfg, true);
        // The popping instruction traverses all three columns, so every
        // column needs a feeder stream.
        for c in 0..3 {
            let tokens: Vec<TaggedVector> = (0..3)
                .map(|i| TaggedVector {
                    value: Vector::splat(i),
                    tag: i as u32,
                })
                .collect();
            f.set_feeder(c, tokens);
        }
        // A scripted program that pops north three times on row 0.
        let pop = Instruction::new(
            Opcode::Mov,
            Addr::Port(Direction::North),
            Addr::Null,
            Addr::Spad(0),
        );
        f.set_program(
            0,
            RowProgram::custom(Script {
                instrs: vec![pop, pop, pop].into(),
            }),
        );
        let r = f.run().unwrap();
        assert!(r.cycles >= 3);
        // 3 tokens × 3 columns × LANES bytes accounted as off-chip reads.
        assert_eq!(r.stats.offchip_read_bytes, 9 * LANES as u64);
    }
}
