//! The Canon fabric: PE array + orchestrators + NoC + edge movers, advanced
//! one cycle at a time.
//!
//! ## Cycle structure
//!
//! Each [`Fabric::step`] performs, in order:
//!
//! 1. **edge feed** — the north-edge stream movers push at most one token per
//!    column into the north edge FIFOs (SDDMM's `A` stream);
//! 2. **orchestrator phase** — every live row delivers its due south-channel
//!    credits (visible after [`CanonConfig::orch_msg_latency`] cycles), then
//!    its FSM observes its meta stream head, delivered message, credits, and
//!    north-FIFO occupancy, and issues one instruction into column 0
//!    (possibly NOP); fully-drained rows (done FSM, no pending messages or
//!    credit returns) skip the phase entirely;
//! 3. **active sweep** — COMMIT (NoC pushes happen here, retiring
//!    instructions are forwarded eastward) and LOAD (which also computes the
//!    EXECUTE stage's lane result eagerly — see [`crate::pe`]) run for every
//!    PE in the active set, in PE-id order; column 0 receives this cycle's
//!    orchestrator instruction, column `c > 0` receives the instruction that
//!    retired from column `c-1` **last** cycle, reproducing the 3-cycle
//!    stagger of §2.1 (issue at cycle *n* reaches column *c* at cycle
//!    *n + 3c*);
//! 4. pipeline advance (an O(1) rotation of the shared stage index) and edge
//!    -sink draining into the collectors, gated on this cycle's sink pushes.
//!
//! ## Active-set scheduling
//!
//! The sweep of step 3 iterates an [`ActiveSet`] bitset instead of the whole
//! array: a PE enters the set when an instruction is injected towards it
//! (orchestrator issue, eastward forwarding) or a NoC push lands on one of
//! its input links, and leaves at end of cycle once its pipeline, pending
//! injections, and input links are all empty. Phases never visit drained
//! PEs, and the per-cycle quiescence test collapses from a whole-fabric
//! sweep to `active.is_empty()` plus O(rows) of orchestrator state.
//!
//! The fused per-PE ordering (COMMIT then LOAD of one PE before the next
//! PE) is cycle-identical to the former phase-barrier sweeps because only
//! south/east-bound dataflow is instantiated: every link's producer has a
//! smaller PE id than its consumer, so a same-cycle push is always
//! processed before the pop that observes it, and EXECUTE/LOAD touch only
//! PE-local state (`tests/cycle_invariance.rs` pins this equivalence).
//!
//! ## Hot-path discipline
//!
//! [`Fabric::step`] is the simulator's cost center (it runs once per
//! simulated cycle for every sweep cell and figure), so its steady state is
//! allocation-free:
//!
//! * NoC error context is carried as copyable [`ErrCtx`](crate::noc::ErrCtx)
//!   descriptors and rendered only when a protocol error fires;
//! * edge sinks drain **in place** — step 4 pops each south/east sink link
//!   directly into the collector vectors (no per-edge temporary `Vec`), and
//!   the links themselves are fixed-capacity ring buffers;
//! * row programs are enum-dispatched ([`RowProgram`]) rather than
//!   `Box<dyn OrchProgram>`, removing the vtable call from the per-cycle
//!   orchestrator phase;
//! * PE state is struct-of-arrays ([`PeArray`]): the stage slot a phase
//!   touches is dense across PEs, and the pipeline advance is one index
//!   bump for the whole fabric.
//!
//! The only remaining steady-state allocations are the amortized growth of
//! the collector vectors themselves.
//!
//! ## Flow control
//!
//! The paper's "dynamically managed circuit-switching" avoids in-array
//! backpressure: orchestrators, knowing the array's deterministic timing,
//! make all congestion decisions at the periphery. The simulator realises
//! this as an orchestrator-level credit protocol on each row's southbound
//! channel plus a bounded message channel between vertically adjacent
//! orchestrators; the per-column FIFOs are then provably bounded, and the
//! simulator verifies (rather than provides) that bound — an overflow or
//! underflow aborts the run as a protocol error.

use crate::config::CanonConfig;
use crate::isa::{Direction, Instruction, Vector, LANES};
use crate::noc::{LinkGrid, TaggedVector};
use crate::orchestrator::{MetaToken, OrchIo, OrchMessage, OrchProgram, RowProgram};
use crate::pe::{PeArray, PeMut, PeRef};
use crate::sched::ActiveSet;
use crate::stats::{RunReport, Stats};
use crate::SimError;
use std::collections::VecDeque;

/// A value delivered to a south/east edge collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectedEntry {
    /// Producer-attached tag (output row id or linear output index).
    pub tag: u32,
    /// The array lane it exited from (column index for the south edge, row
    /// index for the east edge).
    pub lane: usize,
    /// Payload.
    pub value: Vector,
    /// Cycle at which it exited the array.
    pub cycle: u64,
}

struct RowState {
    program: Option<RowProgram>,
    /// Input meta-data stream, consumed through `meta_pos` (a cursor into an
    /// immutable `Vec` is cheaper per cycle than deque pops, and the
    /// orchestrator reads the head every live row-step).
    meta: Vec<MetaToken>,
    meta_pos: usize,
    south_credits: usize,
    inbox: VecDeque<(u64, OrchMessage)>,
    credit_returns: VecDeque<u64>,
    last_state: Option<u8>,
    orch_steps: u64,
    transitions: u64,
    messages_sent: u64,
    stalls: u64,
    meta_consumed: u64,
}

/// One entry of the staggered instruction network's injection queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Inject {
    /// Nothing to load.
    #[default]
    None,
    /// A bubble ([`Instruction::is_plain_nop`]) — carried as this tag alone,
    /// no instruction record moves.
    Bubble,
    /// A real instruction; the payload array holds it.
    Instr,
}

/// Per-PE injection slots of the instruction network, struct-of-arrays: the
/// one-byte kind tags are scanned/updated on every hop, the 44-byte payload
/// is touched only for real instructions. Bubbles — the majority of the
/// traffic in sparse bands (row ends, stalls) — march east one tag byte per
/// hop.
#[derive(Debug)]
struct InjectQueue {
    kind: Vec<Inject>,
    instr: Vec<Instruction>,
}

impl InjectQueue {
    fn new(n: usize) -> InjectQueue {
        InjectQueue {
            kind: vec![Inject::None; n],
            instr: vec![Instruction::NOP; n],
        }
    }

    /// Classifies and stores one issued instruction.
    #[inline]
    fn put(&mut self, idx: usize, instr: Instruction) {
        if instr.is_plain_nop() {
            self.kind[idx] = Inject::Bubble;
        } else {
            self.kind[idx] = Inject::Instr;
            self.instr[idx] = instr;
        }
    }

    fn is_clear(&self) -> bool {
        self.kind.iter().all(|&k| k == Inject::None)
    }
}

impl RowState {
    fn new(initial_credits: usize) -> RowState {
        RowState {
            program: None,
            meta: Vec::new(),
            meta_pos: 0,
            south_credits: initial_credits,
            inbox: VecDeque::new(),
            credit_returns: VecDeque::new(),
            last_state: None,
            orch_steps: 0,
            transitions: 0,
            messages_sent: 0,
            stalls: 0,
            meta_consumed: 0,
        }
    }

    fn done(&self) -> bool {
        self.program.as_ref().is_none_or(|p| p.done())
    }

    /// Tokens not yet consumed from the meta stream.
    fn meta_left(&self) -> usize {
        self.meta.len() - self.meta_pos
    }
}

/// The simulated Canon fabric.
pub struct Fabric {
    cfg: CanonConfig,
    pes: PeArray,
    grid: LinkGrid,
    rows: Vec<RowState>,
    /// PEs with possible work this cycle (see [`ActiveSet`]).
    active: ActiveSet,
    /// Instruction to inject into each PE this cycle (column > 0 slots are
    /// written by the previous cycle's commits).
    inject_now: InjectQueue,
    /// Instructions retiring this cycle, to inject next cycle one column east.
    inject_next: InjectQueue,
    feeders: Vec<VecDeque<TaggedVector>>,
    /// Number of feeders still holding tokens (skips the edge-feed phase and
    /// keeps the quiescence check O(1) in the column count).
    feeders_pending: usize,
    feeder_bytes_per_token: u64,
    south_collected: Vec<CollectedEntry>,
    east_collected: Vec<CollectedEntry>,
    cycle: u64,
    /// Sum over cycles of the active-set size (scheduler diagnostic).
    active_pe_cycles: u64,
    extra_offchip_read: u64,
    extra_offchip_write: u64,
    /// Host wall time accumulated inside [`Fabric::run`] (ns).
    wall_ns: u64,
}

impl Fabric {
    /// Builds a fabric for the given configuration. `north_edge_feeder`
    /// selects whether the north edge is a token stream (SDDMM) or reads as
    /// zero (SpMM-family kernels).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `pipe_depth != 3` (the
    /// paper's fixed PE pipeline latency; see §2.1).
    pub fn new(cfg: &CanonConfig, north_edge_feeder: bool) -> Fabric {
        cfg.validate().expect("invalid CanonConfig");
        assert_eq!(
            cfg.pipe_depth, 3,
            "the PE pipeline is 3 stages (LOAD/EXECUTE/COMMIT)"
        );
        let n = cfg.pe_count();
        let initial_credits = cfg.link_fifo_depth - 2;
        let mut rows = Vec::with_capacity(cfg.rows);
        for r in 0..cfg.rows {
            let credits = if r + 1 == cfg.rows {
                usize::MAX / 2 // bottom row flushes into the edge sink
            } else {
                initial_credits
            };
            rows.push(RowState::new(credits));
        }
        Fabric {
            pes: PeArray::new(n, cfg.dmem_words, cfg.spad_entries),
            grid: LinkGrid::new(cfg.rows, cfg.cols, cfg.link_fifo_depth, north_edge_feeder),
            rows,
            active: ActiveSet::new(n),
            inject_now: InjectQueue::new(n),
            inject_next: InjectQueue::new(n),
            feeders: vec![VecDeque::new(); cfg.cols],
            feeders_pending: 0,
            feeder_bytes_per_token: LANES as u64,
            south_collected: Vec::new(),
            east_collected: Vec::new(),
            cycle: 0,
            active_pe_cycles: 0,
            extra_offchip_read: 0,
            extra_offchip_write: 0,
            wall_ns: 0,
            cfg: cfg.clone(),
        }
    }

    /// The configuration this fabric was built with.
    pub fn config(&self) -> &CanonConfig {
        &self.cfg
    }

    /// Mutable access to a PE's memories (kernel mappers preload data
    /// memories).
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn pe_mut(&mut self, r: usize, c: usize) -> PeMut<'_> {
        assert!(
            r < self.cfg.rows && c < self.cfg.cols,
            "PE index out of bounds"
        );
        self.pes.pe_mut(r * self.cfg.cols + c)
    }

    /// Shared access to a PE.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn pe(&self, r: usize, c: usize) -> PeRef<'_> {
        assert!(
            r < self.cfg.rows && c < self.cfg.cols,
            "PE index out of bounds"
        );
        self.pes.pe(r * self.cfg.cols + c)
    }

    /// Installs an orchestrator program on row `r`. Kernel FSMs convert
    /// directly (`fabric.set_program(r, SpmmFsm::new(...))`); arbitrary
    /// programs go through [`RowProgram::custom`].
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds.
    pub fn set_program(&mut self, r: usize, program: impl Into<RowProgram>) {
        self.rows[r].program = Some(program.into());
    }

    /// Sets row `r`'s input meta-data stream.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds.
    pub fn set_meta_stream(&mut self, r: usize, stream: Vec<MetaToken>) {
        self.rows[r].meta = stream;
        self.rows[r].meta_pos = 0;
    }

    /// Queues north-edge stream tokens for column `c` (one token enters the
    /// array per column per cycle at most).
    ///
    /// # Panics
    ///
    /// Panics when `c` is out of bounds.
    pub fn set_feeder(&mut self, c: usize, tokens: Vec<TaggedVector>) {
        if !self.feeders[c].is_empty() {
            self.feeders_pending -= 1;
        }
        self.feeders[c] = tokens.into();
        if !self.feeders[c].is_empty() {
            self.feeders_pending += 1;
        }
    }

    /// Accounts additional off-chip read traffic (operand streams / preload)
    /// known to the kernel mapper.
    pub fn add_offchip_read_bytes(&mut self, bytes: u64) {
        self.extra_offchip_read += bytes;
    }

    /// Accounts additional off-chip write traffic.
    pub fn add_offchip_write_bytes(&mut self, bytes: u64) {
        self.extra_offchip_write += bytes;
    }

    /// Values that exited the south edge so far.
    pub fn south_collected(&self) -> &[CollectedEntry] {
        &self.south_collected
    }

    /// Values that exited the east edge so far.
    pub fn east_collected(&self) -> &[CollectedEntry] {
        &self.east_collected
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of PEs currently in the active set.
    pub fn active_pe_count(&self) -> usize {
        self.active.count()
    }

    /// Coordinates `(row, col)` of the PEs currently in the active set, in
    /// row-major order (diagnostics / tests; allocates).
    pub fn active_pes(&self) -> Vec<(usize, usize)> {
        let cols = self.cfg.cols;
        self.active
            .iter_ids()
            .map(|idx| (idx / cols, idx % cols))
            .collect()
    }

    /// Advances the fabric by one cycle.
    ///
    /// # Errors
    ///
    /// Returns protocol errors (router conflicts, FIFO over/underflow,
    /// address violations) detected during the cycle.
    pub fn step(&mut self) -> Result<(), SimError> {
        let now = self.cycle;
        let cols = self.cfg.cols;
        let nrows = self.cfg.rows;

        // 1. North-edge feeders: at most one token per column per cycle. A
        // token landing on column c's edge FIFO wakes its consumer PE (0, c).
        if self.feeders_pending > 0 {
            for c in 0..cols {
                if let Some(&tok) = self.feeders[c].front() {
                    let link = self.grid.vertical(0, c);
                    if link.len() < self.cfg.link_fifo_depth {
                        link.push(tok, now, "north feeder")?;
                        self.feeders[c].pop_front();
                        if self.feeders[c].is_empty() {
                            self.feeders_pending -= 1;
                        }
                        self.extra_offchip_read += self.feeder_bytes_per_token;
                        self.active.insert(c);
                    }
                }
            }
        }

        // 2. Orchestrator phase. Credits returned by downstream pops become
        // visible after `orch_msg_latency` cycles; delivery is folded into
        // the row walk (rows react to credits only in their own step, and
        // same-cycle returns are never due yet, so per-row delivery order is
        // immaterial). A finished orchestrator is still stepped while
        // messages are pending: its FSM keeps the bypass transitions of the
        // DONE state so upstream rows can drain through it. Fully-drained
        // rows fall through both checks at the cost of three branch tests.
        for r in 0..nrows {
            {
                let row = &mut self.rows[r];
                while row
                    .credit_returns
                    .front()
                    .is_some_and(|&deliver| deliver <= now)
                {
                    row.credit_returns.pop_front();
                    row.south_credits += 1;
                }
            }
            let has_deliverable_msg = self.rows[r]
                .inbox
                .front()
                .is_some_and(|&(deliver, _)| deliver <= now);
            if self.rows[r].program.is_none() || (self.rows[r].done() && !has_deliverable_msg) {
                continue;
            }
            let io = OrchIo {
                cycle: now,
                input: self.rows[r].meta.get(self.rows[r].meta_pos).copied(),
                msg: self.rows[r]
                    .inbox
                    .front()
                    .filter(|&&(deliver, _)| deliver <= now)
                    .map(|&(_, m)| m),
                south_credits: self.rows[r].south_credits,
                msg_slot_free: r + 1 >= nrows
                    || self.rows[r + 1].inbox.len() < self.cfg.orch_msg_capacity,
                north_tokens: self.grid.vertical_ref(r, 0).len(),
            };
            let action = {
                let program = self.rows[r]
                    .program
                    .as_mut()
                    .expect("checked present above");
                program.step(&io)
            };
            let row = &mut self.rows[r];
            row.orch_steps += 1;
            if row.last_state != Some(action.state_id) {
                if row.last_state.is_some() {
                    row.transitions += 1;
                }
                row.last_state = Some(action.state_id);
            }
            if action.stalled {
                row.stalls += 1;
            }
            if action.consume_input {
                row.meta_pos += 1;
                row.meta_consumed += 1;
            }
            if action.consume_msg {
                row.inbox.pop_front();
            }
            let instr = action.instr;
            if instr.pushes_toward(Direction::South) && r + 1 < nrows {
                if self.rows[r].south_credits == 0 {
                    return Err(SimError::Deadlock {
                        cycle: now,
                        waiting_on: format!("row {r} issued a south push without credit (FSM bug)"),
                    });
                }
                self.rows[r].south_credits -= 1;
            }
            if instr.pops_from(Direction::North) && r > 0 {
                let deliver = now + self.cfg.orch_msg_latency;
                self.rows[r - 1].credit_returns.push_back(deliver);
            }
            if let Some(m) = action.msg_out {
                self.rows[r].messages_sent += 1;
                if r + 1 < nrows {
                    if self.rows[r + 1].inbox.len() >= self.cfg.orch_msg_capacity {
                        return Err(SimError::Deadlock {
                            cycle: now,
                            waiting_on: format!("row {r} overflowed the message channel"),
                        });
                    }
                    let deliver = now + self.cfg.orch_msg_latency;
                    self.rows[r + 1].inbox.push_back((deliver, m));
                }
            }
            debug_assert!(
                self.inject_now.kind[r * cols] == Inject::None,
                "column-0 injection slot not consumed"
            );
            // Issue: bubbles are classified once here and thereafter march
            // east as one-byte tags (no per-column re-inspection).
            self.inject_now.put(r * cols, instr);
            self.active.insert(r * cols);
        }

        // 3. Active sweep: COMMIT (NoC pushes, eastward forwarding), EXECUTE
        // and LOAD for every live PE, in PE-id order. Processing each PE's
        // three phases back to back is cycle-identical to phase barriers
        // because dataflow is strictly south/east-bound: a link's producer
        // always has a smaller id than its consumer, so same-cycle pushes
        // are committed before the consuming LOAD runs (see module docs).
        // Each word is copied before scanning it: PEs woken mid-sweep by a
        // push have no same-cycle work and are picked up next cycle.
        //
        // The same producer-before-consumer ordering makes a PE's
        // next-cycle activity fully known by the time its turn ends (its
        // west neighbour's forwarding commit and all pushes into its input
        // links have already run), so deactivation happens inline instead of
        // in a second sweep. The row/column of each id is tracked
        // incrementally — ids are visited in ascending order, so no
        // divisions run in the loop.
        self.active_pe_cycles += self.active.count() as u64;
        let mut south_sink_dirty = false;
        let mut east_sink_dirty = false;
        let mut r = 0usize;
        let mut row_base = 0usize;
        for w in 0..self.active.word_count() {
            let mut bits = self.active.word(w);
            while bits != 0 {
                let idx = (w << 6) | bits.trailing_zeros() as usize;
                bits &= bits - 1;
                while idx >= row_base + cols {
                    r += 1;
                    row_base += cols;
                }
                let c = idx - row_base;
                // COMMIT writes a retiring instruction straight into the
                // eastern neighbour's injection payload slot and reports
                // its link drives as flags; bubbles forward as a tag only.
                let has_east = c + 1 < cols;
                let eff = self.pes.commit_into(
                    idx,
                    &mut self.grid,
                    r,
                    c,
                    now,
                    if has_east {
                        Some(&mut self.inject_next.instr[idx + 1])
                    } else {
                        None
                    },
                )?;
                if eff.retired {
                    if has_east {
                        self.inject_next.kind[idx + 1] = if eff.bubble {
                            Inject::Bubble
                        } else {
                            Inject::Instr
                        };
                        self.active.insert(idx + 1);
                    }
                    if eff.drives_south {
                        if r + 1 < nrows {
                            self.active.insert(idx + cols);
                        } else {
                            south_sink_dirty = true;
                        }
                    }
                    if eff.drives_east && !has_east {
                        east_sink_dirty = true;
                    }
                }
                let mut loaded = true;
                match self.inject_now.kind[idx] {
                    Inject::None => loaded = false,
                    Inject::Bubble => {
                        self.inject_now.kind[idx] = Inject::None;
                        self.pes.load_bubble(idx);
                    }
                    Inject::Instr => {
                        self.inject_now.kind[idx] = Inject::None;
                        let incoming = Some(self.inject_now.instr[idx]);
                        if c == 0 {
                            // Fresh orchestrator issue: validate the §3.1
                            // route rules once here; the eastward-forwarded
                            // copies are identical and skip the re-check.
                            self.pes.load(idx, incoming, &mut self.grid, r, c, now)?;
                        } else {
                            self.pes
                                .load_forwarded(idx, incoming, &mut self.grid, r, c, now)?;
                        }
                    }
                }
                // Inline deactivation: a PE leaves the set once its
                // pipeline, pending injection, and input links are all
                // empty. The condition is exact (everything that could
                // change it this cycle has already run), which is what lets
                // `quiescent()` trust `active.is_empty()`. A PE that just
                // loaded is trivially still live — the common case costs one
                // branch.
                if !loaded
                    && self.pes.pipeline_empty(idx)
                    && self.inject_next.kind[idx] == Inject::None
                    && self.grid.pe_inputs_empty(r, c)
                {
                    self.active.remove(idx);
                }
            }
        }

        // 4. Advance pipelines (O(1) stage-index rotation); next cycle's
        // column > 0 injections become current. Every pending injection was
        // consumed by the sweep (a pending slot implies an active bit), so
        // the swapped-out array needs no clearing.
        self.pes.advance();
        std::mem::swap(&mut self.inject_now, &mut self.inject_next);
        debug_assert!(
            self.inject_next.is_clear(),
            "injection leaked past the active sweep"
        );

        // 5. Drain edge sinks straight into the collectors, only on cycles
        // in which a bottom-row/east-column commit drove a sink link: the
        // sink links are popped in place, with no per-edge temporary
        // collection, and entries always exit in the cycle they were pushed.
        if south_sink_dirty {
            for c in 0..cols {
                let link = self.grid.vertical(nrows, c);
                while let Some(e) = link.try_pop() {
                    self.south_collected.push(CollectedEntry {
                        tag: e.tag,
                        lane: c,
                        value: e.value,
                        cycle: now,
                    });
                }
            }
        }
        if east_sink_dirty {
            for r in 0..nrows {
                let link = self.grid.horizontal(r, cols);
                while let Some(e) = link.try_pop() {
                    self.east_collected.push(CollectedEntry {
                        tag: e.tag,
                        lane: r,
                        value: e.value,
                        cycle: now,
                    });
                }
            }
        }

        self.cycle += 1;
        Ok(())
    }

    /// True when all orchestrators are done, all pipelines and links are
    /// empty, and no messages or feeder tokens are pending.
    ///
    /// The active set makes this O(rows): an occupied pipeline, pending
    /// injection, or non-empty link keeps its PE active, so PE and NoC
    /// drain-state collapses to `active.is_empty()`.
    pub fn quiescent(&self) -> bool {
        self.active.is_empty()
            && self.feeders_pending == 0
            && self.rows.iter().all(|r| r.done() && r.inbox.is_empty())
    }

    /// Runs until quiescent, returning the run report.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors and reports a [`SimError::Deadlock`] if the
    /// watchdog budget is exhausted before the fabric drains.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        let work: u64 = self.rows.iter().map(|r| r.meta_left() as u64).sum::<u64>()
            + self.feeders.iter().map(|f| f.len() as u64).sum::<u64>();
        let budget = self
            .cfg
            .watchdog_factor
            .saturating_mul(work + (self.cfg.rows + self.cfg.cols) as u64)
            .saturating_add(self.cfg.watchdog_slack);
        let start = self.cycle;
        let wall_start = std::time::Instant::now();
        let result = loop {
            if self.quiescent() {
                break Ok(());
            }
            if self.cycle - start > budget {
                let waiting: Vec<String> = self
                    .rows
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| !r.done())
                    .map(|(i, r)| format!("row {i} ({} meta left)", r.meta_left()))
                    .collect();
                break Err(SimError::Deadlock {
                    cycle: self.cycle,
                    waiting_on: if waiting.is_empty() {
                        "pipeline/NoC drain".into()
                    } else {
                        waiting.join(", ")
                    },
                });
            }
            if let Err(e) = self.step() {
                break Err(e);
            }
        };
        // Accumulated on the error path too, so a report taken after a
        // watchdog/protocol abort still attributes the wall time spent.
        self.wall_ns += wall_start.elapsed().as_nanos() as u64;
        result?;
        Ok(self.report())
    }

    /// Builds the report for the cycles simulated so far.
    pub fn report(&self) -> RunReport {
        let mut stats = Stats::new();
        for i in 0..self.pes.len() {
            let c = self.pes.counters(i);
            stats.instrs_executed += c.instrs;
            stats.compute_instrs += c.compute_instrs;
            stats.mac_instrs += c.mac_instrs;
            let pe = self.pes.pe(i);
            stats.dmem_reads += pe.dmem.read_count();
            stats.dmem_writes += pe.dmem.write_count();
            stats.spad_reads += pe.spad.read_count();
            stats.spad_writes += pe.spad.write_count();
        }
        stats.noc_hops = self.grid.total_pushes();
        for row in &self.rows {
            stats.orch_steps += row.orch_steps;
            stats.orch_transitions += row.transitions;
            stats.orch_messages += row.messages_sent;
            stats.stall_cycles += row.stalls;
            stats.meta_tokens += row.meta_consumed;
        }
        stats.offchip_read_bytes = self.extra_offchip_read;
        stats.offchip_write_bytes = self.extra_offchip_write;
        stats.active_pe_cycles = self.active_pe_cycles;
        RunReport {
            cycles: self.cycle,
            pes: self.cfg.pe_count(),
            stats,
            wall_ns: self.wall_ns,
        }
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("rows", &self.cfg.rows)
            .field("cols", &self.cfg.cols)
            .field("cycle", &self.cycle)
            .field("active", &self.active.count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Addr, Opcode};
    use crate::orchestrator::OrchAction;

    /// A scripted orchestrator that plays back a fixed instruction sequence.
    struct Script {
        instrs: VecDeque<Instruction>,
    }

    impl OrchProgram for Script {
        fn step(&mut self, _io: &OrchIo) -> OrchAction {
            match self.instrs.pop_front() {
                Some(i) => OrchAction {
                    instr: i,
                    ..OrchAction::nop(0)
                },
                None => OrchAction::nop(0),
            }
        }
        fn done(&self) -> bool {
            self.instrs.is_empty()
        }
    }

    fn small_cfg() -> CanonConfig {
        CanonConfig {
            rows: 2,
            cols: 3,
            dmem_words: 16,
            spad_entries: 4,
            ..CanonConfig::default()
        }
    }

    #[test]
    fn staggered_issue_reaches_column_c_at_3c() {
        // One instruction that pushes its dmem word south; dmem preloaded
        // with distinct values per column. The south-edge collector records
        // the exit cycle per column: issue at cycle 0 → commit at column c at
        // cycle 3c + 2.
        let cfg = small_cfg();
        let mut f = Fabric::new(&cfg, false);
        for c in 0..3 {
            f.pe_mut(1, c).dmem.preload(0, &[Vector::splat(c as i32)]);
        }
        let flush = Instruction::new(
            Opcode::Mov,
            Addr::DataMem(0),
            Addr::Null,
            Addr::Port(Direction::South),
        )
        .with_tag(7);
        f.set_program(
            1,
            RowProgram::custom(Script {
                instrs: vec![flush].into(),
            }),
        );
        f.run().unwrap();
        let got = f.south_collected();
        assert_eq!(got.len(), 3);
        for e in got {
            assert_eq!(e.tag, 7);
            assert_eq!(e.value, Vector::splat(e.lane as i32));
            // LOAD at 3c, COMMIT at 3c + 2.
            assert_eq!(e.cycle, 3 * e.lane as u64 + 2);
        }
    }

    #[test]
    fn pipelined_throughput_one_instruction_per_cycle() {
        // N flushes issued back-to-back: last exit cycle = (N-1) + 3(C-1) + 2.
        let cfg = small_cfg();
        let mut f = Fabric::new(&cfg, false);
        let n = 5;
        let instrs: Vec<Instruction> = (0..n)
            .map(|i| {
                Instruction::new(
                    Opcode::Mov,
                    Addr::Imm,
                    Addr::Null,
                    Addr::Port(Direction::South),
                )
                .with_imm(Vector::splat(i as i32))
                .with_tag(i as u32)
            })
            .collect();
        f.set_program(
            1,
            RowProgram::custom(Script {
                instrs: instrs.into(),
            }),
        );
        f.run().unwrap();
        let got = f.south_collected();
        assert_eq!(got.len(), n * 3);
        let last = got.iter().map(|e| e.cycle).max().unwrap();
        assert_eq!(last, (n as u64 - 1) + 3 * 2 + 2);
    }

    #[test]
    fn quiescent_initially_and_after_run() {
        let cfg = small_cfg();
        let mut f = Fabric::new(&cfg, false);
        assert!(f.quiescent());
        assert_eq!(f.active_pe_count(), 0);
        f.set_program(
            0,
            RowProgram::custom(Script {
                instrs: VecDeque::new(),
            }),
        );
        let r = f.run().unwrap();
        assert_eq!(r.cycles, 0);
        assert_eq!(f.active_pe_count(), 0);
    }

    #[test]
    fn watchdog_fires_on_stuck_program() {
        struct Stuck;
        impl OrchProgram for Stuck {
            fn step(&mut self, _io: &OrchIo) -> OrchAction {
                OrchAction::stall(0)
            }
            fn done(&self) -> bool {
                false
            }
        }
        let mut cfg = small_cfg();
        cfg.watchdog_factor = 1;
        cfg.watchdog_slack = 50;
        let mut f = Fabric::new(&cfg, false);
        f.set_program(0, RowProgram::custom(Stuck));
        assert!(matches!(f.run(), Err(SimError::Deadlock { .. })));
    }

    #[test]
    fn report_counts_instructions_and_stalls() {
        let cfg = small_cfg();
        let mut f = Fabric::new(&cfg, false);
        let instrs: Vec<Instruction> = vec![Instruction::NOP; 4];
        f.set_program(
            0,
            RowProgram::custom(Script {
                instrs: instrs.into(),
            }),
        );
        let r = f.run().unwrap();
        // 4 NOPs each traverse 3 PEs.
        assert_eq!(r.stats.instrs_executed, 12);
        assert_eq!(r.stats.compute_instrs, 0);
        assert_eq!(r.stats.orch_steps, 4);
        // The sweep only ever visited live PEs: each of the 3 PEs holds the
        // pipelined 4-instruction burst for 6 consecutive cycles.
        assert_eq!(r.stats.active_pe_cycles, 18);
    }

    #[test]
    fn feeder_rate_is_one_token_per_cycle_per_column() {
        let cfg = small_cfg();
        let mut f = Fabric::new(&cfg, true);
        // The popping instruction traverses all three columns, so every
        // column needs a feeder stream.
        for c in 0..3 {
            let tokens: Vec<TaggedVector> = (0..3)
                .map(|i| TaggedVector {
                    value: Vector::splat(i),
                    tag: i as u32,
                })
                .collect();
            f.set_feeder(c, tokens);
        }
        // A scripted program that pops north three times on row 0.
        let pop = Instruction::new(
            Opcode::Mov,
            Addr::Port(Direction::North),
            Addr::Null,
            Addr::Spad(0),
        );
        f.set_program(
            0,
            RowProgram::custom(Script {
                instrs: vec![pop, pop, pop].into(),
            }),
        );
        let r = f.run().unwrap();
        assert!(r.cycles >= 3);
        // 3 tokens × 3 columns × LANES bytes accounted as off-chip reads.
        assert_eq!(r.stats.offchip_read_bytes, 9 * LANES as u64);
    }

    #[test]
    fn active_set_follows_the_wavefront() {
        // A single issued instruction sweeps eastward; the active set tracks
        // exactly the PEs holding it (plus the injection ahead of it), and
        // empties once the fabric drains.
        let cfg = small_cfg();
        let mut f = Fabric::new(&cfg, false);
        let i = Instruction::new(Opcode::Mov, Addr::Imm, Addr::Null, Addr::Reg(0))
            .with_imm(Vector::splat(1));
        f.set_program(
            0,
            RowProgram::custom(Script {
                instrs: vec![i].into(),
            }),
        );
        f.step().unwrap();
        // Cycle 0: the instruction loaded into PE (0,0).
        assert_eq!(f.active_pes(), vec![(0, 0)]);
        while !f.quiescent() {
            f.step().unwrap();
            // Row 1 never participates.
            assert!(f.active_pes().iter().all(|&(r, _)| r == 0));
        }
        assert_eq!(f.active_pe_count(), 0);
        // 1 instruction × 3 pipeline cycles × 3 columns of residence.
        assert_eq!(f.report().stats.active_pe_cycles, 9);
    }
}
