//! The Canon fabric: PE array + orchestrators + NoC + edge movers, advanced
//! one cycle at a time.
//!
//! ## Cycle structure
//!
//! Each [`Fabric::step`] performs, in order:
//!
//! 1. **edge feed** — the north-edge stream movers push at most one token per
//!    column into the north edge FIFOs (SDDMM's `A` stream);
//! 2. **orchestrator phase** — every *woken* row delivers its due
//!    south-channel credits (visible after
//!    [`CanonConfig::orch_msg_latency`] cycles), then its FSM observes its
//!    meta stream head, delivered message, credits, and north-FIFO
//!    occupancy, and issues one instruction into column 0 (possibly NOP);
//!    rows whose observable inputs cannot have changed since their last
//!    decision are skipped entirely (see *Event-driven wakeups* below);
//! 3. **active sweep** — COMMIT (NoC pushes happen this phase, retiring
//!    instructions are forwarded eastward as 4-byte [`InstrHandle`]s into
//!    the shared issue ring) and LOAD (which also computes the EXECUTE
//!    stage's lane result eagerly — see [`crate::pe`]) run for every PE in
//!    the active set, in PE-id order; column 0 receives this cycle's
//!    orchestrator instruction, column `c > 0` receives the instruction that
//!    retired from column `c-1` **last** cycle, reproducing the 3-cycle
//!    stagger of §2.1 (issue at cycle *n* reaches column *c* at cycle
//!    *n + 3c*);
//! 4. pipeline advance (an O(1) rotation of the shared stage index) and edge
//!    -sink draining into the collectors, gated on this cycle's sink pushes.
//!
//! ## Active-set scheduling
//!
//! The sweep of step 3 iterates an [`ActiveSet`] bitset instead of the whole
//! array: a PE enters the set when an instruction is injected towards it
//! (orchestrator issue, eastward forwarding) or a NoC push lands on one of
//! its input links, and leaves at end of cycle once its pipeline, pending
//! injections, and input links are all empty. Phases never visit drained
//! PEs, and the per-cycle quiescence test collapses from a whole-fabric
//! sweep to `active.is_empty()` plus O(rows) of orchestrator state.
//!
//! ## Event-driven wakeups
//!
//! The orchestrator phase is scheduled the same way, one level up: a
//! [`RowSched`] wake bitset tracks which rows must be *stepped* this cycle,
//! and everything a row's FSM can observe is covered by a wake event:
//!
//! * **link events** — a south push landing on a row's column-0 North FIFO
//!   (its `north_tokens` observable) wakes the consuming row, as does a
//!   north-edge feeder token on column 0;
//! * **timed events** — credit returns and inter-orchestrator messages are
//!   queued with a delivery cycle; the producer arms the consumer row's
//!   timer at enqueue time, and [`RowSched::fire_due`] moves due rows back
//!   into the wake set (one comparison per cycle when nothing is due);
//! * **slot events** — consuming a message frees the sender's
//!   `msg_slot_free` observable, waking the row above;
//! * **self events** — a row that made progress (consumed input, issued a
//!   real instruction, sent a message) trivially stays in the wake set.
//!
//! A row leaves the wake set when its action is a **pure wait**
//! ([`OrchAction::park`], set by every back-pressured stall) or when it has
//! drained. While parked it costs zero work per cycle; on wake the skipped
//! window is settled arithmetically — `orch_steps`, `stall_cycles`, and the
//! bubbles the polling engine would have injected (`cols` pipeline NOPs per
//! skipped poll) are credited exactly, so cycle counts, results, and every
//! architectural counter stay byte-identical to the polling engine
//! (`tests/event_wake.rs` diffs the two on random programs;
//! [`Fabric::set_polling`] keeps the shadow engine available). The only
//! deliberately divergent counters are the scheduler diagnostics
//! ([`Stats::active_pe_cycles`], [`Stats::orch_polls_skipped`],
//! [`Stats::wake_events`]), which measure the work actually performed.
//!
//! ## Instruction handle ring
//!
//! Issued instructions are interned once into a per-fabric [`InstrRing`]
//! (a power-of-two ring of issue records sized to the issue-to-retire
//! window, with generation tags checked under `debug_assertions`). The
//! injection queue, the pipeline-stage slots, and eastward COMMIT
//! forwarding all move 4-byte [`InstrHandle`]s; the ~44-byte record is
//! written once per issue and resolved in place at LOAD/COMMIT. The
//! one-byte bubble path is unchanged — bubbles are never interned.
//!
//! The fused per-PE ordering (COMMIT then LOAD of one PE before the next
//! PE) is cycle-identical to the former phase-barrier sweeps because only
//! south/east-bound dataflow is instantiated: every link's producer has a
//! smaller PE id than its consumer, so a same-cycle push is always
//! processed before the pop that observes it, and EXECUTE/LOAD touch only
//! PE-local state (`tests/cycle_invariance.rs` pins this equivalence).
//!
//! ## Hot-path discipline
//!
//! [`Fabric::step`] is the simulator's cost center (it runs once per
//! simulated cycle for every sweep cell and figure), so its steady state is
//! allocation-free:
//!
//! * NoC error context is carried as copyable [`ErrCtx`](crate::noc::ErrCtx)
//!   descriptors and rendered only when a protocol error fires;
//! * edge sinks drain **in place** — step 4 pops each south/east sink link
//!   directly into the collector vectors (no per-edge temporary `Vec`), and
//!   the links themselves are fixed-capacity ring buffers;
//! * row programs are enum-dispatched ([`RowProgram`]) rather than
//!   `Box<dyn OrchProgram>`, removing the vtable call from the per-cycle
//!   orchestrator phase;
//! * PE state is struct-of-arrays ([`PeArray`]): the stage slot a phase
//!   touches is dense across PEs, and the pipeline advance is one index
//!   bump for the whole fabric.
//!
//! The only remaining steady-state allocations are the amortized growth of
//! the collector vectors themselves.
//!
//! ## Flow control
//!
//! The paper's "dynamically managed circuit-switching" avoids in-array
//! backpressure: orchestrators, knowing the array's deterministic timing,
//! make all congestion decisions at the periphery. The simulator realises
//! this as an orchestrator-level credit protocol on each row's southbound
//! channel plus a bounded message channel between vertically adjacent
//! orchestrators; the per-column FIFOs are then provably bounded, and the
//! simulator verifies (rather than provides) that bound — an overflow or
//! underflow aborts the run as a protocol error.

use crate::config::CanonConfig;
use crate::isa::{Direction, InstrHandle, InstrRing, Instruction, Plan, PlanKind, Vector, LANES};
use crate::noc::{LinkGrid, TaggedVector};
use crate::orchestrator::{MetaToken, OrchIo, OrchMessage, OrchProgram, RowProgram};
use crate::pe::{PeArray, PeMut, PeRef};
use crate::replay::{ReplayEntry, ReplayState, REPLAY_CHUNK};
use crate::sched::{ActiveSet, RowSched};
use crate::stats::{RunReport, StallBreakdown, StallCause, Stats};
use crate::trace::{TraceRecorder, TraceSink, WakeSource};
use crate::SimError;
use std::collections::VecDeque;

/// A value delivered to a south/east edge collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectedEntry {
    /// Producer-attached tag (output row id or linear output index).
    pub tag: u32,
    /// The array lane it exited from (column index for the south edge, row
    /// index for the east edge).
    pub lane: usize,
    /// Payload.
    pub value: Vector,
    /// Cycle at which it exited the array.
    pub cycle: u64,
}

/// `u64` sentinel for "no value" in the row table's cycle-stamped fields.
const NEVER: u64 = u64::MAX;

/// Sentinel in [`RowTable::last_state`] for a row that has never stepped
/// (state ids are 3-bit in hardware, so the top byte value is free).
const NO_STATE: u8 = u8::MAX;

/// Per-row orchestrator state, struct-of-arrays: each field of the former
/// boxed per-row record is a flat array indexed by row id, mirroring
/// [`PeArray`]'s layout one level up. The (now sparse, event-driven) row
/// dispatch touches a handful of hot fields per woken row — the cursor into
/// the meta stream, the credit count, the queue fronts — and those are
/// dense across rows instead of strided by a whole row record.
struct RowTable {
    programs: Vec<Option<RowProgram>>,
    /// Input meta-data streams, consumed through `meta_pos` (a cursor into
    /// an immutable `Vec` is cheaper per step than deque pops).
    meta: Vec<Vec<MetaToken>>,
    meta_pos: Vec<usize>,
    south_credits: Vec<usize>,
    inbox: Vec<VecDeque<(u64, OrchMessage)>>,
    credit_returns: Vec<VecDeque<u64>>,
    /// Last observed FSM state id per row, [`NO_STATE`] before the first
    /// step (sentinel-packed: one byte per row instead of `Option<u8>`'s
    /// two).
    last_state: Vec<u8>,
    orch_steps: Vec<u64>,
    transitions: Vec<u64>,
    messages_sent: Vec<u64>,
    /// Per-cause stall attribution; its [`StallBreakdown::total`] is the
    /// row's contribution to [`Stats::stall_cycles`].
    stall_causes: Vec<StallBreakdown>,
    meta_consumed: Vec<u64>,
    /// Cycle at which the row parked on a pure-wait action ([`NEVER`] when
    /// not parked). Settled arithmetically at the next wake.
    parked_at: Vec<u64>,
    /// Cause of the parked stall, if the parked action was one (its replay
    /// counts `stall_cycles` under that cause).
    parked_stall: Vec<Option<StallCause>>,
    /// Settled orchestrator polls skipped while parked (the event-engine
    /// saving reported as [`Stats::orch_polls_skipped`]).
    polls_skipped: Vec<u64>,
}

impl RowTable {
    fn new(rows: usize, credits_for: impl Fn(usize) -> usize) -> RowTable {
        RowTable {
            programs: (0..rows).map(|_| None).collect(),
            meta: vec![Vec::new(); rows],
            meta_pos: vec![0; rows],
            south_credits: (0..rows).map(credits_for).collect(),
            // Reserved up front: the bounded message/credit protocol keeps
            // occupancy small, so the queues never reallocate mid-run (part
            // of the steady-state allocs/cycle budget `repro bench --check`
            // gates).
            inbox: vec![VecDeque::with_capacity(8); rows],
            credit_returns: vec![VecDeque::with_capacity(16); rows],
            last_state: vec![NO_STATE; rows],
            orch_steps: vec![0; rows],
            transitions: vec![0; rows],
            messages_sent: vec![0; rows],
            stall_causes: vec![StallBreakdown::default(); rows],
            meta_consumed: vec![0; rows],
            parked_at: vec![NEVER; rows],
            parked_stall: vec![None; rows],
            polls_skipped: vec![0; rows],
        }
    }

    fn len(&self) -> usize {
        self.programs.len()
    }

    /// Returns the table to its post-construction state in place
    /// ([`RowTable::new`] with the same row count), keeping the per-row
    /// queue allocations (fabric reuse).
    fn reset(&mut self, credits_for: impl Fn(usize) -> usize) {
        for (r, p) in self.programs.iter_mut().enumerate() {
            *p = None;
            self.meta[r].clear();
            self.meta_pos[r] = 0;
            self.south_credits[r] = credits_for(r);
            self.inbox[r].clear();
            self.credit_returns[r].clear();
        }
        self.last_state.fill(NO_STATE);
        self.orch_steps.fill(0);
        self.transitions.fill(0);
        self.messages_sent.fill(0);
        self.stall_causes.fill(StallBreakdown::default());
        self.meta_consumed.fill(0);
        self.parked_at.fill(NEVER);
        self.parked_stall.fill(None);
        self.polls_skipped.fill(0);
    }

    fn done(&self, r: usize) -> bool {
        self.programs[r].as_ref().is_none_or(|p| p.done())
    }

    /// Tokens not yet consumed from row `r`'s meta stream.
    fn meta_left(&self, r: usize) -> usize {
        self.meta[r].len() - self.meta_pos[r]
    }
}

/// One entry of the staggered instruction network's injection queue.
///
/// Only real instructions occupy slots: bubbles ([`Instruction::is_plain_nop`])
/// are **elided** at issue — architecturally a bubble reads nothing, writes
/// nothing, pushes nothing, and cannot forward a value, so instead of
/// marching a tag through `3·cols` pipeline stages the fabric counts the
/// `cols` instruction latches it would have clocked and extends the bubble
/// drain horizon (see [`Fabric::bubble_horizon`]), keeping cycle counts and
/// instruction counts byte-identical to a simulator that moves them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Inject {
    /// Nothing to load.
    #[default]
    None,
    /// A real instruction; the handle array holds its ring reference.
    Instr,
}

/// Per-PE injection slots of the instruction network, struct-of-arrays: the
/// one-byte kind tags are scanned/updated on every hop, the 4-byte
/// [`InstrHandle`] is touched only for real instructions (the record itself
/// lives in the fabric's [`InstrRing`]). Bubbles — the majority of the
/// traffic in sparse bands (row ends, stalls) — march east one tag byte per
/// hop.
#[derive(Debug)]
struct InjectQueue {
    kind: Vec<Inject>,
    handle: Vec<InstrHandle>,
}

impl InjectQueue {
    fn new(n: usize) -> InjectQueue {
        InjectQueue {
            kind: vec![Inject::None; n],
            handle: vec![InstrHandle::default(); n],
        }
    }

    /// Stores one issued (real, non-bubble) instruction, interning it with
    /// its pre-computed plan. Bubbles never reach the queue — the issue
    /// path elides them.
    #[inline]
    fn put(&mut self, idx: usize, instr: Instruction, plan: Plan, ring: &mut InstrRing) {
        debug_assert!(!instr.is_plain_nop(), "bubbles are elided at issue");
        self.kind[idx] = Inject::Instr;
        self.handle[idx] = ring.intern_planned(instr, plan);
    }

    fn is_clear(&self) -> bool {
        self.kind.iter().all(|&k| k == Inject::None)
    }

    /// Empties every slot, keeping allocations (fabric reuse).
    fn clear(&mut self) {
        self.kind.fill(Inject::None);
        self.handle.fill(InstrHandle::default());
    }
}

/// One cell of the fabric's issue-uniformity window (see
/// [`Fabric::issue_window`]): what every row issued at one cycle, folded as
/// it happens. The cell tracks the *uniform prefix* of rows: the longest
/// run of rows `0..prefix` that each issued a real instruction of one
/// shared non-generic MAC shape — exactly the condition under which, `3c`
/// cycles later, rows `0..prefix` of fabric column `c` all hold that shape
/// and the column-vectorized batch sweep applies to them. `prefix == rows`
/// is the fully uniform cycle the replay engine requires; a partial prefix
/// still batches the prefix rows (PR 7's all-or-nothing detector collapsed
/// at tall fabrics, where one skewed row spoiled the whole column).
#[derive(Debug, Clone, Copy)]
struct IssueCell {
    /// Cycle this cell describes ([`NEVER`] when unwritten; the ring is
    /// sized so live cells are never overwritten, but staleness is checked,
    /// never assumed).
    cycle: u64,
    /// Plan shape of the uniform prefix (the shape row 0 issued);
    /// meaningless while `prefix == 0`.
    kind: PlanKind,
    /// Length of the uniform prefix: rows `0..prefix` each issued a real
    /// instruction of shape `kind` that cycle (rows fold in ascending
    /// order, so a bubble, generic, or mismatched issue freezes it).
    prefix: u32,
}

impl IssueCell {
    const EMPTY: IssueCell = IssueCell {
        cycle: NEVER,
        kind: PlanKind::Generic,
        prefix: 0,
    };
}

/// Minimum uniform prefix worth a partial column-batch pass: below this the
/// per-pass setup (injection bookkeeping, shape dispatch) outweighs the
/// vectorized sweep. Full columns always batch.
const MIN_BATCH_PREFIX: u32 = 4;

/// The simulated Canon fabric.
pub struct Fabric {
    cfg: CanonConfig,
    /// Whether the north edge was built as a token-stream feeder (SDDMM) or
    /// a zero source (SpMM family). Recorded so the warm pool can key reuse
    /// on it — the flag is otherwise only encoded in the grid's link kinds.
    north_feeder: bool,
    pes: PeArray,
    grid: LinkGrid,
    rows: RowTable,
    /// Orchestrator-row wake bitset + delivery timers (see [`RowSched`]).
    sched: RowSched,
    /// When true, every live row is stepped every cycle and nothing parks —
    /// the pre-event polling engine, kept as a differential shadow for
    /// `tests/event_wake.rs`.
    polling: bool,
    /// Distinct row wake events raised (link, timer, and slot events).
    wake_events: u64,
    /// Issued-instruction ring; everything downstream of issue moves 4-byte
    /// handles into this slab.
    ring: InstrRing,
    /// First cycle at which every elided bubble would have drained out of
    /// the pipeline: a bubble issued at cycle `n` retires from the last
    /// column at `n + 3·cols − 1`, so the fabric it marched through is
    /// quiescent from `n + 3·cols`. Elision must not let the fabric drain
    /// earlier than the marching simulator, so [`Fabric::quiescent`] gates
    /// on this horizon.
    bubble_horizon: u64,
    /// Bubbles elided at issue; each one is `cols` instruction latches
    /// credited to [`Stats::instrs_executed`] at report time.
    elided_bubbles: u64,
    /// PEs with possible work this cycle (see [`ActiveSet`]).
    active: ActiveSet,
    /// Instruction to inject into each PE this cycle (column > 0 slots are
    /// written by the previous cycle's commits).
    inject_now: InjectQueue,
    /// Instructions retiring this cycle, to inject next cycle one column east.
    inject_next: InjectQueue,
    feeders: Vec<VecDeque<TaggedVector>>,
    /// Number of feeders still holding tokens (skips the edge-feed phase and
    /// keeps the quiescence check O(1) in the column count).
    feeders_pending: usize,
    feeder_bytes_per_token: u64,
    south_collected: Vec<CollectedEntry>,
    east_collected: Vec<CollectedEntry>,
    cycle: u64,
    /// Sum over cycles of the active-set size (scheduler diagnostic).
    active_pe_cycles: u64,
    /// When true (default), fabric columns whose in-flight issues are
    /// row-uniform MAC shapes take the column-vectorized batch sweep
    /// ([`PeArray::batch_col`]) instead of the per-PE scalar path.
    /// Architecturally invisible either way.
    batching: bool,
    /// PE-cycles that went through the batch fast path (scheduler
    /// diagnostic, reported as [`Stats::batched_pe_cycles`]).
    batched_pe_cycles: u64,
    /// Power-of-two ring of per-cycle [`IssueCell`]s indexed by
    /// `cycle & (len − 1)`, deep enough to cover the issue-to-retire window
    /// (`3·cols` cycles): the batch detector reads the cells of the three
    /// issue cycles currently occupying each column's pipeline slots.
    issue_window: Vec<IssueCell>,
    /// Phase-3 scratch, reused every cycle:
    /// `Some((commit_kind, load_kind, prefix))` for columns taking the batch
    /// sweep this cycle — rows `0..prefix` batch, the rest stay scalar.
    col_batch: Vec<Option<(PlanKind, PlanKind, u32)>>,
    /// Steady-state stretch detection + macro-cycle replay (see
    /// [`crate::replay`]).
    replay: ReplayState,
    extra_offchip_read: u64,
    extra_offchip_write: u64,
    /// Host wall time accumulated inside [`Fabric::run`] (ns).
    wall_ns: u64,
    /// Attached trace recorder ([`crate::trace`]); `None` costs one untaken
    /// branch per hook (the `repro bench --check` gates pin that this stays
    /// free).
    trace: Option<Box<TraceRecorder>>,
}

impl Fabric {
    /// Builds a fabric for the given configuration. `north_edge_feeder`
    /// selects whether the north edge is a token stream (SDDMM) or reads as
    /// zero (SpMM-family kernels).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `pipe_depth != 3` (the
    /// paper's fixed PE pipeline latency; see §2.1).
    pub fn new(cfg: &CanonConfig, north_edge_feeder: bool) -> Fabric {
        cfg.validate().expect("invalid CanonConfig");
        assert_eq!(
            cfg.pipe_depth, 3,
            "the PE pipeline is 3 stages (LOAD/EXECUTE/COMMIT)"
        );
        let n = cfg.pe_count();
        // Injected deadlock (`FaultAction::WithholdCredits`): starve every
        // non-bottom row of south-link credits so its first flush stalls on
        // credit forever and the *real* watchdog path fires. The bottom row
        // keeps its sink credits — zeroing those would instead trip the
        // "push without credit" FSM-bug assertion, which is a different
        // failure than the one being injected.
        let withhold = matches!(cfg.fault, Some(crate::fault::FaultAction::WithholdCredits));
        let initial_credits = if withhold { 0 } else { cfg.link_fifo_depth - 2 };
        let rows = RowTable::new(cfg.rows, |r| {
            if r + 1 == cfg.rows {
                usize::MAX / 2 // bottom row flushes into the edge sink
            } else {
                initial_credits
            }
        });
        Fabric {
            pes: PeArray::new(n, cfg.dmem_words, cfg.spad_entries),
            grid: LinkGrid::new(cfg.rows, cfg.cols, cfg.link_fifo_depth, north_edge_feeder),
            rows,
            sched: RowSched::new(cfg.rows),
            polling: false,
            wake_events: 0,
            // One issue per row per cycle, last read 3·cols − 1 cycles after
            // issue ⇒ the steady stream needs rows·(3·cols − 1) live
            // records. A replay flush additionally re-interns a whole
            // in-flight window (≈ 3·cols − 1 records per row) in one burst,
            // and those reconstructed records must survive up to 3·cols − 2
            // further cycles of normal issue before the last column retires
            // them — so the ring is sized to one burst plus one stream
            // window, keeping wraps strictly slower than retirement.
            ring: InstrRing::with_capacity(cfg.rows * (6 * cfg.cols + 2)),
            bubble_horizon: 0,
            elided_bubbles: 0,
            active: ActiveSet::new(n),
            inject_now: InjectQueue::new(n),
            inject_next: InjectQueue::new(n),
            feeders: vec![VecDeque::new(); cfg.cols],
            feeders_pending: 0,
            feeder_bytes_per_token: LANES as u64,
            // Collectors start at a page's worth of entries: their doubling
            // growth was the bulk of the residual steady-state allocations.
            south_collected: Vec::with_capacity(128),
            east_collected: Vec::with_capacity(128),
            cycle: 0,
            active_pe_cycles: 0,
            batching: cfg.batching,
            batched_pe_cycles: 0,
            issue_window: vec![IssueCell::EMPTY; (3 * cfg.cols).next_power_of_two()],
            col_batch: vec![None; cfg.cols],
            replay: ReplayState::new(cfg.rows, cfg.replay),
            extra_offchip_read: 0,
            extra_offchip_write: 0,
            wall_ns: 0,
            trace: None,
            cfg: cfg.clone(),
            north_feeder: north_edge_feeder,
        }
    }

    /// Whether the north edge feeds tokens (see [`Fabric::new`]).
    pub fn north_edge_feeder(&self) -> bool {
        self.north_feeder
    }

    /// True when this fabric's allocations fit `cfg`: reuse via
    /// [`Fabric::reset`] requires every allocation-shaping parameter
    /// (geometry, memory capacities, link FIFO depth) and the north-edge
    /// kind to match. Runtime-only parameters (budgets, fault injection,
    /// batching/replay switches, watchdog factors) may differ — the reset
    /// re-derives them from the new configuration.
    pub fn reusable_for(&self, cfg: &CanonConfig, north_edge_feeder: bool) -> bool {
        self.north_feeder == north_edge_feeder
            && self.cfg.rows == cfg.rows
            && self.cfg.cols == cfg.cols
            && self.cfg.dmem_words == cfg.dmem_words
            && self.cfg.spad_entries == cfg.spad_entries
            && self.cfg.link_fifo_depth == cfg.link_fifo_depth
            && self.cfg.pipe_depth == cfg.pipe_depth
    }

    /// Resets the fabric in place to the state `Fabric::new(cfg,
    /// self.north_edge_feeder())` would produce, reusing every allocation
    /// (the PE slabs, link rings, instruction ring, and scheduler bitsets
    /// are zeroed, not rebuilt). This is the warm-pool reuse path: a
    /// request-serving worker resets a drained (or failed — deadlocked and
    /// timed-out fabrics carry mid-flight state, which this clears too)
    /// fabric instead of paying construction for every request.
    ///
    /// Under `debug_assertions` the reset is followed by a full
    /// [`Fabric::assert_pristine`] audit.
    ///
    /// # Panics
    ///
    /// Panics when `cfg` is invalid or not [`Fabric::reusable_for`] this
    /// fabric (allocation shapes must match; build a new fabric instead).
    pub fn reset(&mut self, cfg: &CanonConfig) {
        cfg.validate().expect("invalid CanonConfig");
        assert!(
            self.reusable_for(cfg, self.north_feeder),
            "Fabric::reset with an incompatible configuration \
             ({}x{} dmem={} spad={} fifo={} vs {}x{} dmem={} spad={} fifo={})",
            self.cfg.rows,
            self.cfg.cols,
            self.cfg.dmem_words,
            self.cfg.spad_entries,
            self.cfg.link_fifo_depth,
            cfg.rows,
            cfg.cols,
            cfg.dmem_words,
            cfg.spad_entries,
            cfg.link_fifo_depth,
        );
        let withhold = matches!(cfg.fault, Some(crate::fault::FaultAction::WithholdCredits));
        let initial_credits = if withhold { 0 } else { cfg.link_fifo_depth - 2 };
        let rows = cfg.rows;
        self.rows.reset(|r| {
            if r + 1 == rows {
                usize::MAX / 2
            } else {
                initial_credits
            }
        });
        self.pes.reset();
        self.grid.clear_links();
        self.sched.reset();
        self.polling = false;
        self.wake_events = 0;
        self.ring.reset();
        self.bubble_horizon = 0;
        self.elided_bubbles = 0;
        self.active.clear();
        self.inject_now.clear();
        self.inject_next.clear();
        for f in &mut self.feeders {
            f.clear();
        }
        self.feeders_pending = 0;
        self.feeder_bytes_per_token = LANES as u64;
        self.south_collected.clear();
        self.east_collected.clear();
        self.cycle = 0;
        self.active_pe_cycles = 0;
        self.batching = cfg.batching;
        self.batched_pe_cycles = 0;
        self.issue_window.fill(IssueCell::EMPTY);
        self.col_batch.fill(None);
        self.replay.reset(cfg.replay);
        self.extra_offchip_read = 0;
        self.extra_offchip_write = 0;
        self.wall_ns = 0;
        self.trace = None;
        self.cfg = cfg.clone();
        #[cfg(debug_assertions)]
        self.assert_pristine();
    }

    /// Audits that the fabric carries no residual state from a previous
    /// run: cycle zero, quiescent, scheduler and NoC empty, memories
    /// zeroed, and every reported statistic zero. [`Fabric::reset`] runs
    /// this automatically under `debug_assertions`; it is public so tests
    /// (and the pool's own paranoia) can invoke it directly.
    ///
    /// # Panics
    ///
    /// Panics on any residual state, naming the component.
    pub fn assert_pristine(&self) {
        assert_eq!(self.cycle, 0, "pristine fabric: cycle not zero");
        assert!(self.quiescent(), "pristine fabric: not quiescent");
        assert!(
            self.active.is_empty(),
            "pristine fabric: active set not empty"
        );
        assert!(
            self.sched.all_asleep(),
            "pristine fabric: orchestrator rows awake"
        );
        assert!(
            self.inject_now.is_clear() && self.inject_next.is_clear(),
            "pristine fabric: pending instruction injections"
        );
        assert_eq!(
            self.grid.total_queued(),
            0,
            "pristine fabric: NoC links hold entries"
        );
        assert_eq!(
            self.feeders_pending, 0,
            "pristine fabric: feeder tokens pending"
        );
        assert!(
            self.south_collected.is_empty() && self.east_collected.is_empty(),
            "pristine fabric: collectors hold entries"
        );
        assert!(
            (0..self.rows.len()).all(|r| self.rows.programs[r].is_none()),
            "pristine fabric: orchestrator programs installed"
        );
        assert!(
            !self.replay.active && self.replay.run_len == 0,
            "pristine fabric: replay stretch in flight"
        );
        assert!(self.trace.is_none(), "pristine fabric: trace sink attached");
        for r in 0..self.cfg.rows {
            for c in 0..self.cfg.cols {
                let pe = self.pes.pe(r * self.cfg.cols + c);
                for w in 0..pe.dmem.len() {
                    assert_eq!(
                        pe.dmem.word(w),
                        Vector::ZERO,
                        "pristine fabric: dmem residue at PE ({r},{c}) word {w}"
                    );
                }
                for w in 0..pe.spad.len() {
                    assert_eq!(
                        pe.spad.word(w),
                        Vector::ZERO,
                        "pristine fabric: spad residue at PE ({r},{c}) word {w}"
                    );
                }
            }
        }
        let rep = self.report();
        assert_eq!(rep.cycles, 0, "pristine fabric: reported cycles");
        let s = &rep.stats;
        assert!(
            s.instrs_executed == 0
                && s.mac_instrs == 0
                && s.dmem_reads == 0
                && s.dmem_writes == 0
                && s.spad_reads == 0
                && s.spad_writes == 0
                && s.noc_hops == 0
                && s.orch_steps == 0
                && s.stall_cycles == 0
                && s.meta_tokens == 0
                && s.offchip_read_bytes == 0
                && s.offchip_write_bytes == 0
                && s.replayed_cycles == 0
                && s.replay_stretches == 0
                && s.wake_events == 0,
            "pristine fabric: nonzero statistics in report: {s:?}"
        );
    }

    /// The configuration this fabric was built with.
    pub fn config(&self) -> &CanonConfig {
        &self.cfg
    }

    /// Mutable access to a PE's memories (kernel mappers preload data
    /// memories).
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn pe_mut(&mut self, r: usize, c: usize) -> PeMut<'_> {
        assert!(
            r < self.cfg.rows && c < self.cfg.cols,
            "PE index out of bounds"
        );
        // Direct memory access must observe (and may invalidate) deferred
        // accumulator state: settle any active replay stretch first.
        self.replay_interrupt();
        self.pes.pe_mut(r * self.cfg.cols + c)
    }

    /// Shared access to a PE.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn pe(&self, r: usize, c: usize) -> PeRef<'_> {
        assert!(
            r < self.cfg.rows && c < self.cfg.cols,
            "PE index out of bounds"
        );
        self.pes.pe(r * self.cfg.cols + c)
    }

    /// Installs an orchestrator program on row `r`. Kernel FSMs convert
    /// directly (`fabric.set_program(r, SpmmFsm::new(...))`); arbitrary
    /// programs go through [`RowProgram::custom`].
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds.
    pub fn set_program(&mut self, r: usize, program: impl Into<RowProgram>) {
        self.replay_interrupt();
        self.rows.programs[r] = Some(program.into());
        // A new program is a fresh decision source: wake the row and forget
        // any parked pure-wait of the previous program.
        self.rows.parked_at[r] = NEVER;
        self.sched.wake(r);
    }

    /// Sets row `r`'s input meta-data stream.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds.
    pub fn set_meta_stream(&mut self, r: usize, stream: Vec<MetaToken>) {
        self.replay_interrupt();
        self.rows.meta[r] = stream;
        self.rows.meta_pos[r] = 0;
        // The meta head — an orchestrator observable — changed.
        self.sched.wake(r);
    }

    /// Forces the pre-event **polling engine**: every live row is stepped
    /// every cycle and pure waits never park. Architectural behaviour is
    /// identical to the event-driven default (that equivalence is what
    /// `tests/event_wake.rs` pins); only the scheduler diagnostics
    /// ([`Stats::orch_polls_skipped`], [`Stats::wake_events`],
    /// [`Stats::active_pe_cycles`]) differ. Must be set before stepping.
    pub fn set_polling(&mut self, polling: bool) {
        self.replay_interrupt();
        self.polling = polling;
    }

    /// Enables/disables the column-vectorized batch fast path (default
    /// **on**). Architectural behaviour — cycle counts, results, stats,
    /// stall breakdowns, collector and trace streams — is identical either
    /// way (`tests/batch_column.rs` diffs the two on random programs); only
    /// the [`Stats::batched_pe_cycles`] diagnostic differs.
    pub fn set_batching(&mut self, batching: bool) {
        self.batching = batching;
    }

    /// Attaches a trace sink: from the next cycle on, every engine layer
    /// records cycle-stamped [`crate::trace::TraceEvent`]s into it. Attach
    /// **before the first cycle** for a stream that
    /// [`crate::trace::replay_stats`] can replay into the exact
    /// [`RunReport`]; a mid-run attach still yields exact counter *totals*
    /// (the header snapshots the counter bases) but cannot describe the
    /// cycles already simulated.
    ///
    /// Keep a handle to the sink's storage (e.g. a
    /// [`crate::trace::VecSink`] clone) — [`Fabric::take_trace_sink`] gives
    /// the sink back after the run.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        // Traces need the per-cycle event order: settle any deferred state
        // and let the gate in `step` keep replay disengaged while attached.
        self.replay_interrupt();
        self.trace = Some(Box::new(TraceRecorder::new(
            sink,
            self.cfg.rows,
            self.cfg.cols,
            &self.grid,
            self.extra_offchip_read,
            self.extra_offchip_write,
        )));
    }

    /// Detaches the trace recorder, closing the stream: still-parked rows'
    /// pending windows are settled into their wait spans (exactly as
    /// [`Fabric::report`] settles them, without disturbing the rows' own
    /// accounting), all spans are flushed, and the
    /// [`crate::trace::TraceEvent::RunEnd`] footer is recorded. Returns the
    /// sink, or `None` when no trace was attached.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        let mut tr = self.trace.take()?;
        let mut polls_skipped = 0;
        for r in 0..self.rows.len() {
            polls_skipped += self.rows.polls_skipped[r];
            if self.rows.parked_at[r] != NEVER {
                let pending = self.cycle.saturating_sub(self.rows.parked_at[r] + 1);
                polls_skipped += pending;
                if pending > 0 {
                    tr.on_settle(r, pending);
                }
            }
        }
        tr.finish(
            self.cycle,
            self.extra_offchip_read,
            self.extra_offchip_write,
            self.active_pe_cycles,
            polls_skipped,
            self.wake_events,
            self.batched_pe_cycles,
        );
        Some(tr.into_sink())
    }

    /// Queues north-edge stream tokens for column `c` (one token enters the
    /// array per column per cycle at most).
    ///
    /// # Panics
    ///
    /// Panics when `c` is out of bounds.
    pub fn set_feeder(&mut self, c: usize, tokens: Vec<TaggedVector>) {
        self.replay_interrupt();
        if !self.feeders[c].is_empty() {
            self.feeders_pending -= 1;
        }
        self.feeders[c] = tokens.into();
        if !self.feeders[c].is_empty() {
            self.feeders_pending += 1;
        }
    }

    /// Accounts additional off-chip read traffic (operand streams / preload)
    /// known to the kernel mapper.
    pub fn add_offchip_read_bytes(&mut self, bytes: u64) {
        self.extra_offchip_read += bytes;
    }

    /// Accounts additional off-chip write traffic.
    pub fn add_offchip_write_bytes(&mut self, bytes: u64) {
        self.extra_offchip_write += bytes;
    }

    /// Values that exited the south edge so far.
    pub fn south_collected(&self) -> &[CollectedEntry] {
        &self.south_collected
    }

    /// Values that exited the east edge so far.
    pub fn east_collected(&self) -> &[CollectedEntry] {
        &self.east_collected
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of PEs currently in the active set.
    pub fn active_pe_count(&self) -> usize {
        self.active.count()
    }

    /// Coordinates `(row, col)` of the PEs currently in the active set, in
    /// row-major order (diagnostics / tests; allocates).
    pub fn active_pes(&self) -> Vec<(usize, usize)> {
        let cols = self.cfg.cols;
        self.active
            .iter_ids()
            .map(|idx| (idx / cols, idx % cols))
            .collect()
    }

    /// Dispatches orchestrator row `r` at cycle `now`: delivers due
    /// credits, settles any parked window, steps the FSM, applies its
    /// action, and decides whether the row stays in the wake set.
    fn step_row(&mut self, r: usize, now: u64) -> Result<(), SimError> {
        let nrows = self.cfg.rows;
        let cols = self.cfg.cols;
        // Deliver due credit returns (observable only from this row's own
        // step, so delivery can wait for a wake).
        while self.rows.credit_returns[r]
            .front()
            .is_some_and(|&deliver| deliver <= now)
        {
            self.rows.credit_returns[r].pop_front();
            self.rows.south_credits[r] += 1;
        }
        let has_deliverable_msg = self.rows.inbox[r]
            .front()
            .is_some_and(|&(deliver, _)| deliver <= now);
        if self.rows.programs[r].is_none() || (self.rows.done(r) && !has_deliverable_msg) {
            // Drained: sleep until the next queued message (if any) becomes
            // deliverable. Done rows never re-park, so no settling needed.
            if !self.polling {
                self.sched.sleep(r);
                if let Some(&(deliver, _)) = self.rows.inbox[r].front() {
                    self.sched.arm(r, deliver);
                }
            }
            return Ok(());
        }
        // Settle a parked window: the polling engine would have stepped
        // this row on every skipped cycle, repeating the parked pure-wait —
        // one orchestrator step (and stall, if stalled) plus one issued
        // bubble per cycle. Steps and stalls are credited here; the bubbles
        // (which touch nothing but per-PE instruction counters) are
        // credited as `polls_skipped × cols` in [`Fabric::report`].
        if self.rows.parked_at[r] != NEVER {
            let skipped = now - self.rows.parked_at[r] - 1;
            self.rows.orch_steps[r] += skipped;
            if let Some(cause) = self.rows.parked_stall[r] {
                self.rows.stall_causes[r].add(cause, skipped);
            }
            self.rows.polls_skipped[r] += skipped;
            self.rows.parked_at[r] = NEVER;
            if skipped > 0 {
                if let Some(tr) = self.trace.as_deref_mut() {
                    tr.on_settle(r, skipped);
                }
            }
        }
        let io = OrchIo {
            cycle: now,
            input: self.rows.meta[r].get(self.rows.meta_pos[r]).copied(),
            msg: self.rows.inbox[r]
                .front()
                .filter(|&&(deliver, _)| deliver <= now)
                .map(|&(_, m)| m),
            south_credits: self.rows.south_credits[r],
            msg_slot_free: r + 1 >= nrows
                || self.rows.inbox[r + 1].len() < self.cfg.orch_msg_capacity,
            north_tokens: self.grid.vertical_ref(r, 0).len(),
        };
        let action = self.rows.programs[r]
            .as_mut()
            .expect("checked present above")
            .step(&io);
        self.rows.orch_steps[r] += 1;
        debug_assert!(
            action.state_id != NO_STATE,
            "state id {NO_STATE} is reserved as the never-stepped sentinel"
        );
        if self.rows.last_state[r] != action.state_id {
            if self.rows.last_state[r] != NO_STATE {
                self.rows.transitions[r] += 1;
            }
            self.rows.last_state[r] = action.state_id;
        }
        if let Some(cause) = action.stall_cause() {
            self.rows.stall_causes[r].add(cause, 1);
        }
        if action.consumes_input() {
            self.rows.meta_pos[r] += 1;
            self.rows.meta_consumed[r] += 1;
        }
        if action.consumes_msg() {
            self.rows.inbox[r].pop_front();
            // Slot event: the northern row's `msg_slot_free` observable may
            // have flipped.
            if r > 0 && !self.polling && self.sched.wake(r - 1) {
                self.wake_events += 1;
                if let Some(tr) = self.trace.as_deref_mut() {
                    tr.on_wake(now, r - 1, WakeSource::SlotFreed);
                }
            }
        }
        let instr = action.instr;
        if instr.pushes_toward(Direction::South) && r + 1 < nrows {
            if self.rows.south_credits[r] == 0 {
                return Err(SimError::Deadlock {
                    cycle: now,
                    waiting_on: format!("row {r} issued a south push without credit (FSM bug)"),
                });
            }
            self.rows.south_credits[r] -= 1;
        }
        if instr.pops_from(Direction::North) && r > 0 {
            let deliver = now + self.cfg.orch_msg_latency;
            self.rows.credit_returns[r - 1].push_back(deliver);
            // Timed event: the row above observes the credit at `deliver`
            // (with zero latency, at its next step — it precedes us in the
            // dispatch order, exactly as under polling).
            if !self.polling {
                self.sched.arm(r - 1, deliver);
            }
        }
        if let Some(m) = action.msg_out() {
            self.rows.messages_sent[r] += 1;
            if r + 1 < nrows {
                if self.rows.inbox[r + 1].len() >= self.cfg.orch_msg_capacity {
                    return Err(SimError::Deadlock {
                        cycle: now,
                        waiting_on: format!("row {r} overflowed the message channel"),
                    });
                }
                let deliver = now + self.cfg.orch_msg_latency;
                self.rows.inbox[r + 1].push_back((deliver, m));
                if !self.polling {
                    if deliver <= now {
                        // Zero-latency message: the southern row observes it
                        // this very cycle (it follows us in dispatch order),
                        // so a timer — checked at phase start — would be a
                        // cycle late.
                        if self.sched.wake(r + 1) {
                            self.wake_events += 1;
                            if let Some(tr) = self.trace.as_deref_mut() {
                                tr.on_wake(now, r + 1, WakeSource::Message);
                            }
                        }
                    } else {
                        self.sched.arm(r + 1, deliver);
                    }
                }
            }
        }
        debug_assert!(
            self.inject_now.kind[r * cols] == Inject::None,
            "column-0 injection slot not consumed"
        );
        // Issue. Real instructions are interned once and thereafter march
        // east as 4-byte handles. Bubbles are elided: architecturally inert,
        // they are settled as `cols` instruction latches and a drain-horizon
        // extension instead of marching through the pipeline (see
        // [`Inject`]).
        let mut issued_handle = None;
        if instr.is_plain_nop() {
            self.elided_bubbles += 1;
            self.bubble_horizon = self.bubble_horizon.max(now + 3 * cols as u64);
        } else {
            // Decode once per issue. Fast plans validate their (per-issue
            // constant) addresses here and batch-account the whole row's
            // executions, so the per-column LOAD/COMMIT below runs neither
            // bounds checks nor counter updates for them.
            let plan = Plan::classify(&instr);
            if plan != Plan::Generic {
                self.pes.validate_and_account(plan, cols)?;
            }
            // Fold this issue into the cycle's uniform-prefix cell. Rows
            // dispatch in ascending order, so the prefix grows only while
            // every row so far issued the same non-generic shape; a bubble
            // or parked row simply never folds, freezing the prefix below
            // it in both engines identically.
            let slot = (now & (self.issue_window.len() as u64 - 1)) as usize;
            let cell = &mut self.issue_window[slot];
            let k = plan.kind();
            if cell.cycle != now {
                *cell = IssueCell {
                    cycle: now,
                    kind: k,
                    prefix: (r == 0 && k != PlanKind::Generic) as u32,
                };
            } else if cell.prefix == r as u32 && k == cell.kind && k != PlanKind::Generic {
                cell.prefix += 1;
            }
            self.inject_now.put(r * cols, instr, plan, &mut self.ring);
            self.active.insert(r * cols);
            if self.trace.is_some() {
                issued_handle = Some(self.inject_now.handle[r * cols]);
            }
        }
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.on_orch_step(now, r, &action, issued_handle);
        }
        // Park decision: a pure wait (and only a pure wait) leaves the wake
        // set; everything else keeps the row due next cycle.
        if !self.polling
            && action.parks()
            && instr.is_plain_nop()
            && !action.consumes_input()
            && !action.consumes_msg()
            && action.msg_out().is_none()
        {
            self.rows.parked_at[r] = now;
            self.rows.parked_stall[r] = action.stall_cause();
            if let Some(tr) = self.trace.as_deref_mut() {
                tr.on_park(now, r);
            }
            self.sched.sleep(r);
            // Arm timers for events already in flight towards this row.
            if let Some(&deliver) = self.rows.credit_returns[r].front() {
                self.sched.arm(r, deliver);
            }
            if let Some(&(deliver, _)) = self.rows.inbox[r].front() {
                if deliver > now {
                    self.sched.arm(r, deliver);
                }
            }
        }
        Ok(())
    }

    /// Advances the fabric by one cycle.
    ///
    /// # Errors
    ///
    /// Returns protocol errors (router conflicts, FIFO over/underflow,
    /// address violations) detected during the cycle.
    pub fn step(&mut self) -> Result<(), SimError> {
        let now = self.cycle;
        let cols = self.cfg.cols;
        let nrows = self.cfg.rows;

        // 1. North-edge feeders: at most one token per column per cycle. A
        // token landing on column c's edge FIFO wakes its consumer PE (0, c)
        // — and, on column 0, the top orchestrator row, whose `north_tokens`
        // observable just changed.
        if self.feeders_pending > 0 {
            for c in 0..cols {
                if let Some(&tok) = self.feeders[c].front() {
                    let link = self.grid.vertical(0, c);
                    if link.len() < self.cfg.link_fifo_depth {
                        link.push(tok, now, "north feeder")?;
                        self.feeders[c].pop_front();
                        if self.feeders[c].is_empty() {
                            self.feeders_pending -= 1;
                        }
                        self.extra_offchip_read += self.feeder_bytes_per_token;
                        self.active.insert(c);
                        if c == 0 && !self.polling && self.sched.wake(0) {
                            self.wake_events += 1;
                            if let Some(tr) = self.trace.as_deref_mut() {
                                tr.on_wake(now, 0, WakeSource::Feeder);
                            }
                        }
                    }
                }
            }
        }

        // 2. Orchestrator phase, event-driven: fire due delivery timers,
        // then step only woken rows (ascending order — identical dispatch
        // order to the polling engine, which matters for message-channel
        // checks). Credits are delivered lazily at dispatch: rows observe
        // them only in their own step, so a sleeping row's queue can wait.
        // A finished orchestrator is still stepped while deliverable
        // messages are pending: its FSM keeps the bypass transitions of the
        // DONE state so upstream rows can drain through it.
        if let Some(tr) = self.trace.as_deref_mut() {
            self.wake_events += self
                .sched
                .fire_due_with(now, |r| tr.on_wake(now, r, WakeSource::Timer));
        } else {
            self.wake_events += self.sched.fire_due(now);
        }
        if self.polling || !self.sched.all_asleep() {
            for r in 0..nrows {
                if !self.polling && !self.sched.is_awake(r) {
                    continue;
                }
                self.step_row(r, now)?;
            }
        }

        // 2b. Steady-state replay gate: when the engine is engaged and this
        // cycle is *clean* (every row issued one uniform MAC shape — pure
        // PE-local arithmetic, no NoC drives, no sink pushes, no wakes), the
        // whole PE sweep is deferred: the freshly issued operands are
        // harvested into the capture timeline and phases 3–6 are skipped
        // (the pipeline does not advance; it is reconstructed at flush).
        // Orchestrators, feeders, credits, and messages stepped honestly
        // above, so the first non-clean cycle falls through here, settles
        // the stretch arithmetically, and resumes cycle-stepping — making
        // replay architecturally invisible (see `crate::replay`).
        if self.replay.enabled && self.trace.is_none() && !self.polling && self.replay_tick(now) {
            self.cycle += 1;
            return Ok(());
        }

        // 3. Active sweep: COMMIT (NoC pushes, eastward forwarding), EXECUTE
        // and LOAD for every live PE, in PE-id order. Processing each PE's
        // three phases back to back is cycle-identical to phase barriers
        // because dataflow is strictly south/east-bound: a link's producer
        // always has a smaller id than its consumer, so same-cycle pushes
        // are committed before the consuming LOAD runs (see module docs).
        // Each word is copied before scanning it: PEs woken mid-sweep by a
        // push have no same-cycle work and are picked up next cycle.
        //
        // The same producer-before-consumer ordering makes a PE's
        // next-cycle activity fully known by the time its turn ends (its
        // west neighbour's forwarding commit and all pushes into its input
        // links have already run), so deactivation happens inline instead of
        // in a second sweep. The row/column of each id is tracked
        // incrementally — ids are visited in ascending order, so no
        // divisions run in the loop.
        //
        // Uniform columns take the column-vectorized batch sweep instead:
        // the detector below checks, per fabric column, that the three issue
        // cycles currently occupying its pipeline slots (`now − 3c − 2`,
        // `… − 1`, `now − 3c` — the 3-cycle stagger) were each row-uniform
        // MAC shapes, folded at issue into `issue_window`. Such a column's
        // PEs are all live with full COMMIT/EXECUTE slots and a pending
        // injection, and MAC plans drive no links, retire no bubbles, and
        // wake nothing — so the scalar scan only emits their trace events
        // (preserving the ascending-id event order) and skips them; the
        // state mutation happens in [`PeArray::batch_col`] after the scan,
        // which reorders nothing observable (a MAC's COMMIT/LOAD touch only
        // PE-local state).
        self.active_pe_cycles += self.active.count() as u64;
        let mut south_sink_dirty = false;
        let mut east_sink_dirty = false;
        let mut batched_cols = 0usize;
        let mut full_cols = 0usize;
        let win_mask = self.issue_window.len() as u64 - 1;
        let win = &self.issue_window;
        let uniform = |t: u64| {
            let cell = &win[(t & win_mask) as usize];
            (cell.cycle == t && cell.prefix > 0).then_some((cell.kind, cell.prefix))
        };
        for c in 0..cols {
            self.col_batch[c] = None;
            if !self.batching || now < 3 * c as u64 + 2 {
                continue;
            }
            let t_load = now - 3 * c as u64;
            let (Some((commit_kind, p0)), Some((_, p1)), Some((load_kind, p2))) =
                (uniform(t_load - 2), uniform(t_load - 1), uniform(t_load))
            else {
                continue;
            };
            // Batch the common uniform prefix of the three issue cycles
            // occupying this column's pipeline slots; rows at and beyond the
            // prefix stay on the scalar path. Short prefixes are not worth
            // the pass setup.
            let p = p0.min(p1).min(p2);
            if (p as usize) < nrows && p < MIN_BATCH_PREFIX {
                continue;
            }
            self.col_batch[c] = Some((commit_kind, load_kind, p));
            batched_cols += 1;
            if p as usize == nrows {
                full_cols += 1;
            }
        }
        // When every column batches every row (a fully MAC-saturated
        // fabric) and no trace needs the per-PE event order, the scalar
        // scan has nothing left to visit at all.
        if full_cols < cols || self.trace.is_some() {
            let mut r = 0usize;
            let mut row_base = 0usize;
            for w in 0..self.active.word_count() {
                let mut bits = self.active.word(w);
                while bits != 0 {
                    let idx = (w << 6) | bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    while idx >= row_base + cols {
                        r += 1;
                        row_base += cols;
                    }
                    let c = idx - row_base;
                    if batched_cols > 0 {
                        if let Some((_, _, p)) = self.col_batch[c] {
                            if (r as u32) < p {
                                // Batched prefix PE: emit the commit event the
                                // scalar path would have (a MAC commit wakes
                                // nothing and drives no sink), leave the bit
                                // set (the PE is about to load), and let the
                                // batch pass do the work. Rows at and beyond
                                // the prefix fall through to the scalar path.
                                if self.trace.is_some() {
                                    let h = self.pes.commit_handle(idx).expect(
                                        "uniform prefix: every COMMIT slot holds an instruction",
                                    );
                                    let op = self.ring.get(h).op;
                                    if let Some(tr) = self.trace.as_deref_mut() {
                                        tr.on_commit(now, r, c, h, op);
                                    }
                                }
                                continue;
                            }
                        }
                    }
                    // COMMIT writes a retiring instruction's 4-byte handle
                    // straight into the eastern neighbour's injection slot and
                    // reports its link drives as flags; bubbles forward as a
                    // tag only.
                    let has_east = c + 1 < cols;
                    // Peek the retiring handle before COMMIT consumes the slot
                    // (trace-only; the branch is the hook's entire cost).
                    let traced_commit = if self.trace.is_some() {
                        self.pes.commit_handle(idx)
                    } else {
                        None
                    };
                    let eff = self.pes.commit_into_planned(
                        idx,
                        &self.ring,
                        &mut self.grid,
                        r,
                        c,
                        now,
                        if has_east {
                            Some(&mut self.inject_next.handle[idx + 1])
                        } else {
                            None
                        },
                    )?;
                    if eff.retired {
                        debug_assert!(
                            !eff.bubble,
                            "bubbles are elided at issue and never enter fabric pipelines"
                        );
                        if let Some(h) = traced_commit {
                            let op = self.ring.get(h).op;
                            if let Some(tr) = self.trace.as_deref_mut() {
                                tr.on_commit(now, r, c, h, op);
                            }
                        }
                        if has_east {
                            self.inject_next.kind[idx + 1] = Inject::Instr;
                            self.active.insert(idx + 1);
                        }
                        if eff.drives_south {
                            if r + 1 < nrows {
                                self.active.insert(idx + cols);
                                // Link event: a column-0 south push changes the
                                // consuming row's `north_tokens` observable.
                                if c == 0 && !self.polling && self.sched.wake(r + 1) {
                                    self.wake_events += 1;
                                    if let Some(tr) = self.trace.as_deref_mut() {
                                        tr.on_wake(now, r + 1, WakeSource::Link);
                                    }
                                }
                            } else {
                                south_sink_dirty = true;
                            }
                        }
                        if eff.drives_east && !has_east {
                            east_sink_dirty = true;
                        }
                    }
                    let mut loaded = true;
                    match self.inject_now.kind[idx] {
                        Inject::None => loaded = false,
                        Inject::Instr => {
                            self.inject_now.kind[idx] = Inject::None;
                            let h = self.inject_now.handle[idx];
                            if c == 0 {
                                // Fresh orchestrator issue: validate the §3.1
                                // route rules once here; the eastward-forwarded
                                // copies are identical and skip the re-check.
                                self.pes.load_planned(
                                    idx,
                                    h,
                                    &self.ring,
                                    &mut self.grid,
                                    r,
                                    c,
                                    now,
                                )?;
                            } else {
                                self.pes.load_planned_forwarded(
                                    idx,
                                    h,
                                    &self.ring,
                                    &mut self.grid,
                                    r,
                                    c,
                                    now,
                                )?;
                            }
                        }
                    }
                    // Inline deactivation: a PE leaves the set once its
                    // pipeline, pending injection, and input links are all
                    // empty. The condition is exact (everything that could
                    // change it this cycle has already run), which is what lets
                    // `quiescent()` trust `active.is_empty()`. A PE that just
                    // loaded is trivially still live — the common case costs one
                    // branch.
                    if !loaded
                        && self.pes.pipeline_empty(idx)
                        && self.inject_next.kind[idx] == Inject::None
                        && self.grid.pe_inputs_empty(r, c)
                    {
                        self.active.remove(idx);
                    }
                }
            }
        }

        // Column-vectorized passes for the uniform columns. Running them
        // after the scalar scan keeps the scan's commit-slot peeks valid;
        // nothing a batched MAC column does this cycle is observable to the
        // scalar PEs (no link pushes, no shared state), so the order is
        // architecturally irrelevant.
        if batched_cols > 0 {
            for c in 0..cols {
                let Some((commit_kind, load_kind, p)) = self.col_batch[c] else {
                    continue;
                };
                let p = p as usize;
                let has_east = c + 1 < cols;
                let mut idx = c;
                for _ in 0..p {
                    // Per prefix PE, exactly the scalar bookkeeping: the
                    // injection is consumed and the retiring handle re-arms
                    // the eastern neighbour for next cycle — re-activating
                    // it, since its own deactivation check may already have
                    // run this scan.
                    self.inject_now.kind[idx] = Inject::None;
                    if has_east {
                        self.inject_next.kind[idx + 1] = Inject::Instr;
                        self.active.insert(idx + 1);
                    }
                    idx += cols;
                }
                let forwards = if has_east {
                    Some(self.inject_next.handle.as_mut_slice())
                } else {
                    None
                };
                self.pes.batch_col(
                    c,
                    cols,
                    p,
                    &self.ring,
                    &self.inject_now.handle,
                    forwards,
                    commit_kind,
                    load_kind,
                );
                self.batched_pe_cycles += p as u64;
            }
        }

        // 4. Advance pipelines (O(1) stage-index rotation); next cycle's
        // column > 0 injections become current. Every pending injection was
        // consumed by the sweep (a pending slot implies an active bit), so
        // the swapped-out array needs no clearing.
        self.pes.advance();
        std::mem::swap(&mut self.inject_now, &mut self.inject_next);
        debug_assert!(
            self.inject_next.is_clear(),
            "injection leaked past the active sweep"
        );

        // 5. Drain edge sinks straight into the collectors, only on cycles
        // in which a bottom-row/east-column commit drove a sink link: the
        // sink links are popped in place, with no per-edge temporary
        // collection, and entries always exit in the cycle they were pushed.
        if south_sink_dirty {
            for c in 0..cols {
                let link = self.grid.vertical(nrows, c);
                while let Some(e) = link.try_pop() {
                    if let Some(tr) = self.trace.as_deref_mut() {
                        tr.on_collect(now, Direction::South, c, e.tag);
                    }
                    self.south_collected.push(CollectedEntry {
                        tag: e.tag,
                        lane: c,
                        value: e.value,
                        cycle: now,
                    });
                }
            }
        }
        if east_sink_dirty {
            for r in 0..nrows {
                let link = self.grid.horizontal(r, cols);
                while let Some(e) = link.try_pop() {
                    if let Some(tr) = self.trace.as_deref_mut() {
                        tr.on_collect(now, Direction::East, r, e.tag);
                    }
                    self.east_collected.push(CollectedEntry {
                        tag: e.tag,
                        lane: r,
                        value: e.value,
                        cycle: now,
                    });
                }
            }
        }

        // 6. Trace epilogue: diff the NoC push counters and off-chip bytes
        // against the last scan (zero work without a sink).
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.end_of_cycle(
                now,
                &self.grid,
                self.extra_offchip_read,
                self.extra_offchip_write,
            );
        }

        self.cycle += 1;
        Ok(())
    }

    /// Enables/disables the steady-state replay engine (default: the
    /// [`CanonConfig::replay`] knob). Architectural behaviour — cycle
    /// counts, results, stats, stall breakdowns, collector and trace streams
    /// — is identical either way (`tests/replay_differential.rs` diffs the
    /// two on random programs); only the [`Stats::replayed_cycles`] /
    /// [`Stats::replay_stretches`] diagnostics differ. An active stretch is
    /// flushed before the switch takes effect.
    pub fn set_replay(&mut self, replay: bool) {
        self.replay_interrupt();
        self.replay.enabled = replay;
    }

    /// Settles any active replay stretch so every architectural structure
    /// (PE pipelines, injection queue, accumulator storage) is current.
    /// Called by every mutator that could invalidate the capture or observe
    /// deferred state (program/meta/feeder swaps, trace attach, engine
    /// switches, direct PE access).
    fn replay_interrupt(&mut self) {
        if self.replay.active {
            self.replay_flush(self.cycle);
        }
        self.replay.run_len = 0;
    }

    /// Replay gate, run between the orchestrator phase and the PE sweep.
    /// Returns `true` when this cycle was deferred into the capture
    /// timeline (the caller skips phases 3–6).
    fn replay_tick(&mut self, now: u64) -> bool {
        let nrows = self.cfg.rows;
        let cols = self.cfg.cols;
        let cell = &self.issue_window[(now & (self.issue_window.len() as u64 - 1)) as usize];
        let clean = cell.cycle == now && cell.prefix == nrows as u32;
        let kind = cell.kind;
        if self.replay.active {
            if clean && kind == self.replay.kind && self.replay_harvest() {
                self.replay.deferred_cycles += 1;
                self.active_pe_cycles += self.active.count() as u64;
                if self.batching {
                    self.batched_pe_cycles += self.cfg.pe_count() as u64;
                }
                if self.replay.tl[0].len() >= REPLAY_CHUNK {
                    self.replay_absorb_to(now + 1);
                    self.replay.compact(cols);
                }
                return true;
            }
            // Stretch over (bubble, shape change, or a row re-targeted its
            // accumulator): settle the deferred cycles and let this cycle
            // take the normal phases. `clear_capture` (inside the flush)
            // zeroes the run length, so re-entry stays amortized.
            self.replay_flush(now);
            return false;
        }
        if clean {
            self.replay.run_len += 1;
            // After `3·cols` consecutive clean cycles every pipeline slot
            // and pending injection provably holds a uniform MAC, so the
            // in-flight state is template-describable and entry is attempted.
            if self.replay.run_len >= 3 * cols as u64 && self.replay_try_enter(now) {
                self.replay.stretches += 1;
                self.replay.deferred_cycles += 1;
                self.active_pe_cycles += self.active.count() as u64;
                if self.batching {
                    self.batched_pe_cycles += self.cfg.pe_count() as u64;
                }
                return true;
            }
        } else {
            self.replay.run_len = 0;
        }
        false
    }

    /// Attempts stretch entry at clean cycle `e`: decodes the in-flight
    /// pipeline (per column `c`, the COMMIT slot holds issue `e − 3c − 2`,
    /// EXECUTE `e − 3c − 1`, the pending injection `e − 3c`; column 0's
    /// injection is cycle `e`'s fresh issue) into the per-row timeline and
    /// validates the template: one shape across all `3·cols` in-flight
    /// cycles and one constant accumulator target per row. On success cycle
    /// `e` becomes the first deferred cycle; on mismatch the run length
    /// resets (entry retries stay amortized) and the cycle steps normally.
    fn replay_try_enter(&mut self, e: u64) -> bool {
        let nrows = self.cfg.rows;
        let cols = self.cfg.cols;
        let win_mask = self.issue_window.len() as u64 - 1;
        let t_base = e + 1 - 3 * cols as u64;
        let kind = self.issue_window[(e & win_mask) as usize].kind;
        // Every cycle in the window is clean (that is what `run_len`
        // counted), but the *shape* may differ cycle to cycle; the template
        // needs one.
        for t in t_base..=e {
            let cell = &self.issue_window[(t & win_mask) as usize];
            debug_assert!(cell.cycle == t && cell.prefix == nrows as u32);
            if cell.kind != kind {
                self.replay.run_len = 0;
                return false;
            }
        }
        let mut scratch = std::mem::take(&mut self.replay.scratch);
        for r in 0..nrows {
            let base = r * cols;
            scratch.clear();
            scratch.resize(3 * cols, ReplayEntry::default());
            // Template target: the accumulator of cycle `e`'s fresh issue.
            debug_assert_eq!(self.inject_now.kind[base], Inject::Instr);
            let h0 = self.inject_now.handle[base];
            let (target, e0) = ReplayEntry::from_plan(self.ring.plan(h0), self.ring.get(h0).tag);
            scratch[(e - t_base) as usize] = e0;
            let mut ok = true;
            for c in 0..cols {
                let (ch, eh) = self.pes.replay_slot_handles(base + c);
                let tc = e - 3 * c as u64 - 2;
                let (ct, ce) = ReplayEntry::from_plan(self.ring.plan(ch), self.ring.get(ch).tag);
                let (et, ee) = ReplayEntry::from_plan(self.ring.plan(eh), self.ring.get(eh).tag);
                if ct != target || et != target {
                    ok = false;
                    break;
                }
                scratch[(tc - t_base) as usize] = ce;
                scratch[(tc + 1 - t_base) as usize] = ee;
                if c > 0 {
                    debug_assert_eq!(self.inject_now.kind[base + c], Inject::Instr);
                    let h = self.inject_now.handle[base + c];
                    let (it, ie) = ReplayEntry::from_plan(self.ring.plan(h), self.ring.get(h).tag);
                    if it != target {
                        ok = false;
                        break;
                    }
                    scratch[(tc + 2 - t_base) as usize] = ie;
                }
            }
            if !ok {
                for t in &mut self.replay.tl {
                    t.clear();
                }
                self.replay.scratch = scratch;
                self.replay.run_len = 0;
                return false;
            }
            self.replay.targets[r] = target;
            self.replay.tl[r].extend_from_slice(&scratch);
        }
        self.replay.scratch = scratch;
        self.replay.kind = kind;
        self.replay.t_base = t_base;
        // Storage currently reflects commits through cycle `e − 1`, i.e.
        // the chain through issue `e − 3c − 3` per column.
        self.replay.absorbed = e;
        self.replay.active = true;
        // Consume the column-0 injections (the deferral harvests them); the
        // column `c > 0` slots stay pending for the whole stretch and are
        // re-pointed at reconstructed records at flush.
        for r in 0..nrows {
            self.inject_now.kind[r * cols] = Inject::None;
        }
        true
    }

    /// Harvests one deferred cycle's fresh issues (column-0 injections)
    /// into the timeline. Validation first, commitment second: when any row
    /// re-targeted its accumulator the timeline is left untouched and the
    /// caller flushes, with this cycle taking the normal phases.
    fn replay_harvest(&mut self) -> bool {
        let nrows = self.cfg.rows;
        let cols = self.cfg.cols;
        let mut scratch = std::mem::take(&mut self.replay.scratch);
        scratch.clear();
        for r in 0..nrows {
            let base = r * cols;
            debug_assert_eq!(self.inject_now.kind[base], Inject::Instr);
            let h = self.inject_now.handle[base];
            let (target, entry) = ReplayEntry::from_plan(self.ring.plan(h), self.ring.get(h).tag);
            if target != self.replay.targets[r] {
                self.replay.scratch = scratch;
                return false;
            }
            scratch.push(entry);
        }
        for (r, &entry) in scratch.iter().enumerate() {
            self.replay.tl[r].push(entry);
            self.inject_now.kind[r * cols] = Inject::None;
        }
        self.replay.scratch = scratch;
        true
    }

    /// Advances accumulator storage through virtual cycle `v_new` (the
    /// chain through issue `v_new − 3c − 3` per column — exactly the
    /// commits a cycle-stepped run performs before cycle `v_new`'s sweep).
    fn replay_absorb_to(&mut self, v_new: u64) {
        let v_old = self.replay.absorbed;
        if v_new <= v_old {
            return;
        }
        let cols = self.cfg.cols;
        let rows = self.cfg.rows;
        // Per-absorb scratch (flushes are amortized ≥ 3·cols cycles apart,
        // chunk absorbs `REPLAY_CHUNK` cycles apart, so this stays far
        // under the steady-state allocs/cycle budget).
        let mut acc: Vec<Vector> = Vec::with_capacity(rows * cols);
        self.pes.replay_absorb_all(
            rows,
            cols,
            self.replay.kind,
            &self.replay.targets,
            &self.replay.tl,
            self.replay.t_base,
            v_old,
            v_new,
            &mut acc,
        );
        self.replay.absorbed = v_new;
    }

    /// Ends the active stretch at cycle `f` (the first non-deferrable cycle,
    /// or the current cycle on an interrupt): settles the buffered chains
    /// into storage, reconstructs the pipeline slots and pending injections
    /// exactly as a cycle-stepped run would hold them at the start of cycle
    /// `f`'s sweep, and re-arms detection.
    fn replay_flush(&mut self, f: u64) {
        let cols = self.cfg.cols;
        let nrows = self.cfg.rows;
        self.replay_absorb_to(f);
        let kind = self.replay.kind;
        let t_base = self.replay.t_base;
        let mut slots: Vec<(InstrHandle, InstrHandle)> = Vec::with_capacity(cols);
        for r in 0..nrows {
            let base = r * cols;
            let target = self.replay.targets[r];
            slots.clear();
            for c in 0..cols {
                let tc = f - 3 * c as u64 - 2;
                // Reconstructed records are freshly interned: the stretch's
                // originals may have been overwritten (the ring is sized to
                // the issue-to-retire window, not to a whole stretch).
                let ic = self.replay.tl[r][(tc - t_base) as usize].rebuild(kind, target);
                let ie = self.replay.tl[r][(tc + 1 - t_base) as usize].rebuild(kind, target);
                let hc = self.ring.intern_planned(ic, Plan::classify(&ic));
                let he = self.ring.intern_planned(ie, Plan::classify(&ie));
                slots.push((hc, he));
                if c > 0 {
                    debug_assert_eq!(self.inject_now.kind[base + c], Inject::Instr);
                    let ii = self.replay.tl[r][(tc + 2 - t_base) as usize].rebuild(kind, target);
                    self.inject_now.handle[base + c] =
                        self.ring.intern_planned(ii, Plan::classify(&ii));
                }
            }
            self.pes.replay_finalize_row(
                r,
                cols,
                kind,
                target,
                &self.replay.tl[r],
                t_base,
                f,
                &slots,
            );
        }
        self.replay.clear_capture();
    }

    /// True when all orchestrators are done, all pipelines and links are
    /// empty, and no messages or feeder tokens are pending.
    ///
    /// The active set makes this O(rows): an occupied pipeline, pending
    /// injection, or non-empty link keeps its PE active, so PE and NoC
    /// drain-state collapses to `active.is_empty()`.
    pub fn quiescent(&self) -> bool {
        self.active.is_empty()
            && self.cycle >= self.bubble_horizon
            && self.feeders_pending == 0
            && (0..self.rows.len()).all(|r| self.rows.done(r) && self.rows.inbox[r].is_empty())
    }

    /// Runs until quiescent, returning the run report.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors and reports a [`SimError::Deadlock`] if the
    /// watchdog budget is exhausted before the fabric drains.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        let work: u64 = (0..self.rows.len())
            .map(|r| self.rows.meta_left(r) as u64)
            .sum::<u64>()
            + self.feeders.iter().map(|f| f.len() as u64).sum::<u64>();
        let budget = self
            .cfg
            .watchdog_factor
            .saturating_mul(work + (self.cfg.rows + self.cfg.cols) as u64)
            .saturating_add(self.cfg.watchdog_slack);
        let start = self.cycle;
        let wall_start = std::time::Instant::now();
        // Harness budgets and fault sentinels, pre-extracted so the common
        // (unset) case costs two always-false compares per iteration and no
        // Option matching inside the loop.
        let panic_at = match self.cfg.fault {
            Some(crate::fault::FaultAction::PanicAt { cycle }) => start.saturating_add(cycle),
            _ => u64::MAX,
        };
        let slow_ns = match self.cfg.fault {
            Some(crate::fault::FaultAction::SlowCycle { nanos }) => nanos,
            _ => 0,
        };
        let cycle_ceiling = match self.cfg.max_cycles {
            Some(m) => start.saturating_add(m),
            None => u64::MAX,
        };
        let wall_budget_ns = self.cfg.wall_budget_ns.unwrap_or(u64::MAX);
        // Wall-clock checks are amortised over 1024 cycles so `Instant::now`
        // stays off the hot path — except under an injected slow-cycle
        // fault, where each iteration already sleeps and a coarse check
        // would overshoot the budget by seconds.
        let wall_check_mask: u64 = if slow_ns != 0 { 0 } else { 0x3FF };
        let result = loop {
            if self.quiescent() {
                break Ok(());
            }
            if self.cycle >= panic_at {
                panic!(
                    "injected fault: forced panic at cycle {} (FaultAction::PanicAt)",
                    self.cycle
                );
            }
            if slow_ns != 0 {
                std::thread::sleep(std::time::Duration::from_nanos(slow_ns));
            }
            if self.cycle >= cycle_ceiling {
                break Err(SimError::Timeout {
                    cycle: self.cycle,
                    budget: format!(
                        "cycle ceiling {} cycles",
                        self.cfg.max_cycles.unwrap_or_default()
                    ),
                });
            }
            if (self.cycle - start) & wall_check_mask == 0
                && wall_start.elapsed().as_nanos() as u64 > wall_budget_ns
            {
                break Err(SimError::Timeout {
                    cycle: self.cycle,
                    budget: format!(
                        "wall-clock budget {} ns",
                        self.cfg.wall_budget_ns.unwrap_or_default()
                    ),
                });
            }
            if self.cycle - start > budget {
                let waiting: Vec<String> = (0..self.rows.len())
                    .filter(|&r| !self.rows.done(r))
                    .map(|r| format!("row {r} ({} meta left)", self.rows.meta_left(r)))
                    .collect();
                break Err(SimError::Deadlock {
                    cycle: self.cycle,
                    waiting_on: if waiting.is_empty() {
                        "pipeline/NoC drain".into()
                    } else {
                        waiting.join(", ")
                    },
                });
            }
            if let Err(e) = self.step() {
                break Err(e);
            }
        };
        // Accumulated on the error path too, so a report taken after a
        // watchdog/protocol abort still attributes the wall time spent.
        self.wall_ns += wall_start.elapsed().as_nanos() as u64;
        result?;
        // The run drained: give back the edge sinks' growth overshoot (they
        // are empty — step 5 drains them the cycle they are pushed), so a
        // finished cell's fabric holds only high-water footprints while its
        // collectors are post-processed ([`Link::reset`]).
        self.grid.reset_links();
        Ok(self.report())
    }

    /// Builds the report for the cycles simulated so far.
    pub fn report(&self) -> RunReport {
        let mut stats = Stats::new();
        for i in 0..self.pes.len() {
            let c = self.pes.counters(i);
            stats.instrs_executed += c.instrs;
            stats.compute_instrs += c.compute_instrs;
            stats.mac_instrs += c.mac_instrs;
            let pe = self.pes.pe(i);
            stats.dmem_reads += pe.dmem.read_count();
            stats.dmem_writes += pe.dmem.write_count();
            stats.spad_reads += pe.spad.read_count();
            stats.spad_writes += pe.spad.write_count();
        }
        stats.noc_hops = self.grid.total_pushes();
        // Planned fast-path issues are batch-accounted at issue time (the
        // per-PE counters cover only generic-path executions).
        let batch = self.pes.batch_counters();
        stats.instrs_executed += batch.instrs;
        stats.compute_instrs += batch.compute_instrs;
        stats.mac_instrs += batch.mac_instrs;
        let (bdr, bdw, bsr, bsw) = self.pes.batch_mem_counts();
        stats.dmem_reads += bdr;
        stats.dmem_writes += bdw;
        stats.spad_reads += bsr;
        stats.spad_writes += bsw;
        for r in 0..self.rows.len() {
            stats.orch_steps += self.rows.orch_steps[r];
            stats.orch_transitions += self.rows.transitions[r];
            stats.orch_messages += self.rows.messages_sent[r];
            stats.stall_cycles += self.rows.stall_causes[r].total();
            stats.stall_breakdown.merge(&self.rows.stall_causes[r]);
            stats.meta_tokens += self.rows.meta_consumed[r];
            // Skipped polls, including a still-parked tail (reports taken
            // after a watchdog/protocol abort): each skipped poll is one
            // orchestrator step (+ stall) the polling engine would have
            // performed, plus one bubble traversing the row's `cols` PEs.
            let mut skipped = self.rows.polls_skipped[r];
            if self.rows.parked_at[r] != NEVER {
                let pending = self.cycle.saturating_sub(self.rows.parked_at[r] + 1);
                stats.orch_steps += pending;
                if let Some(cause) = self.rows.parked_stall[r] {
                    stats.stall_cycles += pending;
                    stats.stall_breakdown.add(cause, pending);
                }
                skipped += pending;
            }
            stats.orch_polls_skipped += skipped;
            stats.instrs_executed += skipped * self.cfg.cols as u64;
        }
        // Elided bubbles: each would have latched into every column of its
        // row (`cols` pipeline NOPs counted by the marching simulator).
        stats.instrs_executed += self.elided_bubbles * self.cfg.cols as u64;
        stats.wake_events = self.wake_events;
        stats.offchip_read_bytes = self.extra_offchip_read;
        stats.offchip_write_bytes = self.extra_offchip_write;
        stats.active_pe_cycles = self.active_pe_cycles;
        stats.batched_pe_cycles = self.batched_pe_cycles;
        stats.replayed_cycles = self.replay.deferred_cycles;
        stats.replay_stretches = self.replay.stretches;
        RunReport {
            cycles: self.cycle,
            pes: self.cfg.pe_count(),
            stats,
            wall_ns: self.wall_ns,
        }
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("rows", &self.cfg.rows)
            .field("cols", &self.cfg.cols)
            .field("cycle", &self.cycle)
            .field("active", &self.active.count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Addr, Opcode};
    use crate::orchestrator::OrchAction;

    /// A scripted orchestrator that plays back a fixed instruction sequence.
    struct Script {
        instrs: VecDeque<Instruction>,
    }

    impl OrchProgram for Script {
        fn step(&mut self, _io: &OrchIo) -> OrchAction {
            match self.instrs.pop_front() {
                Some(i) => OrchAction::issue(i, 0),
                None => OrchAction::nop(0),
            }
        }
        fn done(&self) -> bool {
            self.instrs.is_empty()
        }
    }

    fn small_cfg() -> CanonConfig {
        CanonConfig {
            rows: 2,
            cols: 3,
            dmem_words: 16,
            spad_entries: 4,
            ..CanonConfig::default()
        }
    }

    #[test]
    fn staggered_issue_reaches_column_c_at_3c() {
        // One instruction that pushes its dmem word south; dmem preloaded
        // with distinct values per column. The south-edge collector records
        // the exit cycle per column: issue at cycle 0 → commit at column c at
        // cycle 3c + 2.
        let cfg = small_cfg();
        let mut f = Fabric::new(&cfg, false);
        for c in 0..3 {
            f.pe_mut(1, c).dmem.preload(0, &[Vector::splat(c as i32)]);
        }
        let flush = Instruction::new(
            Opcode::Mov,
            Addr::DataMem(0),
            Addr::Null,
            Addr::Port(Direction::South),
        )
        .with_tag(7);
        f.set_program(
            1,
            RowProgram::custom(Script {
                instrs: vec![flush].into(),
            }),
        );
        f.run().unwrap();
        let got = f.south_collected();
        assert_eq!(got.len(), 3);
        for e in got {
            assert_eq!(e.tag, 7);
            assert_eq!(e.value, Vector::splat(e.lane as i32));
            // LOAD at 3c, COMMIT at 3c + 2.
            assert_eq!(e.cycle, 3 * e.lane as u64 + 2);
        }
    }

    #[test]
    fn pipelined_throughput_one_instruction_per_cycle() {
        // N flushes issued back-to-back: last exit cycle = (N-1) + 3(C-1) + 2.
        let cfg = small_cfg();
        let mut f = Fabric::new(&cfg, false);
        let n = 5;
        let instrs: Vec<Instruction> = (0..n)
            .map(|i| {
                Instruction::new(
                    Opcode::Mov,
                    Addr::Imm,
                    Addr::Null,
                    Addr::Port(Direction::South),
                )
                .with_imm(Vector::splat(i as i32))
                .with_tag(i as u32)
            })
            .collect();
        f.set_program(
            1,
            RowProgram::custom(Script {
                instrs: instrs.into(),
            }),
        );
        f.run().unwrap();
        let got = f.south_collected();
        assert_eq!(got.len(), n * 3);
        let last = got.iter().map(|e| e.cycle).max().unwrap();
        assert_eq!(last, (n as u64 - 1) + 3 * 2 + 2);
    }

    #[test]
    fn quiescent_initially_and_after_run() {
        let cfg = small_cfg();
        let mut f = Fabric::new(&cfg, false);
        assert!(f.quiescent());
        assert_eq!(f.active_pe_count(), 0);
        f.set_program(
            0,
            RowProgram::custom(Script {
                instrs: VecDeque::new(),
            }),
        );
        let r = f.run().unwrap();
        assert_eq!(r.cycles, 0);
        assert_eq!(f.active_pe_count(), 0);
    }

    #[test]
    fn watchdog_fires_on_stuck_program() {
        struct Stuck;
        impl OrchProgram for Stuck {
            fn step(&mut self, _io: &OrchIo) -> OrchAction {
                OrchAction::stall(0, StallCause::Credit)
            }
            fn done(&self) -> bool {
                false
            }
        }
        let mut cfg = small_cfg();
        cfg.watchdog_factor = 1;
        cfg.watchdog_slack = 50;
        let mut f = Fabric::new(&cfg, false);
        f.set_program(0, RowProgram::custom(Stuck));
        assert!(matches!(f.run(), Err(SimError::Deadlock { .. })));
    }

    #[test]
    fn report_counts_instructions_and_stalls() {
        let cfg = small_cfg();
        let mut f = Fabric::new(&cfg, false);
        let instrs: Vec<Instruction> = vec![Instruction::NOP; 4];
        f.set_program(
            0,
            RowProgram::custom(Script {
                instrs: instrs.into(),
            }),
        );
        let r = f.run().unwrap();
        // 4 NOPs each latch into 3 PEs — counted despite never marching
        // (bubble elision credits them at report time).
        assert_eq!(r.stats.instrs_executed, 12);
        assert_eq!(r.stats.compute_instrs, 0);
        assert_eq!(r.stats.orch_steps, 4);
        // Bubbles are elided at issue, so the sweep never visits a PE: the
        // marching simulator would have spent 18 PE-cycles on them. The
        // cycle count still covers the full drain (last bubble issued at
        // cycle 3 + 3 columns × 3 stages).
        assert_eq!(r.stats.active_pe_cycles, 0);
        assert_eq!(r.cycles, 3 + 9);
    }

    #[test]
    fn feeder_rate_is_one_token_per_cycle_per_column() {
        let cfg = small_cfg();
        let mut f = Fabric::new(&cfg, true);
        // The popping instruction traverses all three columns, so every
        // column needs a feeder stream.
        for c in 0..3 {
            let tokens: Vec<TaggedVector> = (0..3)
                .map(|i| TaggedVector {
                    value: Vector::splat(i),
                    tag: i as u32,
                })
                .collect();
            f.set_feeder(c, tokens);
        }
        // A scripted program that pops north three times on row 0.
        let pop = Instruction::new(
            Opcode::Mov,
            Addr::Port(Direction::North),
            Addr::Null,
            Addr::Spad(0),
        );
        f.set_program(
            0,
            RowProgram::custom(Script {
                instrs: vec![pop, pop, pop].into(),
            }),
        );
        let r = f.run().unwrap();
        assert!(r.cycles >= 3);
        // 3 tokens × 3 columns × LANES bytes accounted as off-chip reads.
        assert_eq!(r.stats.offchip_read_bytes, 9 * LANES as u64);
    }

    #[test]
    fn active_set_follows_the_wavefront() {
        // A single issued instruction sweeps eastward; the active set tracks
        // exactly the PEs holding it (plus the injection ahead of it), and
        // empties once the fabric drains.
        let cfg = small_cfg();
        let mut f = Fabric::new(&cfg, false);
        let i = Instruction::new(Opcode::Mov, Addr::Imm, Addr::Null, Addr::Reg(0))
            .with_imm(Vector::splat(1));
        f.set_program(
            0,
            RowProgram::custom(Script {
                instrs: vec![i].into(),
            }),
        );
        f.step().unwrap();
        // Cycle 0: the instruction loaded into PE (0,0).
        assert_eq!(f.active_pes(), vec![(0, 0)]);
        while !f.quiescent() {
            f.step().unwrap();
            // Row 1 never participates.
            assert!(f.active_pes().iter().all(|&(r, _)| r == 0));
        }
        assert_eq!(f.active_pe_count(), 0);
        // 1 instruction × 3 pipeline cycles × 3 columns of residence.
        assert_eq!(f.report().stats.active_pe_cycles, 9);
    }
}
