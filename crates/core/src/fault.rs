//! Deterministic fault injection for the sweep harness.
//!
//! A [`FaultPlan`] maps sweep-cell indices to [`FaultAction`]s so every
//! failure path in the sweep engine — panic isolation, the deadlock
//! watchdog, wall-clock/cycle budgets, and transient-retry — can be
//! exercised on demand by tests and CI instead of by bad luck.
//!
//! The plan lives in `canon-core` because three of the four actions are
//! honored *inside* the fabric (the sweep engine threads the per-cell
//! action into [`crate::CanonConfig::fault`]):
//!
//! * [`FaultAction::PanicAt`] — `Fabric::run` panics when the cycle
//!   counter reaches the given cycle, exercising `catch_unwind` isolation.
//! * [`FaultAction::WithholdCredits`] — the fabric starts with zero
//!   south-link credits on every non-bottom row, so the first flush stalls
//!   forever and the *real* deadlock watchdog fires.
//! * [`FaultAction::SlowCycle`] — every simulated cycle sleeps for the
//!   given wall time, turning the cell into a runaway that only a
//!   wall-clock budget ([`crate::CanonConfig::wall_budget_ns`]) can stop.
//! * [`FaultAction::Transient`] — handled entirely by the sweep engine
//!   (the fabric never sees it): the first `failures` attempts of the cell
//!   fail with a retryable error, exercising bounded retry with backoff.
//!
//! Injection is deterministic: the same plan over the same grid produces
//! byte-identical failure records at any worker count.

/// A single injected fault, applied to one sweep cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic inside the cycle loop once `cycle` simulated cycles have run.
    PanicAt {
        /// Cycle (relative to the start of the run) at which to panic.
        cycle: u64,
    },
    /// Start every non-bottom row with zero south-link credits: flushes
    /// stall on credit forever and the deadlock watchdog fires.
    WithholdCredits,
    /// Sleep this many wall-clock nanoseconds per simulated cycle.
    SlowCycle {
        /// Delay per cycle in nanoseconds.
        nanos: u64,
    },
    /// Fail the first `failures` attempts of the cell with a transient
    /// (retryable) error before succeeding. Interpreted by the sweep
    /// engine; never reaches the fabric.
    Transient {
        /// Number of leading attempts that fail.
        failures: u32,
    },
}

impl FaultAction {
    /// Compact descriptor used in config fingerprints, so a faulted cell
    /// never shares a store key with its healthy counterpart.
    pub fn descriptor(&self) -> String {
        match self {
            FaultAction::PanicAt { cycle } => format!("panic@{cycle}"),
            FaultAction::WithholdCredits => "withhold-credits".to_string(),
            FaultAction::SlowCycle { nanos } => format!("slow:{nanos}ns"),
            FaultAction::Transient { failures } => format!("transient:{failures}"),
        }
    }

    /// Parses a [`FaultAction::descriptor`] back into the action — the
    /// serve protocol's per-request fault field travels in descriptor form
    /// so wire, fingerprint, and log spellings agree. Returns `None` for
    /// anything that is not an exact descriptor.
    pub fn from_descriptor(s: &str) -> Option<FaultAction> {
        if s == "withhold-credits" {
            return Some(FaultAction::WithholdCredits);
        }
        if let Some(cycle) = s.strip_prefix("panic@") {
            return cycle
                .parse()
                .ok()
                .map(|cycle| FaultAction::PanicAt { cycle });
        }
        if let Some(nanos) = s.strip_prefix("slow:").and_then(|r| r.strip_suffix("ns")) {
            return nanos
                .parse()
                .ok()
                .map(|nanos| FaultAction::SlowCycle { nanos });
        }
        if let Some(failures) = s.strip_prefix("transient:") {
            return failures
                .parse()
                .ok()
                .map(|failures| FaultAction::Transient { failures });
        }
        None
    }
}

/// A deterministic schedule of injected faults, keyed by sweep-cell index.
///
/// # Examples
///
/// ```
/// use canon_core::fault::{FaultAction, FaultPlan};
/// let plan = FaultPlan::new()
///     .with_fault(4, FaultAction::PanicAt { cycle: 0 })
///     .with_fault(9, FaultAction::WithholdCredits);
/// assert_eq!(plan.action_for(4), Some(FaultAction::PanicAt { cycle: 0 }));
/// assert_eq!(plan.action_for(5), None);
/// assert_eq!(plan.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<(usize, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan (no faults injected).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds (or replaces) the fault for cell `cell`.
    #[must_use]
    pub fn with_fault(mut self, cell: usize, action: FaultAction) -> FaultPlan {
        self.set(cell, action);
        self
    }

    /// Adds (or replaces) the fault for cell `cell`.
    pub fn set(&mut self, cell: usize, action: FaultAction) {
        if let Some(slot) = self.faults.iter_mut().find(|(c, _)| *c == cell) {
            slot.1 = action;
        } else {
            self.faults.push((cell, action));
        }
    }

    /// The fault injected at cell `cell`, if any.
    pub fn action_for(&self, cell: usize) -> Option<FaultAction> {
        self.faults
            .iter()
            .find(|(c, _)| *c == cell)
            .map(|(_, a)| *a)
    }

    /// Number of faulted cells.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Iterates over `(cell, action)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, FaultAction)> + '_ {
        self.faults.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_lookup_and_replace() {
        let mut plan = FaultPlan::new().with_fault(3, FaultAction::WithholdCredits);
        assert_eq!(plan.action_for(3), Some(FaultAction::WithholdCredits));
        plan.set(3, FaultAction::PanicAt { cycle: 7 });
        assert_eq!(plan.action_for(3), Some(FaultAction::PanicAt { cycle: 7 }));
        assert_eq!(plan.len(), 1);
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn descriptors_are_distinct() {
        let actions = [
            FaultAction::PanicAt { cycle: 2 },
            FaultAction::WithholdCredits,
            FaultAction::SlowCycle { nanos: 100 },
            FaultAction::Transient { failures: 1 },
        ];
        let descs: std::collections::BTreeSet<String> =
            actions.iter().map(|a| a.descriptor()).collect();
        assert_eq!(descs.len(), actions.len());
    }

    mod fabric_injection {
        use crate::fault::FaultAction;
        use crate::kernels::spmm::{run_spmm, SpmmMapping};
        use crate::{CanonConfig, SimError};
        use canon_sparse::{gen, Dense};

        fn run_with(cfg: &CanonConfig) -> Result<crate::kernels::spmm::SpmmOutput, SimError> {
            let mut rng = gen::seeded_rng(7);
            let a = gen::random_sparse(16, 16, 0.5, &mut rng);
            let b = Dense::random(16, 16, &mut rng);
            run_spmm(cfg, &SpmmMapping::default(), &a, &b)
        }

        #[test]
        fn panic_at_cycle_fires_with_injection_message() {
            let cfg = CanonConfig {
                fault: Some(FaultAction::PanicAt { cycle: 3 }),
                ..CanonConfig::default()
            };
            let payload = std::panic::catch_unwind(|| run_with(&cfg))
                .expect_err("injected panic must unwind");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .expect("panic payload is a formatted string");
            assert!(msg.contains("injected fault"), "unexpected payload: {msg}");
        }

        #[test]
        fn withheld_credits_trip_the_deadlock_watchdog() {
            let cfg = CanonConfig {
                fault: Some(FaultAction::WithholdCredits),
                ..CanonConfig::default()
            };
            match run_with(&cfg) {
                Err(SimError::Deadlock { cycle, .. }) => assert!(cycle > 0),
                other => panic!("expected a watchdog deadlock, got {other:?}"),
            }
        }

        #[test]
        fn cycle_ceiling_times_out_a_live_run() {
            let cfg = CanonConfig {
                max_cycles: Some(8),
                ..CanonConfig::default()
            };
            match run_with(&cfg) {
                Err(SimError::Timeout { cycle, budget }) => {
                    assert!(cycle >= 8, "abort cycle {cycle} before the ceiling");
                    assert!(budget.contains("cycle ceiling"));
                }
                other => panic!("expected a cycle-ceiling timeout, got {other:?}"),
            }
        }

        #[test]
        fn slow_cycle_fault_exhausts_the_wall_budget() {
            let cfg = CanonConfig {
                fault: Some(FaultAction::SlowCycle { nanos: 1_000_000 }),
                wall_budget_ns: Some(5_000_000),
                ..CanonConfig::default()
            };
            match run_with(&cfg) {
                Err(SimError::Timeout { budget, .. }) => {
                    assert!(budget.contains("wall-clock"));
                }
                other => panic!("expected a wall-clock timeout, got {other:?}"),
            }
        }

        #[test]
        fn unset_budgets_change_nothing() {
            let base = run_with(&CanonConfig::default()).unwrap();
            let budgeted = run_with(&CanonConfig {
                max_cycles: Some(u64::MAX / 4),
                wall_budget_ns: Some(u64::MAX / 4),
                ..CanonConfig::default()
            })
            .unwrap();
            assert_eq!(base.result, budgeted.result);
            assert_eq!(base.report.cycles, budgeted.report.cycles);
        }
    }
}
