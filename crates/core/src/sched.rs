//! Active-set scheduling for the cycle engine.
//!
//! [`ActiveSet`] is a dense bitset over PE ids tracking which PEs can
//! possibly do work this cycle. The fabric's per-phase sweeps iterate only
//! the set bits instead of the whole array, so fully-drained regions of the
//! fabric cost nothing per cycle.
//!
//! Membership discipline (maintained by [`crate::fabric::Fabric::step`]):
//!
//! * a PE **enters** the set when an instruction is injected towards it
//!   (orchestrator issue at column 0, eastward forwarding of a retiring
//!   instruction) or when a NoC push lands on one of its input links
//!   (south push from the row above, east push from the column to the
//!   west, north-edge feeder token);
//! * a PE **leaves** the set at end of cycle once its pipeline holds no
//!   [`InFlight`](crate::pe) state, no injection is pending, and both its
//!   input links are empty.
//!
//! The removal condition is exact (checked against the same state the
//! quiescence predicate used to sweep), which lets the fabric's per-cycle
//! quiescence check collapse to `active.is_empty()` plus O(rows) of
//! orchestrator state.

/// A dense bitset of PE ids with O(1) insert/remove and word-wise iteration.
#[derive(Debug, Clone)]
pub struct ActiveSet {
    words: Vec<u64>,
    len: usize,
    count: usize,
}

impl ActiveSet {
    /// An empty set over ids `0..n`.
    pub fn new(n: usize) -> ActiveSet {
        ActiveSet {
            words: vec![0; n.div_ceil(64)],
            len: n,
            count: 0,
        }
    }

    /// Number of ids the set ranges over.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Deactivates every id, keeping the backing words (fabric reuse).
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.count = 0;
    }

    /// Number of active ids.
    pub fn count(&self) -> usize {
        self.count
    }

    /// True when no id is active.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Marks `idx` active. Returns `true` when the id was newly inserted
    /// (callers counting wake events use this to ignore redundant wakes).
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        debug_assert!(idx < self.len);
        let word = &mut self.words[idx >> 6];
        let bit = 1u64 << (idx & 63);
        if *word & bit == 0 {
            *word |= bit;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Marks `idx` inactive.
    #[inline]
    pub fn remove(&mut self, idx: usize) {
        debug_assert!(idx < self.len);
        let word = &mut self.words[idx >> 6];
        let bit = 1u64 << (idx & 63);
        if *word & bit != 0 {
            *word &= !bit;
            self.count -= 1;
        }
    }

    /// True when `idx` is active.
    pub fn contains(&self, idx: usize) -> bool {
        self.words[idx >> 6] & (1u64 << (idx & 63)) != 0
    }

    /// Number of backing words (for manual word-wise iteration).
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The `w`-th backing word. Iterating a *copy* of each word while
    /// mutating the set is the fabric's idiom: ids woken mid-sweep are
    /// picked up next phase (waking is monotone — it only adds candidates,
    /// and a freshly woken PE has no same-cycle work by construction).
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// Active ids in ascending order (diagnostics / tests; allocates).
    pub fn iter_ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some((w << 6) | tz)
            })
        })
    }
}

/// Event scheduler for the per-row orchestrator phase.
///
/// The polling engine rebuilt every live row's [`OrchIo`](crate::orchestrator::OrchIo)
/// each cycle. Under event-driven wakeups the fabric instead visits only
/// rows whose observable inputs may have changed since their last decision:
///
/// * the **wake bitset** holds rows that must be stepped next cycle — a row
///   stays in it while it makes progress, is inserted by link events (a
///   south push landing on its column-0 North FIFO, a feeder token, an
///   inter-orchestrator message consume freeing the neighbour's slot), and
///   is removed when the row *parks* (its action was a pure wait, see
///   [`OrchAction::park`](crate::orchestrator::OrchAction)) or drains;
/// * the **timer wheel-of-one** arms, per row, the earliest future cycle at
///   which a queued event (an in-flight credit return or orchestrator
///   message with a delivery latency) becomes observable; `fire_due` moves
///   due rows back into the wake bitset.
///
/// A parked row costs zero work per cycle: no `OrchIo` is built, no FSM is
/// stepped, and its skipped polls are accounted lazily when it wakes (see
/// `fabric.rs`).
#[derive(Debug, Clone)]
pub struct RowSched {
    /// Rows to visit in the next orchestrator phase.
    wake: ActiveSet,
    /// Earliest scheduled timed wake per row (`u64::MAX` = none).
    timer: Vec<u64>,
    /// Minimum over `timer` — the phase checks one word before scanning.
    next_due: u64,
}

impl RowSched {
    /// A scheduler over `rows` orchestrator rows, all asleep.
    pub fn new(rows: usize) -> RowSched {
        RowSched {
            wake: ActiveSet::new(rows),
            timer: vec![u64::MAX; rows],
            next_due: u64::MAX,
        }
    }

    /// Returns the scheduler to its post-construction state (all rows
    /// asleep, no timers armed), keeping allocations (fabric reuse).
    pub fn reset(&mut self) {
        self.wake.clear();
        self.timer.fill(u64::MAX);
        self.next_due = u64::MAX;
    }

    /// Wakes row `r` immediately. Returns `true` when the row was newly
    /// woken (i.e. this call is a distinct wake event).
    #[inline]
    pub fn wake(&mut self, r: usize) -> bool {
        self.wake.insert(r)
    }

    /// Removes row `r` from the wake set (the row parked or drained).
    #[inline]
    pub fn sleep(&mut self, r: usize) {
        self.wake.remove(r);
    }

    /// True when row `r` is due this cycle.
    #[inline]
    pub fn is_awake(&self, r: usize) -> bool {
        self.wake.contains(r)
    }

    /// True when no row is awake (lets the fabric skip the phase wholesale;
    /// timed wakes are checked separately via [`RowSched::fire_due`]).
    #[inline]
    pub fn all_asleep(&self) -> bool {
        self.wake.is_empty()
    }

    /// Arms a timed wake for row `r` at cycle `at` (keeps the earliest if
    /// one is already armed). `u64::MAX` is a no-op.
    #[inline]
    pub fn arm(&mut self, r: usize, at: u64) {
        if at < self.timer[r] {
            self.timer[r] = at;
        }
        if at < self.next_due {
            self.next_due = at;
        }
    }

    /// Moves every row whose timer is due (`<= now`) into the wake set,
    /// returning the number of rows newly woken. Cost is one comparison on
    /// cycles with nothing due.
    #[inline]
    pub fn fire_due(&mut self, now: u64) -> u64 {
        self.fire_due_with(now, |_| {})
    }

    /// [`RowSched::fire_due`] with an observer invoked for each row newly
    /// woken by a timer (the trace layer's timer-wake hook).
    #[inline]
    pub fn fire_due_with(&mut self, now: u64, mut on_wake: impl FnMut(usize)) -> u64 {
        if self.next_due > now {
            return 0;
        }
        let mut fired = 0;
        let mut next = u64::MAX;
        for r in 0..self.timer.len() {
            let t = self.timer[r];
            if t <= now {
                self.timer[r] = u64::MAX;
                if self.wake.insert(r) {
                    fired += 1;
                    on_wake(r);
                }
            } else {
                next = next.min(t);
            }
        }
        self.next_due = next;
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_count() {
        let mut s = ActiveSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(129)); // idempotent, not a new wake
        assert_eq!(s.count(), 4);
        assert!(s.contains(64));
        assert!(!s.contains(1));
        s.remove(64);
        s.remove(64); // idempotent
        assert_eq!(s.count(), 3);
        assert_eq!(s.iter_ids().collect::<Vec<_>>(), vec![0, 63, 129]);
        assert_eq!(s.universe(), 130);
    }

    #[test]
    fn word_iteration_matches_iter_ids() {
        let mut s = ActiveSet::new(200);
        for idx in [3, 64, 65, 127, 128, 199] {
            s.insert(idx);
        }
        let mut via_words = Vec::new();
        for w in 0..s.word_count() {
            let mut bits = s.word(w);
            while bits != 0 {
                via_words.push((w << 6) | bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
        assert_eq!(via_words, s.iter_ids().collect::<Vec<_>>());
    }

    #[test]
    fn row_sched_wake_and_sleep() {
        let mut s = RowSched::new(8);
        assert!(s.all_asleep());
        assert!(s.wake(3));
        assert!(!s.wake(3)); // redundant wake is not a new event
        assert!(s.is_awake(3));
        assert!(!s.all_asleep());
        s.sleep(3);
        assert!(s.all_asleep());
    }

    #[test]
    fn row_sched_timers_fire_once_at_due_cycle() {
        let mut s = RowSched::new(4);
        s.arm(1, 10);
        s.arm(2, 12);
        s.arm(2, 11); // earliest wins
        assert_eq!(s.fire_due(9), 0);
        assert!(s.all_asleep());
        assert_eq!(s.fire_due(10), 1);
        assert!(s.is_awake(1));
        assert!(!s.is_awake(2));
        s.sleep(1);
        assert_eq!(s.fire_due(11), 1);
        assert!(s.is_awake(2));
        s.sleep(2);
        // Nothing left armed.
        assert_eq!(s.fire_due(u64::MAX - 1), 0);
    }

    #[test]
    fn row_sched_timer_on_already_awake_row_is_not_a_new_wake() {
        let mut s = RowSched::new(2);
        s.wake(0);
        s.arm(0, 5);
        assert_eq!(s.fire_due(5), 0);
        assert!(s.is_awake(0));
    }
}
