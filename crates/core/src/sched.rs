//! Active-set scheduling for the cycle engine.
//!
//! [`ActiveSet`] is a dense bitset over PE ids tracking which PEs can
//! possibly do work this cycle. The fabric's per-phase sweeps iterate only
//! the set bits instead of the whole array, so fully-drained regions of the
//! fabric cost nothing per cycle.
//!
//! Membership discipline (maintained by [`crate::fabric::Fabric::step`]):
//!
//! * a PE **enters** the set when an instruction is injected towards it
//!   (orchestrator issue at column 0, eastward forwarding of a retiring
//!   instruction) or when a NoC push lands on one of its input links
//!   (south push from the row above, east push from the column to the
//!   west, north-edge feeder token);
//! * a PE **leaves** the set at end of cycle once its pipeline holds no
//!   [`InFlight`](crate::pe) state, no injection is pending, and both its
//!   input links are empty.
//!
//! The removal condition is exact (checked against the same state the
//! quiescence predicate used to sweep), which lets the fabric's per-cycle
//! quiescence check collapse to `active.is_empty()` plus O(rows) of
//! orchestrator state.

/// A dense bitset of PE ids with O(1) insert/remove and word-wise iteration.
#[derive(Debug, Clone)]
pub struct ActiveSet {
    words: Vec<u64>,
    len: usize,
    count: usize,
}

impl ActiveSet {
    /// An empty set over ids `0..n`.
    pub fn new(n: usize) -> ActiveSet {
        ActiveSet {
            words: vec![0; n.div_ceil(64)],
            len: n,
            count: 0,
        }
    }

    /// Number of ids the set ranges over.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Number of active ids.
    pub fn count(&self) -> usize {
        self.count
    }

    /// True when no id is active.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Marks `idx` active.
    #[inline]
    pub fn insert(&mut self, idx: usize) {
        debug_assert!(idx < self.len);
        let word = &mut self.words[idx >> 6];
        let bit = 1u64 << (idx & 63);
        if *word & bit == 0 {
            *word |= bit;
            self.count += 1;
        }
    }

    /// Marks `idx` inactive.
    #[inline]
    pub fn remove(&mut self, idx: usize) {
        debug_assert!(idx < self.len);
        let word = &mut self.words[idx >> 6];
        let bit = 1u64 << (idx & 63);
        if *word & bit != 0 {
            *word &= !bit;
            self.count -= 1;
        }
    }

    /// True when `idx` is active.
    pub fn contains(&self, idx: usize) -> bool {
        self.words[idx >> 6] & (1u64 << (idx & 63)) != 0
    }

    /// Number of backing words (for manual word-wise iteration).
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The `w`-th backing word. Iterating a *copy* of each word while
    /// mutating the set is the fabric's idiom: ids woken mid-sweep are
    /// picked up next phase (waking is monotone — it only adds candidates,
    /// and a freshly woken PE has no same-cycle work by construction).
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// Active ids in ascending order (diagnostics / tests; allocates).
    pub fn iter_ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some((w << 6) | tz)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_count() {
        let mut s = ActiveSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        s.insert(129); // idempotent
        assert_eq!(s.count(), 4);
        assert!(s.contains(64));
        assert!(!s.contains(1));
        s.remove(64);
        s.remove(64); // idempotent
        assert_eq!(s.count(), 3);
        assert_eq!(s.iter_ids().collect::<Vec<_>>(), vec![0, 63, 129]);
        assert_eq!(s.universe(), 130);
    }

    #[test]
    fn word_iteration_matches_iter_ids() {
        let mut s = ActiveSet::new(200);
        for idx in [3, 64, 65, 127, 128, 199] {
            s.insert(idx);
        }
        let mut via_words = Vec::new();
        for w in 0..s.word_count() {
            let mut bits = s.word(w);
            while bits != 0 {
                via_words.push((w << 6) | bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
        assert_eq!(via_words, s.iter_ids().collect::<Vec<_>>());
    }
}
