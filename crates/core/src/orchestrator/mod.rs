//! The programmable orchestrator (§3.2, Fig 5).
//!
//! One orchestrator drives each PE row. Every cycle it examines (a) the head
//! of its input meta-data stream (sparse coordinates, row-end tokens), (b)
//! the message register fed by its northern neighbour orchestrator, and (c)
//! flow-control state (south-channel credits, message-slot availability), and
//! produces one instruction for its row plus optional state updates and an
//! optional message to the southern neighbour.
//!
//! Two implementations of the data-to-instruction translation are provided:
//!
//! * **native FSMs** — Rust state machines in [`crate::kernels`] implementing
//!   the paper's per-kernel microcode (e.g. Listing 1 for SpMM) directly;
//! * **the LUT bitstream path** ([`lut`], [`assembler`]) — a faithful model of
//!   the hardware's programmable-logic lookup table (2¹⁰ entries × 48 bits,
//!   6 KB SRAM) driven by a fixed datapath of condition ALUs and
//!   address-generation units. Kernel FSMs can be *assembled* into a
//!   bitstream and executed by [`lut::LutProgram`]; differential tests check
//!   the two paths are cycle-identical.

pub mod assembler;
pub mod lut;

use crate::isa::Instruction;
use canon_sparse::Value;

/// A token of the input meta-data stream (`INPUT_META_IN` in Fig 5).
///
/// The semantics of tokens "are not fixed by the hardware but defined by the
/// compiler" (§3.2); these variants cover the kernels mapped in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaToken {
    /// A non-zero of the streamed sparse operand: `A[row][col]` where `col`
    /// is local to this row's K-segment. Carries the value, which the
    /// orchestrator places in the instruction immediate (west-edge stream).
    Nnz {
        /// Output-row id (RID).
        row: u32,
        /// Column index local to this PE row's segment (CID).
        col: u32,
        /// The non-zero value.
        value: Value,
    },
    /// End of output row `row` in the streamed operand.
    RowEnd {
        /// Output-row id that just ended.
        row: u32,
    },
    /// A masked output position for SDDMM: compute output `(row, col)` where
    /// `col` is local to this PE row's N-segment.
    MaskPos {
        /// Output-row id (`m`).
        row: u32,
        /// Local output column (`h`).
        col: u32,
    },
    /// End of SDDMM output row `row`.
    MRowEnd {
        /// Output-row id that just ended.
        row: u32,
    },
    /// End of the whole stream.
    End,
}

/// Message identifiers on the inter-orchestrator channel.
pub mod msg_id {
    /// A partial sum for output row `rid` was flushed south (Listing 1's
    /// `PSUM[RID]`).
    pub const PSUM: u8 = 1;
}

/// A message between vertically adjacent orchestrators
/// (`ORCH_MSG_OUT`/`ORCH_MSG_IN` + `MSG_ID` in Fig 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrchMessage {
    /// Message type (see [`msg_id`]).
    pub id: u8,
    /// Message payload: the row id it refers to.
    pub rid: u32,
}

/// Everything an orchestrator can observe in one cycle.
#[derive(Debug, Clone, Copy)]
pub struct OrchIo {
    /// Current cycle (for diagnostics).
    pub cycle: u64,
    /// Head of the input meta-data stream, if any.
    pub input: Option<MetaToken>,
    /// Delivered message from the northern orchestrator, if any.
    pub msg: Option<OrchMessage>,
    /// Remaining credits on this row's southbound data channel. An
    /// instruction that pushes South (result or route) consumes one credit;
    /// the fabric returns it when the southern row pops.
    pub south_credits: usize,
    /// Whether a message can be sent south this cycle.
    pub msg_slot_free: bool,
    /// Number of tokens currently waiting in this row's column-0 North FIFO
    /// (uniform across columns by the staggered-timing invariant). Non-zero
    /// means an instruction reading `Port(North)` can be issued.
    pub north_tokens: usize,
}

/// The orchestrator's decision for one cycle.
#[derive(Debug, Clone)]
pub struct OrchAction {
    /// Instruction issued to the first PE of the row (possibly NOP).
    pub instr: Instruction,
    /// Whether the head input token was consumed.
    pub consume_input: bool,
    /// Whether the delivered message was consumed.
    pub consume_msg: bool,
    /// Message to send south, if any.
    pub msg_out: Option<OrchMessage>,
    /// FSM main-state identifier after this cycle (3-bit State Register in
    /// Fig 5); the fabric counts changes as data-driven state transitions.
    pub state_id: u8,
    /// True when the orchestrator wanted to act but was back-pressured
    /// (credit/message-slot unavailable); counted as a stall cycle.
    pub stalled: bool,
    /// True when this action is a **pure wait** the event-driven engine may
    /// replay without re-stepping the program: the program asserts that
    /// stepping it again with *unchanged* observable inputs ([`OrchIo`]:
    /// meta head, delivered message, credits, message slot, north tokens)
    /// would return this same action and leave it in an equivalent state.
    ///
    /// The fabric then removes the row from the wake set and revisits it
    /// only when an observable input changes (a link event, a delivered
    /// message or credit, a freed message slot); the skipped cycles are
    /// accounted as if polled — `orch_steps`, `stall_cycles`, and the
    /// issued bubbles stay byte-identical to the polling engine.
    ///
    /// A parkable action must be observably idle: a plain-NOP instruction,
    /// no consumption, no outgoing message. [`OrchAction::stall`] sets this
    /// flag (a back-pressured wait is the canonical pure wait);
    /// [`OrchAction::nop`] does not, so stateful programs that ignore their
    /// inputs (scripted tests, cycle-driven experiments) keep being polled
    /// every cycle unless they opt in.
    pub park: bool,
}

impl OrchAction {
    /// A plain NOP action in the given state. Not parkable: programs that
    /// make progress on their own (without any observable-input change)
    /// return this and are re-polled next cycle.
    pub fn nop(state_id: u8) -> OrchAction {
        OrchAction {
            instr: Instruction::NOP,
            consume_input: false,
            consume_msg: false,
            msg_out: None,
            state_id,
            stalled: false,
            park: false,
        }
    }

    /// A NOP action that records back-pressure. Parkable: a stalled program
    /// is by definition waiting on an observable input (a credit return, a
    /// freed message slot, a north token), so the event-driven engine skips
    /// it until one changes. Stall paths must therefore be *fixed points*:
    /// re-stepping with the same inputs yields the same stall and mutates
    /// nothing observable (all in-tree FSMs return their stalls before any
    /// non-idempotent state update). A program whose stall is **not** a
    /// fixed point — e.g. one counting its own steps towards an internal
    /// timeout — must clear `park` on the returned action to keep being
    /// polled every cycle.
    pub fn stall(state_id: u8) -> OrchAction {
        OrchAction {
            stalled: true,
            park: true,
            ..OrchAction::nop(state_id)
        }
    }
}

/// The data-to-instruction translation function executed by an orchestrator.
///
/// Implementations are per-kernel "microcode": native Rust FSMs in
/// [`crate::kernels`], or assembled LUT bitstreams via [`lut::LutProgram`].
///
/// Decisions must be functions of the *observable inputs* ([`OrchIo`]) and
/// the program's own state — `io.cycle` is diagnostic only. Programs whose
/// decisions depend on wall-cycle count would still run correctly under the
/// event-driven fabric (they are polled every cycle unless they return a
/// parked action, see [`OrchAction::park`]), but must never set `park`.
pub trait OrchProgram {
    /// Computes this cycle's action from the observable inputs. Called once
    /// per cycle until [`OrchProgram::done`] returns true — except on
    /// cycles skipped after a parked action ([`OrchAction::park`]), which
    /// the fabric replays without a call.
    fn step(&mut self, io: &OrchIo) -> OrchAction;

    /// True once the orchestrator has finished its stream and drained all
    /// buffered state (the fabric stops invoking it and lets the row's
    /// pipeline drain).
    fn done(&self) -> bool;
}

/// A trivial program that issues nothing and is immediately done (rows not
/// participating in a kernel).
#[derive(Debug, Default, Clone)]
pub struct IdleProgram;

impl OrchProgram for IdleProgram {
    fn step(&mut self, _io: &OrchIo) -> OrchAction {
        OrchAction::nop(0)
    }
    fn done(&self) -> bool {
        true
    }
}

/// The orchestrator program installed on a fabric row, dispatched as an
/// enum.
///
/// The fabric calls [`OrchProgram::step`] once per row per cycle — with a
/// `Box<dyn OrchProgram>` that was a vtable indirection on the per-cycle
/// orchestrator phase. All of the paper's kernel FSMs are known statically,
/// so rows dispatch through this enum instead; [`RowProgram::Custom`] keeps
/// the open trait for scripted programs in tests and downstream
/// experiments.
///
/// Kernel mappers pass their FSM straight to
/// [`crate::Fabric::set_program`], which accepts `impl Into<RowProgram>`.
pub enum RowProgram {
    /// A row not participating in the kernel.
    Idle(IdleProgram),
    /// The SpMM scratchpad-window FSM (Listing 1).
    Spmm(crate::kernels::spmm::SpmmFsm),
    /// The register-accumulation FSM (dense GEMM / N:M structured).
    RegAcc(crate::kernels::gemm::RegAccFsm),
    /// The SDDMM FSM (Listing 4).
    Sddmm(crate::kernels::sddmm::SddmmFsm),
    /// An assembled LUT bitstream interpreted by the Fig 5 datapath.
    Lut(lut::LutProgram),
    /// An arbitrary boxed program (scripted tests, experiments).
    Custom(Box<dyn OrchProgram>),
}

impl RowProgram {
    /// Wraps an arbitrary program in the boxed escape hatch.
    pub fn custom(program: impl OrchProgram + 'static) -> RowProgram {
        RowProgram::Custom(Box::new(program))
    }
}

impl OrchProgram for RowProgram {
    #[inline]
    fn step(&mut self, io: &OrchIo) -> OrchAction {
        match self {
            RowProgram::Idle(p) => p.step(io),
            RowProgram::Spmm(p) => p.step(io),
            RowProgram::RegAcc(p) => p.step(io),
            RowProgram::Sddmm(p) => p.step(io),
            RowProgram::Lut(p) => p.step(io),
            RowProgram::Custom(p) => p.step(io),
        }
    }

    fn done(&self) -> bool {
        match self {
            RowProgram::Idle(p) => p.done(),
            RowProgram::Spmm(p) => p.done(),
            RowProgram::RegAcc(p) => p.done(),
            RowProgram::Sddmm(p) => p.done(),
            RowProgram::Lut(p) => p.done(),
            RowProgram::Custom(p) => p.done(),
        }
    }
}

impl From<IdleProgram> for RowProgram {
    fn from(p: IdleProgram) -> RowProgram {
        RowProgram::Idle(p)
    }
}

impl From<crate::kernels::spmm::SpmmFsm> for RowProgram {
    fn from(p: crate::kernels::spmm::SpmmFsm) -> RowProgram {
        RowProgram::Spmm(p)
    }
}

impl From<crate::kernels::gemm::RegAccFsm> for RowProgram {
    fn from(p: crate::kernels::gemm::RegAccFsm) -> RowProgram {
        RowProgram::RegAcc(p)
    }
}

impl From<crate::kernels::sddmm::SddmmFsm> for RowProgram {
    fn from(p: crate::kernels::sddmm::SddmmFsm) -> RowProgram {
        RowProgram::Sddmm(p)
    }
}

impl From<lut::LutProgram> for RowProgram {
    fn from(p: lut::LutProgram) -> RowProgram {
        RowProgram::Lut(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_action_defaults() {
        let a = OrchAction::nop(3);
        assert_eq!(a.state_id, 3);
        assert!(!a.stalled && !a.consume_input && !a.consume_msg);
        assert!(a.msg_out.is_none());
        let s = OrchAction::stall(1);
        assert!(s.stalled);
    }

    #[test]
    fn idle_program_is_done() {
        let p = IdleProgram;
        assert!(p.done());
    }

    #[test]
    fn meta_token_variants_compare() {
        let a = MetaToken::Nnz {
            row: 1,
            col: 2,
            value: 3,
        };
        assert_ne!(a, MetaToken::RowEnd { row: 1 });
        assert_eq!(MetaToken::End, MetaToken::End);
    }
}
