//! The programmable orchestrator (§3.2, Fig 5).
//!
//! One orchestrator drives each PE row. Every cycle it examines (a) the head
//! of its input meta-data stream (sparse coordinates, row-end tokens), (b)
//! the message register fed by its northern neighbour orchestrator, and (c)
//! flow-control state (south-channel credits, message-slot availability), and
//! produces one instruction for its row plus optional state updates and an
//! optional message to the southern neighbour.
//!
//! Two implementations of the data-to-instruction translation are provided:
//!
//! * **native FSMs** — Rust state machines in [`crate::kernels`] implementing
//!   the paper's per-kernel microcode (e.g. Listing 1 for SpMM) directly;
//! * **the LUT bitstream path** ([`lut`], [`assembler`]) — a faithful model of
//!   the hardware's programmable-logic lookup table (2¹⁰ entries × 48 bits,
//!   6 KB SRAM) driven by a fixed datapath of condition ALUs and
//!   address-generation units. Kernel FSMs can be *assembled* into a
//!   bitstream and executed by [`lut::LutProgram`]; differential tests check
//!   the two paths are cycle-identical.

pub mod assembler;
pub mod lut;

use crate::isa::Instruction;
use crate::stats::StallCause;
use canon_sparse::Value;

/// A token of the input meta-data stream (`INPUT_META_IN` in Fig 5).
///
/// The semantics of tokens "are not fixed by the hardware but defined by the
/// compiler" (§3.2); these variants cover the kernels mapped in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaToken {
    /// A non-zero of the streamed sparse operand: `A[row][col]` where `col`
    /// is local to this row's K-segment. Carries the value, which the
    /// orchestrator places in the instruction immediate (west-edge stream).
    Nnz {
        /// Output-row id (RID).
        row: u32,
        /// Column index local to this PE row's segment (CID).
        col: u32,
        /// The non-zero value.
        value: Value,
    },
    /// End of output row `row` in the streamed operand.
    RowEnd {
        /// Output-row id that just ended.
        row: u32,
    },
    /// A masked output position for SDDMM: compute output `(row, col)` where
    /// `col` is local to this PE row's N-segment.
    MaskPos {
        /// Output-row id (`m`).
        row: u32,
        /// Local output column (`h`).
        col: u32,
    },
    /// End of SDDMM output row `row`.
    MRowEnd {
        /// Output-row id that just ended.
        row: u32,
    },
    /// End of the whole stream.
    End,
}

/// Message identifiers on the inter-orchestrator channel.
pub mod msg_id {
    /// A partial sum for output row `rid` was flushed south (Listing 1's
    /// `PSUM[RID]`).
    pub const PSUM: u8 = 1;
}

/// A message between vertically adjacent orchestrators
/// (`ORCH_MSG_OUT`/`ORCH_MSG_IN` + `MSG_ID` in Fig 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrchMessage {
    /// Message type (see [`msg_id`]).
    pub id: u8,
    /// Message payload: the row id it refers to.
    pub rid: u32,
}

/// Everything an orchestrator can observe in one cycle.
#[derive(Debug, Clone, Copy)]
pub struct OrchIo {
    /// Current cycle (for diagnostics).
    pub cycle: u64,
    /// Head of the input meta-data stream, if any.
    pub input: Option<MetaToken>,
    /// Delivered message from the northern orchestrator, if any.
    pub msg: Option<OrchMessage>,
    /// Remaining credits on this row's southbound data channel. An
    /// instruction that pushes South (result or route) consumes one credit;
    /// the fabric returns it when the southern row pops.
    pub south_credits: usize,
    /// Whether a message can be sent south this cycle.
    pub msg_slot_free: bool,
    /// Number of tokens currently waiting in this row's column-0 North FIFO
    /// (uniform across columns by the staggered-timing invariant). Non-zero
    /// means an instruction reading `Port(North)` can be issued.
    pub north_tokens: usize,
}

/// The orchestrator's decision for one cycle.
///
/// The struct is the per-row hand-off between every FSM step and the
/// fabric, returned by value once per woken row per cycle, so it is kept
/// `Copy` and slim: the two consume bits, the park bit, and the stall cause
/// are packed into one flags byte instead of four discrete fields
/// (construction goes through [`OrchAction::issue`]/[`OrchAction::nop`]/
/// [`OrchAction::stall`] and the `take_*`/`send`/`park` builders; the
/// accessors below read the bits back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrchAction {
    /// Instruction issued to the first PE of the row (possibly NOP).
    pub instr: Instruction,
    /// Outgoing-message payload; meaningful only when `F_MSG_OUT` is set
    /// (read through [`OrchAction::msg_out`] — packing the presence bit
    /// into `flags` keeps the struct a niche-free 52 bytes instead of
    /// carrying an `Option` discriminant plus padding).
    msg: OrchMessage,
    /// FSM main-state identifier after this cycle (3-bit State Register in
    /// Fig 5); the fabric counts changes as data-driven state transitions.
    pub state_id: u8,
    /// Packed consume/park/message bits + stall cause (see the bit
    /// constants).
    flags: u8,
}

// The hand-off is returned by value once per woken row per cycle; keep it
// from quietly growing back the padding PR 6's flag packing removed.
const _: () = assert!(std::mem::size_of::<OrchAction>() <= 52);

/// `flags` bit: the head input token was consumed.
const F_CONSUME_INPUT: u8 = 1 << 0;
/// `flags` bit: the delivered message was consumed.
const F_CONSUME_MSG: u8 = 1 << 1;
/// `flags` bit: the action is a parkable pure wait (see [`OrchAction::park`]).
const F_PARK: u8 = 1 << 2;
/// `flags` bit: `msg` carries an outgoing message.
const F_MSG_OUT: u8 = 1 << 3;
/// `flags` bits 4..: stall cause + 1 (`0` = not stalled).
const F_STALL_SHIFT: u8 = 4;

impl OrchAction {
    /// An action issuing `instr` in the given state, consuming nothing.
    pub fn issue(instr: Instruction, state_id: u8) -> OrchAction {
        OrchAction {
            instr,
            msg: OrchMessage { id: 0, rid: 0 },
            state_id,
            flags: 0,
        }
    }

    /// A plain NOP action in the given state. Not parkable: programs that
    /// make progress on their own (without any observable-input change)
    /// return this and are re-polled next cycle.
    pub fn nop(state_id: u8) -> OrchAction {
        OrchAction::issue(Instruction::NOP, state_id)
    }

    /// A NOP action that records back-pressure, attributed to `cause`
    /// ([`Stats::stall_cycles`](crate::stats::Stats::stall_cycles) and the
    /// per-cause [`StallBreakdown`](crate::stats::StallBreakdown) both
    /// count it). Parkable: a stalled program is by definition waiting on
    /// an observable input (a credit return, a freed message slot, a north
    /// token), so the event-driven engine skips it until one changes.
    /// Stall paths must therefore be *fixed points*: re-stepping with the
    /// same inputs yields the same stall and mutates nothing observable
    /// (all in-tree FSMs return their stalls before any non-idempotent
    /// state update). A program whose stall is **not** a fixed point —
    /// e.g. one counting its own steps towards an internal timeout — must
    /// clear `park` on the returned action to keep being polled every
    /// cycle.
    pub fn stall(state_id: u8, cause: StallCause) -> OrchAction {
        let mut a = OrchAction::nop(state_id);
        a.flags = F_PARK | ((cause as u8 + 1) << F_STALL_SHIFT);
        a
    }

    /// Marks the head input token as consumed (builder).
    #[must_use]
    pub fn take_input(mut self) -> OrchAction {
        self.flags |= F_CONSUME_INPUT;
        self
    }

    /// Marks the delivered message as consumed (builder).
    #[must_use]
    pub fn take_msg(mut self) -> OrchAction {
        self.flags |= F_CONSUME_MSG;
        self
    }

    /// Attaches an outgoing message (builder).
    #[must_use]
    pub fn send(mut self, m: OrchMessage) -> OrchAction {
        self.msg = m;
        self.flags |= F_MSG_OUT;
        self
    }

    /// The message to send south this cycle, if any.
    #[inline]
    pub fn msg_out(&self) -> Option<OrchMessage> {
        (self.flags & F_MSG_OUT != 0).then_some(self.msg)
    }

    /// Whether the head input token was consumed.
    #[inline]
    pub fn consumes_input(&self) -> bool {
        self.flags & F_CONSUME_INPUT != 0
    }

    /// Whether the delivered message was consumed.
    #[inline]
    pub fn consumes_msg(&self) -> bool {
        self.flags & F_CONSUME_MSG != 0
    }

    /// Why the orchestrator was back-pressured this cycle, if it was;
    /// `Some` is counted as a stall cycle under that cause.
    #[inline]
    pub fn stall_cause(&self) -> Option<StallCause> {
        let bits = self.flags >> F_STALL_SHIFT;
        if bits == 0 {
            None
        } else {
            StallCause::from_index(bits - 1)
        }
    }

    /// True when the action records back-pressure.
    #[inline]
    pub fn stalled(&self) -> bool {
        self.flags >> F_STALL_SHIFT != 0
    }

    /// Clears the stall attribution (bypass paths that turn a stall into
    /// forward progress after inspecting more inputs).
    pub fn clear_stall(&mut self) {
        self.flags &= (1 << F_STALL_SHIFT) - 1;
    }

    /// True when this action is a **pure wait** the event-driven engine may
    /// replay without re-stepping the program: the program asserts that
    /// stepping it again with *unchanged* observable inputs ([`OrchIo`]:
    /// meta head, delivered message, credits, message slot, north tokens)
    /// would return this same action and leave it in an equivalent state.
    ///
    /// The fabric then removes the row from the wake set and revisits it
    /// only when an observable input changes (a link event, a delivered
    /// message or credit, a freed message slot); the skipped cycles are
    /// accounted as if polled — `orch_steps`, `stall_cycles`, and the
    /// issued bubbles stay byte-identical to the polling engine.
    ///
    /// A parkable action must be observably idle: a plain-NOP instruction,
    /// no consumption, no outgoing message. [`OrchAction::stall`] sets this
    /// flag (a back-pressured wait is the canonical pure wait);
    /// [`OrchAction::nop`] does not, so stateful programs that ignore their
    /// inputs (scripted tests, cycle-driven experiments) keep being polled
    /// every cycle unless they opt in via [`OrchAction::park`].
    #[inline]
    pub fn parks(&self) -> bool {
        self.flags & F_PARK != 0
    }

    /// Opts a non-stall action into parking (builder; see
    /// [`OrchAction::parks`] for the contract).
    #[must_use]
    pub fn park(mut self) -> OrchAction {
        self.flags |= F_PARK;
        self
    }
}

/// The data-to-instruction translation function executed by an orchestrator.
///
/// Implementations are per-kernel "microcode": native Rust FSMs in
/// [`crate::kernels`], or assembled LUT bitstreams via [`lut::LutProgram`].
///
/// Decisions must be functions of the *observable inputs* ([`OrchIo`]) and
/// the program's own state — `io.cycle` is diagnostic only. Programs whose
/// decisions depend on wall-cycle count would still run correctly under the
/// event-driven fabric (they are polled every cycle unless they return a
/// parked action, see [`OrchAction::park`]), but must never set `park`.
pub trait OrchProgram {
    /// Computes this cycle's action from the observable inputs. Called once
    /// per cycle until [`OrchProgram::done`] returns true — except on
    /// cycles skipped after a parked action ([`OrchAction::park`]), which
    /// the fabric replays without a call.
    fn step(&mut self, io: &OrchIo) -> OrchAction;

    /// True once the orchestrator has finished its stream and drained all
    /// buffered state (the fabric stops invoking it and lets the row's
    /// pipeline drain).
    fn done(&self) -> bool;
}

/// A trivial program that issues nothing and is immediately done (rows not
/// participating in a kernel).
#[derive(Debug, Default, Clone)]
pub struct IdleProgram;

impl OrchProgram for IdleProgram {
    fn step(&mut self, _io: &OrchIo) -> OrchAction {
        OrchAction::nop(0)
    }
    fn done(&self) -> bool {
        true
    }
}

/// The orchestrator program installed on a fabric row, dispatched as an
/// enum.
///
/// The fabric calls [`OrchProgram::step`] once per row per cycle — with a
/// `Box<dyn OrchProgram>` that was a vtable indirection on the per-cycle
/// orchestrator phase. All of the paper's kernel FSMs are known statically,
/// so rows dispatch through this enum instead; [`RowProgram::Custom`] keeps
/// the open trait for scripted programs in tests and downstream
/// experiments.
///
/// Kernel mappers pass their FSM straight to
/// [`crate::Fabric::set_program`], which accepts `impl Into<RowProgram>`.
pub enum RowProgram {
    /// A row not participating in the kernel.
    Idle(IdleProgram),
    /// The SpMM scratchpad-window FSM (Listing 1).
    Spmm(crate::kernels::spmm::SpmmFsm),
    /// The register-accumulation FSM (dense GEMM / N:M structured).
    RegAcc(crate::kernels::gemm::RegAccFsm),
    /// The SDDMM FSM (Listing 4).
    Sddmm(crate::kernels::sddmm::SddmmFsm),
    /// An assembled LUT bitstream interpreted by the Fig 5 datapath.
    Lut(lut::LutProgram),
    /// An arbitrary boxed program (scripted tests, experiments).
    Custom(Box<dyn OrchProgram>),
}

impl RowProgram {
    /// Wraps an arbitrary program in the boxed escape hatch.
    pub fn custom(program: impl OrchProgram + 'static) -> RowProgram {
        RowProgram::Custom(Box::new(program))
    }
}

impl OrchProgram for RowProgram {
    #[inline]
    fn step(&mut self, io: &OrchIo) -> OrchAction {
        match self {
            RowProgram::Idle(p) => p.step(io),
            RowProgram::Spmm(p) => p.step(io),
            RowProgram::RegAcc(p) => p.step(io),
            RowProgram::Sddmm(p) => p.step(io),
            RowProgram::Lut(p) => p.step(io),
            RowProgram::Custom(p) => p.step(io),
        }
    }

    fn done(&self) -> bool {
        match self {
            RowProgram::Idle(p) => p.done(),
            RowProgram::Spmm(p) => p.done(),
            RowProgram::RegAcc(p) => p.done(),
            RowProgram::Sddmm(p) => p.done(),
            RowProgram::Lut(p) => p.done(),
            RowProgram::Custom(p) => p.done(),
        }
    }
}

impl From<IdleProgram> for RowProgram {
    fn from(p: IdleProgram) -> RowProgram {
        RowProgram::Idle(p)
    }
}

impl From<crate::kernels::spmm::SpmmFsm> for RowProgram {
    fn from(p: crate::kernels::spmm::SpmmFsm) -> RowProgram {
        RowProgram::Spmm(p)
    }
}

impl From<crate::kernels::gemm::RegAccFsm> for RowProgram {
    fn from(p: crate::kernels::gemm::RegAccFsm) -> RowProgram {
        RowProgram::RegAcc(p)
    }
}

impl From<crate::kernels::sddmm::SddmmFsm> for RowProgram {
    fn from(p: crate::kernels::sddmm::SddmmFsm) -> RowProgram {
        RowProgram::Sddmm(p)
    }
}

impl From<lut::LutProgram> for RowProgram {
    fn from(p: lut::LutProgram) -> RowProgram {
        RowProgram::Lut(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_action_defaults() {
        let a = OrchAction::nop(3);
        assert_eq!(a.state_id, 3);
        assert!(!a.stalled() && !a.consumes_input() && !a.consumes_msg());
        assert!(a.msg_out().is_none());
        assert!(!a.parks());
        let s = OrchAction::stall(1, StallCause::Credit);
        assert!(s.stalled() && s.parks());
        assert_eq!(s.stall_cause(), Some(StallCause::Credit));
    }

    #[test]
    fn action_flag_packing_roundtrips() {
        for cause in StallCause::ALL {
            let s = OrchAction::stall(2, cause);
            assert_eq!(s.stall_cause(), Some(cause));
            let mut cleared = s;
            cleared.clear_stall();
            assert_eq!(cleared.stall_cause(), None);
            assert!(cleared.parks(), "clear_stall must keep the park bit");
        }
        let a = OrchAction::issue(Instruction::NOP, 1)
            .take_input()
            .take_msg()
            .send(OrchMessage {
                id: msg_id::PSUM,
                rid: 9,
            });
        assert!(a.consumes_input() && a.consumes_msg());
        assert_eq!(a.msg_out().unwrap().rid, 9);
        assert!(!a.stalled());
        // The hand-off stays slim: Copy, with the four former bool-ish
        // fields packed into one byte.
        fn assert_copy<T: Copy>() {}
        assert_copy::<OrchAction>();
        // Instruction (40) + Option<OrchMessage> (12) + state + flags,
        // padded to 4-byte alignment = 56.
        assert!(std::mem::size_of::<OrchAction>() <= std::mem::size_of::<Instruction>() + 16);
    }

    #[test]
    fn idle_program_is_done() {
        let p = IdleProgram;
        assert!(p.done());
    }

    #[test]
    fn meta_token_variants_compare() {
        let a = MetaToken::Nnz {
            row: 1,
            col: 2,
            value: 3,
        };
        assert_ne!(a, MetaToken::RowEnd { row: 1 });
        assert_eq!(MetaToken::End, MetaToken::End);
    }
}
