//! The LUT-based programmable orchestrator datapath (Fig 5).
//!
//! The hardware implements the data-to-instruction translation as SRAM
//! programmable logic: a lookup table with 2¹⁰ entries of 48 bits (6 KB)
//! whose inputs are the FSM state, message id, and condition flags, and whose
//! outputs configure address generation, message generation, and state-meta
//! updates. This module models that datapath bit-for-bit:
//!
//! * a set of statically-configured **condition units**, each computing
//!   `A − B − K` over selected registers and exposing carry/zero flags
//!   (Fig 5's condition-computation block; the figure shows `2 × C,Z` flag
//!   bits — we generalise to six units whose twelve flag bits *compete* for
//!   the same ten LUT input bits via the static input wiring, preserving the
//!   2¹⁰×48 b LUT geometry);
//! * a static **input wiring** choosing which ten signals (state bits, input
//!   token kind, message presence, flags) index the LUT;
//! * a 48-bit **micro-operation** per LUT entry ([`MicroOp`]) selecting the
//!   opcode, the three address-generation sources, the route, the outgoing
//!   message, the collector tag, the two state-meta updates, and the
//!   consume/done bits.
//!
//! [`LutProgram`] interprets a [`Bitstream`] against this datapath and
//! implements [`OrchProgram`], so an assembled kernel FSM runs through
//! exactly the same fabric code path as the native Rust FSMs — differential
//! tests check the two are cycle-identical.

use crate::isa::{Addr, Direction, Instruction, Opcode, Vector};
use crate::orchestrator::{msg_id, MetaToken, OrchAction, OrchIo, OrchMessage, OrchProgram};
use crate::stats::StallCause;
use crate::SimError;

/// Number of LUT input bits (2¹⁰ entries).
pub const LUT_INPUT_BITS: usize = 10;
/// Number of LUT entries.
pub const LUT_ENTRIES: usize = 1 << LUT_INPUT_BITS;
/// Width of each LUT entry in bits.
pub const LUT_ENTRY_BITS: usize = 48;
/// Number of condition units.
pub const COND_UNITS: usize = 6;

/// A register/field readable by the condition units (Fig 5's register file:
/// state-meta registers, input-meta register, message registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegSel {
    /// Constant zero.
    Zero,
    /// State Meta Register 0 (e.g. `rid_start`).
    Meta0,
    /// State Meta Register 1 (e.g. window occupancy).
    Meta1,
    /// The row field of the input meta token.
    InputRow,
    /// The column field of the input meta token.
    InputCol,
    /// The rid field of the delivered orchestrator message.
    MsgRid,
}

/// One statically-configured condition unit: computes `a − b − c − k` and
/// exposes `C` (result negative) and `Z` (result zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CondUnit {
    /// Minuend.
    pub a: RegSel,
    /// First subtrahend.
    pub b: RegSel,
    /// Second subtrahend.
    pub c: RegSel,
    /// Constant offset.
    pub k: i64,
}

impl CondUnit {
    /// A unit that always reads zero (unused slots).
    pub const UNUSED: CondUnit = CondUnit {
        a: RegSel::Zero,
        b: RegSel::Zero,
        c: RegSel::Zero,
        k: 0,
    };

    /// Convenience constructor for `a − k`.
    pub fn minus_const(a: RegSel, k: i64) -> CondUnit {
        CondUnit {
            a,
            b: RegSel::Zero,
            c: RegSel::Zero,
            k,
        }
    }

    /// Convenience constructor for `a − b`.
    pub fn diff(a: RegSel, b: RegSel) -> CondUnit {
        CondUnit {
            a,
            b,
            c: RegSel::Zero,
            k: 0,
        }
    }
}

/// One of the ten LUT input bits (static wiring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// Constant zero (unused input bit).
    Zero,
    /// Bit `i` of the 3-bit State Register.
    StateBit(u8),
    /// Bit `i` of the 2-bit input-token kind (see [`token_kind`]).
    InputKindBit(u8),
    /// Message present this cycle.
    MsgPresent,
    /// Carry flag of condition unit `i`.
    FlagC(u8),
    /// Zero flag of condition unit `i`.
    FlagZ(u8),
}

/// Input token kind encoding on the meta register (2 bits).
pub mod token_kind {
    /// Stream empty.
    pub const NONE: u8 = 0;
    /// Non-zero / masked-position token.
    pub const NNZ: u8 = 1;
    /// Row-end token.
    pub const ROW_END: u8 = 2;
    /// End-of-stream token.
    pub const END: u8 = 3;
}

/// Address-generation source selectors for `op1`/`op2`/`res` (4 bits each).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum AddrSel {
    /// No operand.
    Null = 0,
    /// The instruction immediate (west-edge stream value).
    Imm = 1,
    /// North router port.
    PortNorth = 2,
    /// South router port.
    PortSouth = 3,
    /// West router port.
    PortWest = 4,
    /// East router port.
    PortEast = 5,
    /// SIMD register 0.
    Reg0 = 6,
    /// Scratchpad entry `input_row mod depth`.
    SpadSlotInputRow = 7,
    /// Scratchpad entry `msg_rid mod depth`.
    SpadSlotMsgRid = 8,
    /// Scratchpad entry `meta0 mod depth`.
    SpadSlotMeta0 = 9,
    /// Data-memory word `input_col`.
    DmemInputCol = 10,
}

impl AddrSel {
    fn decode(bits: u8) -> Result<AddrSel, SimError> {
        Ok(match bits {
            0 => AddrSel::Null,
            1 => AddrSel::Imm,
            2 => AddrSel::PortNorth,
            3 => AddrSel::PortSouth,
            4 => AddrSel::PortWest,
            5 => AddrSel::PortEast,
            6 => AddrSel::Reg0,
            7 => AddrSel::SpadSlotInputRow,
            8 => AddrSel::SpadSlotMsgRid,
            9 => AddrSel::SpadSlotMeta0,
            10 => AddrSel::DmemInputCol,
            other => {
                return Err(SimError::BadMicrocode {
                    reason: format!("invalid address selector {other}"),
                })
            }
        })
    }
}

/// Opcode selector (4 bits) — index into the fixed opcode table.
const OPCODE_TABLE: [Opcode; 12] = [
    Opcode::Nop,
    Opcode::Mov,
    Opcode::MovFlush,
    Opcode::Add,
    Opcode::AddFlush,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::MacV,
    Opcode::MacS,
    Opcode::Acc,
    Opcode::RedSum,
    Opcode::Max,
];

fn opcode_index(op: Opcode) -> u8 {
    OPCODE_TABLE
        .iter()
        .position(|&o| o == op)
        .expect("opcode present in table") as u8
}

/// Route selector (2 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteSel {
    /// No pass-through.
    None = 0,
    /// North → South bypass.
    NorthToSouth = 1,
}

/// Outgoing-message selector (2 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgSel {
    /// No message.
    None = 0,
    /// `PSUM(meta0)` — flush notification.
    PsumMeta0 = 1,
    /// `PSUM(msg_rid)` — bypass relay.
    PsumMsgRid = 2,
}

/// Collector-tag selector (2 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagSel {
    /// Tag 0.
    Zero = 0,
    /// Tag = input token row.
    InputRow = 1,
    /// Tag = message rid.
    MsgRid = 2,
    /// Tag = meta register 0.
    Meta0 = 3,
}

/// State-meta update selector (2 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaUpdate {
    /// Keep.
    Hold = 0,
    /// Increment.
    Inc = 1,
    /// Decrement.
    Dec = 2,
    /// Reset to zero.
    Reset = 3,
}

impl MetaUpdate {
    fn decode(bits: u8) -> MetaUpdate {
        match bits & 0b11 {
            0 => MetaUpdate::Hold,
            1 => MetaUpdate::Inc,
            2 => MetaUpdate::Dec,
            _ => MetaUpdate::Reset,
        }
    }
    fn apply(self, v: u32) -> u32 {
        match self {
            MetaUpdate::Hold => v,
            MetaUpdate::Inc => v.wrapping_add(1),
            MetaUpdate::Dec => v.wrapping_sub(1),
            MetaUpdate::Reset => 0,
        }
    }
}

/// A decoded 48-bit LUT entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    /// Next FSM state (3 bits).
    pub state_out: u8,
    /// Vector-lane opcode.
    pub op: Opcode,
    /// Operand-1 source.
    pub op1: AddrSel,
    /// Operand-2 source.
    pub op2: AddrSel,
    /// Result destination.
    pub res: AddrSel,
    /// Pass-through configuration.
    pub route: RouteSel,
    /// Outgoing message.
    pub msg: MsgSel,
    /// Collector tag source.
    pub tag: TagSel,
    /// Update of State Meta Register 0.
    pub meta0: MetaUpdate,
    /// Update of State Meta Register 1.
    pub meta1: MetaUpdate,
    /// Consume the input meta token.
    pub consume_input: bool,
    /// Consume the delivered message.
    pub consume_msg: bool,
    /// Attach the input token's value as the instruction immediate.
    pub use_imm: bool,
    /// This entry completes the program.
    pub done: bool,
}

impl MicroOp {
    /// The all-NOP micro-op (unprogrammed LUT entries).
    pub const NOP: MicroOp = MicroOp {
        state_out: 0,
        op: Opcode::Nop,
        op1: AddrSel::Null,
        op2: AddrSel::Null,
        res: AddrSel::Null,
        route: RouteSel::None,
        msg: MsgSel::None,
        tag: TagSel::Zero,
        meta0: MetaUpdate::Hold,
        meta1: MetaUpdate::Hold,
        consume_input: false,
        consume_msg: false,
        use_imm: false,
        done: false,
    };

    /// Packs the micro-op into the low 48 bits of a `u64`.
    pub fn encode(&self) -> u64 {
        let mut w = 0u64;
        let mut off = 0;
        let mut put = |val: u64, bits: usize| {
            debug_assert!(val < (1 << bits));
            w |= val << off;
            off += bits;
        };
        put(self.state_out as u64 & 0b111, 3);
        put(opcode_index(self.op) as u64, 4);
        put(self.op1 as u64, 4);
        put(self.op2 as u64, 4);
        put(self.res as u64, 4);
        put(self.route as u64, 2);
        put(self.msg as u64, 2);
        put(self.tag as u64, 2);
        put(self.meta0 as u64, 2);
        put(self.meta1 as u64, 2);
        put(self.consume_input as u64, 1);
        put(self.consume_msg as u64, 1);
        put(self.use_imm as u64, 1);
        put(self.done as u64, 1);
        debug_assert!(off <= LUT_ENTRY_BITS);
        w
    }

    /// Unpacks a micro-op from the low 48 bits of a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadMicrocode`] on invalid field encodings.
    pub fn decode(w: u64) -> Result<MicroOp, SimError> {
        let mut off = 0;
        let mut get = |bits: usize| -> u64 {
            let v = (w >> off) & ((1 << bits) - 1);
            off += bits;
            v
        };
        let state_out = get(3) as u8;
        let op_idx = get(4) as usize;
        let op = *OPCODE_TABLE
            .get(op_idx)
            .ok_or_else(|| SimError::BadMicrocode {
                reason: format!("invalid opcode index {op_idx}"),
            })?;
        let op1 = AddrSel::decode(get(4) as u8)?;
        let op2 = AddrSel::decode(get(4) as u8)?;
        let res = AddrSel::decode(get(4) as u8)?;
        let route = match get(2) {
            0 => RouteSel::None,
            1 => RouteSel::NorthToSouth,
            other => {
                return Err(SimError::BadMicrocode {
                    reason: format!("invalid route selector {other}"),
                })
            }
        };
        let msg = match get(2) {
            0 => MsgSel::None,
            1 => MsgSel::PsumMeta0,
            2 => MsgSel::PsumMsgRid,
            other => {
                return Err(SimError::BadMicrocode {
                    reason: format!("invalid message selector {other}"),
                })
            }
        };
        let tag = match get(2) {
            0 => TagSel::Zero,
            1 => TagSel::InputRow,
            2 => TagSel::MsgRid,
            _ => TagSel::Meta0,
        };
        let meta0 = MetaUpdate::decode(get(2) as u8);
        let meta1 = MetaUpdate::decode(get(2) as u8);
        Ok(MicroOp {
            state_out,
            op,
            op1,
            op2,
            res,
            route,
            msg,
            tag,
            meta0,
            meta1,
            consume_input: get(1) != 0,
            consume_msg: get(1) != 0,
            use_imm: get(1) != 0,
            done: get(1) != 0,
        })
    }
}

/// The 6 KB LUT SRAM contents.
#[derive(Debug, Clone)]
pub struct Bitstream {
    entries: Vec<u64>,
}

impl Bitstream {
    /// An all-NOP bitstream.
    pub fn empty() -> Bitstream {
        Bitstream {
            entries: vec![MicroOp::NOP.encode(); LUT_ENTRIES],
        }
    }

    /// Writes entry `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= LUT_ENTRIES`.
    pub fn set(&mut self, index: usize, op: &MicroOp) {
        self.entries[index] = op.encode();
    }

    /// Reads the raw 48-bit word at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= LUT_ENTRIES`.
    pub fn word(&self, index: usize) -> u64 {
        self.entries[index]
    }

    /// Size of the modelled SRAM in bytes.
    pub fn sram_bytes(&self) -> usize {
        LUT_ENTRIES * LUT_ENTRY_BITS / 8
    }
}

/// The static (compile-time) configuration of the orchestrator datapath:
/// condition units, input wiring, and kernel constants.
#[derive(Debug, Clone)]
pub struct LutConfig {
    /// The four condition units.
    pub cond_units: [CondUnit; COND_UNITS],
    /// The ten LUT input bits.
    pub wiring: [Signal; LUT_INPUT_BITS],
    /// Scratchpad window depth used by the `SpadSlot*` address generators.
    pub depth: u32,
    /// Initial value of State Meta Register 1.
    pub meta1_init: u32,
    /// Immediately-done flag (degenerate streams).
    pub start_done: bool,
}

/// Runtime inputs visible to the datapath in one cycle.
#[derive(Debug, Clone, Copy)]
struct DatapathInputs {
    kind: u8,
    input_row: u32,
    input_col: u32,
    input_value: i32,
    msg_present: bool,
    msg_rid: u32,
}

impl DatapathInputs {
    fn from_io(io: &OrchIo) -> DatapathInputs {
        let (kind, row, col, value) = match io.input {
            Some(MetaToken::Nnz { row, col, value }) => (token_kind::NNZ, row, col, value),
            Some(MetaToken::MaskPos { row, col }) => (token_kind::NNZ, row, col, 0),
            Some(MetaToken::RowEnd { row }) | Some(MetaToken::MRowEnd { row }) => {
                (token_kind::ROW_END, row, 0, 0)
            }
            Some(MetaToken::End) => (token_kind::END, 0, 0, 0),
            None => (token_kind::NONE, 0, 0, 0),
        };
        DatapathInputs {
            kind,
            input_row: row,
            input_col: col,
            input_value: value,
            msg_present: io.msg.is_some(),
            msg_rid: io.msg.map_or(0, |m| m.rid),
        }
    }
}

/// A bitstream-driven orchestrator program.
#[derive(Debug, Clone)]
pub struct LutProgram {
    config: LutConfig,
    bitstream: Bitstream,
    state: u8,
    meta0: u32,
    meta1: u32,
    done: bool,
}

impl LutProgram {
    /// Creates the program from a static configuration and a bitstream.
    pub fn new(config: LutConfig, bitstream: Bitstream) -> LutProgram {
        let done = config.start_done;
        let meta1 = config.meta1_init;
        LutProgram {
            config,
            bitstream,
            state: 0,
            meta0: 0,
            meta1,
            done,
        }
    }

    fn reg_value(&self, sel: RegSel, inp: &DatapathInputs) -> i64 {
        match sel {
            RegSel::Zero => 0,
            RegSel::Meta0 => self.meta0 as i64,
            RegSel::Meta1 => self.meta1 as i64,
            RegSel::InputRow => inp.input_row as i64,
            RegSel::InputCol => inp.input_col as i64,
            RegSel::MsgRid => inp.msg_rid as i64,
        }
    }

    fn flags(&self, inp: &DatapathInputs) -> [(bool, bool); COND_UNITS] {
        let mut out = [(false, false); COND_UNITS];
        for (i, u) in self.config.cond_units.iter().enumerate() {
            let x = self.reg_value(u.a, inp)
                - self.reg_value(u.b, inp)
                - self.reg_value(u.c, inp)
                - u.k;
            out[i] = (x < 0, x == 0);
        }
        out
    }

    fn lut_index(&self, inp: &DatapathInputs) -> usize {
        let flags = self.flags(inp);
        let mut idx = 0usize;
        for (bit, sig) in self.config.wiring.iter().enumerate() {
            let v = match *sig {
                Signal::Zero => false,
                Signal::StateBit(i) => (self.state >> i) & 1 == 1,
                Signal::InputKindBit(i) => (inp.kind >> i) & 1 == 1,
                Signal::MsgPresent => inp.msg_present,
                Signal::FlagC(i) => flags[i as usize].0,
                Signal::FlagZ(i) => flags[i as usize].1,
            };
            if v {
                idx |= 1 << bit;
            }
        }
        idx
    }

    fn addr(&self, sel: AddrSel, inp: &DatapathInputs) -> Addr {
        let slot = |rid: u32| -> u16 { (rid % self.config.depth) as u16 };
        match sel {
            AddrSel::Null => Addr::Null,
            AddrSel::Imm => Addr::Imm,
            AddrSel::PortNorth => Addr::Port(Direction::North),
            AddrSel::PortSouth => Addr::Port(Direction::South),
            AddrSel::PortWest => Addr::Port(Direction::West),
            AddrSel::PortEast => Addr::Port(Direction::East),
            AddrSel::Reg0 => Addr::Reg(0),
            AddrSel::SpadSlotInputRow => Addr::Spad(slot(inp.input_row)),
            AddrSel::SpadSlotMsgRid => Addr::Spad(slot(inp.msg_rid)),
            AddrSel::SpadSlotMeta0 => Addr::Spad(slot(self.meta0)),
            AddrSel::DmemInputCol => Addr::DataMem(inp.input_col as u16),
        }
    }

    /// Interprets one cycle. Separated from the trait for error plumbing:
    /// malformed bitstreams surface as NOP + `debug_assert` rather than
    /// panicking the fabric (hardware would execute garbage; we stop).
    fn interpret(&mut self, io: &OrchIo) -> Result<OrchAction, SimError> {
        let inp = DatapathInputs::from_io(io);
        let idx = self.lut_index(&inp);
        let mo = MicroOp::decode(self.bitstream.word(idx))?;

        // Resource check (the hardware hold): south pushes need a credit,
        // messages need a slot.
        let pushes_south = mo.res == AddrSel::PortSouth || mo.route == RouteSel::NorthToSouth;
        let sends_msg = mo.msg != MsgSel::None;
        if pushes_south && io.south_credits == 0 {
            return Ok(OrchAction::stall(mo.state_out, StallCause::Credit));
        }
        if sends_msg && !io.msg_slot_free {
            return Ok(OrchAction::stall(mo.state_out, StallCause::MsgSlot));
        }

        let mut instr = Instruction::new(
            mo.op,
            self.addr(mo.op1, &inp),
            self.addr(mo.op2, &inp),
            self.addr(mo.res, &inp),
        );
        if mo.use_imm {
            instr = instr.with_imm(Vector::splat(inp.input_value));
        }
        if mo.route == RouteSel::NorthToSouth {
            instr = instr.with_route(Direction::North, Direction::South);
        }
        instr = instr.with_tag(match mo.tag {
            TagSel::Zero => 0,
            TagSel::InputRow => inp.input_row,
            TagSel::MsgRid => inp.msg_rid,
            TagSel::Meta0 => self.meta0,
        });
        let msg_out = match mo.msg {
            MsgSel::None => None,
            MsgSel::PsumMeta0 => Some(OrchMessage {
                id: msg_id::PSUM,
                rid: self.meta0,
            }),
            MsgSel::PsumMsgRid => Some(OrchMessage {
                id: msg_id::PSUM,
                rid: inp.msg_rid,
            }),
        };
        // Note: msg generation reads meta0 *before* the update, matching the
        // native FSM (flush announces the rid it flushed).
        self.meta0 = mo.meta0.apply(self.meta0);
        self.meta1 = mo.meta1.apply(self.meta1);
        self.state = mo.state_out;
        if mo.done {
            self.done = true;
        }
        let mut action = OrchAction::issue(instr, mo.state_out);
        if mo.consume_input {
            action = action.take_input();
        }
        if mo.consume_msg {
            action = action.take_msg();
        }
        if let Some(m) = msg_out {
            action = action.send(m);
        }
        Ok(action)
    }

    /// Current FSM state register (tests).
    pub fn state(&self) -> u8 {
        self.state
    }

    /// Current state-meta registers (tests).
    pub fn meta(&self) -> (u32, u32) {
        (self.meta0, self.meta1)
    }
}

impl OrchProgram for LutProgram {
    fn step(&mut self, io: &OrchIo) -> OrchAction {
        if self.done && io.msg.is_none() {
            return OrchAction::nop(self.state);
        }
        // The DONE state keeps its bypass rules: messages arriving after the
        // local stream finished are still relayed.
        match self.interpret(io) {
            Ok(a) => a,
            Err(e) => {
                debug_assert!(false, "bad microcode at runtime: {e}");
                OrchAction::nop(self.state)
            }
        }
    }

    fn done(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microop_encode_decode_roundtrip() {
        let mo = MicroOp {
            state_out: 5,
            op: Opcode::MacS,
            op1: AddrSel::Imm,
            op2: AddrSel::DmemInputCol,
            res: AddrSel::SpadSlotInputRow,
            route: RouteSel::NorthToSouth,
            msg: MsgSel::PsumMsgRid,
            tag: TagSel::InputRow,
            meta0: MetaUpdate::Inc,
            meta1: MetaUpdate::Dec,
            consume_input: true,
            consume_msg: true,
            use_imm: true,
            done: false,
        };
        let back = MicroOp::decode(mo.encode()).unwrap();
        assert_eq!(back, mo);
        assert_eq!(
            MicroOp::decode(MicroOp::NOP.encode()).unwrap(),
            MicroOp::NOP
        );
    }

    #[test]
    fn encode_fits_48_bits() {
        let mo = MicroOp {
            state_out: 7,
            op: Opcode::Max,
            op1: AddrSel::DmemInputCol,
            op2: AddrSel::DmemInputCol,
            res: AddrSel::DmemInputCol,
            route: RouteSel::NorthToSouth,
            msg: MsgSel::PsumMsgRid,
            tag: TagSel::Meta0,
            meta0: MetaUpdate::Reset,
            meta1: MetaUpdate::Reset,
            consume_input: true,
            consume_msg: true,
            use_imm: true,
            done: true,
        };
        assert!(mo.encode() < (1u64 << LUT_ENTRY_BITS));
    }

    #[test]
    fn bitstream_geometry_matches_paper() {
        let b = Bitstream::empty();
        // 2^10 entries × 48 bits = 6 KB SRAM (§3.2).
        assert_eq!(b.sram_bytes(), 6 * 1024);
    }

    #[test]
    fn decode_rejects_bad_fields() {
        // Opcode index 15 is out of table.
        let w = 15u64 << 3;
        assert!(MicroOp::decode(w).is_err());
    }

    #[test]
    fn condition_flags() {
        let mut cond_units = [CondUnit::UNUSED; COND_UNITS];
        cond_units[0] = CondUnit::minus_const(RegSel::Meta1, 4);
        let cfg = LutConfig {
            cond_units,
            wiring: [Signal::Zero; LUT_INPUT_BITS],
            depth: 4,
            meta1_init: 4,
            start_done: false,
        };
        let p = LutProgram::new(cfg, Bitstream::empty());
        let inp = DatapathInputs {
            kind: token_kind::NONE,
            input_row: 0,
            input_col: 0,
            input_value: 0,
            msg_present: false,
            msg_rid: 0,
        };
        // meta1 (4) - 0 - 4 = 0 → Z set, C clear.
        let flags = p.flags(&inp);
        assert_eq!(flags[0], (false, true));
    }

    #[test]
    fn lut_index_uses_wiring() {
        let mut wiring = [Signal::Zero; LUT_INPUT_BITS];
        wiring[0] = Signal::MsgPresent;
        wiring[3] = Signal::InputKindBit(0);
        let cfg = LutConfig {
            cond_units: [CondUnit::UNUSED; COND_UNITS],
            wiring,
            depth: 1,
            meta1_init: 0,
            start_done: false,
        };
        let p = LutProgram::new(cfg, Bitstream::empty());
        let inp = DatapathInputs {
            kind: token_kind::NNZ, // bit 0 set
            input_row: 0,
            input_col: 0,
            input_value: 0,
            msg_present: true,
            msg_rid: 0,
        };
        assert_eq!(p.lut_index(&inp), 0b1001);
    }

    #[test]
    fn lut_program_stalls_without_credit() {
        // Program a single entry that pushes south; with zero credits the
        // interpreter must hold.
        let mut bs = Bitstream::empty();
        let mo = MicroOp {
            res: AddrSel::PortSouth,
            op: Opcode::MovFlush,
            op1: AddrSel::SpadSlotMeta0,
            ..MicroOp::NOP
        };
        bs.set(0, &mo);
        let cfg = LutConfig {
            cond_units: [CondUnit::UNUSED; COND_UNITS],
            wiring: [Signal::Zero; LUT_INPUT_BITS],
            depth: 4,
            meta1_init: 1,
            start_done: false,
        };
        let mut p = LutProgram::new(cfg, bs);
        let io = OrchIo {
            cycle: 0,
            input: None,
            msg: None,
            south_credits: 0,
            msg_slot_free: true,
            north_tokens: 0,
        };
        let a = p.step(&io);
        assert!(a.stalled());
        let io2 = OrchIo {
            south_credits: 1,
            ..io
        };
        let a2 = p.step(&io2);
        assert!(!a2.stalled());
        assert_eq!(a2.instr.op, Opcode::MovFlush);
    }
}
