//! Assembler: symbolic FSM rule specifications → orchestrator bitstreams.
//!
//! The compiler's last stage (§4, Fig 6: "the compute/control schedule is
//! emitted as FSM microcode, which is finally compiled into the FSM
//! bitstreams"). An [`FsmSpec`] lists symbolic [`Rule`]s — each a pattern
//! over the datapath's observable signals plus the [`MicroOp`] to emit — and
//! [`FsmSpec::assemble`] expands them into the 2¹⁰-entry LUT, rejecting
//! overlapping rules with contradictory outputs and references to signals
//! that the static wiring does not expose.
//!
//! [`spmm_fsm_spec`] builds the complete Listing 1 SpMM microcode; the
//! resulting [`LutProgram`] is differentially tested against the native
//! [`crate::kernels::spmm::SpmmFsm`].

use crate::isa::Opcode;
use crate::orchestrator::lut::token_kind;
use crate::orchestrator::lut::{
    AddrSel, Bitstream, CondUnit, LutConfig, LutProgram, MetaUpdate, MicroOp, MsgSel, RegSel,
    RouteSel, Signal, TagSel, COND_UNITS, LUT_ENTRIES, LUT_INPUT_BITS,
};
use crate::SimError;

/// A pattern over the orchestrator's observable signals. `None` fields are
/// don't-cares.
#[derive(Debug, Clone, Default)]
pub struct RulePattern {
    /// FSM state register value.
    pub state: Option<u8>,
    /// Input token kind ([`token_kind`]).
    pub kind: Option<u8>,
    /// Message present.
    pub msg_present: Option<bool>,
    /// Required carry flags per condition unit.
    pub flag_c: [Option<bool>; COND_UNITS],
    /// Required zero flags per condition unit.
    pub flag_z: [Option<bool>; COND_UNITS],
}

/// One symbolic microcode rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Human-readable name (used in assembly diagnostics).
    pub name: &'static str,
    /// When this rule applies.
    pub pattern: RulePattern,
    /// What to emit.
    pub out: MicroOp,
}

/// A complete symbolic FSM: static datapath configuration plus rules.
#[derive(Debug, Clone)]
pub struct FsmSpec {
    /// Static configuration (condition units, wiring, constants).
    pub config: LutConfig,
    /// The microcode rules.
    pub rules: Vec<Rule>,
}

/// The semantic value of one LUT index under a given wiring: which signal
/// assignment it corresponds to, or unreachable.
#[derive(Debug, Clone, Copy)]
struct IndexView {
    state: u8,
    kind: u8,
    msg_present: bool,
    flag_c: [Option<bool>; COND_UNITS],
    flag_z: [Option<bool>; COND_UNITS],
    reachable: bool,
}

impl FsmSpec {
    fn view_of(&self, idx: usize) -> IndexView {
        let mut v = IndexView {
            state: 0,
            kind: 0,
            msg_present: false,
            flag_c: [None; COND_UNITS],
            flag_z: [None; COND_UNITS],
            reachable: true,
        };
        for (bit, sig) in self.config.wiring.iter().enumerate() {
            let set = (idx >> bit) & 1 == 1;
            match *sig {
                Signal::Zero => {
                    if set {
                        v.reachable = false;
                    }
                }
                Signal::StateBit(i) => {
                    if set {
                        v.state |= 1 << i;
                    }
                }
                Signal::InputKindBit(i) => {
                    if set {
                        v.kind |= 1 << i;
                    }
                }
                Signal::MsgPresent => v.msg_present = set,
                Signal::FlagC(i) => v.flag_c[i as usize] = Some(set),
                Signal::FlagZ(i) => v.flag_z[i as usize] = Some(set),
            }
        }
        v
    }

    fn rule_matches(&self, rule: &Rule, v: &IndexView) -> Result<bool, SimError> {
        if let Some(s) = rule.pattern.state {
            if v.state != s {
                return Ok(false);
            }
        }
        if let Some(k) = rule.pattern.kind {
            if v.kind != k {
                return Ok(false);
            }
        }
        if let Some(m) = rule.pattern.msg_present {
            if v.msg_present != m {
                return Ok(false);
            }
        }
        for i in 0..COND_UNITS {
            if let Some(want) = rule.pattern.flag_c[i] {
                match v.flag_c[i] {
                    Some(have) => {
                        if have != want {
                            return Ok(false);
                        }
                    }
                    None => {
                        return Err(SimError::BadMicrocode {
                            reason: format!(
                                "rule '{}' constrains C flag of unit {i}, which is not wired",
                                rule.name
                            ),
                        })
                    }
                }
            }
            if let Some(want) = rule.pattern.flag_z[i] {
                match v.flag_z[i] {
                    Some(have) => {
                        if have != want {
                            return Ok(false);
                        }
                    }
                    None => {
                        return Err(SimError::BadMicrocode {
                            reason: format!(
                                "rule '{}' constrains Z flag of unit {i}, which is not wired",
                                rule.name
                            ),
                        })
                    }
                }
            }
        }
        Ok(true)
    }

    /// Expands the rules into a LUT bitstream.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadMicrocode`] when two rules with different
    /// outputs match the same LUT entry, or a rule references an unwired
    /// flag.
    pub fn assemble(&self) -> Result<Bitstream, SimError> {
        let mut bs = Bitstream::empty();
        for idx in 0..LUT_ENTRIES {
            let v = self.view_of(idx);
            if !v.reachable {
                continue;
            }
            let mut chosen: Option<(&Rule, MicroOp)> = None;
            for rule in &self.rules {
                if self.rule_matches(rule, &v)? {
                    match &chosen {
                        None => chosen = Some((rule, rule.out)),
                        Some((prev, prev_out)) => {
                            if *prev_out != rule.out {
                                return Err(SimError::BadMicrocode {
                                    reason: format!(
                                        "rules '{}' and '{}' both match LUT entry {idx:#05x} \
                                         with different outputs",
                                        prev.name, rule.name
                                    ),
                                });
                            }
                        }
                    }
                }
            }
            if let Some((_, out)) = chosen {
                bs.set(idx, &out);
            }
        }
        Ok(bs)
    }

    /// Assembles and wraps into a runnable [`LutProgram`].
    ///
    /// # Errors
    ///
    /// Propagates assembly errors.
    pub fn into_program(self) -> Result<LutProgram, SimError> {
        let bs = self.assemble()?;
        Ok(LutProgram::new(self.config, bs))
    }
}

/// FSM state values shared with the native SpMM FSM.
use crate::kernels::spmm::state;

/// Condition-unit assignment of the SpMM microcode.
mod spmm_units {
    /// `occ − depth`: Z → window full.
    pub const FULL: usize = 0;
    /// `occ`: Z → window empty.
    pub const EMPTY: usize = 1;
    /// `msg_rid − rid_start`: C → message below window.
    pub const BELOW: usize = 2;
    /// `msg_rid − rid_start − occ`: C → message below upper bound.
    pub const UPPER: usize = 3;
    /// `input_row − (m_total−1)`: Z → last output row.
    pub const LAST: usize = 4;
}

/// Builds the complete SpMM FSM spec (Listing 1) for a psum window of
/// `depth` entries over a stream of `m_total` output rows.
///
/// State-meta register assignment: `meta0 = rid_start`, `meta1 = occupancy`.
pub fn spmm_fsm_spec(depth: usize, m_total: usize) -> FsmSpec {
    let mut cond_units = [CondUnit::UNUSED; COND_UNITS];
    cond_units[spmm_units::FULL] = CondUnit::minus_const(RegSel::Meta1, depth as i64);
    cond_units[spmm_units::EMPTY] = CondUnit::minus_const(RegSel::Meta1, 0);
    cond_units[spmm_units::BELOW] = CondUnit::diff(RegSel::MsgRid, RegSel::Meta0);
    cond_units[spmm_units::UPPER] = CondUnit {
        a: RegSel::MsgRid,
        b: RegSel::Meta0,
        c: RegSel::Meta1,
        k: 0,
    };
    cond_units[spmm_units::LAST] = CondUnit::minus_const(RegSel::InputRow, m_total as i64 - 1);
    let mut wiring = [Signal::Zero; LUT_INPUT_BITS];
    wiring[0] = Signal::InputKindBit(0);
    wiring[1] = Signal::InputKindBit(1);
    wiring[2] = Signal::MsgPresent;
    wiring[3] = Signal::FlagZ(spmm_units::FULL as u8);
    wiring[4] = Signal::FlagZ(spmm_units::EMPTY as u8);
    wiring[5] = Signal::FlagC(spmm_units::BELOW as u8);
    wiring[6] = Signal::FlagC(spmm_units::UPPER as u8);
    wiring[7] = Signal::FlagZ(spmm_units::LAST as u8);
    let config = LutConfig {
        cond_units,
        wiring,
        depth: depth as u32,
        meta1_init: u32::from(m_total > 0),
        start_done: m_total == 0,
    };

    let flags = |c: &[(usize, bool)], z: &[(usize, bool)]| {
        let mut fc = [None; COND_UNITS];
        let mut fz = [None; COND_UNITS];
        for &(i, v) in c {
            fc[i] = Some(v);
        }
        for &(i, v) in z {
            fz[i] = Some(v);
        }
        (fc, fz)
    };

    let mac = MicroOp {
        state_out: state::MAC,
        op: Opcode::MacS,
        op1: AddrSel::Imm,
        op2: AddrSel::DmemInputCol,
        res: AddrSel::SpadSlotInputRow,
        tag: TagSel::InputRow,
        consume_input: true,
        use_imm: true,
        ..MicroOp::NOP
    };
    let flush = MicroOp {
        state_out: state::FLUSH,
        op: Opcode::MovFlush,
        op1: AddrSel::SpadSlotMeta0,
        res: AddrSel::PortSouth,
        tag: TagSel::Meta0,
        msg: MsgSel::PsumMeta0,
        meta0: MetaUpdate::Inc,
        consume_input: true,
        ..MicroOp::NOP
    };
    let acc = MicroOp {
        state_out: state::ACC,
        op: Opcode::Acc,
        op1: AddrSel::PortNorth,
        res: AddrSel::SpadSlotMsgRid,
        tag: TagSel::MsgRid,
        consume_msg: true,
        ..MicroOp::NOP
    };
    let bypass_mac = MicroOp {
        route: RouteSel::NorthToSouth,
        msg: MsgSel::PsumMsgRid,
        consume_msg: true,
        ..mac
    };
    let bypass_nop = MicroOp {
        state_out: state::NOP,
        route: RouteSel::NorthToSouth,
        msg: MsgSel::PsumMsgRid,
        consume_msg: true,
        ..MicroOp::NOP
    };

    let mut rules = Vec::new();
    // --- No message: input-driven decisions -------------------------------
    rules.push(Rule {
        name: "mac",
        pattern: RulePattern {
            kind: Some(token_kind::NNZ),
            msg_present: Some(false),
            ..RulePattern::default()
        },
        out: mac,
    });
    {
        let (fc, fz) = flags(&[], &[(spmm_units::FULL, true), (spmm_units::LAST, false)]);
        rules.push(Rule {
            name: "rowend-full",
            pattern: RulePattern {
                kind: Some(token_kind::ROW_END),
                msg_present: Some(false),
                flag_c: fc,
                flag_z: fz,
                ..RulePattern::default()
            },
            out: flush,
        });
    }
    {
        let (fc, fz) = flags(&[], &[(spmm_units::FULL, true), (spmm_units::LAST, true)]);
        rules.push(Rule {
            name: "rowend-full-last",
            pattern: RulePattern {
                kind: Some(token_kind::ROW_END),
                msg_present: Some(false),
                flag_c: fc,
                flag_z: fz,
                ..RulePattern::default()
            },
            out: MicroOp {
                meta1: MetaUpdate::Dec,
                ..flush
            },
        });
    }
    {
        let (fc, fz) = flags(&[], &[(spmm_units::FULL, false), (spmm_units::LAST, false)]);
        rules.push(Rule {
            name: "rowend-grow",
            pattern: RulePattern {
                kind: Some(token_kind::ROW_END),
                msg_present: Some(false),
                flag_c: fc,
                flag_z: fz,
                ..RulePattern::default()
            },
            out: MicroOp {
                state_out: state::NOP,
                meta1: MetaUpdate::Inc,
                consume_input: true,
                ..MicroOp::NOP
            },
        });
    }
    {
        let (fc, fz) = flags(&[], &[(spmm_units::FULL, false), (spmm_units::LAST, true)]);
        rules.push(Rule {
            name: "rowend-last",
            pattern: RulePattern {
                kind: Some(token_kind::ROW_END),
                msg_present: Some(false),
                flag_c: fc,
                flag_z: fz,
                ..RulePattern::default()
            },
            out: MicroOp {
                state_out: state::NOP,
                consume_input: true,
                ..MicroOp::NOP
            },
        });
    }
    {
        let (fc, fz) = flags(&[], &[(spmm_units::EMPTY, false)]);
        rules.push(Rule {
            name: "drain",
            pattern: RulePattern {
                kind: Some(token_kind::END),
                msg_present: Some(false),
                flag_c: fc,
                flag_z: fz,
                ..RulePattern::default()
            },
            out: MicroOp {
                state_out: state::DRAIN,
                consume_input: false,
                meta1: MetaUpdate::Dec,
                ..flush
            },
        });
    }
    {
        let (fc, fz) = flags(&[], &[(spmm_units::EMPTY, true)]);
        rules.push(Rule {
            name: "finish",
            pattern: RulePattern {
                kind: Some(token_kind::END),
                msg_present: Some(false),
                flag_c: fc,
                flag_z: fz,
                ..RulePattern::default()
            },
            out: MicroOp {
                state_out: state::DONE,
                consume_input: true,
                done: true,
                ..MicroOp::NOP
            },
        });
    }
    // --- Message present ---------------------------------------------------
    {
        // Managed: rid_start <= rid < rid_start + occ.
        let (fc, fz) = flags(
            &[(spmm_units::BELOW, false), (spmm_units::UPPER, true)],
            &[],
        );
        rules.push(Rule {
            name: "acc",
            pattern: RulePattern {
                msg_present: Some(true),
                flag_c: fc,
                flag_z: fz,
                ..RulePattern::default()
            },
            out: acc,
        });
    }
    // Unmanaged = below OR not-below-upper; expressed as two rule groups.
    for (name, fc_set) in [
        ("bypass-below", (spmm_units::BELOW, true)),
        ("bypass-above", (spmm_units::UPPER, false)),
    ] {
        for kind in [
            token_kind::NNZ,
            token_kind::ROW_END,
            token_kind::END,
            token_kind::NONE,
        ] {
            let (fc, fz) = flags(&[fc_set], &[]);
            rules.push(Rule {
                name: if kind == token_kind::NNZ {
                    "bypass-mac"
                } else {
                    name
                },
                pattern: RulePattern {
                    kind: Some(kind),
                    msg_present: Some(true),
                    flag_c: fc,
                    flag_z: fz,
                    ..RulePattern::default()
                },
                out: if kind == token_kind::NNZ {
                    bypass_mac
                } else {
                    bypass_nop
                },
            });
        }
    }
    FsmSpec { config, rules }
}

/// Builds the register-accumulation FSM spec (the GEMM / N:M structured
/// microcode): MACs accumulate into `Reg0`, every row end flushes the
/// register south, and all upstream psums bypass (no managed window).
///
/// This is the LUT counterpart of [`crate::kernels::gemm::RegAccFsm`]; the
/// two are differentially tested for cycle-identical behaviour.
pub fn regacc_fsm_spec(m_total: usize) -> FsmSpec {
    let mut wiring = [Signal::Zero; LUT_INPUT_BITS];
    wiring[0] = Signal::InputKindBit(0);
    wiring[1] = Signal::InputKindBit(1);
    wiring[2] = Signal::MsgPresent;
    let config = LutConfig {
        cond_units: [CondUnit::UNUSED; COND_UNITS],
        wiring,
        depth: 1,
        meta1_init: 0,
        start_done: m_total == 0,
    };
    let mac = MicroOp {
        state_out: state::MAC,
        op: Opcode::MacS,
        op1: AddrSel::Imm,
        op2: AddrSel::DmemInputCol,
        res: AddrSel::Reg0,
        tag: TagSel::InputRow,
        consume_input: true,
        use_imm: true,
        ..MicroOp::NOP
    };
    let flush = MicroOp {
        state_out: state::FLUSH,
        op: Opcode::MovFlush,
        op1: AddrSel::Reg0,
        res: AddrSel::PortSouth,
        tag: TagSel::InputRow,
        msg: MsgSel::PsumMsgRid, // placeholder, fixed below
        consume_input: true,
        ..MicroOp::NOP
    };
    // The flush message announces the row id just completed (input row).
    // The LUT datapath exposes PSUM(meta0) and PSUM(msg_rid); reuse meta0 by
    // tracking the current row id in meta0: increment it at every row end.
    let flush = MicroOp {
        msg: MsgSel::PsumMeta0,
        meta0: MetaUpdate::Inc,
        tag: TagSel::Meta0,
        ..flush
    };
    let bypass_mac = MicroOp {
        route: RouteSel::NorthToSouth,
        msg: MsgSel::PsumMsgRid,
        consume_msg: true,
        ..mac
    };
    let bypass_nop = MicroOp {
        state_out: state::NOP,
        route: RouteSel::NorthToSouth,
        msg: MsgSel::PsumMsgRid,
        consume_msg: true,
        ..MicroOp::NOP
    };
    let mut rules = vec![
        Rule {
            name: "mac",
            pattern: RulePattern {
                kind: Some(token_kind::NNZ),
                msg_present: Some(false),
                ..RulePattern::default()
            },
            out: mac,
        },
        Rule {
            name: "flush",
            pattern: RulePattern {
                kind: Some(token_kind::ROW_END),
                msg_present: Some(false),
                ..RulePattern::default()
            },
            out: flush,
        },
        Rule {
            name: "finish",
            pattern: RulePattern {
                kind: Some(token_kind::END),
                msg_present: Some(false),
                ..RulePattern::default()
            },
            out: MicroOp {
                state_out: state::DONE,
                consume_input: true,
                done: true,
                ..MicroOp::NOP
            },
        },
    ];
    for kind in [
        token_kind::NNZ,
        token_kind::ROW_END,
        token_kind::END,
        token_kind::NONE,
    ] {
        rules.push(Rule {
            name: "bypass",
            pattern: RulePattern {
                kind: Some(kind),
                msg_present: Some(true),
                ..RulePattern::default()
            },
            out: if kind == token_kind::NNZ {
                bypass_mac
            } else {
                bypass_nop
            },
        });
    }
    FsmSpec { config, rules }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::{msg_id, MetaToken};
    use crate::orchestrator::{OrchIo, OrchMessage, OrchProgram};

    #[test]
    fn spmm_spec_assembles() {
        let spec = spmm_fsm_spec(4, 16);
        let bs = spec.assemble().unwrap();
        assert_eq!(bs.sram_bytes(), 6 * 1024);
    }

    #[test]
    fn conflicting_rules_rejected() {
        let mut spec = spmm_fsm_spec(4, 16);
        // Duplicate the MAC rule with a different output.
        let mut dup = spec.rules[0].clone();
        dup.name = "evil";
        dup.out.state_out = 7;
        spec.rules.push(dup);
        assert!(matches!(
            spec.assemble(),
            Err(SimError::BadMicrocode { .. })
        ));
    }

    #[test]
    fn unwired_flag_rejected() {
        let mut spec = spmm_fsm_spec(4, 16);
        // Constrain an unwired unit (unit 5's C flag is not in the wiring).
        spec.rules[0].pattern.flag_c[5] = Some(true);
        assert!(matches!(
            spec.assemble(),
            Err(SimError::BadMicrocode { .. })
        ));
    }

    #[test]
    fn identical_overlapping_rules_allowed() {
        let mut spec = spmm_fsm_spec(4, 16);
        let dup = spec.rules[0].clone();
        spec.rules.push(dup);
        assert!(spec.assemble().is_ok());
    }

    #[test]
    fn assembled_stalls_are_parked_pure_waits() {
        // The event-driven fabric parks rows on `OrchAction::park` and
        // replays the action over the skipped cycles — the contract holds
        // for assembled bitstreams too: a back-pressured LUT step must be a
        // parked pure wait and a *fixed point* (re-stepping with the same
        // inputs yields the same stall and leaves the datapath state
        // untouched; the hardware hold happens before any register update).
        let mut p = spmm_fsm_spec(1, 4).into_program().unwrap();
        // Row end with a full window but zero credits: the flush must hold.
        let fill = OrchIo {
            cycle: 0,
            input: Some(MetaToken::RowEnd { row: 0 }),
            msg: None,
            south_credits: 2,
            msg_slot_free: true,
            north_tokens: 0,
        };
        p.step(&fill); // window (depth 1) now full
        let starved = OrchIo {
            input: Some(MetaToken::RowEnd { row: 1 }),
            south_credits: 0,
            ..fill
        };
        let state_before = (p.state(), p.meta());
        let a1 = p.step(&starved);
        let a2 = p.step(&starved);
        for a in [&a1, &a2] {
            assert!(a.stalled() && a.parks(), "stall must be a parked pure wait");
            assert!(a.instr.is_plain_nop());
            assert!(!a.consumes_input() && !a.consumes_msg() && a.msg_out().is_none());
        }
        assert_eq!(a1.state_id, a2.state_id, "stall must be a fixed point");
        assert_eq!(
            (p.state(), p.meta()),
            state_before,
            "a held step must not mutate datapath registers"
        );
        // Credit restored: the flush proceeds (the wait was genuine).
        let freed = OrchIo {
            south_credits: 1,
            ..starved
        };
        let a3 = p.step(&freed);
        assert!(!a3.stalled() && !a3.parks());
        assert_eq!(a3.instr.op, crate::isa::Opcode::MovFlush);
    }

    #[test]
    fn lut_program_mac_step_matches_native_shape() {
        let program = spmm_fsm_spec(4, 8).into_program();
        let mut p = program.unwrap();
        let io = OrchIo {
            cycle: 0,
            input: Some(MetaToken::Nnz {
                row: 0,
                col: 5,
                value: -3,
            }),
            msg: None,
            south_credits: 2,
            msg_slot_free: true,
            north_tokens: 0,
        };
        let a = p.step(&io);
        assert_eq!(a.instr.op, crate::isa::Opcode::MacS);
        assert_eq!(a.instr.op2, crate::isa::Addr::DataMem(5));
        assert!(a.consumes_input());
        assert_eq!(a.instr.imm.unwrap().lane0(), -3);
    }

    #[test]
    fn lut_program_acc_and_bypass() {
        let mut p = spmm_fsm_spec(2, 8).into_program().unwrap();
        // Managed message (rid 0, window [0,1)).
        let io = OrchIo {
            cycle: 0,
            input: None,
            msg: Some(OrchMessage {
                id: msg_id::PSUM,
                rid: 0,
            }),
            south_credits: 2,
            msg_slot_free: true,
            north_tokens: 1,
        };
        let a = p.step(&io);
        assert_eq!(a.instr.op, crate::isa::Opcode::Acc);
        // Unmanaged message (rid 7) → bypass.
        let io2 = OrchIo {
            msg: Some(OrchMessage {
                id: msg_id::PSUM,
                rid: 7,
            }),
            ..io
        };
        let a2 = p.step(&io2);
        assert!(a2.instr.route.is_some());
        assert_eq!(a2.msg_out().unwrap().rid, 7);
    }
}
