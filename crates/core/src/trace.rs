//! Cycle-accurate tracing and stall attribution for the Canon fabric.
//!
//! ## Architecture
//!
//! A [`TraceSink`] attached via `Fabric::set_trace_sink` receives a stream
//! of cycle-stamped [`TraceEvent`]s recorded by a [`TraceRecorder`] that the
//! fabric drives from every engine layer: orchestrator FSM decisions
//! (instruction issues, bubble steps, coalesced wait spans with their
//! [`StallCause`]), PE commits, NoC link hops, off-chip bursts, collector
//! emits, and (in event-driven mode) row wake/park scheduler diagnostics.
//! When no sink is attached the fabric's hot loops pay one untaken branch —
//! the `repro bench --check` alloc/throughput gates pin that the trace-off
//! engine is unchanged.
//!
//! ## Exactness
//!
//! The event stream is **architecturally complete**: [`replay_stats`]
//! reconstructs the run's full [`Stats`] — including the per-cause stall
//! breakdown summing to `stall_cycles` — byte-for-byte from the events
//! alone, provided the sink was attached before the first cycle. The
//! event-driven engine and the `set_polling(true)` shadow emit *identical*
//! architectural streams (wait spans are coalesced identically whether the
//! waiting row was parked or polled; see [`TraceEvent::is_architectural`]);
//! `tests/event_wake.rs` diffs the two.
//!
//! ## Consumers
//!
//! * [`write_chrome_trace`] emits Chrome trace-event JSON loadable in
//!   [Perfetto](https://ui.perfetto.dev) — one track per orchestrator row
//!   (issues, steps, stall spans colored by cause) and one per PE column
//!   (commits), plus NoC/off-chip counter tracks.
//! * [`render_profile`] prints a textual profile: top stall causes, per-row
//!   occupancy, active-PE timeline buckets, and the wake-source mix.
//!
//! Capture is two lines (`repro trace` / `repro profile` wrap exactly
//! this):
//!
//! ```ignore
//! let sink = VecSink::default();
//! fabric.set_trace_sink(Box::new(sink.clone()));
//! fabric.run()?;
//! fabric.take_trace_sink(); // flush pending spans + RunEnd footer
//! let events = sink.take_events();
//! ```

use crate::isa::{Direction, InstrHandle, Instruction, Opcode};
use crate::noc::LinkGrid;
use crate::orchestrator::OrchAction;
use crate::stats::{RunReport, StallCause, Stats};
use std::sync::{Arc, Mutex};

/// Why an orchestrator row was moved back into the wake set (event-driven
/// engine diagnostics; never emitted under polling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WakeSource {
    /// A north-edge feeder token landed on column 0.
    Feeder,
    /// A delivery timer (credit return or message) fired.
    Timer,
    /// A message slot below was freed (the consumer popped its inbox).
    SlotFreed,
    /// A zero-latency message arrived from the row above.
    Message,
    /// A south push landed on the row's column-0 North FIFO.
    Link,
}

impl WakeSource {
    /// All sources, in a fixed order (profile tables).
    pub const ALL: [WakeSource; 5] = [
        WakeSource::Feeder,
        WakeSource::Timer,
        WakeSource::SlotFreed,
        WakeSource::Message,
        WakeSource::Link,
    ];

    /// Short lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            WakeSource::Feeder => "feeder",
            WakeSource::Timer => "timer",
            WakeSource::SlotFreed => "slot_freed",
            WakeSource::Message => "message",
            WakeSource::Link => "link",
        }
    }
}

/// One cycle-stamped trace event.
///
/// The architectural subset (see [`TraceEvent::is_architectural`]) is
/// engine-independent; the scheduler diagnostics ([`TraceEvent::RowWake`],
/// [`TraceEvent::RowPark`], the [`TraceEvent::RunEnd`] footer) describe the
/// work actually performed and legitimately differ between the event-driven
/// engine and the polling shadow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Stream header: geometry plus counter bases at attach time (all zero
    /// when the sink is attached before the first cycle).
    RunBegin {
        /// Orchestrator row count.
        rows: usize,
        /// PE column count.
        cols: usize,
        /// NoC pushes already counted when the sink attached.
        noc_base: u64,
        /// Off-chip read bytes already accounted when the sink attached.
        offchip_read_base: u64,
        /// Off-chip write bytes already accounted when the sink attached.
        offchip_write_base: u64,
    },
    /// An orchestrator step that issued a real (non-bubble) instruction
    /// into column 0.
    Issue {
        /// Issue cycle.
        cycle: u64,
        /// Issuing row.
        row: usize,
        /// FSM state after the step.
        state: u8,
        /// Ring handle (correlates with [`TraceEvent::Commit`]).
        handle: InstrHandle,
        /// The issued instruction (decoded op kind and operands).
        instr: Instruction,
        /// The step consumed a meta-stream token.
        consumed_input: bool,
        /// The step consumed an inter-orchestrator message.
        consumed_msg: bool,
        /// The step sent an inter-orchestrator message.
        sent_msg: bool,
        /// Stall recorded alongside the step (rare; a blocked sub-decision
        /// that still made protocol progress).
        stall: Option<StallCause>,
    },
    /// An orchestrator step that issued only a bubble but had side effects
    /// (consumed a token or message, or sent a message) — not a pure wait.
    Step {
        /// Step cycle.
        cycle: u64,
        /// Row.
        row: usize,
        /// FSM state after the step.
        state: u8,
        /// The step consumed a meta-stream token.
        consumed_input: bool,
        /// The step consumed an inter-orchestrator message.
        consumed_msg: bool,
        /// The step sent an inter-orchestrator message.
        sent_msg: bool,
        /// Stall recorded alongside the step.
        stall: Option<StallCause>,
    },
    /// A coalesced span of pure-wait orchestrator steps: `len` consecutive
    /// cycles (starting at `from`) in which the row issued only bubbles with
    /// no side effects. `cause` is the attributed stall cause, or `None` for
    /// a non-stall idle wait (e.g. an empty input stream).
    Wait {
        /// Row.
        row: usize,
        /// First cycle of the span.
        from: u64,
        /// Number of cycles in the span.
        len: u64,
        /// FSM state held across the span.
        state: u8,
        /// Attributed stall cause (`None` = idle, not back-pressured).
        cause: Option<StallCause>,
    },
    /// A real instruction retiring from a PE.
    Commit {
        /// Commit cycle.
        cycle: u64,
        /// PE row.
        row: usize,
        /// PE column.
        col: usize,
        /// Ring handle (correlates with [`TraceEvent::Issue`]).
        handle: InstrHandle,
        /// Decoded op kind.
        op: Opcode,
    },
    /// `count` pushes traversed one NoC link this cycle.
    NocHop {
        /// Cycle.
        cycle: u64,
        /// True for a southbound (vertical) link, false for eastbound.
        vertical: bool,
        /// Link row (see [`LinkGrid`] indexing).
        row: usize,
        /// Link column.
        col: usize,
        /// Pushes on this link this cycle.
        count: u64,
    },
    /// Off-chip traffic accounted this cycle (deltas, not totals).
    OffchipBurst {
        /// Cycle.
        cycle: u64,
        /// Bytes read from off-chip this cycle.
        read_bytes: u64,
        /// Bytes written off-chip this cycle.
        write_bytes: u64,
    },
    /// A value exited the array into an edge collector.
    CollectorEmit {
        /// Cycle.
        cycle: u64,
        /// Exit edge ([`Direction::South`] or [`Direction::East`]).
        edge: Direction,
        /// Exit lane (column for south, row for east).
        lane: usize,
        /// Producer-attached tag.
        tag: u32,
    },
    /// Scheduler diagnostic: a row was woken (event-driven engine only).
    RowWake {
        /// Cycle.
        cycle: u64,
        /// Row.
        row: usize,
        /// What woke it.
        source: WakeSource,
    },
    /// Scheduler diagnostic: a row parked on a pure wait.
    RowPark {
        /// Cycle.
        cycle: u64,
        /// Row.
        row: usize,
    },
    /// Stream footer: totals that close the books on the run.
    RunEnd {
        /// Cycles simulated while the sink was attached (final cycle count).
        cycles: u64,
        /// Scheduler diagnostic (engine-dependent).
        active_pe_cycles: u64,
        /// Scheduler diagnostic (engine-dependent).
        orch_polls_skipped: u64,
        /// Scheduler diagnostic (engine-dependent).
        wake_events: u64,
        /// Scheduler diagnostic (engine-dependent): PE-cycles executed
        /// through the column-vectorized batch fast path.
        batched_pe_cycles: u64,
    },
}

impl TraceEvent {
    /// True for events both engines must emit identically (everything
    /// except scheduler diagnostics). `tests/event_wake.rs` diffs the
    /// architectural subsequences of the two engines.
    pub fn is_architectural(&self) -> bool {
        !matches!(
            self,
            TraceEvent::RowWake { .. } | TraceEvent::RowPark { .. } | TraceEvent::RunEnd { .. }
        )
    }
}

/// Receiver of trace events. `Send` so traced fabrics stay usable from
/// worker threads.
pub trait TraceSink: Send {
    /// Records one event. Called in emission order; per-row orchestrator
    /// events arrive in cycle order.
    fn record(&mut self, ev: &TraceEvent);
}

/// A [`TraceSink`] collecting events into a shared buffer: keep a clone,
/// attach a clone, and read the events back after the run (the fabric owns
/// its sink, so the buffer is shared rather than returned).
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl VecSink {
    /// Takes the collected events, leaving the buffer empty.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events.lock().expect("trace buffer poisoned"))
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace buffer poisoned").len()
    }

    /// True when no events were collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, ev: &TraceEvent) {
        self.events.lock().expect("trace buffer poisoned").push(*ev);
    }
}

/// An in-flight pure-wait span being coalesced for one row.
#[derive(Debug, Clone, Copy)]
struct PendingWait {
    from: u64,
    len: u64,
    state: u8,
    cause: Option<StallCause>,
}

/// The fabric-side event producer: owns the sink, coalesces per-row wait
/// spans, and diffs NoC/off-chip counters per cycle. Constructed by
/// `Fabric::set_trace_sink`; every method is a hook called from one engine
/// layer.
pub struct TraceRecorder {
    sink: Box<dyn TraceSink>,
    pending: Vec<Option<PendingWait>>,
    last_pushes: Vec<u64>,
    last_offchip_read: u64,
    last_offchip_write: u64,
}

impl TraceRecorder {
    /// Creates a recorder and emits the [`TraceEvent::RunBegin`] header,
    /// snapshotting the counter bases so mid-run attachment stays
    /// well-defined.
    pub fn new(
        sink: Box<dyn TraceSink>,
        rows: usize,
        cols: usize,
        grid: &LinkGrid,
        offchip_read: u64,
        offchip_write: u64,
    ) -> TraceRecorder {
        let mut last_pushes = Vec::with_capacity(grid.link_count());
        grid.for_each_push_count(|_, _, _, pushes| last_pushes.push(pushes));
        let mut rec = TraceRecorder {
            sink,
            pending: (0..rows).map(|_| None).collect(),
            last_pushes,
            last_offchip_read: offchip_read,
            last_offchip_write: offchip_write,
        };
        rec.sink.record(&TraceEvent::RunBegin {
            rows,
            cols,
            noc_base: grid.total_pushes(),
            offchip_read_base: offchip_read,
            offchip_write_base: offchip_write,
        });
        rec
    }

    fn flush_wait(&mut self, row: usize) {
        if let Some(w) = self.pending[row].take() {
            self.sink.record(&TraceEvent::Wait {
                row,
                from: w.from,
                len: w.len,
                state: w.state,
                cause: w.cause,
            });
        }
    }

    /// Records one orchestrator step. `handle` is `Some` exactly when the
    /// action issued a real (non-bubble) instruction. Pure waits — bubble,
    /// no consumes, no message — coalesce into a pending [`TraceEvent::Wait`]
    /// span that is flushed lazily at the row's next non-wait event; the
    /// coalescing condition is engine-independent (a parked row's settled
    /// window and a polled row's repeated pure waits produce the same span).
    pub fn on_orch_step(
        &mut self,
        cycle: u64,
        row: usize,
        action: &OrchAction,
        handle: Option<InstrHandle>,
    ) {
        let consumed_input = action.consumes_input();
        let consumed_msg = action.consumes_msg();
        let sent_msg = action.msg_out().is_some();
        let stall = action.stall_cause();
        if handle.is_none() && !consumed_input && !consumed_msg && !sent_msg {
            // Pure wait: coalesce. Flush on any discontinuity (state or
            // cause changed, or a gap — e.g. skipped cycles of a row that
            // drained and re-armed).
            match &mut self.pending[row] {
                Some(w)
                    if w.state == action.state_id
                        && w.cause == stall
                        && cycle == w.from + w.len =>
                {
                    w.len += 1;
                }
                _ => {
                    self.flush_wait(row);
                    self.pending[row] = Some(PendingWait {
                        from: cycle,
                        len: 1,
                        state: action.state_id,
                        cause: stall,
                    });
                }
            }
            return;
        }
        self.flush_wait(row);
        let ev = match handle {
            Some(h) => TraceEvent::Issue {
                cycle,
                row,
                state: action.state_id,
                handle: h,
                instr: action.instr,
                consumed_input,
                consumed_msg,
                sent_msg,
                stall,
            },
            None => TraceEvent::Step {
                cycle,
                row,
                state: action.state_id,
                consumed_input,
                consumed_msg,
                sent_msg,
                stall,
            },
        };
        self.sink.record(&ev);
    }

    /// Extends row `row`'s pending wait span by `skipped` settled cycles
    /// (the event engine's parked-window arithmetic; the polling engine
    /// records the same cycles one step at a time).
    pub fn on_settle(&mut self, row: usize, skipped: u64) {
        // A parked row always has a pending span (its park action was a
        // pure wait) unless the sink was attached mid-park; in that case the
        // pre-attach window is simply not traced.
        if let Some(w) = &mut self.pending[row] {
            w.len += skipped;
        }
    }

    /// Records a real instruction retiring from PE `(row, col)`.
    pub fn on_commit(
        &mut self,
        cycle: u64,
        row: usize,
        col: usize,
        handle: InstrHandle,
        op: Opcode,
    ) {
        self.sink.record(&TraceEvent::Commit {
            cycle,
            row,
            col,
            handle,
            op,
        });
    }

    /// Records a collector emit.
    pub fn on_collect(&mut self, cycle: u64, edge: Direction, lane: usize, tag: u32) {
        self.sink.record(&TraceEvent::CollectorEmit {
            cycle,
            edge,
            lane,
            tag,
        });
    }

    /// Records a row wake (event-driven engine diagnostic).
    pub fn on_wake(&mut self, cycle: u64, row: usize, source: WakeSource) {
        self.sink
            .record(&TraceEvent::RowWake { cycle, row, source });
    }

    /// Records a row parking (event-driven engine diagnostic).
    pub fn on_park(&mut self, cycle: u64, row: usize) {
        self.sink.record(&TraceEvent::RowPark { cycle, row });
    }

    /// End-of-cycle scan: diffs every link's push counter against the last
    /// scan (emitting per-link [`TraceEvent::NocHop`]s in the fixed
    /// [`LinkGrid::for_each_push_count`] order) and the off-chip byte
    /// counters (emitting one [`TraceEvent::OffchipBurst`]).
    pub fn end_of_cycle(
        &mut self,
        cycle: u64,
        grid: &LinkGrid,
        offchip_read: u64,
        offchip_write: u64,
    ) {
        let last = &mut self.last_pushes;
        let sink = &mut self.sink;
        let mut i = 0usize;
        grid.for_each_push_count(|vertical, row, col, pushes| {
            let delta = pushes - last[i];
            if delta > 0 {
                last[i] = pushes;
                sink.record(&TraceEvent::NocHop {
                    cycle,
                    vertical,
                    row,
                    col,
                    count: delta,
                });
            }
            i += 1;
        });
        self.scan_offchip(cycle, offchip_read, offchip_write);
    }

    fn scan_offchip(&mut self, cycle: u64, offchip_read: u64, offchip_write: u64) {
        if offchip_read != self.last_offchip_read || offchip_write != self.last_offchip_write {
            self.sink.record(&TraceEvent::OffchipBurst {
                cycle,
                read_bytes: offchip_read - self.last_offchip_read,
                write_bytes: offchip_write - self.last_offchip_write,
            });
            self.last_offchip_read = offchip_read;
            self.last_offchip_write = offchip_write;
        }
    }

    /// Closes the stream: emits any off-chip tail, flushes every pending
    /// wait span, and records the [`TraceEvent::RunEnd`] footer. The fabric
    /// settles still-parked rows (via [`TraceRecorder::on_settle`]) before
    /// calling this.
    #[allow(clippy::too_many_arguments)]
    pub fn finish(
        &mut self,
        cycles: u64,
        offchip_read: u64,
        offchip_write: u64,
        active_pe_cycles: u64,
        orch_polls_skipped: u64,
        wake_events: u64,
        batched_pe_cycles: u64,
    ) {
        self.scan_offchip(cycles, offchip_read, offchip_write);
        for row in 0..self.pending.len() {
            self.flush_wait(row);
        }
        self.sink.record(&TraceEvent::RunEnd {
            cycles,
            active_pe_cycles,
            orch_polls_skipped,
            wake_events,
            batched_pe_cycles,
        });
    }

    /// Releases the sink (detach).
    pub fn into_sink(self) -> Box<dyn TraceSink> {
        self.sink
    }
}

/// Per-execution memory activity of one instruction — a pure function of
/// the instruction, mirroring the PE's LOAD/COMMIT accounting exactly
/// (operand reads are counted before store-to-load forwarding, so the
/// counts do not depend on pipeline state).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemProfile {
    /// Data-memory reads.
    pub dmem_reads: u64,
    /// Data-memory writes.
    pub dmem_writes: u64,
    /// Scratchpad reads.
    pub spad_reads: u64,
    /// Scratchpad writes.
    pub spad_writes: u64,
}

/// The memory activity one execution of `instr` performs on a PE. Replay
/// multiplies by the column count (every column of a row executes each
/// issue once).
pub fn issue_cost(instr: &Instruction) -> MemProfile {
    use crate::isa::Addr;
    let mut p = MemProfile::default();
    if instr.is_plain_nop() {
        return p;
    }
    let read = |a: Addr, p: &mut MemProfile| match a {
        Addr::DataMem(_) => p.dmem_reads += 1,
        Addr::Spad(_) => p.spad_reads += 1,
        _ => {}
    };
    read(instr.op1, &mut p);
    read(instr.op2, &mut p);
    // Read-modify-write opcodes read the old result value at LOAD.
    if matches!(instr.op, Opcode::MacV | Opcode::MacS | Opcode::Acc)
        && !matches!(instr.res, Addr::Port(_) | Addr::Null | Addr::Imm)
    {
        read(instr.res, &mut p);
    }
    // COMMIT write-back.
    if instr.op != Opcode::Nop {
        match instr.res {
            Addr::DataMem(_) => p.dmem_writes += 1,
            Addr::Spad(_) => p.spad_writes += 1,
            _ => {}
        }
    }
    // Flush-clear of the op1 source (register clears are not mem traffic).
    if matches!(instr.op, Opcode::MovFlush | Opcode::AddFlush) {
        if let Addr::Spad(_) = instr.op1 {
            p.spad_writes += 1;
        }
    }
    p
}

/// Reconstructs the run's [`RunReport`] from a captured event stream.
///
/// With the sink attached before the first cycle, the result equals
/// `fabric.report()` byte-for-byte (`wall_ns` excepted — host time is not
/// an architectural quantity and does not participate in `RunReport`
/// equality).
pub fn replay_stats(events: &[TraceEvent]) -> RunReport {
    let mut stats = Stats::new();
    let mut rows = 0usize;
    let mut cols = 0u64;
    let mut cycles = 0u64;
    let mut orch_steps = 0u64;
    let mut last_state: Vec<Option<u8>> = Vec::new();
    let step_state = |last: &mut Vec<Option<u8>>, row: usize, state: u8, transitions: &mut u64| {
        if last[row] != Some(state) {
            if last[row].is_some() {
                *transitions += 1;
            }
            last[row] = Some(state);
        }
    };
    for ev in events {
        match *ev {
            TraceEvent::RunBegin {
                rows: r,
                cols: c,
                noc_base,
                offchip_read_base,
                offchip_write_base,
            } => {
                rows = r;
                cols = c as u64;
                last_state = vec![None; r];
                stats.noc_hops = noc_base;
                stats.offchip_read_bytes = offchip_read_base;
                stats.offchip_write_bytes = offchip_write_base;
            }
            TraceEvent::Issue {
                row,
                state,
                instr,
                consumed_input,
                consumed_msg: _,
                sent_msg,
                stall,
                ..
            } => {
                orch_steps += 1;
                step_state(&mut last_state, row, state, &mut stats.orch_transitions);
                stats.meta_tokens += consumed_input as u64;
                stats.orch_messages += sent_msg as u64;
                if let Some(cause) = stall {
                    stats.stall_cycles += 1;
                    stats.stall_breakdown.add(cause, 1);
                }
                if instr.op.is_compute() {
                    stats.compute_instrs += cols;
                }
                if instr.op.is_mac() {
                    stats.mac_instrs += cols;
                }
                let cost = issue_cost(&instr);
                stats.dmem_reads += cost.dmem_reads * cols;
                stats.dmem_writes += cost.dmem_writes * cols;
                stats.spad_reads += cost.spad_reads * cols;
                stats.spad_writes += cost.spad_writes * cols;
            }
            TraceEvent::Step {
                row,
                state,
                consumed_input,
                sent_msg,
                stall,
                ..
            } => {
                orch_steps += 1;
                step_state(&mut last_state, row, state, &mut stats.orch_transitions);
                stats.meta_tokens += consumed_input as u64;
                stats.orch_messages += sent_msg as u64;
                if let Some(cause) = stall {
                    stats.stall_cycles += 1;
                    stats.stall_breakdown.add(cause, 1);
                }
            }
            TraceEvent::Wait {
                row,
                len,
                state,
                cause,
                ..
            } => {
                orch_steps += len;
                step_state(&mut last_state, row, state, &mut stats.orch_transitions);
                if let Some(cause) = cause {
                    stats.stall_cycles += len;
                    stats.stall_breakdown.add(cause, len);
                }
            }
            TraceEvent::NocHop { count, .. } => stats.noc_hops += count,
            TraceEvent::OffchipBurst {
                read_bytes,
                write_bytes,
                ..
            } => {
                stats.offchip_read_bytes += read_bytes;
                stats.offchip_write_bytes += write_bytes;
            }
            TraceEvent::Commit { .. }
            | TraceEvent::CollectorEmit { .. }
            | TraceEvent::RowWake { .. }
            | TraceEvent::RowPark { .. } => {}
            TraceEvent::RunEnd {
                cycles: c,
                active_pe_cycles,
                orch_polls_skipped,
                wake_events,
                batched_pe_cycles,
            } => {
                cycles = c;
                stats.active_pe_cycles = active_pe_cycles;
                stats.orch_polls_skipped = orch_polls_skipped;
                stats.wake_events = wake_events;
                stats.batched_pe_cycles = batched_pe_cycles;
            }
        }
    }
    // Every orchestrator step clocks one instruction latch into each column
    // of its row — a real issue marches through `cols` PEs, an elided bubble
    // is credited `cols` latches, a skipped poll likewise.
    stats.orch_steps = orch_steps;
    stats.instrs_executed = orch_steps * cols;
    RunReport {
        cycles,
        pes: rows * cols as usize,
        stats,
        wall_ns: 0,
    }
}

/// Catapult color name for one stall cause (Perfetto honors the classic
/// `cname` palette for complete events).
fn cause_cname(cause: Option<StallCause>) -> &'static str {
    match cause {
        None => "grey",
        Some(StallCause::Credit) => "terrible",
        Some(StallCause::MsgSlot) => "bad",
        Some(StallCause::NocConflict) => "black",
        Some(StallCause::MetaWait) => "white",
        Some(StallCause::OperandWait) => "yellow",
    }
}

/// Writes the event stream as Chrome trace-event JSON (the
/// `{"traceEvents":[...]}` object form), loadable in Perfetto or
/// `chrome://tracing`. Track layout: pid 1 = orchestrator rows (one thread
/// per row: issues, steps, wait spans colored by stall cause, wake/park
/// instants), pid 2 = PE columns (one thread per column: commits), pid 3 =
/// collectors, plus `noc_hops` / `offchip` counter tracks. Cycle stamps map
/// 1:1 to trace microseconds.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_chrome_trace<W: std::io::Write>(
    events: &[TraceEvent],
    w: &mut W,
) -> std::io::Result<()> {
    let mut out = std::io::BufWriter::new(w);
    let w = &mut out;
    write!(w, "{{\"traceEvents\":[")?;
    let mut first = true;
    macro_rules! item {
        ($($arg:tt)*) => {{
            if !std::mem::replace(&mut first, false) { write!(w, ",")?; }
            write!(w, "\n")?;
            write!(w, $($arg)*)?;
        }};
    }
    // Metadata tracks from the header event.
    for ev in events {
        if let TraceEvent::RunBegin { rows, cols, .. } = *ev {
            item!("{{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{{\"name\":\"orchestrator rows\"}}}}");
            item!("{{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\",\"args\":{{\"name\":\"PE columns\"}}}}");
            item!("{{\"ph\":\"M\",\"pid\":3,\"name\":\"process_name\",\"args\":{{\"name\":\"collectors\"}}}}");
            for r in 0..rows {
                item!("{{\"ph\":\"M\",\"pid\":1,\"tid\":{r},\"name\":\"thread_name\",\"args\":{{\"name\":\"row {r}\"}}}}");
            }
            for c in 0..cols {
                item!("{{\"ph\":\"M\",\"pid\":2,\"tid\":{c},\"name\":\"thread_name\",\"args\":{{\"name\":\"col {c}\"}}}}");
            }
            item!("{{\"ph\":\"M\",\"pid\":3,\"tid\":0,\"name\":\"thread_name\",\"args\":{{\"name\":\"south\"}}}}");
            item!("{{\"ph\":\"M\",\"pid\":3,\"tid\":1,\"name\":\"thread_name\",\"args\":{{\"name\":\"east\"}}}}");
            break;
        }
    }
    // Per-cycle NoC hop totals fold into one counter track.
    let mut noc_counter: Option<(u64, u64)> = None;
    for ev in events {
        if let Some((cycle, total)) = noc_counter {
            let same = matches!(*ev, TraceEvent::NocHop { cycle: c, .. } if c == cycle);
            if !same {
                item!("{{\"ph\":\"C\",\"pid\":1,\"name\":\"noc_hops\",\"ts\":{cycle},\"args\":{{\"hops\":{total}}}}}");
                noc_counter = None;
            }
        }
        match *ev {
            TraceEvent::RunBegin { .. } => {}
            TraceEvent::Issue {
                cycle,
                row,
                state,
                handle,
                instr,
                ..
            } => {
                item!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{row},\"ts\":{cycle},\"dur\":1,\"name\":\"{:?}\",\"cat\":\"issue\",\"cname\":\"good\",\"args\":{{\"handle\":{},\"tag\":{},\"state\":{state}}}}}",
                    instr.op,
                    handle.id(),
                    instr.tag
                );
            }
            TraceEvent::Step {
                cycle,
                row,
                state,
                consumed_input,
                consumed_msg,
                sent_msg,
                ..
            } => {
                item!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{row},\"ts\":{cycle},\"dur\":1,\"name\":\"step\",\"cat\":\"step\",\"args\":{{\"state\":{state},\"consumed_input\":{consumed_input},\"consumed_msg\":{consumed_msg},\"sent_msg\":{sent_msg}}}}}"
                );
            }
            TraceEvent::Wait {
                row,
                from,
                len,
                state,
                cause,
            } => {
                let name = cause.map_or("idle", StallCause::name);
                let cname = cause_cname(cause);
                item!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{row},\"ts\":{from},\"dur\":{len},\"name\":\"{name}\",\"cat\":\"wait\",\"cname\":\"{cname}\",\"args\":{{\"state\":{state}}}}}"
                );
            }
            TraceEvent::Commit {
                cycle,
                row,
                col,
                handle,
                op,
            } => {
                item!(
                    "{{\"ph\":\"X\",\"pid\":2,\"tid\":{col},\"ts\":{cycle},\"dur\":1,\"name\":\"{op:?}\",\"cat\":\"commit\",\"args\":{{\"row\":{row},\"handle\":{}}}}}",
                    handle.id()
                );
            }
            TraceEvent::NocHop { cycle, count, .. } => {
                noc_counter = Some(match noc_counter {
                    Some((c, t)) if c == cycle => (c, t + count),
                    _ => (cycle, count),
                });
            }
            TraceEvent::OffchipBurst {
                cycle,
                read_bytes,
                write_bytes,
            } => {
                item!(
                    "{{\"ph\":\"C\",\"pid\":1,\"name\":\"offchip_bytes\",\"ts\":{cycle},\"args\":{{\"read\":{read_bytes},\"write\":{write_bytes}}}}}"
                );
            }
            TraceEvent::CollectorEmit {
                cycle,
                edge,
                lane,
                tag,
            } => {
                let tid = if edge == Direction::South { 0 } else { 1 };
                item!(
                    "{{\"ph\":\"i\",\"pid\":3,\"tid\":{tid},\"ts\":{cycle},\"name\":\"emit\",\"s\":\"t\",\"args\":{{\"lane\":{lane},\"tag\":{tag}}}}}"
                );
            }
            TraceEvent::RowWake { cycle, row, source } => {
                item!(
                    "{{\"ph\":\"i\",\"pid\":1,\"tid\":{row},\"ts\":{cycle},\"name\":\"wake:{}\",\"s\":\"t\"}}",
                    source.name()
                );
            }
            TraceEvent::RowPark { cycle, row } => {
                item!(
                    "{{\"ph\":\"i\",\"pid\":1,\"tid\":{row},\"ts\":{cycle},\"name\":\"park\",\"s\":\"t\"}}"
                );
            }
            TraceEvent::RunEnd { .. } => {}
        }
    }
    if let Some((cycle, total)) = noc_counter {
        item!("{{\"ph\":\"C\",\"pid\":1,\"name\":\"noc_hops\",\"ts\":{cycle},\"args\":{{\"hops\":{total}}}}}");
    }
    write!(w, "\n]}}")?;
    use std::io::Write as _;
    out.flush()
}

/// Renders the textual profile: header, top stall causes, per-row occupancy
/// histogram, active-PE timeline buckets, and the wake-source mix.
pub fn render_profile(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let report = replay_stats(events);
    let (mut rows, mut cols) = (0usize, 0usize);
    for ev in events {
        if let TraceEvent::RunBegin {
            rows: r, cols: c, ..
        } = *ev
        {
            rows = r;
            cols = c;
        }
    }
    let cycles = report.cycles.max(1);
    let s = &report.stats;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile: {rows}x{cols} fabric, {} cycles, {} instr latches, {} NoC hops",
        report.cycles, s.instrs_executed, s.noc_hops
    );
    let _ = writeln!(
        out,
        "         {} orch steps, {} meta tokens, {} messages, {} collector emits",
        s.orch_steps,
        s.meta_tokens,
        s.orch_messages,
        events
            .iter()
            .filter(|e| matches!(e, TraceEvent::CollectorEmit { .. }))
            .count()
    );

    // Top stall causes, descending.
    let row_cycles = (rows as u64) * cycles;
    let _ = writeln!(
        out,
        "\nstall cycles: {} total ({:.1}% of {} row-cycles)",
        s.stall_cycles,
        100.0 * s.stall_cycles as f64 / row_cycles.max(1) as f64,
        row_cycles
    );
    let mut causes: Vec<(StallCause, u64)> = StallCause::ALL
        .iter()
        .map(|&c| (c, s.stall_breakdown.get(c)))
        .collect();
    causes.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    for (cause, n) in causes {
        if n == 0 {
            continue;
        }
        let frac = n as f64 / s.stall_cycles.max(1) as f64;
        let bar = "#".repeat((frac * 30.0).round() as usize);
        let _ = writeln!(
            out,
            "  {:<13} {n:>8}  {:>5.1}%  {bar}",
            cause.name(),
            100.0 * frac
        );
    }

    // Per-row occupancy: how each row's architectural steps divide.
    #[derive(Default, Clone, Copy)]
    struct RowOcc {
        issues: u64,
        steps: u64,
        waits: u64,
        stalled: u64,
    }
    let mut occ = vec![RowOcc::default(); rows];
    for ev in events {
        match *ev {
            TraceEvent::Issue { row, .. } => occ[row].issues += 1,
            TraceEvent::Step { row, .. } => occ[row].steps += 1,
            TraceEvent::Wait {
                row, len, cause, ..
            } => {
                occ[row].waits += len;
                if cause.is_some() {
                    occ[row].stalled += len;
                }
            }
            _ => {}
        }
    }
    let _ = writeln!(out, "\nrow occupancy (% of {} cycles):", cycles);
    let _ = writeln!(out, "  row   issue   step   stall    idle     off");
    for (r, o) in occ.iter().enumerate() {
        let pct = |n: u64| 100.0 * n as f64 / cycles as f64;
        let live = o.issues + o.steps + o.waits;
        let _ = writeln!(
            out,
            "  {r:>3}  {:>5.1}%  {:>5.1}%  {:>5.1}%  {:>5.1}%  {:>5.1}%",
            pct(o.issues),
            pct(o.steps),
            pct(o.stalled),
            pct(o.waits - o.stalled),
            pct(cycles.saturating_sub(live)),
        );
    }

    // Active-PE timeline: commit density per bucket.
    let buckets = 20u64.min(cycles).max(1);
    let width = cycles.div_ceil(buckets);
    let mut commits = vec![0u64; buckets as usize];
    for ev in events {
        if let TraceEvent::Commit { cycle, .. } = *ev {
            let b = (cycle / width).min(buckets - 1) as usize;
            commits[b] += 1;
        }
    }
    let pes = (rows * cols).max(1) as u64;
    let _ = writeln!(
        out,
        "\nactive-PE timeline ({} buckets x {} cycles, commits / PE-cycle):",
        buckets, width
    );
    for (b, &n) in commits.iter().enumerate() {
        let lo = b as u64 * width;
        let hi = ((b as u64 + 1) * width).min(cycles);
        if hi <= lo {
            // `div_ceil` can leave an empty tail bucket past the last cycle.
            continue;
        }
        let denom = (hi - lo) * pes;
        let util = n as f64 / denom.max(1) as f64;
        let bar = "#".repeat((util * 40.0).round() as usize);
        let _ = writeln!(out, "  [{lo:>6}..{hi:>6})  {:>5.1}%  {bar}", 100.0 * util);
    }

    // Wake-source mix (event-driven engine diagnostics).
    let mut mix = [0u64; 5];
    for ev in events {
        if let TraceEvent::RowWake { source, .. } = *ev {
            mix[WakeSource::ALL.iter().position(|&s| s == source).unwrap()] += 1;
        }
    }
    let total_wakes: u64 = mix.iter().sum();
    let _ = writeln!(
        out,
        "\nwake sources ({} wake events, {} polls skipped):",
        s.wake_events, s.orch_polls_skipped
    );
    if total_wakes == 0 {
        let _ = writeln!(out, "  (none recorded — polling engine or no parking)");
    } else {
        for (i, &src) in WakeSource::ALL.iter().enumerate() {
            if mix[i] > 0 {
                let _ = writeln!(
                    out,
                    "  {:<11} {:>8}  {:>5.1}%",
                    src.name(),
                    mix[i],
                    100.0 * mix[i] as f64 / total_wakes as f64
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Addr;

    fn sink_pair() -> (VecSink, Box<dyn TraceSink>) {
        let s = VecSink::default();
        let b: Box<dyn TraceSink> = Box::new(s.clone());
        (s, b)
    }

    #[test]
    fn wait_spans_coalesce_and_flush_on_discontinuity() {
        let grid = LinkGrid::new(2, 2, 4, false);
        let (buf, sink) = sink_pair();
        let mut rec = TraceRecorder::new(sink, 2, 2, &grid, 0, 0);
        let wait = OrchAction::stall(3, StallCause::Credit);
        rec.on_orch_step(10, 0, &wait, None);
        rec.on_orch_step(11, 0, &wait, None);
        rec.on_settle(0, 5); // parked window: cycles 12..=16
        rec.on_orch_step(17, 0, &wait, None); // still contiguous
                                              // A different cause flushes the span.
        rec.on_orch_step(18, 0, &OrchAction::stall(3, StallCause::MsgSlot), None);
        rec.finish(20, 0, 0, 0, 0, 0, 0);
        let evs = buf.take_events();
        let waits: Vec<_> = evs
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::Wait {
                    from, len, cause, ..
                } => Some((from, len, cause)),
                _ => None,
            })
            .collect();
        assert_eq!(
            waits,
            vec![
                (10, 8, Some(StallCause::Credit)),
                (18, 1, Some(StallCause::MsgSlot)),
            ]
        );
    }

    #[test]
    fn issue_cost_matches_known_shapes() {
        // SpMM MAC: MacS Imm, DataMem -> Spad = dmem_r + spad_r + spad_w.
        let mac = Instruction::new(Opcode::MacS, Addr::Imm, Addr::DataMem(3), Addr::Spad(1));
        assert_eq!(
            issue_cost(&mac),
            MemProfile {
                dmem_reads: 1,
                spad_reads: 1,
                spad_writes: 1,
                dmem_writes: 0
            }
        );
        // GEMM MAC into a register: one dmem read only.
        let reg = Instruction::new(Opcode::MacS, Addr::Imm, Addr::DataMem(0), Addr::Reg(0));
        assert_eq!(
            issue_cost(&reg),
            MemProfile {
                dmem_reads: 1,
                ..MemProfile::default()
            }
        );
        // Flush from spad to the south port: read + flush-clear write.
        let flush = Instruction::new(
            Opcode::MovFlush,
            Addr::Spad(0),
            Addr::Null,
            Addr::Port(Direction::South),
        );
        assert_eq!(
            issue_cost(&flush),
            MemProfile {
                spad_reads: 1,
                spad_writes: 1,
                ..MemProfile::default()
            }
        );
        // A routed NOP moves data but touches no memory.
        let nop = Instruction::new(Opcode::Nop, Addr::Null, Addr::Null, Addr::Null)
            .with_route(Direction::North, Direction::South);
        assert_eq!(issue_cost(&nop), MemProfile::default());
    }

    #[test]
    fn chrome_export_is_valid_json_shape() {
        let grid = LinkGrid::new(1, 1, 4, false);
        let (buf, sink) = sink_pair();
        let mut rec = TraceRecorder::new(sink, 1, 1, &grid, 0, 0);
        let issue = OrchAction::issue(
            Instruction::new(Opcode::MacS, Addr::Imm, Addr::DataMem(0), Addr::Spad(0)),
            0,
        )
        .take_input();
        rec.on_orch_step(0, 0, &issue, Some(InstrHandle::default()));
        rec.on_orch_step(1, 0, &OrchAction::stall(0, StallCause::Credit), None);
        rec.finish(2, 8, 0, 0, 0, 0, 0);
        let mut out = Vec::new();
        write_chrome_trace(&buf.take_events(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.ends_with("]}"));
        assert!(text.contains("\"name\":\"MacS\""));
        assert!(text.contains("\"name\":\"credit\""));
        assert!(!text.contains(",,"), "no empty array items");
    }

    #[test]
    fn replay_of_synthetic_stream_counts_everything_once() {
        let instr = Instruction::new(Opcode::MacS, Addr::Imm, Addr::DataMem(0), Addr::Spad(0));
        let events = vec![
            TraceEvent::RunBegin {
                rows: 1,
                cols: 2,
                noc_base: 0,
                offchip_read_base: 4,
                offchip_write_base: 0,
            },
            TraceEvent::Issue {
                cycle: 0,
                row: 0,
                state: 0,
                handle: InstrHandle::default(),
                instr,
                consumed_input: true,
                consumed_msg: false,
                sent_msg: true,
                stall: None,
            },
            TraceEvent::Wait {
                row: 0,
                from: 1,
                len: 3,
                state: 1,
                cause: Some(StallCause::Credit),
            },
            TraceEvent::NocHop {
                cycle: 1,
                vertical: true,
                row: 1,
                col: 0,
                count: 2,
            },
            TraceEvent::OffchipBurst {
                cycle: 2,
                read_bytes: 8,
                write_bytes: 4,
            },
            TraceEvent::RunEnd {
                cycles: 4,
                active_pe_cycles: 6,
                orch_polls_skipped: 2,
                wake_events: 1,
                batched_pe_cycles: 3,
            },
        ];
        let report = replay_stats(&events);
        let s = &report.stats;
        assert_eq!(report.cycles, 4);
        assert_eq!(report.pes, 2);
        assert_eq!(s.orch_steps, 4);
        assert_eq!(s.instrs_executed, 8); // 4 steps x 2 cols
        assert_eq!(s.mac_instrs, 2);
        assert_eq!(s.dmem_reads, 2);
        assert_eq!(s.spad_reads, 2);
        assert_eq!(s.spad_writes, 2);
        assert_eq!(s.meta_tokens, 1);
        assert_eq!(s.orch_messages, 1);
        assert_eq!(s.stall_cycles, 3);
        assert_eq!(s.stall_breakdown.credit, 3);
        assert_eq!(s.stall_breakdown.total(), s.stall_cycles);
        assert_eq!(s.orch_transitions, 1); // state 0 -> 1
        assert_eq!(s.noc_hops, 2);
        assert_eq!(s.offchip_read_bytes, 12);
        assert_eq!(s.offchip_write_bytes, 4);
        assert_eq!(s.orch_polls_skipped, 2);
        assert_eq!(s.wake_events, 1);
        assert_eq!(s.active_pe_cycles, 6);
        assert_eq!(s.batched_pe_cycles, 3);
    }
}
