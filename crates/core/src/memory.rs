//! Per-PE memories: data memory and dual-port scratchpad (§2.2).
//!
//! Canon partitions each PE's local storage into a larger single-cycle
//! *data memory* for static data (e.g. the stationary tile of the dense
//! operand) and a small dual-ported *scratchpad* used as a FIFO-managed
//! buffer for partial sums / streamed-operand reuse. Both are word-addressed
//! with one [`Vector`] per word and support single-cycle random access.

use crate::isa::Vector;
use crate::SimError;

/// A word-addressed single-port SRAM holding [`Vector`] words.
#[derive(Debug, Clone)]
pub struct DataMemory {
    words: Vec<Vector>,
    reads: u64,
    writes: u64,
}

impl DataMemory {
    /// Creates a zero-initialised memory with `words` vector words.
    pub fn new(words: usize) -> Self {
        DataMemory {
            words: vec![Vector::ZERO; words],
            reads: 0,
            writes: 0,
        }
    }

    /// Capacity in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the memory has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Reads a word, counting the access.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AddressOutOfRange`] for addresses past the end.
    pub fn read(&mut self, addr: usize) -> Result<Vector, SimError> {
        let v = self
            .words
            .get(addr)
            .copied()
            .ok_or_else(|| SimError::AddressOutOfRange {
                context: format!("dmem read {addr} of {}", self.words.len()),
            })?;
        self.reads += 1;
        Ok(v)
    }

    /// Writes a word, counting the access.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AddressOutOfRange`] for addresses past the end.
    pub fn write(&mut self, addr: usize, v: Vector) -> Result<(), SimError> {
        let len = self.words.len();
        let slot = self
            .words
            .get_mut(addr)
            .ok_or_else(|| SimError::AddressOutOfRange {
                context: format!("dmem write {addr} of {len}"),
            })?;
        *slot = v;
        self.writes += 1;
        Ok(())
    }

    /// Preloads contents without counting accesses (models the asynchronous
    /// EDDO memory movers filling the array before kernel execution; the
    /// off-chip traffic is accounted separately by the kernel mappers).
    ///
    /// # Panics
    ///
    /// Panics if `base + data.len()` exceeds the capacity.
    pub fn preload(&mut self, base: usize, data: &[Vector]) {
        assert!(
            base + data.len() <= self.words.len(),
            "preload of {} words at {base} exceeds capacity {}",
            data.len(),
            self.words.len()
        );
        self.words[base..base + data.len()].copy_from_slice(data);
    }

    /// Number of counted reads.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Number of counted writes.
    pub fn write_count(&self) -> u64 {
        self.writes
    }
}

/// The dual-port scratchpad: same interface as [`DataMemory`] but tracked
/// separately because its per-access energy differs and the paper's Fig 11
/// splits scratchpad read/write power out of the data-memory power.
#[derive(Debug, Clone)]
pub struct Scratchpad {
    mem: DataMemory,
}

impl Scratchpad {
    /// Creates a scratchpad with `entries` vector entries.
    pub fn new(entries: usize) -> Self {
        Scratchpad {
            mem: DataMemory::new(entries),
        }
    }

    /// Capacity in entries.
    pub fn len(&self) -> usize {
        self.mem.len()
    }

    /// True when the scratchpad has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    /// Reads an entry (counted).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AddressOutOfRange`] for addresses past the end.
    pub fn read(&mut self, addr: usize) -> Result<Vector, SimError> {
        self.mem
            .read(addr)
            .map_err(|_| SimError::AddressOutOfRange {
                context: format!("spad read {addr} of {}", self.mem.len()),
            })
    }

    /// Writes an entry (counted).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AddressOutOfRange`] for addresses past the end.
    pub fn write(&mut self, addr: usize, v: Vector) -> Result<(), SimError> {
        let len = self.mem.len();
        self.mem
            .write(addr, v)
            .map_err(|_| SimError::AddressOutOfRange {
                context: format!("spad write {addr} of {len}"),
            })
    }

    /// Number of counted reads.
    pub fn read_count(&self) -> u64 {
        self.mem.read_count()
    }

    /// Number of counted writes.
    pub fn write_count(&self) -> u64 {
        self.mem.write_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip_and_counts() {
        let mut m = DataMemory::new(4);
        m.write(2, Vector([1, 2, 3, 4])).unwrap();
        assert_eq!(m.read(2).unwrap(), Vector([1, 2, 3, 4]));
        assert_eq!(m.read(0).unwrap(), Vector::ZERO);
        assert_eq!(m.read_count(), 2);
        assert_eq!(m.write_count(), 1);
    }

    #[test]
    fn out_of_range_errors() {
        let mut m = DataMemory::new(2);
        assert!(matches!(m.read(2), Err(SimError::AddressOutOfRange { .. })));
        assert!(m.write(5, Vector::ZERO).is_err());
        // Failed accesses are not counted.
        assert_eq!(m.read_count(), 0);
        assert_eq!(m.write_count(), 0);
    }

    #[test]
    fn preload_does_not_count() {
        let mut m = DataMemory::new(8);
        m.preload(4, &[Vector::splat(9); 2]);
        assert_eq!(m.write_count(), 0);
        assert_eq!(m.read(5).unwrap(), Vector::splat(9));
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn preload_bounds_checked() {
        let mut m = DataMemory::new(2);
        m.preload(1, &[Vector::ZERO; 2]);
    }

    #[test]
    fn scratchpad_separate_counting() {
        let mut s = Scratchpad::new(4);
        s.write(0, Vector::splat(1)).unwrap();
        s.read(0).unwrap();
        assert_eq!(s.read_count(), 1);
        assert_eq!(s.write_count(), 1);
        assert_eq!(s.len(), 4);
        assert!(s.read(10).is_err());
    }
}
