//! Architecture configuration (Table 1).

use crate::fault::FaultAction;
use crate::isa::LANES;

/// Configuration of a Canon fabric instance.
///
/// The default reproduces Table 1 of the paper: an 8×8 array of 4-SIMD INT8
/// PEs, 4 KB data memory per PE (288 KB overall including edge buffers), a
/// dual-port scratchpad, one orchestrator per PE row, and LPDDR5X-class
/// off-chip bandwidth.
///
/// # Examples
///
/// ```
/// use canon_core::CanonConfig;
/// let cfg = CanonConfig::default();
/// assert_eq!((cfg.rows, cfg.cols), (8, 8));
/// assert_eq!(cfg.mac_units(), 256);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CanonConfig {
    /// Number of PE rows (one orchestrator each).
    pub rows: usize,
    /// Number of PE columns.
    pub cols: usize,
    /// Data-memory words per PE (one 4-wide vector per word). 1024 words of
    /// 4×INT8 = 4 KB (Table 1).
    pub dmem_words: usize,
    /// Scratchpad entries per PE (one vector each). §6.5 evaluates depths
    /// 1–64 and uses 16 by default.
    pub spad_entries: usize,
    /// PE pipeline depth; also the per-hop latency of the staggered
    /// instruction network ("a fixed pipeline latency of 3 cycles", §2.1).
    pub pipe_depth: usize,
    /// Capacity, in entries, of each inter-PE NoC FIFO (credit window of the
    /// dynamically-managed circuit switching). The default is sized so the
    /// credit round-trip (2-cycle message latency each way) sustains one
    /// transfer per cycle per link, the circuit-switched NoC's line rate.
    pub link_fifo_depth: usize,
    /// Orchestrator-to-orchestrator message latency in cycles.
    pub orch_msg_latency: u64,
    /// Capacity of each orchestrator-to-orchestrator message channel.
    pub orch_msg_capacity: usize,
    /// Off-chip bandwidth in bytes per cycle (17 GB/s at 1 GHz = 17 B/cycle
    /// for the single-die LPDDR5X ×16 configuration).
    pub offchip_bytes_per_cycle: f64,
    /// Watchdog: the simulation aborts with a deadlock error after
    /// `watchdog_factor × (expected work) + watchdog_slack` cycles.
    pub watchdog_factor: u64,
    /// Additive slack for the watchdog.
    pub watchdog_slack: u64,
    /// Simulator-host knob (not an architectural parameter): enables the
    /// column-vectorized batch fast path over the SoA slabs. Architecturally
    /// invisible either way — cycle counts, stats, and collector streams are
    /// identical (pinned by `tests/batch_column.rs`); disable only for
    /// differential testing or A/B throughput measurement.
    pub batching: bool,
    /// Simulator-host knob (not an architectural parameter): enables the
    /// steady-state replay engine, which detects stretches of cycles in
    /// which every row issues the same uniform MAC shape and fast-forwards
    /// them — the PE-array sweep is deferred and settled arithmetically
    /// when the stretch ends (see `canon_core::replay`). Architecturally
    /// invisible either way — cycle counts, stats (including the stall
    /// breakdown), and collector streams are identical (pinned by
    /// `tests/replay_differential.rs`); only the
    /// `Stats::replayed_cycles`/`Stats::replay_stretches` diagnostics
    /// differ. Automatically disengaged while a trace sink is attached or
    /// the polling shadow engine is forced. Disable only for differential
    /// testing or A/B throughput measurement.
    pub replay: bool,
    /// Harness knob: hard ceiling on simulated cycles per `Fabric::run`
    /// call. `None` (the default) leaves only the deadlock watchdog;
    /// `Some(n)` aborts a still-live run after `n` cycles with
    /// [`crate::SimError::Timeout`], returning partial stats. Sweep cells
    /// include this in their cache fingerprint when set, since a raised
    /// ceiling can change a cell's outcome.
    pub max_cycles: Option<u64>,
    /// Harness knob: wall-clock budget per `Fabric::run` call in
    /// nanoseconds. Checked periodically inside the cycle loop (so the
    /// hot path stays branch-predictable); exceeding it aborts with
    /// [`crate::SimError::Timeout`] and partial stats. `None` disables
    /// the check.
    pub wall_budget_ns: Option<u64>,
    /// Harness knob: deterministic fault injected into this run (see
    /// [`crate::fault`]). `None` (the default) costs nothing on the hot
    /// path — the per-cycle sentinels are pre-extracted at `run` entry.
    pub fault: Option<FaultAction>,
}

impl Default for CanonConfig {
    fn default() -> Self {
        CanonConfig {
            rows: 8,
            cols: 8,
            dmem_words: 1024,
            spad_entries: 16,
            pipe_depth: 3,
            link_fifo_depth: 8,
            orch_msg_latency: 2,
            orch_msg_capacity: 4,
            offchip_bytes_per_cycle: 17.0,
            watchdog_factor: 64,
            watchdog_slack: 10_000,
            batching: true,
            replay: true,
            max_cycles: None,
            wall_budget_ns: None,
            fault: None,
        }
    }
}

impl CanonConfig {
    /// A configuration scaled by an integer factor in both dimensions
    /// (used by the Fig 15 scalability experiment).
    pub fn scaled(&self, factor: usize) -> CanonConfig {
        self.with_geometry(self.rows * factor, self.cols * factor)
    }

    /// The same configuration at a different fabric geometry — the single
    /// entry point geometry sweeps use to derive per-cell configurations
    /// (memories, latencies, and watchdog settings carry over).
    pub fn with_geometry(&self, rows: usize, cols: usize) -> CanonConfig {
        CanonConfig {
            rows,
            cols,
            ..self.clone()
        }
    }

    /// The fabric geometry `(rows, cols)`.
    pub fn geometry(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of PEs.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Total INT8 MAC units (each PE has a [`LANES`]-wide lane).
    pub fn mac_units(&self) -> usize {
        self.pe_count() * LANES
    }

    /// Total data-memory capacity in bytes (INT8 elements, [`LANES`] per
    /// word).
    pub fn dmem_bytes_total(&self) -> usize {
        self.pe_count() * self.dmem_words * LANES
    }

    /// Scratchpad bytes per PE (INT8 elements).
    pub fn spad_bytes_per_pe(&self) -> usize {
        self.spad_entries * LANES
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.rows == 0 || self.cols == 0 {
            return Err("array must have at least one row and column".into());
        }
        if self.dmem_words == 0 {
            return Err("data memory must be non-empty".into());
        }
        if self.spad_entries == 0 {
            return Err("scratchpad must have at least one entry".into());
        }
        if self.pipe_depth == 0 {
            return Err("pipeline depth must be at least 1".into());
        }
        if self.link_fifo_depth < 2 {
            return Err("link FIFOs need capacity >= 2 for staggered transfers".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = CanonConfig::default();
        assert_eq!(c.pe_count(), 64);
        assert_eq!(c.mac_units(), 256);
        // 4 KB per PE => 256 KB across the array (Table 1's 288 KB includes
        // edge stream buffers which are modelled separately).
        assert_eq!(c.dmem_bytes_total(), 256 * 1024);
        assert_eq!(c.spad_bytes_per_pe(), 64);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scaled_multiplies_dimensions() {
        let c = CanonConfig::default().scaled(2);
        assert_eq!(c.geometry(), (16, 16));
        assert_eq!(c.mac_units(), 1024);
    }

    #[test]
    fn with_geometry_preserves_other_fields() {
        let base = CanonConfig {
            spad_entries: 32,
            ..CanonConfig::default()
        };
        let c = base.with_geometry(16, 8);
        assert_eq!(c.geometry(), (16, 8));
        assert_eq!(c.spad_entries, 32);
        assert_eq!(c.mac_units(), 16 * 8 * LANES);
    }

    #[test]
    fn validate_rejects_degenerate() {
        let c = CanonConfig {
            rows: 0,
            ..CanonConfig::default()
        };
        assert!(c.validate().is_err());
        let c = CanonConfig {
            spad_entries: 0,
            ..CanonConfig::default()
        };
        assert!(c.validate().is_err());
        let c = CanonConfig {
            link_fifo_depth: 1,
            ..CanonConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
