//! Steady-state stretch detection and macro-cycle replay.
//!
//! After warm-up, Canon kernels are highly periodic: every row issues the
//! same uniform MAC shape cycle after cycle (GEMM's `MacS → Reg` streams,
//! SpMM's `MacS → Spad` bands, SDDMM's `MacV → Reg` dots). During such a
//! *clean stretch* the per-cycle PE-array sweep is pure arithmetic — MAC
//! plans read only PE-local dmem/spad words, accumulate into one constant
//! target per row, drive no NoC links, wake no rows, and drain no sinks —
//! so the simulator does not need to march the pipeline at all: it can
//! buffer each cycle's issue operands and settle the whole stretch as a
//! chain of multiply-accumulates when the stretch ends.
//!
//! The engine (owned by [`crate::Fabric`], enabled by
//! [`crate::CanonConfig::replay`]) works in three phases:
//!
//! 1. **Detection** — the fabric's per-cycle issue-uniformity cells (the
//!    same `issue_window` the column-batch detector folds at issue time)
//!    drive a run-length counter. Once `3·cols` consecutive cycles were
//!    *clean* — every row issued a real instruction of one non-generic MAC
//!    shape — the whole in-flight pipeline is provably describable by a
//!    per-row template (shape + accumulator target), and the engine
//!    attempts entry.
//! 2. **Capture + deferral** — at entry the in-flight pipeline slots and
//!    injection queue are decoded into a per-row operand timeline and
//!    verified against the template (constant shape *and* constant
//!    accumulator target per row; any mismatch aborts entry). From then on
//!    each clean cycle only harvests the rows' freshly issued operands into
//!    the timeline and skips the PE sweep entirely; orchestrator FSMs,
//!    feeders, credits, and messages still step honestly every cycle, so
//!    the instant any row issues a different shape, a bubble, a flush, or
//!    drains, the cycle is no longer clean and the stretch ends.
//! 3. **Flush** — the deferred cycles are settled arithmetically: per PE,
//!    the buffered operand chain is applied to the accumulator storage
//!    (contiguous slab sweeps, one timeline entry across a whole row at a
//!    time), and the pipeline slots plus injection queue are reconstructed
//!    exactly as a cycle-stepped run would have left them (re-interned
//!    records, eagerly computed EXECUTE results, forwarding metadata).
//!    Long stretches are absorbed into storage in bounded chunks so the
//!    timeline never grows past a few KB per row.
//!
//! Replay is architecturally invisible: cycle counts, every [`crate::Stats`]
//! counter (including the stall breakdown), collector streams, and fault
//! sentinels are byte-identical with replay on or off
//! (`tests/replay_differential.rs` pins this differentially). The only
//! divergent counters are the scheduler diagnostics
//! [`crate::Stats::replayed_cycles`] and [`crate::Stats::replay_stretches`].
//! The engine disengages itself while a trace sink is attached (traces need
//! the per-cycle event order) or the polling shadow engine is forced.

use crate::isa::{Addr, Instruction, Opcode, Plan, PlanKind, Vector};

/// Absorb the timeline into accumulator storage once it holds this many
/// entries per row, keeping capture memory bounded on long stretches.
pub(crate) const REPLAY_CHUNK: usize = 1024;

/// One captured issue of a replay stretch: the per-issue operands of a MAC
/// plan whose shape and accumulator target are fixed by the row template.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ReplayEntry {
    /// Broadcast multiplier, pre-splatted (`MacS` shapes; unused for
    /// `MacV`).
    pub imm: Vector,
    /// First operand address: the dmem word for `MacS` shapes, the spad
    /// slot for `MacV`.
    pub p1: u16,
    /// Second operand address: the dmem word (`MacV` only).
    pub p2: u16,
    /// Producer tag of the original instruction (collector metadata).
    pub tag: u32,
}

impl ReplayEntry {
    /// Decomposes a fast plan into `(accumulator target, entry)`.
    /// `Generic` plans are never captured.
    pub(crate) fn from_plan(plan: Plan, tag: u32) -> (u16, ReplayEntry) {
        match plan {
            Plan::MacSToSpad { a, b, imm } => (
                b,
                ReplayEntry {
                    imm: Vector::splat(imm.lane0()),
                    p1: a,
                    p2: 0,
                    tag,
                },
            ),
            Plan::MacSToReg { a, r, imm } => (
                r as u16,
                ReplayEntry {
                    imm: Vector::splat(imm.lane0()),
                    p1: a,
                    p2: 0,
                    tag,
                },
            ),
            Plan::MacVToReg { a, b, r } => (
                r as u16,
                ReplayEntry {
                    imm: Vector::ZERO,
                    p1: a,
                    p2: b,
                    tag,
                },
            ),
            Plan::Generic => unreachable!("generic plans are never captured"),
        }
    }

    /// Rebuilds the instruction record for re-interning at flush. The
    /// immediate is the pre-splatted multiplier — architecturally
    /// equivalent, since `MacS` broadcasts lane 0.
    pub(crate) fn rebuild(&self, kind: PlanKind, target: u16) -> Instruction {
        match kind {
            PlanKind::MacSToSpad => Instruction::new(
                Opcode::MacS,
                Addr::Imm,
                Addr::DataMem(self.p1),
                Addr::Spad(target),
            )
            .with_imm(self.imm)
            .with_tag(self.tag),
            PlanKind::MacSToReg => Instruction::new(
                Opcode::MacS,
                Addr::Imm,
                Addr::DataMem(self.p1),
                Addr::Reg(target as u8),
            )
            .with_imm(self.imm)
            .with_tag(self.tag),
            PlanKind::MacVToReg => Instruction::new(
                Opcode::MacV,
                Addr::Spad(self.p1),
                Addr::DataMem(self.p2),
                Addr::Reg(target as u8),
            )
            .with_tag(self.tag),
            PlanKind::Generic => unreachable!("generic plans are never captured"),
        }
    }
}

/// The replay engine's state, owned by the fabric (see the module docs for
/// the detect → capture → flush life cycle).
#[derive(Debug)]
pub(crate) struct ReplayState {
    /// Master switch ([`crate::CanonConfig::replay`]).
    pub enabled: bool,
    /// Consecutive clean cycles ending at the last stepped cycle (reset on
    /// any non-clean cycle and on a failed entry/template break, so entry
    /// attempts stay amortized over `3·cols` cycles).
    pub run_len: u64,
    /// True while a stretch is being captured (PE sweeps deferred).
    pub active: bool,
    /// Shape shared by every captured issue of the current stretch.
    pub kind: PlanKind,
    /// Per-row accumulator target (spad slot or register index).
    pub targets: Vec<u16>,
    /// Accumulator storage holds the operand chain through cycle
    /// `absorbed − 3c − 3` for column `c`.
    pub absorbed: u64,
    /// Global cycle of timeline index 0.
    pub t_base: u64,
    /// Per-row operand timeline: the issue of cycle `t_base + j` at index
    /// `j` (decoded in-flight slots at entry, then one harvest per cycle).
    pub tl: Vec<Vec<ReplayEntry>>,
    /// Per-cycle harvest scratch (validated before committing to `tl`).
    pub scratch: Vec<ReplayEntry>,
    /// Cycles fast-forwarded so far ([`crate::Stats::replayed_cycles`]).
    pub deferred_cycles: u64,
    /// Stretches captured so far ([`crate::Stats::replay_stretches`]).
    pub stretches: u64,
}

impl ReplayState {
    pub(crate) fn new(rows: usize, enabled: bool) -> ReplayState {
        ReplayState {
            enabled,
            run_len: 0,
            active: false,
            kind: PlanKind::Generic,
            targets: vec![0; rows],
            absorbed: 0,
            t_base: 0,
            tl: vec![Vec::new(); rows],
            scratch: Vec::with_capacity(rows),
            deferred_cycles: 0,
            stretches: 0,
        }
    }

    /// Returns the engine to its post-construction state for fabric reuse,
    /// keeping timeline allocations. `enabled` is taken from the new
    /// configuration the fabric is being reset for.
    pub(crate) fn reset(&mut self, enabled: bool) {
        self.enabled = enabled;
        self.run_len = 0;
        self.active = false;
        self.kind = PlanKind::Generic;
        self.targets.fill(0);
        self.absorbed = 0;
        self.t_base = 0;
        for t in &mut self.tl {
            t.clear();
        }
        self.scratch.clear();
        self.deferred_cycles = 0;
        self.stretches = 0;
    }

    /// Ends the current stretch's capture bookkeeping (the fabric has
    /// already settled the timeline into the PE array). Timeline capacity
    /// is retained for the next stretch.
    pub(crate) fn clear_capture(&mut self) {
        self.active = false;
        self.run_len = 0;
        for t in &mut self.tl {
            t.clear();
        }
    }

    /// Drops timeline entries no longer needed by any future absorb or
    /// flush: after absorbing through virtual cycle `absorbed`, the oldest
    /// entry any column can still need is `absorbed − 3·cols + 1`.
    pub(crate) fn compact(&mut self, cols: usize) {
        let keep_from = self.absorbed.saturating_sub(3 * cols as u64) + 1;
        if keep_from <= self.t_base {
            return;
        }
        let drop = (keep_from - self.t_base) as usize;
        for t in &mut self.tl {
            t.drain(..drop.min(t.len()));
        }
        self.t_base = keep_from;
    }
}
