//! Off-chip bandwidth model (§6.4, Fig 16).
//!
//! §6.4 asks: how much LPDDR5X bandwidth does Canon need to stay at its
//! compute roofline, as a function of arithmetic intensity (sparsity) and
//! on-chip SRAM capacity? The evaluation adopts a *dense-stationary* tiling:
//! the dense operand `B` stays on chip; when it does not fit, it is split
//! into column tiles and the sparse operand `A` is re-streamed once per
//! tile.

/// LPDDR5X single-die ×16 sustained bandwidth, GB/s (Table 1).
pub const LPDDR5X_X16_GBPS: f64 = 17.0;
/// LPDDR5X dual-die ×32 sustained bandwidth, GB/s.
pub const LPDDR5X_X32_GBPS: f64 = 34.0;

/// One point of the Fig 16 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthPoint {
    /// Theoretical arithmetic intensity in ops per byte of off-chip traffic
    /// (a MAC counts as two ops).
    pub ops_per_byte: f64,
    /// Bandwidth (GB/s at 1 GHz) required to keep the MAC array at its
    /// compute roofline.
    pub required_gbps: f64,
    /// Total off-chip traffic in bytes.
    pub traffic_bytes: f64,
    /// Roofline execution time in cycles.
    pub roofline_cycles: f64,
    /// Number of column tiles the dense operand was split into.
    pub tiles: usize,
}

/// Computes the off-chip bandwidth an SpMM of the given shape needs to hit
/// the compute roofline, with `sram_bytes` of on-chip memory and
/// `peak_macs_per_cycle` MAC units (Table 1: 256), under dense-stationary
/// tiling. One byte per element (INT8); each non-zero of `A` costs one value
/// byte plus one coordinate byte.
///
/// # Panics
///
/// Panics if any dimension or the peak rate is zero, or `nnz > m·k`.
pub fn spmm_bandwidth_requirement(
    m: usize,
    k: usize,
    n: usize,
    nnz: usize,
    sram_bytes: usize,
    peak_macs_per_cycle: usize,
) -> BandwidthPoint {
    assert!(m > 0 && k > 0 && n > 0, "dimensions must be positive");
    assert!(peak_macs_per_cycle > 0, "peak rate must be positive");
    assert!(nnz <= m * k, "nnz exceeds matrix size");
    // Dense-stationary: columns of B per tile that fit on chip.
    let cols_per_tile = (sram_bytes / k).max(1).min(n);
    let tiles = n.div_ceil(cols_per_tile);
    let b_bytes = (k * n) as f64;
    let a_bytes_per_pass = (2 * nnz + m) as f64; // values + coordinates + row markers
    let c_bytes = (m * n) as f64;
    let traffic = b_bytes + a_bytes_per_pass * tiles as f64 + c_bytes;
    let macs = (nnz * n) as f64;
    let roofline_cycles = (macs / peak_macs_per_cycle as f64).max(1.0);
    // At 1 GHz, bytes/cycle == GB/s.
    let required_gbps = traffic / roofline_cycles;
    let min_traffic = b_bytes + a_bytes_per_pass + c_bytes;
    let ops_per_byte = 2.0 * macs / min_traffic;
    BandwidthPoint {
        ops_per_byte,
        required_gbps,
        traffic_bytes: traffic,
        roofline_cycles,
        tiles,
    }
}

/// The design points discussed in §6.4: given a set of candidate SRAM sizes,
/// returns `(sram_kb, required_gbps)` for a fixed workload.
pub fn sram_sweep(
    m: usize,
    k: usize,
    n: usize,
    nnz: usize,
    sram_kb_options: &[usize],
    peak_macs_per_cycle: usize,
) -> Vec<(usize, BandwidthPoint)> {
    sram_kb_options
        .iter()
        .map(|&kb| {
            (
                kb,
                spmm_bandwidth_requirement(m, k, n, nnz, kb * 1024, peak_macs_per_cycle),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: usize = 1024;
    const K: usize = 1024;
    const N: usize = 1024;

    #[test]
    fn bandwidth_decreases_with_sram() {
        let nnz = M * K / 2;
        let small = spmm_bandwidth_requirement(M, K, N, nnz, 72 * 1024, 256);
        let large = spmm_bandwidth_requirement(M, K, N, nnz, 1152 * 1024, 256);
        assert!(small.required_gbps > large.required_gbps);
        assert!(small.tiles > large.tiles);
    }

    #[test]
    fn bandwidth_flattens_when_b_fits() {
        // Once SRAM >= K*N, extra capacity changes nothing.
        let nnz = M * K / 4;
        let fit = spmm_bandwidth_requirement(M, K, N, nnz, K * N, 256);
        let bigger = spmm_bandwidth_requirement(M, K, N, nnz, 2 * K * N, 256);
        assert_eq!(fit.tiles, 1);
        assert!((fit.required_gbps - bigger.required_gbps).abs() < 1e-9);
    }

    #[test]
    fn higher_sparsity_needs_more_bandwidth() {
        // Fewer MACs per byte touched → more GB/s to stay on the roofline.
        let dense = spmm_bandwidth_requirement(M, K, N, M * K, 288 * 1024, 256);
        let sparse = spmm_bandwidth_requirement(M, K, N, M * K / 20, 288 * 1024, 256);
        assert!(sparse.required_gbps > dense.required_gbps);
        assert!(sparse.ops_per_byte < dense.ops_per_byte);
    }

    #[test]
    fn sweep_covers_options() {
        let pts = sram_sweep(M, K, N, M * K / 10, &[72, 144, 288, 576, 1152], 256);
        assert_eq!(pts.len(), 5);
        // Monotone non-increasing bandwidth along the sweep.
        for w in pts.windows(2) {
            assert!(w[0].1.required_gbps >= w[1].1.required_gbps - 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn rejects_zero_dims() {
        let _ = spmm_bandwidth_requirement(0, 1, 1, 0, 1024, 256);
    }
}
