//! Canon ISA: instruction format and unified address space (§3.1).
//!
//! The paper's instruction format is
//!
//! ```text
//! <inst> ::= <op> <op1_addr> <op2_addr> <res_addr>
//! ```
//!
//! with the scratchpad, data memory, router ports and SIMD registers sharing
//! a unified address space: which structure an access touches is inferred
//! from the address ([`Addr`]). Two additional fields model aspects the paper
//! describes but does not put into the four-field format:
//!
//! * [`Instruction::imm`] — the operand streamed from the west edge alongside
//!   the instruction (the `From WEST` input in Fig 4; e.g. the non-zero value
//!   of `A` in SpMM). It travels with the staggered instruction, which is
//!   timing-equivalent to a west-to-east data stream.
//! * [`Instruction::route`] — the router pass-through configuration
//!   (`ROUTER_CONF` in Fig 4), e.g. `NORTH_TO_SOUTH` for the psum bypass of
//!   the SpMM FSM (Listing 1). A pass-through moves a NoC entry without
//!   involving the vector lane and may ride along any instruction.
//! * [`Instruction::tag`] — the row-id tag the orchestrator attaches for the
//!   edge memory movers (EDDO I/O control, §4): fabric-edge collectors use it
//!   to attribute flushed partial sums to output rows.

use canon_sparse::Value;

/// Number of lanes in the PE vector unit (Table 1: 4-SIMD).
pub const LANES: usize = 4;

/// A 4-wide SIMD value: the unit of every datapath transfer in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Vector(pub [Value; LANES]);

impl Vector {
    /// The all-zero vector.
    pub const ZERO: Vector = Vector([0; LANES]);

    /// Builds a vector broadcasting one scalar to all lanes.
    pub fn splat(v: Value) -> Vector {
        Vector([v; LANES])
    }

    /// Builds a vector from a slice, zero-padding to [`LANES`].
    ///
    /// # Panics
    ///
    /// Panics if `s.len() > LANES`.
    pub fn from_slice(s: &[Value]) -> Vector {
        assert!(s.len() <= LANES, "slice longer than {LANES} lanes");
        let mut v = [0; LANES];
        v[..s.len()].copy_from_slice(s);
        Vector(v)
    }

    /// Elementwise sum.
    pub fn add(self, rhs: Vector) -> Vector {
        let mut out = [0; LANES];
        for i in 0..LANES {
            out[i] = self.0[i].wrapping_add(rhs.0[i]);
        }
        Vector(out)
    }

    /// Elementwise product.
    pub fn mul(self, rhs: Vector) -> Vector {
        let mut out = [0; LANES];
        for i in 0..LANES {
            out[i] = self.0[i].wrapping_mul(rhs.0[i]);
        }
        Vector(out)
    }

    /// `self + a * b` elementwise (the 4-wide MAC).
    pub fn mac(self, a: Vector, b: Vector) -> Vector {
        self.add(a.mul(b))
    }

    /// Horizontal sum of all lanes (used by the final SDDMM reduction).
    pub fn reduce_sum(self) -> Value {
        self.0.iter().copied().fold(0, Value::wrapping_add)
    }

    /// Scalar in lane 0 (scalar operands occupy lane 0 by convention).
    pub fn lane0(self) -> Value {
        self.0[0]
    }

    /// True if every lane is zero.
    pub fn is_zero(self) -> bool {
        self.0.iter().all(|&v| v == 0)
    }
}

impl From<[Value; LANES]> for Vector {
    fn from(v: [Value; LANES]) -> Self {
        Vector(v)
    }
}

/// Mesh directions for the circuit-switched NoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Towards row 0.
    North,
    /// Towards the last row.
    South,
    /// Towards column 0.
    West,
    /// Towards the last column.
    East,
}

impl Direction {
    /// The opposite direction.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
            Direction::East => Direction::West,
        }
    }

    /// All four directions.
    pub fn all() -> [Direction; 4] {
        [
            Direction::North,
            Direction::South,
            Direction::West,
            Direction::East,
        ]
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Direction::North => "North",
            Direction::South => "South",
            Direction::West => "West",
            Direction::East => "East",
        };
        write!(f, "{s}")
    }
}

/// Unified address space (§3.1): "the scratchpad, data memory, router, and
/// SIMD registers share a unified address space. The specific memory accessed
/// or NoC switching action is inferred from the address."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Addr {
    /// No operand / discard result. Reads as the zero vector.
    #[default]
    Null,
    /// Data-memory word (one [`Vector`] per word).
    DataMem(u16),
    /// Scratchpad entry (one [`Vector`] per entry).
    Spad(u16),
    /// SIMD register.
    Reg(u8),
    /// Router port in the given direction. Reading pops the incoming FIFO
    /// (array edges read as zero); writing pushes to the outgoing link.
    Port(Direction),
    /// The instruction's immediate ([`Instruction::imm`]) — the west-edge
    /// streamed operand. Write-invalid.
    Imm,
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Addr::Null => write!(f, "null"),
            Addr::DataMem(a) => write!(f, "dmem[{a:#x}]"),
            Addr::Spad(a) => write!(f, "spad[{a:#x}]"),
            Addr::Reg(r) => write!(f, "r{r}"),
            Addr::Port(d) => write!(f, "port.{d}"),
            Addr::Imm => write!(f, "imm"),
        }
    }
}

/// Operation codes of the PE vector lane.
///
/// Semantics (all element-wise over [`LANES`] lanes; `res` denotes the value
/// committed to `res_addr`):
///
/// | Op | Result |
/// |---|---|
/// | `Nop` | nothing |
/// | `Mov` | `res = op1` |
/// | `MovFlush` | `res = op1`, and `op1` (scratchpad/register) is cleared to zero — the psum-flush primitive of Listing 1 / App C case 2 |
/// | `Add` | `res = op1 + op2` |
/// | `AddFlush` | `res = op1 + op2`, and `op1` is cleared — the east-going psum chain step of SDDMM |
/// | `Sub` | `res = op1 - op2` |
/// | `Mul` | `res = op1 * op2` |
/// | `MacV` | `res = res + op1 * op2` (read-modify-write vector MAC) |
/// | `MacS` | `res = res + broadcast(op1.lane0) * op2` (scalar×vector MAC: SpMM) |
/// | `Acc` | `res = res + op1` (psum accumulation) |
/// | `RedSum` | `res.lane0 = Σ lanes(op1)`, other lanes zero |
/// | `Max` / `Min` | elementwise max/min (general kernels) |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Opcode {
    /// No operation.
    #[default]
    Nop,
    /// Copy.
    Mov,
    /// Copy and clear source.
    MovFlush,
    /// Elementwise add.
    Add,
    /// Elementwise add and clear `op1`.
    AddFlush,
    /// Elementwise subtract.
    Sub,
    /// Elementwise multiply.
    Mul,
    /// Vector multiply-accumulate into `res`.
    MacV,
    /// Scalar-broadcast multiply-accumulate into `res`.
    MacS,
    /// Accumulate `op1` into `res`.
    Acc,
    /// Horizontal sum of `op1` into lane 0 of `res`.
    RedSum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

impl Opcode {
    /// True for opcodes that perform useful arithmetic on the vector lane
    /// (used for the compute-utilization metric).
    pub fn is_compute(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::AddFlush
                | Opcode::Sub
                | Opcode::Mul
                | Opcode::MacV
                | Opcode::MacS
                | Opcode::Acc
                | Opcode::RedSum
                | Opcode::Max
                | Opcode::Min
        )
    }

    /// True for the multiply-accumulate opcodes (the "useful MACs" the
    /// paper's utilization figures count).
    pub fn is_mac(self) -> bool {
        matches!(self, Opcode::MacV | Opcode::MacS | Opcode::Mul)
    }
}

/// A router pass-through: moves one NoC entry from the incoming FIFO of
/// `from` to the outgoing link towards `to`, preserving the entry's tag,
/// without involving the vector lane. May ride along any instruction
/// (`ROUTER_CONF`), subject to the one-transfer-per-direction-per-cycle rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Route {
    /// Input side (FIFO that is popped).
    pub from: Direction,
    /// Output side (link that is pushed).
    pub to: Direction,
}

/// One Canon instruction, as generated by an orchestrator (§3.1, §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Instruction {
    /// Vector-lane operation.
    pub op: Opcode,
    /// First operand address.
    pub op1: Addr,
    /// Second operand address.
    pub op2: Addr,
    /// Result address.
    pub res: Addr,
    /// West-edge streamed operand, if any.
    pub imm: Option<Vector>,
    /// Router pass-through riding along this instruction, if any.
    pub route: Option<Route>,
    /// Output-row tag attached to any NoC push made by `res` (used by the
    /// edge collectors; pass-through routes keep the original entry's tag).
    pub tag: u32,
}

impl Instruction {
    /// The canonical no-op.
    pub const NOP: Instruction = Instruction {
        op: Opcode::Nop,
        op1: Addr::Null,
        op2: Addr::Null,
        res: Addr::Null,
        imm: None,
        route: None,
        tag: 0,
    };

    /// Convenience constructor for a plain 4-field instruction.
    pub fn new(op: Opcode, op1: Addr, op2: Addr, res: Addr) -> Instruction {
        Instruction {
            op,
            op1,
            op2,
            res,
            ..Instruction::NOP
        }
    }

    /// Sets the immediate (builder style).
    pub fn with_imm(mut self, imm: Vector) -> Instruction {
        self.imm = Some(imm);
        self
    }

    /// Sets the route pass-through (builder style).
    pub fn with_route(mut self, from: Direction, to: Direction) -> Instruction {
        self.route = Some(Route { from, to });
        self
    }

    /// Sets the collector tag (builder style).
    pub fn with_tag(mut self, tag: u32) -> Instruction {
        self.tag = tag;
        self
    }

    /// True when committing this instruction drives the outgoing link
    /// towards `d`: a `Port(d)` result address or a pass-through route with
    /// output side `d`. This is the orchestrators' credit-accounting view
    /// and the fabric's wake-propagation view (a `Nop` result never
    /// actually pushes, but conservatively claims the direction — exactly
    /// what the credit protocol has always assumed).
    pub fn pushes_toward(&self, d: Direction) -> bool {
        self.res == Addr::Port(d) || self.route.is_some_and(|r| r.to == d)
    }

    /// True when loading this instruction pops the incoming link from `d`
    /// (an operand port read or a pass-through route with input side `d`).
    pub fn pops_from(&self, d: Direction) -> bool {
        matches!(self.op1, Addr::Port(x) if x == d)
            || matches!(self.op2, Addr::Port(x) if x == d)
            || self.route.is_some_and(|r| r.from == d)
    }

    /// True for the canonical bubble: a `Nop` with null operands, null
    /// result, and no route — what orchestrators emit for stalls and row
    /// ends. Bubbles read nothing, write nothing, push nothing, and cannot
    /// forward a value, so the pipeline and the injection network can move
    /// them as a one-byte state tag instead of a full instruction record.
    pub fn is_plain_nop(&self) -> bool {
        self.op == Opcode::Nop
            && self.op1 == Addr::Null
            && self.op2 == Addr::Null
            && self.res == Addr::Null
            && self.route.is_none()
    }

    /// Validates the §3.1 compile-time restriction: an instruction must not
    /// read from and write to the same NoC direction (including its route).
    ///
    /// Returns the offending direction on violation.
    pub fn noc_conflict(&self) -> Option<Direction> {
        // Port-free fast path: most compute instructions (dmem/spad/register
        // operands) touch no router direction at all.
        if self.route.is_none()
            && !matches!(self.op1, Addr::Port(_))
            && !matches!(self.op2, Addr::Port(_))
            && !matches!(self.res, Addr::Port(_))
        {
            return None;
        }
        // At most 3 reads (op1, op2, route input) and 2 writes (res, route
        // output) exist, so fixed on-stack arrays suffice — this check runs
        // at every LOAD and must not allocate.
        let mut op_reads = [None::<Direction>; 3];
        let mut n_reads = 0;
        let mut writes = [None::<Direction>; 2];
        let mut n_writes = 0;
        for a in [self.op1, self.op2] {
            if let Addr::Port(d) = a {
                op_reads[n_reads] = Some(d);
                n_reads += 1;
            }
        }
        if let Addr::Port(d) = self.res {
            writes[n_writes] = Some(d);
            n_writes += 1;
        }
        if let Some(r) = self.route {
            writes[n_writes] = Some(r.to);
            n_writes += 1;
            // A route input shared with an operand port is a single pop
            // feeding both (legal); an *additional* distinct pop is a read.
            if !op_reads[..n_reads].contains(&Some(r.from)) {
                op_reads[n_reads] = Some(r.from);
                n_reads += 1;
            }
        }
        let (op_reads, writes) = (&op_reads[..n_reads], &writes[..n_writes]);
        for &r in op_reads {
            if writes.contains(&r) {
                return r;
            }
        }
        // Forbid double-driving one direction (two operand pops or two
        // pushes).
        for (i, &a) in op_reads.iter().enumerate() {
            if op_reads[i + 1..].contains(&a) {
                return a;
            }
        }
        for (i, &a) in writes.iter().enumerate() {
            if writes[i + 1..].contains(&a) {
                return a;
            }
        }
        None
    }
}

impl std::fmt::Display for Instruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?} {} {} {}", self.op, self.op1, self.op2, self.res)?;
        if let Some(r) = self.route {
            write!(f, " route({}→{})", r.from, r.to)?;
        }
        if self.imm.is_some() {
            write!(f, " imm")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_arithmetic() {
        let a = Vector([1, 2, 3, 4]);
        let b = Vector([10, 20, 30, 40]);
        assert_eq!(a.add(b), Vector([11, 22, 33, 44]));
        assert_eq!(a.mul(b), Vector([10, 40, 90, 160]));
        assert_eq!(Vector::ZERO.mac(a, b), a.mul(b));
        assert_eq!(a.reduce_sum(), 10);
        assert_eq!(Vector::splat(5).0, [5; LANES]);
        assert!(Vector::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn vector_from_slice_pads() {
        let v = Vector::from_slice(&[7, 8]);
        assert_eq!(v, Vector([7, 8, 0, 0]));
    }

    #[test]
    #[should_panic(expected = "longer than")]
    fn vector_from_slice_rejects_long() {
        let _ = Vector::from_slice(&[0; 5]);
    }

    #[test]
    fn direction_opposites() {
        for d in Direction::all() {
            assert_eq!(d.opposite().opposite(), d);
        }
        assert_eq!(Direction::North.opposite(), Direction::South);
    }

    #[test]
    fn opcode_classes() {
        assert!(Opcode::MacS.is_mac());
        assert!(Opcode::MacS.is_compute());
        assert!(!Opcode::Mov.is_compute());
        assert!(!Opcode::Nop.is_compute());
        assert!(Opcode::Acc.is_compute());
        assert!(!Opcode::Acc.is_mac());
    }

    #[test]
    fn noc_conflict_same_direction_read_write() {
        // Read and write South in one instruction: illegal (§3.1).
        let i = Instruction::new(
            Opcode::Mov,
            Addr::Port(Direction::South),
            Addr::Null,
            Addr::Port(Direction::South),
        );
        assert_eq!(i.noc_conflict(), Some(Direction::South));
    }

    #[test]
    fn noc_conflict_route_vs_res() {
        // res pushes South while route also pushes South: double drive.
        let i = Instruction::new(
            Opcode::Mov,
            Addr::Spad(0),
            Addr::Null,
            Addr::Port(Direction::South),
        )
        .with_route(Direction::North, Direction::South);
        assert_eq!(i.noc_conflict(), Some(Direction::South));
    }

    #[test]
    fn noc_bypass_is_legal() {
        // North→South pass-through riding a MAC that reads dmem: legal.
        let i = Instruction::new(Opcode::MacS, Addr::Imm, Addr::DataMem(3), Addr::Spad(1))
            .with_route(Direction::North, Direction::South);
        assert_eq!(i.noc_conflict(), None);
    }

    #[test]
    fn instruction_display_mentions_route() {
        let i = Instruction::new(
            Opcode::Add,
            Addr::Reg(0),
            Addr::Port(Direction::West),
            Addr::Port(Direction::East),
        );
        assert!(i.to_string().contains("Add"));
        let i = i.with_route(Direction::North, Direction::South);
        assert!(i.to_string().contains("route"));
    }

    #[test]
    fn port_traffic_predicates() {
        let i = Instruction::new(
            Opcode::Mov,
            Addr::Port(Direction::North),
            Addr::Null,
            Addr::Port(Direction::South),
        );
        assert!(i.pops_from(Direction::North));
        assert!(!i.pops_from(Direction::West));
        assert!(i.pushes_toward(Direction::South));
        assert!(!i.pushes_toward(Direction::East));
        let routed = Instruction::NOP.with_route(Direction::West, Direction::East);
        assert!(routed.pops_from(Direction::West));
        assert!(routed.pushes_toward(Direction::East));
        assert!(!Instruction::NOP.pops_from(Direction::North));
    }

    #[test]
    fn nop_constant() {
        assert_eq!(Instruction::NOP.op, Opcode::Nop);
        assert_eq!(Instruction::NOP.noc_conflict(), None);
        assert_eq!(Instruction::default().op, Opcode::Nop);
    }
}
